#ifndef RTR_SERVE_COST_MODEL_H_
#define RTR_SERVE_COST_MODEL_H_

// Online query cost model for the admission scheduler (DESIGN.md §11).
//
// The paper's Sect. V-B active-set accounting says a query's expense is
// predicted by its working set, and the working set is predicted by the
// query node's degree and epsilon before Stage I runs a single round. This
// model turns that observation into a few-parameter linear predictor over
// log-compressed features — query-node out/in degree read straight off the
// pinned graph's columnar offset arrays, epsilon, and K — fit online from
// completed queries' observed engine latency by exponentially-decayed
// recursive least squares (RLS with forgetting factor λ: old traffic fades,
// so the model tracks generation swaps and cache-temperature drift without
// ever being retrained offline).
//
// Determinism and the serve-path contract: the model is seeded with a fixed
// positive prior (monotone in degree, 1/epsilon, and K), every state member
// is a fixed-size std::array, and Predict/Observe never allocate — the
// admission path stays allocation-free and tests can pin exact predictions
// from the prior.
//
// Thread safety: Predict and Observe are internally synchronized (one
// mutex; the 5x5 update is ~tens of ns, far below a queue-lock handoff).

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "core/twosbound.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::serve {

// Feature vector layout (all log2-compressed so the linear model spans the
// orders of magnitude between a leaf query and a hub query):
//   x[0] = 1                                  (bias)
//   x[1] = log2(1 + sum of query-node out-degrees)   (F-side frontier seed)
//   x[2] = log2(1 + sum of query-node in-degrees)    (T-side frontier seed)
//   x[3] = log2(1 / max(epsilon, kEpsilonFloor))     (bound tightness)
//   x[4] = log2(max(K, 1))                           (answer size)
inline constexpr size_t kCostFeatureDim = 5;

struct CostFeatures {
  std::array<double, kCostFeatureDim> x{};
};

// Builds the feature vector for one request. Degree lookups are two offset
// subtractions per query node; out-of-range nodes contribute nothing (the
// engine rejects them later — admission never crashes on garbage input).
CostFeatures CostFeaturesOf(const Graph& graph, const Query& query,
                            const core::TopKParams& params);

class QueryCostModel {
 public:
  // Forgetting factor λ of the decayed least squares: each new observation
  // discounts the old information matrix by λ, so the effective window is
  // ~1/(1-λ) = 50 queries.
  static constexpr double kForgetting = 0.98;
  // Prior covariance scale: large enough that ~10 observations dominate
  // the prior, small enough that the first predictions stay sane.
  static constexpr double kPriorVariance = 4.0;
  // Epsilon is clamped here before the log — epsilon = 0 (exact mode) is
  // legal engine input and must not produce an infinite feature.
  static constexpr double kEpsilonFloor = 1e-6;
  // Predictions are clamped below by this (a query is never free, and the
  // scheduler divides by predicted cost sums).
  static constexpr double kMinPredictionMillis = 1e-3;

  // Seeds the fixed prior: positive weights, monotone in every feature, so
  // pre-observation scheduling decisions are deterministic and sensible.
  QueryCostModel();

  // Predicted engine latency in milliseconds, >= kMinPredictionMillis.
  double PredictMillis(const CostFeatures& features) const;

  // Folds one completed query's measured engine latency into the fit.
  // Cache hits must not be fed here — they carry no engine-cost signal.
  void Observe(const CostFeatures& features, double measured_millis);

  uint64_t observations() const;
  std::array<double, kCostFeatureDim> weights() const;

 private:
  mutable std::mutex mu_;
  // Weight vector w and inverse information matrix P of the RLS recursion,
  // both guarded by mu_. Fixed-size: no allocation ever.
  std::array<double, kCostFeatureDim> w_{};
  std::array<std::array<double, kCostFeatureDim>, kCostFeatureDim> p_{};
  uint64_t observations_ = 0;
};

}  // namespace rtr::serve

#endif  // RTR_SERVE_COST_MODEL_H_
