#include "serve/scheduler.h"

#include <cmath>

namespace rtr::serve {

const char* CostClassName(CostClass c) {
  switch (c) {
    case CostClass::kCheap:
      return "cheap";
    case CostClass::kModerate:
      return "moderate";
    case CostClass::kHeavy:
      return "heavy";
  }
  return "unknown";
}

CostClass ClassifyCost(double predicted_millis, double mean_predicted_millis) {
  if (mean_predicted_millis <= 0.0) return CostClass::kModerate;
  if (predicted_millis < 0.5 * mean_predicted_millis) return CostClass::kCheap;
  if (predicted_millis > 2.0 * mean_predicted_millis) return CostClass::kHeavy;
  return CostClass::kModerate;
}

double PriorityKey(double predicted_millis, double arrival_millis,
                   double age_boost) {
  return predicted_millis + arrival_millis * age_boost;
}

double PredictedCompletionMillis(double queued_predicted_millis,
                                 int num_workers,
                                 double own_predicted_millis) {
  const double workers = static_cast<double>(num_workers < 1 ? 1 : num_workers);
  return queued_predicted_millis / workers + own_predicted_millis;
}

double EffectiveEpsilon(double base_epsilon, const SchedulerOptions& options,
                        size_t queue_depth, size_t queue_capacity) {
  if (options.eps_max <= base_epsilon || queue_capacity == 0) {
    return base_epsilon;
  }
  const double start = options.queue_watermark *
                       static_cast<double>(queue_capacity);
  const double depth = static_cast<double>(queue_depth);
  if (depth <= start) return base_epsilon;
  const double span = static_cast<double>(queue_capacity) - start;
  double t = span > 0.0 ? (depth - start) / span : 1.0;
  t = std::min(t, 1.0);
  // Quantize the ramp so the cache sees at most kEpsilonSteps widened
  // epsilons per base epsilon instead of one key per queue depth.
  t = std::ceil(t * kEpsilonSteps) / kEpsilonSteps;
  return base_epsilon + t * (options.eps_max - base_epsilon);
}

}  // namespace rtr::serve
