#ifndef RTR_SERVE_QUERY_SERVICE_H_
#define RTR_SERVE_QUERY_SERVICE_H_

// Concurrent query-serving subsystem (DESIGN.md §5): a fixed-size worker
// pool drains a bounded admission queue of top-K RoundTripRank requests,
// fronting either the local 2SBound engine or the dist::Cluster replay
// behind one API. Per-query latencies feed a util::LatencyHistogram for
// p50/p95/p99 + QPS reporting, and results are memoized in a sharded LRU
// ResultCache.
//
// Thread-safety contract (audited in PR 2; see also graph/graph.h,
// core/twosbound.h, dist/distributed_topk.h): each Graph generation is
// immutable and TopKRoundTripRank/DistributedTopK keep all per-query state
// in the calling worker's core::QueryWorkspace arena (one per worker
// thread, DESIGN.md §7 — steady-state queries run allocation-free), so any
// number of workers can share one Graph / one Cluster with no
// synchronization. Components with per-query mutable caches
// (ranking::FTScorer, ProximityMeasure implementations) are NOT used by
// the top-K path; if the service ever serves full rankings, those must be
// instantiated per worker.
//
// Live updates (DESIGN.md §8): a service constructed over a
// graph::GraphStore pins the store's current generation per query
// (GraphStore::Pin — a refcount bump, never a graph copy), so a writer
// publishing new generations through GraphStore::Apply/Publish swaps the
// served graph without stopping the pool: in-flight queries drain on the
// generation they pinned while new arrivals pick up the new one. Cache
// entries carry the generation in their key; the first query to observe a
// newer generation reclaims entries of retired generations
// (ResultCache::EvictGenerationsBelow).

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/twosbound.h"
#include "core/workspace.h"
#include "dist/distributed_topk.h"
#include "graph/graph.h"
#include "graph/store.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cost_model.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "util/latency_histogram.h"
#include "util/status.h"
#include "util/timer.h"

namespace rtr::serve {

// Which engine answers cache misses.
enum class Backend {
  kLocal,        // core::TopKRoundTripRank on the shared Graph
  kDistributed,  // dist::DistributedTopK on a shared dist::Cluster
};

const char* BackendName(Backend backend);

struct ServiceOptions {
  int num_workers = 4;
  // Admission-queue bound; SubmitAsync rejects with kUnavailable beyond it
  // (load shedding instead of unbounded memory growth — no exceptions, per
  // repo conventions).
  size_t queue_capacity = 256;
  bool enable_cache = true;
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  // Queries slower than this (end-to-end, admission to completion) count as
  // SLO violations in ServiceStats.
  double slo_millis = 100.0;
  // Per-query phase tracing (obs/trace.h). Off by default: workers then
  // never touch a TraceRecorder and the engine's trace pointer stays null
  // (zero overhead beyond one branch per instrumentation site). Togglable
  // at runtime with SetTracing.
  bool enable_tracing = false;
  // How many slowest-query trace dumps to retain for SlowestTraces().
  size_t trace_keep = 8;
  // Snapshot loader for FromGraphFile (graph/snapshot.h): kAuto honors
  // RTR_GRAPH_MMAP; kPrefer/kRequire serve straight off an mmapped
  // snapshot, so N service processes on one host share one physical copy
  // of the columns (`rtr_cli serve --mmap`).
  MapMode map_mode = MapMode::kAuto;
  // Cost-model admission scheduling (serve/scheduler.h, DESIGN.md §11):
  // priority queue ordered by predicted cost, batched worker drains,
  // deadline shedding, adaptive epsilon. Disabled by default — the FIFO
  // deque path is preserved byte for byte.
  SchedulerOptions scheduler;
};

struct ServeRequest {
  Query query;
  core::TopKParams params;
  // Optional completion budget, measured from admission. With the
  // scheduler on, admission rejects (kUnavailable, counted in
  // shed_predicted) requests whose predicted completion exceeds this; 0
  // means no deadline. The FIFO path ignores it.
  double deadline_millis = 0.0;
};

struct ServeResponse {
  // Engine-level outcome. One transport-level status exists: admitted
  // requests that a never-started service still holds at Shutdown complete
  // with kUnavailable (see Shutdown).
  Status status;
  core::TopKResult topk;
  bool cache_hit = false;
  // Graph generation the query was answered on (graph/store.h; 0 for
  // static graphs).
  uint64_t generation = 0;
  // Time from admission to worker pickup, and to completion.
  double queue_millis = 0.0;
  double total_millis = 0.0;
  // Epsilon the query actually ran (and cached) under. Equals the request
  // epsilon unless the scheduler widened it under load — clients can tell
  // precision was degraded instead of availability.
  double effective_epsilon = 0.0;
  // The cost model's admission-time latency estimate (scheduler mode; 0 on
  // the FIFO path).
  double predicted_millis = 0.0;
};

// Monotonic service counters plus derived latency/throughput figures.
struct ServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;   // every rejection: overflow + shed + stopping
  // Rejection reasons, reported separately so overload diagnosis doesn't
  // have to infer them: queue-capacity overflow (either admission mode)
  // vs the scheduler's deadline shed (predicted completion past the
  // request deadline). rejected - shed_overflow - shed_predicted =
  // requests refused because the service was stopping.
  uint64_t shed_overflow = 0;
  uint64_t shed_predicted = 0;
  // Requests whose callback fired, including those a never-started
  // service completed as kUnavailable at Shutdown; only requests actually
  // served by a worker are recorded in the latency histogram.
  uint64_t completed = 0;
  uint64_t failed = 0;     // completed with a non-OK status
  uint64_t slo_violations = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;      // LRU capacity evictions
  uint64_t cache_invalidations = 0;  // reclaimed after generation swaps
  // Scheduler-mode activity: queries that ran with a widened epsilon,
  // worker batch drains, and queries served through those drains
  // (batched_queries / batches = achieved batch occupancy).
  uint64_t eps_widened = 0;
  uint64_t batches = 0;
  uint64_t batched_queries = 0;
  // Highest graph generation the service has observed: the generation at
  // construction until a query pins a newer one (always 0 for static
  // graphs loaded without a generation id).
  uint64_t generation = 0;
  double elapsed_seconds = 0.0;  // since Start()
  double qps = 0.0;              // completed / elapsed_seconds
  double p50_millis = 0.0;
  double p95_millis = 0.0;
  double p99_millis = 0.0;
  // Queue wait split by predicted-cost class (scheduler.h), so "cheap
  // queries stopped waiting behind heavy ones" is a measurement, not an
  // inference. Populated in both admission modes.
  struct ClassQueueWait {
    uint64_t count = 0;
    double mean_millis = 0.0;
    double p99_millis = 0.0;
  };
  std::array<ClassQueueWait, kNumCostClasses> queue_wait{};
};

// A thread-pooled top-K RoundTripRank service over a graph (one fixed
// generation, or a live sequence of generations behind a GraphStore).
//
// Lifecycle: construct -> (optionally SubmitAsync, which queues) -> Start()
// -> ... -> Shutdown(). Shutdown drains every admitted request before
// joining the workers, so every accepted SubmitAsync eventually invokes its
// callback exactly once. The destructor calls Shutdown.
//
// Ownership: every constructor shares ownership of its graph source via
// shared_ptr — there is no "must outlive the service" contract.
class QueryService {
 public:
  // Serves a fixed graph from the local engine (wrapped in an internal
  // single-generation GraphStore).
  QueryService(std::shared_ptr<const Graph> graph,
               const ServiceOptions& options);
  // Live local serving: each query pins the store's current generation, so
  // GraphStore::Apply/Publish swap new graph versions in mid-stream.
  QueryService(std::shared_ptr<GraphStore> store,
               const ServiceOptions& options);
  // Serves a fixed cluster through the distributed AP/GP replay.
  QueryService(std::shared_ptr<const dist::Cluster> cluster,
               const ServiceOptions& options);
  // Live distributed serving: queries pin the store's current generation,
  // and the first worker to observe a new generation restripes a fresh
  // num_gps-processor cluster for it (under a mutex; in-flight queries
  // keep draining on the retired cluster they resolved).
  QueryService(std::shared_ptr<GraphStore> store, int num_gps,
               const ServiceOptions& options);

  // Process bring-up from a saved graph: loads `path` (binary snapshot or
  // text, auto-detected by magic — see graph/snapshot.h) into a fresh
  // GraphStore seeded with the snapshot's generation id, and serves it
  // from the local engine. The fast path for cold starts: a snapshot load
  // skips the text-parse/GraphBuilder replay entirely.
  static StatusOr<std::unique_ptr<QueryService>> FromGraphFile(
      const std::string& path, const ServiceOptions& options);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  Backend backend() const { return backend_; }
  const ServiceOptions& options() const { return options_; }
  // The live store, or nullptr for the fixed-cluster mode.
  const std::shared_ptr<GraphStore>& store() const { return store_; }

  // Spawns the worker pool. Fails with kFailedPrecondition if already
  // started (including after Shutdown — services are not restartable).
  Status Start();

  // Stops admission, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  // Invoked on a worker thread when the request completes.
  using DoneCallback = std::function<void(const ServeResponse&)>;

  // Enqueues a request. Returns kUnavailable when the admission queue is
  // full or the service is shutting down; the callback is not invoked for
  // rejected requests.
  Status SubmitAsync(ServeRequest request, DoneCallback done);

  // Blocking convenience wrapper: submit and wait for the response. The
  // service must be started (otherwise the call would wait forever and
  // instead fails with kFailedPrecondition).
  StatusOr<ServeResponse> Call(const ServeRequest& request);

  ServiceStats stats() const;
  const LatencyHistogram& latencies() const { return latencies_; }
  const ResultCache& cache() const { return cache_; }

  // Runtime switch for per-query phase tracing; affects queries picked up
  // after the call. When on, every served query feeds the per-phase
  // histograms (rtr_query_phase_ms{phase=...}) and competes for a slot in
  // the slowest-trace ring.
  void SetTracing(bool enabled) {
    tracing_.store(enabled, std::memory_order_relaxed);
  }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }

  // Aggregated per-phase latency across traced queries.
  const LatencyHistogram& phase_latencies(obs::Phase phase) const {
    return phase_latencies_[static_cast<size_t>(phase)];
  }

  // JSON dumps (TraceRecorder::ToJson) of the slowest traced queries,
  // slowest first, at most options().trace_keep entries.
  std::vector<std::string> SlowestTraces() const;

  // Read-only handle to the online cost model (tests, benches).
  const QueryCostModel& cost_model() const { return cost_model_; }

 private:
  struct Task {
    ServeRequest request;
    DoneCallback done;
    WallTimer admitted;  // started at admission
    // Admission-time scheduling state (computed in SubmitAsync).
    CostFeatures features;
    double predicted_millis = 0.0;
    double effective_epsilon = 0.0;
    CostClass cost_class = CostClass::kModerate;
  };

  // Each worker owns one core::QueryWorkspace (the per-query arena of
  // DESIGN.md §7) for its whole lifetime, so steady-state cache misses run
  // the engine without O(num_nodes) allocation or zeroing.
  void WorkerLoop();
  // Scheduler-mode worker loop: drains cost-ordered batches from
  // sched_queue_, pinning the generation once per batch.
  void SchedWorkerLoop();
  // Runs one scheduled task on an already-pinned generation. pin_millis is
  // the batch's (amortized) pin duration, attributed to each traced query.
  void RunScheduledTask(Task& task, const PinnedGraph& pinned,
                        const std::shared_ptr<const dist::Cluster>& cluster,
                        double pin_millis, core::QueryWorkspace* workspace,
                        obs::TraceRecorder* trace);
  // Cache lookup + engine dispatch against a pre-pinned generation, with
  // the caller's (possibly widened) params. Sets *engine_millis to the
  // measured engine time, or leaves it negative on a cache hit.
  void ExecutePinned(const Query& query, const core::TopKParams& params,
                     const PinnedGraph& pinned, const dist::Cluster* cluster,
                     ServeResponse* response, core::QueryWorkspace* workspace,
                     double* engine_millis);
  // The currently published graph, for admission-time feature extraction
  // (degree lookups). Never blocks on a restripe.
  std::shared_ptr<const Graph> AdmissionGraph();
  // Registers this service's series with the default metrics registry;
  // called once from every non-delegating constructor.
  void RegisterMetrics();
  // Folds one traced query into the per-phase histograms and the
  // slowest-trace ring.
  void RecordTrace(const obs::TraceRecorder& trace, double total_millis);
  // Cache lookup + engine dispatch; fills everything but the timing fields.
  void Execute(const ServeRequest& request, ServeResponse* response,
               core::QueryWorkspace* workspace);
  // Resolves the graph generation (and, for kDistributed, the cluster)
  // this query runs on. In dist-live mode this is where a new generation's
  // cluster gets striped.
  PinnedGraph PinForQuery(std::shared_ptr<const dist::Cluster>* cluster);
  // Raises the observed-generation watermark; the winning caller reclaims
  // cache entries of retired generations.
  void ObserveGeneration(uint64_t generation);
  // Backend dispatch for one cache miss, on the pinned generation.
  Status RunEngine(const Query& query, const core::TopKParams& params,
                   const Graph& graph, const dist::Cluster* cluster,
                   core::TopKResult* topk,
                   core::QueryWorkspace* workspace) const;

  // Graph source. store_ is non-null in every mode except dist-static
  // (fixed cluster); cluster_ is the fixed cluster in dist-static mode and
  // the most recently striped generation's cluster in dist-live mode
  // (guarded by cluster_mu_ there, immutable otherwise).
  std::shared_ptr<GraphStore> store_;
  std::shared_ptr<const dist::Cluster> cluster_;
  std::mutex cluster_mu_;
  int num_gps_ = 0;  // > 0 iff dist-live
  Backend backend_;
  ServiceOptions options_;
  ResultCache cache_;
  LatencyHistogram latencies_;
  // Highest generation any query has pinned; raised with a CAS so exactly
  // one worker per swap pays the cache-invalidation walk.
  std::atomic<uint64_t> last_seen_generation_{0};

  mutable std::mutex mu_;
  // Held for the whole of Shutdown; see the comment there.
  std::mutex shutdown_mu_;
  std::condition_variable queue_cv_;
  // Exactly one of these holds queued work: the FIFO deque (scheduler
  // off — the original admission path, untouched) or the cost-ordered
  // priority queue (scheduler on). Both under mu_.
  std::deque<Task> queue_;
  AdmissionQueue<Task> sched_queue_;
  // Decayed mean of admission-time predictions; anchors the
  // cheap/moderate/heavy class split. Under mu_.
  double mean_predicted_millis_ = 0.0;
  // Common arrival clock for the static priority keys (scheduler.h);
  // started at construction, never restarted.
  WallTimer arrival_clock_;
  QueryCostModel cost_model_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
  WallTimer uptime_;  // restarted by Start()
  // Service uptime frozen at Shutdown so post-mortem stats keep the QPS
  // measured while the pool was live; < 0 while running.
  double frozen_elapsed_seconds_ = -1.0;

  // Service counters double as the registry series (rtr_serve_*, labeled
  // by backend); ServiceStats stays the snapshot view over them.
  obs::Counter accepted_;
  obs::Counter rejected_;
  obs::Counter completed_;
  obs::Counter failed_;
  obs::Counter slo_violations_;
  // Scheduler series (rtr_sched_*): split rejection reasons, widened-
  // epsilon queries, batch drains. shed_overflow_ also counts FIFO-mode
  // queue-full rejections so the reason split covers both paths.
  obs::Counter shed_overflow_;
  obs::Counter shed_predicted_;
  obs::Counter eps_widened_;
  obs::Counter batches_;
  obs::Counter batched_queries_;
  // Queue wait split by predicted-cost class
  // (rtr_serve_queue_wait_ms{class=...}).
  std::array<LatencyHistogram, kNumCostClasses> class_queue_wait_;

  // Per-query phase tracing: per-phase histograms fed by traced queries,
  // plus a small ring of the slowest queries' JSON dumps.
  std::atomic<bool> tracing_{false};
  std::array<LatencyHistogram, obs::kNumPhases> phase_latencies_;
  std::atomic<uint64_t> next_query_id_{0};
  mutable std::mutex traces_mu_;
  // Sorted slowest-first, capped at options_.trace_keep.
  std::vector<std::pair<double, std::string>> slowest_traces_;

  // Dist-live restripes drop the retired cluster's ShardCounters; the
  // per-GP traffic folded in here (guarded by cluster_mu_) keeps the
  // rtr_dist_* callback counters monotone across generations.
  std::vector<uint64_t> dist_retired_requests_;
  std::vector<uint64_t> dist_retired_records_;
  std::vector<uint64_t> dist_retired_bytes_;

  // Declared last: unregisters before any of the metrics above die.
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace rtr::serve

#endif  // RTR_SERVE_QUERY_SERVICE_H_
