#ifndef RTR_SERVE_RESULT_CACHE_H_
#define RTR_SERVE_RESULT_CACHE_H_

// Sharded LRU cache of top-K results for the query-serving subsystem
// (DESIGN.md §5). Production query streams are heavily skewed — popular
// queries repeat — so caching whole TopKResults turns the common case into a
// hash lookup. Sharding by key hash keeps lock contention proportional to
// 1/num_shards under concurrent workers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/twosbound.h"
#include "graph/types.h"
#include "obs/metrics.h"

namespace rtr::serve {

// Everything that determines a TopKRoundTripRank answer — the request
// parameters plus the graph generation (graph/store.h) they ran against.
// Two requests with equal keys are guaranteed bit-identical results (the
// engine is deterministic), which is what makes the cache transparent:
// serving a hit is indistinguishable from re-running the query. A
// generation swap changes the key, so entries computed on a retired
// generation are simply never hit again; EvictGenerationsBelow() reclaims
// their memory.
struct CacheKey {
  Query query;  // query nodes exactly as submitted; a permutation of the
                // same nodes is a different key even though the engine's
                // uniform mixture makes it rank-equivalent
  int k = 0;
  double epsilon = 0.0;
  double alpha = 0.0;
  int m_f = 0;
  int m_t = 0;
  int max_rounds = 0;
  core::TopKScheme scheme = core::TopKScheme::k2SBound;
  // Graph generation the result was computed on (0 for static graphs).
  uint64_t generation = 0;

  bool operator==(const CacheKey&) const = default;

  // Builds the key of one request against one graph generation.
  static CacheKey Of(const Query& query, const core::TopKParams& params,
                     uint64_t generation = 0) {
    return CacheKey{query,          params.k,   params.epsilon,
                    params.alpha,   params.m_f, params.m_t,
                    params.max_rounds, params.scheme, generation};
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

// Monotonic counters; read with stats(). Hits + misses == lookups.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;     // LRU capacity evictions
  uint64_t invalidations = 0; // entries dropped by EvictGenerationsBelow
};

// Thread-safe sharded LRU map CacheKey -> TopKResult. Capacity is global
// and split evenly across shards (each shard evicts its own LRU tail), so
// the resident entry count never exceeds `capacity` rounded up to a
// multiple of num_shards.
class ResultCache {
 public:
  // capacity >= 1 entries overall; num_shards >= 1 (both clamped up to 1).
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // On hit, refreshes the entry's recency and returns a shared handle to
  // the immutable cached result; nullptr on miss. Entries are stored behind
  // shared_ptr so the critical section is a refcount bump and a list
  // splice, never a deep copy of the result (hot keys would otherwise
  // serialize workers on the shard mutex).
  std::shared_ptr<const core::TopKResult> Lookup(const CacheKey& key);

  // Inserts (or refreshes) the entry, evicting the shard's least recently
  // used entry when the shard is full.
  void Insert(const CacheKey& key, core::TopKResult result);

  // Drops every entry whose key.generation is below `floor` and returns
  // how many were dropped (counted as invalidations, not evictions). The
  // serving layer calls this when it observes a generation swap: stale
  // entries are unreachable anyway (the generation is part of the key), so
  // this is purely memory reclamation. O(resident entries), taking one
  // shard lock at a time.
  size_t EvictGenerationsBelow(uint64_t floor);

  size_t size() const;
  size_t num_shards() const { return shards_.size(); }
  CacheStats stats() const;

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<CacheKey, std::shared_ptr<const core::TopKResult>>>
        lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, CacheKeyHash> index;
  };

  Shard& ShardOf(size_t hash) const;

  size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  // Counters double as the cache's metrics-registry series
  // (rtr_cache_*_total); CacheStats stays as a snapshot view over them.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter invalidations_;
  // Declared last: unregisters before the counters above are destroyed.
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace rtr::serve

#endif  // RTR_SERVE_RESULT_CACHE_H_
