#ifndef RTR_SERVE_SCHEDULER_H_
#define RTR_SERVE_SCHEDULER_H_

// Cost-model admission scheduling for the serve path (DESIGN.md §11).
//
// This header holds the scheduling *policy* — pure, allocation-light,
// deterministically testable pieces — and the priority admission queue that
// replaces QueryService's FIFO deque when SchedulerOptions::enabled is set:
//
//  * PriorityKey: shortest-predicted-job-first with an age-based
//    anti-starvation boost. The trick is that the key is computed once at
//    admission and never re-keyed: a query's dynamic priority is
//    predicted_ms − age·boost, and since age = now − arrival, ordering two
//    queries by it is equivalent to ordering by the static key
//    predicted_ms + arrival_ms·boost (the −now·boost term is common to
//    every entry at compare time). A plain binary heap therefore suffices;
//    an expensive query is overtaken by cheaper arrivals for at most
//    Δpredicted/boost milliseconds before its head start wins.
//
//  * PredictedCompletionMillis + deadline shedding: admission rejects a
//    request whose predicted completion (queued predicted work divided
//    across the pool, plus its own predicted cost) blows its deadline —
//    shedding the queries that were going to miss anyway, at admission
//    time, instead of evicting the queue tail after they soaked up memory
//    and wait time.
//
//  * EffectiveEpsilon: adaptive precision under load. Past a queue-depth
//    watermark epsilon widens linearly toward eps_max (degrade precision,
//    not availability), quantized to a few steps so the result cache sees a
//    handful of effective epsilons instead of a continuum of keys.
//
//  * AdmissionQueue<TaskT>: a min-key binary heap with FIFO sequence
//    tie-break and a running sum of queued predicted cost (the backlog
//    input to deadline shedding). Externally synchronized — QueryService
//    operates it under the same mutex that guarded the FIFO deque.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rtr::serve {

struct SchedulerOptions {
  // Master switch. Off preserves QueryService's FIFO admission path byte
  // for byte — every pre-scheduler test pins the old behavior.
  bool enabled = false;
  // Most queued requests one worker drains into a single workspace-warm
  // batch (one generation pin + cache-evict check amortized across them).
  size_t batch_size = 8;
  // Predicted milliseconds forgiven per millisecond a request has waited.
  // 1.0 ≈ "a 5ms head start beats a 5ms cost advantage"; 0 is pure SJF
  // (starvation possible — not recommended outside experiments).
  double age_boost = 1.0;
  // Upper edge of the adaptive-epsilon band. <= the request's own epsilon
  // disables widening (the default 0 therefore turns the feature off).
  double eps_max = 0.0;
  // Fraction of queue capacity where epsilon starts widening.
  double queue_watermark = 0.5;
};

// Priority classes derived from predicted cost, used to split queue-wait
// reporting so degradation is observable per class, not inferred from an
// aggregate.
enum class CostClass : uint8_t {
  kCheap = 0,     // predicted < 0.5x the decayed mean prediction
  kModerate = 1,
  kHeavy = 2,     // predicted > 2x the decayed mean prediction
};
inline constexpr size_t kNumCostClasses = 3;

// Stable lowercase label value ("cheap", "moderate", "heavy").
const char* CostClassName(CostClass c);

CostClass ClassifyCost(double predicted_millis, double mean_predicted_millis);

// The static heap key described above. Lower = served sooner.
double PriorityKey(double predicted_millis, double arrival_millis,
                   double age_boost);

// Admission-time completion estimate: the queued predicted work spread
// across the pool, plus the request's own predicted cost. Ignores work
// already in flight on the workers — an under-estimate of roughly one
// batch, which errs on the side of admitting.
double PredictedCompletionMillis(double queued_predicted_millis,
                                 int num_workers, double own_predicted_millis);

// Epsilon widened for load: base below watermark·capacity, ramping
// linearly to eps_max at a full queue, quantized to kEpsilonSteps levels so
// cache keys stay few. Returns base whenever eps_max <= base.
inline constexpr int kEpsilonSteps = 4;
double EffectiveEpsilon(double base_epsilon, const SchedulerOptions& options,
                        size_t queue_depth, size_t queue_capacity);

// Min-key binary heap of admitted requests with a FIFO tie-break and a
// running total of queued predicted cost. Externally synchronized.
template <typename TaskT>
class AdmissionQueue {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  // Sum of predicted_millis over queued entries — the backlog term of
  // PredictedCompletionMillis.
  double total_predicted_millis() const { return total_predicted_millis_; }

  void Push(double key, double predicted_millis, TaskT task) {
    heap_.push_back(Item{key, next_seq_++, predicted_millis, std::move(task)});
    std::push_heap(heap_.begin(), heap_.end(), After);
    total_predicted_millis_ += predicted_millis;
  }

  // Removes and returns the minimum-key (soonest-served) entry.
  TaskT Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After);
    Item item = std::move(heap_.back());
    heap_.pop_back();
    total_predicted_millis_ -= item.predicted_millis;
    // The running sum is a float accumulator; pin it to exactly zero when
    // the queue empties so backlog never drifts negative.
    if (heap_.empty()) total_predicted_millis_ = 0.0;
    return std::move(item.task);
  }

 private:
  struct Item {
    double key;
    uint64_t seq;
    double predicted_millis;
    TaskT task;
  };

  // Heap comparator: std::push_heap keeps the comp-maximum first, so
  // "greater key (or later seq) compares less" puts the minimum key at the
  // front with FIFO order among equal keys.
  static bool After(const Item& a, const Item& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }

  std::vector<Item> heap_;
  uint64_t next_seq_ = 0;
  double total_predicted_millis_ = 0.0;
};

}  // namespace rtr::serve

#endif  // RTR_SERVE_SCHEDULER_H_
