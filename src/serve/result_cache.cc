#include "serve/result_cache.h"

#include <algorithm>
#include <bit>

namespace rtr::serve {

namespace {

// SplitMix64 finalizer; mixes each field into the running hash.
inline size_t Mix(size_t h, uint64_t v) {
  uint64_t x = static_cast<uint64_t>(h) ^ (v + 0x9e3779b97f4a7c15ULL +
                                           (static_cast<uint64_t>(h) << 6));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

inline uint64_t DoubleBits(double d) {
  // operator== compares doubles numerically, so the hash must give equal
  // keys equal hashes: fold -0.0 onto +0.0 (they compare equal but differ
  // in bit pattern). NaN fields never compare equal, so any hash works.
  if (d == 0.0) d = 0.0;
  return std::bit_cast<uint64_t>(d);
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  size_t h = Mix(0, key.query.size());
  for (NodeId v : key.query) h = Mix(h, v);
  h = Mix(h, static_cast<uint64_t>(key.k));
  h = Mix(h, DoubleBits(key.epsilon));
  h = Mix(h, DoubleBits(key.alpha));
  h = Mix(h, static_cast<uint64_t>(key.m_f));
  h = Mix(h, static_cast<uint64_t>(key.m_t));
  h = Mix(h, static_cast<uint64_t>(key.max_rounds));
  h = Mix(h, static_cast<uint64_t>(key.scheme));
  h = Mix(h, key.generation);
  return h;
}

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : shards_(std::max<size_t>(1, num_shards)) {
  capacity = std::max<size_t>(1, capacity);
  per_shard_capacity_ =
      (capacity + shards_.size() - 1) / shards_.size();  // ceil
  // All caches in the process share one series per counter; duplicates
  // merge at render time (obs/metrics.h).
  auto& registry = obs::MetricsRegistry::Default();
  registrations_.push_back(
      registry.RegisterCounter("rtr_cache_hits_total", {}, &hits_));
  registrations_.push_back(
      registry.RegisterCounter("rtr_cache_misses_total", {}, &misses_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_cache_insertions_total", {}, &insertions_));
  registrations_.push_back(
      registry.RegisterCounter("rtr_cache_evictions_total", {}, &evictions_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_cache_invalidations_total", {}, &invalidations_));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_cache_entries", {}, [this] { return static_cast<double>(size()); }));
}

ResultCache::Shard& ResultCache::ShardOf(size_t hash) const {
  return shards_[hash % shards_.size()];
}

std::shared_ptr<const core::TopKResult> ResultCache::Lookup(
    const CacheKey& key) {
  Shard& shard = ShardOf(CacheKeyHash()(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.Increment();
  return it->second->second;
}

void ResultCache::Insert(const CacheKey& key, core::TopKResult result) {
  auto value = std::make_shared<const core::TopKResult>(std::move(result));
  Shard& shard = ShardOf(CacheKeyHash()(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.Increment();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.Increment();
  }
}

size_t ResultCache::EvictGenerationsBelow(uint64_t floor) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.generation < floor) {
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.Add(dropped);
  return dropped;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.value();
  stats.misses = misses_.value();
  stats.insertions = insertions_.value();
  stats.evictions = evictions_.value();
  stats.invalidations = invalidations_.value();
  return stats;
}

}  // namespace rtr::serve
