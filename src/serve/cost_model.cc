#include "serve/cost_model.h"

#include <algorithm>
#include <cmath>

namespace rtr::serve {

CostFeatures CostFeaturesOf(const Graph& graph, const Query& query,
                            const core::TopKParams& params) {
  CostFeatures f;
  double out_deg = 0.0;
  double in_deg = 0.0;
  for (NodeId q : query) {
    if (q >= graph.num_nodes()) continue;
    out_deg += static_cast<double>(graph.out_degree(q));
    in_deg += static_cast<double>(graph.in_degree(q));
  }
  f.x[0] = 1.0;
  f.x[1] = std::log2(1.0 + out_deg);
  f.x[2] = std::log2(1.0 + in_deg);
  f.x[3] = std::log2(1.0 / std::max(params.epsilon,
                                    QueryCostModel::kEpsilonFloor));
  f.x[4] = std::log2(static_cast<double>(std::max(params.k, 1)));
  return f;
}

QueryCostModel::QueryCostModel() {
  // Fixed prior (milliseconds per unit feature). Positive in every
  // component: more degree, tighter epsilon, or larger K never predicts
  // cheaper. Magnitudes put a typical mid-degree, epsilon=0.01, K=10 query
  // around 1ms — the right ballpark for the micro graphs the tests and
  // benches run, and ~10 observations override it anyway.
  w_ = {0.05, 0.03, 0.03, 0.06, 0.02};
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    for (size_t j = 0; j < kCostFeatureDim; ++j) {
      p_[i][j] = i == j ? kPriorVariance : 0.0;
    }
  }
}

double QueryCostModel::PredictMillis(const CostFeatures& features) const {
  std::lock_guard<std::mutex> lock(mu_);
  double y = 0.0;
  for (size_t i = 0; i < kCostFeatureDim; ++i) y += w_[i] * features.x[i];
  return std::max(y, kMinPredictionMillis);
}

void QueryCostModel::Observe(const CostFeatures& features,
                             double measured_millis) {
  if (!(measured_millis >= 0.0)) return;  // also drops NaN
  const auto& x = features.x;
  std::lock_guard<std::mutex> lock(mu_);
  // Standard RLS-with-forgetting recursion:
  //   g = P x / (λ + xᵀ P x)         (gain)
  //   w ← w + g (y − wᵀ x)
  //   P ← (P − g (P x)ᵀ) / λ
  std::array<double, kCostFeatureDim> px{};
  double xpx = 0.0;
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    for (size_t j = 0; j < kCostFeatureDim; ++j) px[i] += p_[i][j] * x[j];
    xpx += x[i] * px[i];
  }
  const double denom = kForgetting + xpx;
  double err = measured_millis;
  for (size_t i = 0; i < kCostFeatureDim; ++i) err -= w_[i] * x[i];
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    w_[i] += (px[i] / denom) * err;
  }
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    for (size_t j = 0; j < kCostFeatureDim; ++j) {
      p_[i][j] = (p_[i][j] - px[i] * px[j] / denom) / kForgetting;
    }
  }
  // Symmetrize: the recursion preserves symmetry exactly in real
  // arithmetic but drifts in floating point, and an asymmetric P can turn
  // indefinite over thousands of updates.
  for (size_t i = 0; i < kCostFeatureDim; ++i) {
    for (size_t j = i + 1; j < kCostFeatureDim; ++j) {
      const double s = 0.5 * (p_[i][j] + p_[j][i]);
      p_[i][j] = s;
      p_[j][i] = s;
    }
  }
  ++observations_;
}

uint64_t QueryCostModel::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

std::array<double, kCostFeatureDim> QueryCostModel::weights() const {
  std::lock_guard<std::mutex> lock(mu_);
  return w_;
}

}  // namespace rtr::serve
