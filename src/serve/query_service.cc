#include "serve/query_service.h"

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "graph/snapshot.h"
#include "util/logging.h"

namespace rtr::serve {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kLocal:
      return "local";
    case Backend::kDistributed:
      return "distributed";
  }
  return "unknown";
}

QueryService::QueryService(std::shared_ptr<const Graph> graph,
                           const ServiceOptions& options)
    : QueryService(std::make_shared<GraphStore>(std::move(graph)), options) {}

QueryService::QueryService(std::shared_ptr<GraphStore> store,
                           const ServiceOptions& options)
    : store_(std::move(store)),
      backend_(Backend::kLocal),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(store_ != nullptr) << "a query service needs a graph store";
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  last_seen_generation_.store(store_->generation(),
                              std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

QueryService::QueryService(std::shared_ptr<const dist::Cluster> cluster,
                           const ServiceOptions& options)
    : cluster_(std::move(cluster)),
      backend_(Backend::kDistributed),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(cluster_ != nullptr) << "a query service needs a cluster";
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  last_seen_generation_.store(cluster_->generation(),
                              std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

QueryService::QueryService(std::shared_ptr<GraphStore> store, int num_gps,
                           const ServiceOptions& options)
    : store_(std::move(store)),
      num_gps_(num_gps),
      backend_(Backend::kDistributed),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(store_ != nullptr) << "a query service needs a graph store";
  CHECK_GE(num_gps_, 1);
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  // Stripe the construction-time generation eagerly so the first queries
  // don't all pile up on the striping mutex.
  PinnedGraph pinned = store_->Pin();
  cluster_ = std::make_shared<const dist::Cluster>(pinned.graph, num_gps_,
                                                   pinned.generation);
  last_seen_generation_.store(pinned.generation, std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

StatusOr<std::unique_ptr<QueryService>> QueryService::FromGraphFile(
    const std::string& path, const ServiceOptions& options) {
  uint64_t generation = 0;
  StatusOr<Graph> loaded = LoadGraphAuto(path, &generation, options.map_mode);
  RTR_RETURN_IF_ERROR(loaded.status());
  auto store = std::make_shared<GraphStore>(
      std::make_shared<const Graph>(std::move(loaded).value()), generation);
  return std::make_unique<QueryService>(std::move(store), options);
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterMetrics() {
  const obs::Labels labels = {{"backend", BackendName(backend_)}};
  auto& registry = obs::MetricsRegistry::Default();
  registrations_.push_back(
      registry.RegisterCounter("rtr_serve_accepted_total", labels,
                               &accepted_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_rejected_total", labels, &rejected_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_completed_total", labels, &completed_));
  registrations_.push_back(
      registry.RegisterCounter("rtr_serve_failed_total", labels, &failed_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_slo_violations_total", labels, &slo_violations_));
  registrations_.push_back(registry.RegisterHistogram(
      "rtr_serve_latency_ms", labels, &latencies_));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_queue_depth", labels, [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(queue_.size());
      }));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_qps", labels, [this] {
        double elapsed = 0.0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!started_) return 0.0;
          elapsed = frozen_elapsed_seconds_ >= 0.0
                        ? frozen_elapsed_seconds_
                        : uptime_.ElapsedSeconds();
        }
        if (elapsed <= 0.0) return 0.0;
        return static_cast<double>(completed_.value()) / elapsed;
      }));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_generation", labels, [this] {
        return static_cast<double>(
            last_seen_generation_.load(std::memory_order_relaxed));
      }));
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    obs::Labels phase_labels = labels;
    phase_labels.emplace_back("phase",
                              obs::PhaseName(static_cast<obs::Phase>(p)));
    registrations_.push_back(registry.RegisterHistogram(
        "rtr_query_phase_ms", std::move(phase_labels),
        &phase_latencies_[p]));
  }
  if (backend_ != Backend::kDistributed) return;
  // Per-shard traffic series. The callbacks fold in traffic retired by
  // dist-live restripes (dist_retired_*) so the counters stay monotone
  // across generations; cluster_mu_ nests inside the registry mutex.
  const int num_gps = num_gps_ > 0 ? num_gps_ : cluster_->num_gps();
  dist_retired_requests_.assign(static_cast<size_t>(num_gps), 0);
  dist_retired_records_.assign(static_cast<size_t>(num_gps), 0);
  dist_retired_bytes_.assign(static_cast<size_t>(num_gps), 0);
  for (int gp = 0; gp < num_gps; ++gp) {
    const obs::Labels gp_labels = {{"gp", std::to_string(gp)}};
    const size_t g = static_cast<size_t>(gp);
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_fetch_requests_total", gp_labels, [this, g] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_requests_[g] +
                 cluster_->gps()[g].fetch_requests();
        }));
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_records_served_total", gp_labels, [this, g] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_records_[g] +
                 cluster_->gps()[g].records_served();
        }));
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_bytes_served_total", gp_labels, [this, g] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_bytes_[g] + cluster_->gps()[g].bytes_served();
        }));
  }
}

void QueryService::RecordTrace(const obs::TraceRecorder& trace,
                               double total_millis) {
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const obs::Phase phase = static_cast<obs::Phase>(p);
    if (trace.PhaseSpanCount(phase) > 0) {
      phase_latencies_[p].Record(trace.PhaseMillis(phase));
    }
  }
  const size_t keep = std::max<size_t>(1, options_.trace_keep);
  std::lock_guard<std::mutex> lock(traces_mu_);
  if (slowest_traces_.size() >= keep &&
      total_millis <= slowest_traces_.back().first) {
    return;
  }
  auto it = std::upper_bound(
      slowest_traces_.begin(), slowest_traces_.end(), total_millis,
      [](double t, const auto& entry) { return t > entry.first; });
  slowest_traces_.emplace(it, total_millis, trace.ToJson());
  if (slowest_traces_.size() > keep) slowest_traces_.pop_back();
}

std::vector<std::string> QueryService::SlowestTraces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  std::vector<std::string> out;
  out.reserve(slowest_traces_.size());
  for (const auto& [millis, json] : slowest_traces_) out.push_back(json);
  return out;
}

Status QueryService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) {
    return Status::FailedPrecondition("service already started");
  }
  started_ = true;
  uptime_.Restart();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this);
  }
  return Status::OK();
}

void QueryService::Shutdown() {
  // Serializes concurrent Shutdown calls: a second caller blocks here until
  // the first has drained and joined, so "idempotent" also means "safe to
  // race" (e.g., an explicit Shutdown racing the destructor's).
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Never-started services have no workers to drain the queue: complete the
  // admitted requests here so every accepted callback fires exactly once.
  std::deque<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
    if (started_ && frozen_elapsed_seconds_ < 0.0) {
      frozen_elapsed_seconds_ = uptime_.ElapsedSeconds();
    }
  }
  for (Task& task : orphaned) {
    ServeResponse response;
    response.status = Status::Unavailable("service shut down before execution");
    response.queue_millis = task.admitted.ElapsedMillis();
    response.total_millis = response.queue_millis;
    completed_.Increment();
    failed_.Increment();
    if (task.done) task.done(response);
  }
}

Status QueryService::SubmitAsync(ServeRequest request, DoneCallback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.Increment();
      return Status::Unavailable("service is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_.Increment();
      return Status::Unavailable(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ")");
    }
    queue_.push_back(Task{std::move(request), std::move(done), WallTimer()});
    // Count inside the critical section so no observer ever sees a task
    // completed before it was accepted.
    accepted_.Increment();
  }
  queue_cv_.notify_one();
  return Status::OK();
}

StatusOr<ServeResponse> QueryService::Call(const ServeRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return Status::FailedPrecondition(
          "Call requires a started service (no worker would ever answer)");
    }
  }
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  RTR_RETURN_IF_ERROR(SubmitAsync(
      request, [&promise](const ServeResponse& r) { promise.set_value(r); }));
  return future.get();
}

void QueryService::WorkerLoop() {
  // The worker's reusable query arena: sized on the first query, then
  // allocation-free for the rest of the worker's life (DESIGN.md §7).
  core::QueryWorkspace workspace;
  // The worker's trace recorder, reused across queries; only wired into
  // the workspace while tracing is on.
  obs::TraceRecorder trace;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeResponse response;
    response.queue_millis = task.admitted.ElapsedMillis();
    const bool traced = tracing_.load(std::memory_order_relaxed);
    if (traced) {
      trace.BeginQuery(static_cast<int64_t>(
          next_query_id_.fetch_add(1, std::memory_order_relaxed)));
      trace.AddSpan(obs::Phase::kQueueWait,
                    static_cast<int64_t>(response.queue_millis * 1e6));
      workspace.trace = &trace;
    } else {
      workspace.trace = nullptr;
    }
    Execute(task.request, &response, &workspace);
    response.total_millis = task.admitted.ElapsedMillis();
    if (traced) {
      workspace.trace = nullptr;
      RecordTrace(trace, response.total_millis);
    }
    latencies_.Record(response.total_millis);
    if (response.total_millis > options_.slo_millis) {
      slo_violations_.Increment();
    }
    if (!response.status.ok()) {
      failed_.Increment();
    }
    completed_.Increment();
    if (task.done) task.done(response);
  }
}

PinnedGraph QueryService::PinForQuery(
    std::shared_ptr<const dist::Cluster>* cluster) {
  if (backend_ == Backend::kLocal) return store_->Pin();
  if (num_gps_ == 0) {
    // Fixed cluster: cluster_ never changes after construction.
    *cluster = cluster_;
    return PinnedGraph{cluster_->graph_ptr(), cluster_->generation()};
  }
  // Dist-live: serve from a cluster striped off the store's current
  // generation. The first worker to pin a new generation restripes while
  // holding cluster_mu_ (an O(graph) rebuild — later generations' queries
  // briefly queue on the mutex, while queries already holding the retired
  // cluster's shared_ptr keep draining untouched). If another worker
  // already striped a generation NEWER than our pin, serve from that: a
  // query must never run on a cluster older than the generation key it
  // caches under.
  PinnedGraph pinned = store_->Pin();
  std::lock_guard<std::mutex> lock(cluster_mu_);
  if (cluster_->generation() < pinned.generation) {
    // Fold the retired cluster's traffic into the retained totals so the
    // per-GP callback counters stay monotone across restripes.
    for (size_t g = 0; g < cluster_->gps().size(); ++g) {
      const dist::GraphProcessor& gp = cluster_->gps()[g];
      dist_retired_requests_[g] += gp.fetch_requests();
      dist_retired_records_[g] += gp.records_served();
      dist_retired_bytes_[g] += gp.bytes_served();
    }
    LOG(INFO) << "restriping generation " << pinned.generation << " across "
              << num_gps_ << " graph processors";
    cluster_ = std::make_shared<const dist::Cluster>(pinned.graph, num_gps_,
                                                     pinned.generation);
  } else if (cluster_->generation() > pinned.generation) {
    pinned = PinnedGraph{cluster_->graph_ptr(), cluster_->generation()};
  }
  *cluster = cluster_;
  return pinned;
}

void QueryService::ObserveGeneration(uint64_t generation) {
  uint64_t seen = last_seen_generation_.load(std::memory_order_relaxed);
  while (seen < generation) {
    if (last_seen_generation_.compare_exchange_weak(
            seen, generation, std::memory_order_relaxed)) {
      // Exactly one worker wins the raise for each swap and pays the
      // cache walk; entries under older generations are unreachable
      // anyway (the generation is part of the key), so this is memory
      // reclamation, not correctness.
      cache_.EvictGenerationsBelow(generation);
      return;
    }
  }
}

void QueryService::Execute(const ServeRequest& request,
                           ServeResponse* response,
                           core::QueryWorkspace* workspace) {
  std::shared_ptr<const dist::Cluster> cluster;
  PinnedGraph pinned = [&] {
    obs::ScopedSpan span(workspace->trace, obs::Phase::kGenerationPin);
    return PinForQuery(&cluster);
  }();
  ObserveGeneration(pinned.generation);
  response->generation = pinned.generation;
  if (!options_.enable_cache) {
    response->status = RunEngine(request, *pinned.graph, cluster.get(),
                                 &response->topk, workspace);
    return;
  }
  CacheKey key = CacheKey::Of(request.query, request.params,
                              pinned.generation);
  // The deep copy into the response happens here, outside the shard lock.
  {
    obs::ScopedSpan span(workspace->trace, obs::Phase::kCacheLookup);
    if (std::shared_ptr<const core::TopKResult> hit = cache_.Lookup(key)) {
      response->topk = *hit;
      response->cache_hit = true;
      return;
    }
  }
  response->status = RunEngine(request, *pinned.graph, cluster.get(),
                               &response->topk, workspace);
  if (response->status.ok()) cache_.Insert(key, response->topk);
}

Status QueryService::RunEngine(const ServeRequest& request,
                               const Graph& graph,
                               const dist::Cluster* cluster,
                               core::TopKResult* topk,
                               core::QueryWorkspace* workspace) const {
  if (backend_ == Backend::kLocal) {
    // Engine output lands directly in the response's result object; all
    // O(num_nodes) scratch comes from the worker's arena.
    return core::TopKRoundTripRank(graph, request.query, request.params,
                                   *workspace, topk);
  }
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(*cluster, request.query, request.params,
                            workspace);
  if (!result.ok()) return result.status();
  *topk = std::move(result->topk);
  return Status::OK();
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.value();
  stats.rejected = rejected_.value();
  stats.completed = completed_.value();
  stats.failed = failed_.value();
  stats.slo_violations = slo_violations_.value();
  CacheStats cache_stats = cache_.stats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_insertions = cache_stats.insertions;
  stats.cache_evictions = cache_stats.evictions;
  stats.cache_invalidations = cache_stats.invalidations;
  stats.generation = last_seen_generation_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      stats.elapsed_seconds = frozen_elapsed_seconds_ >= 0.0
                                  ? frozen_elapsed_seconds_
                                  : uptime_.ElapsedSeconds();
    }
  }
  if (stats.elapsed_seconds > 0.0) {
    stats.qps = static_cast<double>(stats.completed) / stats.elapsed_seconds;
  }
  stats.p50_millis = latencies_.P50();
  stats.p95_millis = latencies_.P95();
  stats.p99_millis = latencies_.P99();
  return stats;
}

}  // namespace rtr::serve
