#include "serve/query_service.h"

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "graph/snapshot.h"
#include "util/logging.h"

namespace rtr::serve {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kLocal:
      return "local";
    case Backend::kDistributed:
      return "distributed";
  }
  return "unknown";
}

QueryService::QueryService(const Graph& graph, const ServiceOptions& options)
    : graph_(graph),
      backend_(Backend::kLocal),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
}

QueryService::QueryService(const dist::Cluster& cluster,
                           const ServiceOptions& options)
    : graph_(cluster.graph()),
      cluster_(&cluster),
      backend_(Backend::kDistributed),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
}

StatusOr<std::unique_ptr<QueryService>> QueryService::FromGraphFile(
    const std::string& path, const ServiceOptions& options) {
  StatusOr<Graph> loaded = LoadGraphAuto(path);
  RTR_RETURN_IF_ERROR(loaded.status());
  auto graph = std::make_unique<const Graph>(std::move(loaded).value());
  auto service = std::make_unique<QueryService>(*graph, options);
  service->owned_graph_ = std::move(graph);
  return service;
}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) {
    return Status::FailedPrecondition("service already started");
  }
  started_ = true;
  uptime_.Restart();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this);
  }
  return Status::OK();
}

void QueryService::Shutdown() {
  // Serializes concurrent Shutdown calls: a second caller blocks here until
  // the first has drained and joined, so "idempotent" also means "safe to
  // race" (e.g., an explicit Shutdown racing the destructor's).
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Never-started services have no workers to drain the queue: complete the
  // admitted requests here so every accepted callback fires exactly once.
  std::deque<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
    if (started_ && frozen_elapsed_seconds_ < 0.0) {
      frozen_elapsed_seconds_ = uptime_.ElapsedSeconds();
    }
  }
  for (Task& task : orphaned) {
    ServeResponse response;
    response.status = Status::Unavailable("service shut down before execution");
    response.queue_millis = task.admitted.ElapsedMillis();
    response.total_millis = response.queue_millis;
    completed_.fetch_add(1, std::memory_order_relaxed);
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (task.done) task.done(response);
  }
}

Status QueryService::SubmitAsync(ServeRequest request, DoneCallback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("service is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ")");
    }
    queue_.push_back(Task{std::move(request), std::move(done), WallTimer()});
    // Count inside the critical section so no observer ever sees a task
    // completed before it was accepted.
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return Status::OK();
}

StatusOr<ServeResponse> QueryService::Call(const ServeRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return Status::FailedPrecondition(
          "Call requires a started service (no worker would ever answer)");
    }
  }
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  RTR_RETURN_IF_ERROR(SubmitAsync(
      request, [&promise](const ServeResponse& r) { promise.set_value(r); }));
  return future.get();
}

void QueryService::WorkerLoop() {
  // The worker's reusable query arena: sized on the first query, then
  // allocation-free for the rest of the worker's life (DESIGN.md §7).
  core::QueryWorkspace workspace;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeResponse response;
    response.queue_millis = task.admitted.ElapsedMillis();
    Execute(task.request, &response, &workspace);
    response.total_millis = task.admitted.ElapsedMillis();
    latencies_.Record(response.total_millis);
    if (response.total_millis > options_.slo_millis) {
      slo_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!response.status.ok()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (task.done) task.done(response);
  }
}

void QueryService::Execute(const ServeRequest& request,
                           ServeResponse* response,
                           core::QueryWorkspace* workspace) {
  if (!options_.enable_cache) {
    response->status = RunEngine(request, &response->topk, workspace);
    return;
  }
  CacheKey key = CacheKey::Of(request.query, request.params);
  // The deep copy into the response happens here, outside the shard lock.
  if (std::shared_ptr<const core::TopKResult> hit = cache_.Lookup(key)) {
    response->topk = *hit;
    response->cache_hit = true;
    return;
  }
  response->status = RunEngine(request, &response->topk, workspace);
  if (response->status.ok()) cache_.Insert(key, response->topk);
}

Status QueryService::RunEngine(const ServeRequest& request,
                               core::TopKResult* topk,
                               core::QueryWorkspace* workspace) const {
  if (backend_ == Backend::kLocal) {
    // Engine output lands directly in the response's result object; all
    // O(num_nodes) scratch comes from the worker's arena.
    return core::TopKRoundTripRank(graph_, request.query, request.params,
                                   *workspace, topk);
  }
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(*cluster_, request.query, request.params,
                            workspace);
  if (!result.ok()) return result.status();
  *topk = std::move(result->topk);
  return Status::OK();
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  CacheStats cache_stats = cache_.stats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_evictions = cache_stats.evictions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      stats.elapsed_seconds = frozen_elapsed_seconds_ >= 0.0
                                  ? frozen_elapsed_seconds_
                                  : uptime_.ElapsedSeconds();
    }
  }
  if (stats.elapsed_seconds > 0.0) {
    stats.qps = static_cast<double>(stats.completed) / stats.elapsed_seconds;
  }
  stats.p50_millis = latencies_.P50();
  stats.p95_millis = latencies_.P95();
  stats.p99_millis = latencies_.P99();
  return stats;
}

}  // namespace rtr::serve
