#include "serve/query_service.h"

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "graph/snapshot.h"
#include "util/logging.h"

namespace rtr::serve {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kLocal:
      return "local";
    case Backend::kDistributed:
      return "distributed";
  }
  return "unknown";
}

QueryService::QueryService(std::shared_ptr<const Graph> graph,
                           const ServiceOptions& options)
    : QueryService(std::make_shared<GraphStore>(std::move(graph)), options) {}

QueryService::QueryService(std::shared_ptr<GraphStore> store,
                           const ServiceOptions& options)
    : store_(std::move(store)),
      backend_(Backend::kLocal),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(store_ != nullptr) << "a query service needs a graph store";
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  last_seen_generation_.store(store_->generation(),
                              std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

QueryService::QueryService(std::shared_ptr<const dist::Cluster> cluster,
                           const ServiceOptions& options)
    : cluster_(std::move(cluster)),
      backend_(Backend::kDistributed),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(cluster_ != nullptr) << "a query service needs a cluster";
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  last_seen_generation_.store(cluster_->generation(),
                              std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

QueryService::QueryService(std::shared_ptr<GraphStore> store, int num_gps,
                           const ServiceOptions& options)
    : store_(std::move(store)),
      num_gps_(num_gps),
      backend_(Backend::kDistributed),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {
  CHECK(store_ != nullptr) << "a query service needs a graph store";
  CHECK_GE(num_gps_, 1);
  CHECK_GE(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  // Stripe the construction-time generation eagerly so the first queries
  // don't all pile up on the striping mutex.
  PinnedGraph pinned = store_->Pin();
  cluster_ = std::make_shared<const dist::Cluster>(pinned.graph, num_gps_,
                                                   pinned.generation);
  last_seen_generation_.store(pinned.generation, std::memory_order_relaxed);
  tracing_.store(options_.enable_tracing, std::memory_order_relaxed);
  RegisterMetrics();
}

StatusOr<std::unique_ptr<QueryService>> QueryService::FromGraphFile(
    const std::string& path, const ServiceOptions& options) {
  uint64_t generation = 0;
  StatusOr<Graph> loaded = LoadGraphAuto(path, &generation, options.map_mode);
  RTR_RETURN_IF_ERROR(loaded.status());
  auto store = std::make_shared<GraphStore>(
      std::make_shared<const Graph>(std::move(loaded).value()), generation);
  return std::make_unique<QueryService>(std::move(store), options);
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterMetrics() {
  const obs::Labels labels = {{"backend", BackendName(backend_)}};
  auto& registry = obs::MetricsRegistry::Default();
  registrations_.push_back(
      registry.RegisterCounter("rtr_serve_accepted_total", labels,
                               &accepted_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_rejected_total", labels, &rejected_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_completed_total", labels, &completed_));
  registrations_.push_back(
      registry.RegisterCounter("rtr_serve_failed_total", labels, &failed_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_serve_slo_violations_total", labels, &slo_violations_));
  registrations_.push_back(registry.RegisterHistogram(
      "rtr_serve_latency_ms", labels, &latencies_));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_queue_depth", labels, [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(queue_.size() + sched_queue_.size());
      }));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_sched_shed_overflow_total", labels, &shed_overflow_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_sched_shed_predicted_total", labels, &shed_predicted_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_sched_eps_widened_total", labels, &eps_widened_));
  registrations_.push_back(
      registry.RegisterCounter("rtr_sched_batches_total", labels, &batches_));
  registrations_.push_back(registry.RegisterCounter(
      "rtr_sched_batched_queries_total", labels, &batched_queries_));
  for (size_t c = 0; c < kNumCostClasses; ++c) {
    obs::Labels class_labels = labels;
    class_labels.emplace_back("class",
                              CostClassName(static_cast<CostClass>(c)));
    registrations_.push_back(registry.RegisterHistogram(
        "rtr_serve_queue_wait_ms", std::move(class_labels),
        &class_queue_wait_[c]));
  }
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_qps", labels, [this] {
        double elapsed = 0.0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!started_) return 0.0;
          elapsed = frozen_elapsed_seconds_ >= 0.0
                        ? frozen_elapsed_seconds_
                        : uptime_.ElapsedSeconds();
        }
        if (elapsed <= 0.0) return 0.0;
        return static_cast<double>(completed_.value()) / elapsed;
      }));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_serve_generation", labels, [this] {
        return static_cast<double>(
            last_seen_generation_.load(std::memory_order_relaxed));
      }));
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    obs::Labels phase_labels = labels;
    phase_labels.emplace_back("phase",
                              obs::PhaseName(static_cast<obs::Phase>(p)));
    registrations_.push_back(registry.RegisterHistogram(
        "rtr_query_phase_ms", std::move(phase_labels),
        &phase_latencies_[p]));
  }
  if (backend_ != Backend::kDistributed) return;
  // Per-shard traffic series. The callbacks fold in traffic retired by
  // dist-live restripes (dist_retired_*) so the counters stay monotone
  // across generations; cluster_mu_ nests inside the registry mutex.
  const int num_gps = num_gps_ > 0 ? num_gps_ : cluster_->num_gps();
  dist_retired_requests_.assign(static_cast<size_t>(num_gps), 0);
  dist_retired_records_.assign(static_cast<size_t>(num_gps), 0);
  dist_retired_bytes_.assign(static_cast<size_t>(num_gps), 0);
  for (int gp = 0; gp < num_gps; ++gp) {
    const obs::Labels gp_labels = {{"gp", std::to_string(gp)}};
    const size_t g = static_cast<size_t>(gp);
    const int gp_index = gp;
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_fetch_requests_total", gp_labels, [this, g, gp_index] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_requests_[g] +
                 cluster_->fetch_requests(gp_index);
        }));
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_records_served_total", gp_labels, [this, g, gp_index] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_records_[g] +
                 cluster_->records_served(gp_index);
        }));
    registrations_.push_back(registry.RegisterCallbackCounter(
        "rtr_dist_bytes_served_total", gp_labels, [this, g, gp_index] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return dist_retired_bytes_[g] + cluster_->bytes_served(gp_index);
        }));
  }
  if (!cluster_->remote()) return;
  // Networked tier only: wire-level traffic summed over all GP peers. The
  // cluster (and its remote sources) is fixed for the service's lifetime in
  // this mode, so no retired-counter fold is needed.
  struct WireField {
    const char* name;
    uint64_t dist::WireTraffic::* field;
  };
  static constexpr WireField kWireFields[] = {
      {"rtr_net_frames_sent_total", &dist::WireTraffic::frames_sent},
      {"rtr_net_frames_received_total", &dist::WireTraffic::frames_received},
      {"rtr_net_bytes_sent_total", &dist::WireTraffic::bytes_sent},
      {"rtr_net_bytes_received_total", &dist::WireTraffic::bytes_received},
      {"rtr_net_retries_total", &dist::WireTraffic::retries},
      {"rtr_net_reconnects_total", &dist::WireTraffic::reconnects},
      {"rtr_net_timeouts_total", &dist::WireTraffic::timeouts},
      {"rtr_net_sheds_total", &dist::WireTraffic::sheds},
  };
  for (const WireField& wf : kWireFields) {
    registrations_.push_back(registry.RegisterCallbackCounter(
        wf.name, labels, [this, field = wf.field] {
          std::lock_guard<std::mutex> lock(cluster_mu_);
          return cluster_->total_wire().*field;
        }));
  }
}

void QueryService::RecordTrace(const obs::TraceRecorder& trace,
                               double total_millis) {
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    const obs::Phase phase = static_cast<obs::Phase>(p);
    if (trace.PhaseSpanCount(phase) > 0) {
      phase_latencies_[p].Record(trace.PhaseMillis(phase));
    }
  }
  const size_t keep = std::max<size_t>(1, options_.trace_keep);
  std::lock_guard<std::mutex> lock(traces_mu_);
  if (slowest_traces_.size() >= keep &&
      total_millis <= slowest_traces_.back().first) {
    return;
  }
  auto it = std::upper_bound(
      slowest_traces_.begin(), slowest_traces_.end(), total_millis,
      [](double t, const auto& entry) { return t > entry.first; });
  slowest_traces_.emplace(it, total_millis, trace.ToJson());
  if (slowest_traces_.size() > keep) slowest_traces_.pop_back();
}

std::vector<std::string> QueryService::SlowestTraces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  std::vector<std::string> out;
  out.reserve(slowest_traces_.size());
  for (const auto& [millis, json] : slowest_traces_) out.push_back(json);
  return out;
}

Status QueryService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) {
    return Status::FailedPrecondition("service already started");
  }
  started_ = true;
  uptime_.Restart();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this);
  }
  return Status::OK();
}

void QueryService::Shutdown() {
  // Serializes concurrent Shutdown calls: a second caller blocks here until
  // the first has drained and joined, so "idempotent" also means "safe to
  // race" (e.g., an explicit Shutdown racing the destructor's).
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Never-started services have no workers to drain the queue: complete the
  // admitted requests here so every accepted callback fires exactly once.
  std::deque<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
    while (!sched_queue_.empty()) orphaned.push_back(sched_queue_.Pop());
    if (started_ && frozen_elapsed_seconds_ < 0.0) {
      frozen_elapsed_seconds_ = uptime_.ElapsedSeconds();
    }
  }
  for (Task& task : orphaned) {
    ServeResponse response;
    response.status = Status::Unavailable("service shut down before execution");
    response.queue_millis = task.admitted.ElapsedMillis();
    response.total_millis = response.queue_millis;
    response.effective_epsilon = task.request.params.epsilon;
    completed_.Increment();
    failed_.Increment();
    if (task.done) task.done(response);
  }
}

std::shared_ptr<const Graph> QueryService::AdmissionGraph() {
  if (store_ != nullptr) return store_->Current();
  std::lock_guard<std::mutex> lock(cluster_mu_);
  return cluster_->graph_ptr();
}

Status QueryService::SubmitAsync(ServeRequest request, DoneCallback done) {
  const SchedulerOptions& sched = options_.scheduler;
  Task task;
  task.request = std::move(request);
  task.done = std::move(done);
  task.effective_epsilon = task.request.params.epsilon;
  // Admission-time cost estimate against the currently published
  // generation: two offset subtractions per query node, no allocation.
  // Execution may pin a newer generation — the estimate is a scheduling
  // hint, not a contract.
  task.features =
      CostFeaturesOf(*AdmissionGraph(), task.request.query,
                     task.request.params);
  task.predicted_millis = cost_model_.PredictMillis(task.features);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.Increment();
      return Status::Unavailable("service is shutting down");
    }
    const size_t depth = sched.enabled ? sched_queue_.size() : queue_.size();
    if (depth >= options_.queue_capacity) {
      rejected_.Increment();
      shed_overflow_.Increment();
      return Status::Unavailable(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ")");
    }
    // Decayed mean of predictions anchors the cheap/moderate/heavy split.
    mean_predicted_millis_ =
        mean_predicted_millis_ <= 0.0
            ? task.predicted_millis
            : 0.9 * mean_predicted_millis_ + 0.1 * task.predicted_millis;
    task.cost_class =
        ClassifyCost(task.predicted_millis, mean_predicted_millis_);
    if (sched.enabled) {
      if (task.request.deadline_millis > 0.0) {
        const double completion = PredictedCompletionMillis(
            sched_queue_.total_predicted_millis(), options_.num_workers,
            task.predicted_millis);
        if (completion > task.request.deadline_millis) {
          rejected_.Increment();
          shed_predicted_.Increment();
          return Status::Unavailable(
              "predicted completion " + std::to_string(completion) +
              "ms exceeds deadline " +
              std::to_string(task.request.deadline_millis) + "ms");
        }
      }
      task.effective_epsilon =
          EffectiveEpsilon(task.request.params.epsilon, sched, depth,
                           options_.queue_capacity);
      if (task.effective_epsilon != task.request.params.epsilon) {
        eps_widened_.Increment();
      }
      const double key =
          PriorityKey(task.predicted_millis, arrival_clock_.ElapsedMillis(),
                      sched.age_boost);
      task.admitted.Restart();
      sched_queue_.Push(key, task.predicted_millis, std::move(task));
    } else {
      task.admitted.Restart();
      queue_.push_back(std::move(task));
    }
    // Count inside the critical section so no observer ever sees a task
    // completed before it was accepted.
    accepted_.Increment();
  }
  queue_cv_.notify_one();
  return Status::OK();
}

StatusOr<ServeResponse> QueryService::Call(const ServeRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return Status::FailedPrecondition(
          "Call requires a started service (no worker would ever answer)");
    }
  }
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  RTR_RETURN_IF_ERROR(SubmitAsync(
      request, [&promise](const ServeResponse& r) { promise.set_value(r); }));
  return future.get();
}

void QueryService::WorkerLoop() {
  if (options_.scheduler.enabled) {
    SchedWorkerLoop();
    return;
  }
  // The worker's reusable query arena: sized on the first query, then
  // allocation-free for the rest of the worker's life (DESIGN.md §7).
  core::QueryWorkspace workspace;
  // The worker's trace recorder, reused across queries; only wired into
  // the workspace while tracing is on.
  obs::TraceRecorder trace;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeResponse response;
    response.queue_millis = task.admitted.ElapsedMillis();
    response.effective_epsilon = task.request.params.epsilon;
    class_queue_wait_[static_cast<size_t>(task.cost_class)].Record(
        response.queue_millis);
    const bool traced = tracing_.load(std::memory_order_relaxed);
    if (traced) {
      trace.BeginQuery(static_cast<int64_t>(
          next_query_id_.fetch_add(1, std::memory_order_relaxed)));
      trace.AddSpan(obs::Phase::kQueueWait,
                    static_cast<int64_t>(response.queue_millis * 1e6));
      workspace.trace = &trace;
    } else {
      workspace.trace = nullptr;
    }
    Execute(task.request, &response, &workspace);
    response.total_millis = task.admitted.ElapsedMillis();
    if (traced) {
      workspace.trace = nullptr;
      RecordTrace(trace, response.total_millis);
    }
    latencies_.Record(response.total_millis);
    if (response.total_millis > options_.slo_millis) {
      slo_violations_.Increment();
    }
    if (!response.status.ok()) {
      failed_.Increment();
    }
    completed_.Increment();
    if (task.done) task.done(response);
  }
}

void QueryService::SchedWorkerLoop() {
  core::QueryWorkspace workspace;
  obs::TraceRecorder trace;
  std::vector<Task> batch;
  batch.reserve(std::max<size_t>(1, options_.scheduler.batch_size));
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !sched_queue_.empty(); });
      if (sched_queue_.empty()) return;  // stopping and fully drained
      // Fair drain: take up to batch_size, but leave work behind for idle
      // peers — a worker only batches beyond one query when the queue is
      // deeper than the pool could cover one-each.
      const size_t workers =
          static_cast<size_t>(std::max(options_.num_workers, 1));
      const size_t take =
          std::min(std::max<size_t>(1, options_.scheduler.batch_size),
                   1 + (sched_queue_.size() - 1) / workers);
      while (batch.size() < take && !sched_queue_.empty()) {
        batch.push_back(sched_queue_.Pop());
      }
    }
    // One generation pin, observe-generation cache walk, and (in dist-live
    // mode) restripe check amortized over the whole batch; the workspace
    // stays warm across its queries, so a batch of repeats of one hot
    // query also reuses the teleport vector (core/workspace.h).
    std::shared_ptr<const dist::Cluster> cluster;
    WallTimer pin_timer;
    PinnedGraph pinned = PinForQuery(&cluster);
    const double pin_millis = pin_timer.ElapsedMillis();
    ObserveGeneration(pinned.generation);
    batches_.Increment();
    batched_queries_.Add(batch.size());
    for (Task& task : batch) {
      RunScheduledTask(task, pinned, cluster, pin_millis, &workspace, &trace);
    }
  }
}

void QueryService::RunScheduledTask(
    Task& task, const PinnedGraph& pinned,
    const std::shared_ptr<const dist::Cluster>& cluster, double pin_millis,
    core::QueryWorkspace* workspace, obs::TraceRecorder* trace) {
  ServeResponse response;
  response.queue_millis = task.admitted.ElapsedMillis();
  response.effective_epsilon = task.effective_epsilon;
  response.predicted_millis = task.predicted_millis;
  response.generation = pinned.generation;
  class_queue_wait_[static_cast<size_t>(task.cost_class)].Record(
      response.queue_millis);
  const bool traced = tracing_.load(std::memory_order_relaxed);
  if (traced) {
    trace->BeginQuery(static_cast<int64_t>(
        next_query_id_.fetch_add(1, std::memory_order_relaxed)));
    trace->AddSpan(obs::Phase::kSchedWait,
                   static_cast<int64_t>(response.queue_millis * 1e6));
    trace->AddSpan(obs::Phase::kGenerationPin,
                   static_cast<int64_t>(pin_millis * 1e6));
    workspace->trace = trace;
  } else {
    workspace->trace = nullptr;
  }
  // The widened epsilon is what actually runs — and what the cache keys
  // on, so a widened answer is never returned to a full-precision request
  // (or vice versa).
  core::TopKParams effective_params = task.request.params;
  effective_params.epsilon = task.effective_epsilon;
  double engine_millis = -1.0;
  ExecutePinned(task.request.query, effective_params, pinned, cluster.get(),
                &response, workspace, &engine_millis);
  response.total_millis = task.admitted.ElapsedMillis();
  if (traced) {
    workspace->trace = nullptr;
    RecordTrace(*trace, response.total_millis);
  }
  latencies_.Record(response.total_millis);
  if (response.total_millis > options_.slo_millis) {
    slo_violations_.Increment();
  }
  if (!response.status.ok()) {
    failed_.Increment();
  }
  completed_.Increment();
  // Close the online-learning loop on engine runs only: a cache hit
  // carries no signal about engine cost.
  if (engine_millis >= 0.0 && response.status.ok()) {
    cost_model_.Observe(task.features, engine_millis);
  }
  if (task.done) task.done(response);
}

void QueryService::ExecutePinned(const Query& query,
                                 const core::TopKParams& params,
                                 const PinnedGraph& pinned,
                                 const dist::Cluster* cluster,
                                 ServeResponse* response,
                                 core::QueryWorkspace* workspace,
                                 double* engine_millis) {
  if (!options_.enable_cache) {
    WallTimer engine_timer;
    response->status = RunEngine(query, params, *pinned.graph, cluster,
                                 &response->topk, workspace);
    *engine_millis = engine_timer.ElapsedMillis();
    return;
  }
  CacheKey key = CacheKey::Of(query, params, pinned.generation);
  {
    obs::ScopedSpan span(workspace->trace, obs::Phase::kCacheLookup);
    if (std::shared_ptr<const core::TopKResult> hit = cache_.Lookup(key)) {
      response->topk = *hit;
      response->cache_hit = true;
      return;
    }
  }
  WallTimer engine_timer;
  response->status = RunEngine(query, params, *pinned.graph, cluster,
                               &response->topk, workspace);
  *engine_millis = engine_timer.ElapsedMillis();
  if (response->status.ok()) cache_.Insert(key, response->topk);
}

PinnedGraph QueryService::PinForQuery(
    std::shared_ptr<const dist::Cluster>* cluster) {
  if (backend_ == Backend::kLocal) return store_->Pin();
  if (num_gps_ == 0) {
    // Fixed cluster: cluster_ never changes after construction.
    *cluster = cluster_;
    return PinnedGraph{cluster_->graph_ptr(), cluster_->generation()};
  }
  // Dist-live: serve from a cluster striped off the store's current
  // generation. The first worker to pin a new generation restripes while
  // holding cluster_mu_ (an O(graph) rebuild — later generations' queries
  // briefly queue on the mutex, while queries already holding the retired
  // cluster's shared_ptr keep draining untouched). If another worker
  // already striped a generation NEWER than our pin, serve from that: a
  // query must never run on a cluster older than the generation key it
  // caches under.
  PinnedGraph pinned = store_->Pin();
  std::lock_guard<std::mutex> lock(cluster_mu_);
  if (cluster_->generation() < pinned.generation) {
    // Fold the retired cluster's traffic into the retained totals so the
    // per-GP callback counters stay monotone across restripes.
    for (int gp = 0; gp < cluster_->num_gps(); ++gp) {
      const size_t g = static_cast<size_t>(gp);
      dist_retired_requests_[g] += cluster_->fetch_requests(gp);
      dist_retired_records_[g] += cluster_->records_served(gp);
      dist_retired_bytes_[g] += cluster_->bytes_served(gp);
    }
    LOG(INFO) << "restriping generation " << pinned.generation << " across "
              << num_gps_ << " graph processors";
    cluster_ = std::make_shared<const dist::Cluster>(pinned.graph, num_gps_,
                                                     pinned.generation);
  } else if (cluster_->generation() > pinned.generation) {
    pinned = PinnedGraph{cluster_->graph_ptr(), cluster_->generation()};
  }
  *cluster = cluster_;
  return pinned;
}

void QueryService::ObserveGeneration(uint64_t generation) {
  uint64_t seen = last_seen_generation_.load(std::memory_order_relaxed);
  while (seen < generation) {
    if (last_seen_generation_.compare_exchange_weak(
            seen, generation, std::memory_order_relaxed)) {
      // Exactly one worker wins the raise for each swap and pays the
      // cache walk; entries under older generations are unreachable
      // anyway (the generation is part of the key), so this is memory
      // reclamation, not correctness.
      cache_.EvictGenerationsBelow(generation);
      return;
    }
  }
}

void QueryService::Execute(const ServeRequest& request,
                           ServeResponse* response,
                           core::QueryWorkspace* workspace) {
  std::shared_ptr<const dist::Cluster> cluster;
  PinnedGraph pinned = [&] {
    obs::ScopedSpan span(workspace->trace, obs::Phase::kGenerationPin);
    return PinForQuery(&cluster);
  }();
  ObserveGeneration(pinned.generation);
  response->generation = pinned.generation;
  if (!options_.enable_cache) {
    response->status = RunEngine(request.query, request.params, *pinned.graph,
                                 cluster.get(), &response->topk, workspace);
    return;
  }
  CacheKey key = CacheKey::Of(request.query, request.params,
                              pinned.generation);
  // The deep copy into the response happens here, outside the shard lock.
  {
    obs::ScopedSpan span(workspace->trace, obs::Phase::kCacheLookup);
    if (std::shared_ptr<const core::TopKResult> hit = cache_.Lookup(key)) {
      response->topk = *hit;
      response->cache_hit = true;
      return;
    }
  }
  response->status = RunEngine(request.query, request.params, *pinned.graph,
                               cluster.get(), &response->topk, workspace);
  if (response->status.ok()) cache_.Insert(key, response->topk);
}

Status QueryService::RunEngine(const Query& query,
                               const core::TopKParams& params,
                               const Graph& graph,
                               const dist::Cluster* cluster,
                               core::TopKResult* topk,
                               core::QueryWorkspace* workspace) const {
  if (backend_ == Backend::kLocal) {
    // Engine output lands directly in the response's result object; all
    // O(num_nodes) scratch comes from the worker's arena.
    return core::TopKRoundTripRank(graph, query, params, *workspace, topk);
  }
  StatusOr<dist::DistributedTopKResult> result =
      dist::DistributedTopK(*cluster, query, params, workspace);
  if (!result.ok()) return result.status();
  *topk = std::move(result->topk);
  return Status::OK();
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.value();
  stats.rejected = rejected_.value();
  stats.shed_overflow = shed_overflow_.value();
  stats.shed_predicted = shed_predicted_.value();
  stats.completed = completed_.value();
  stats.failed = failed_.value();
  stats.slo_violations = slo_violations_.value();
  stats.eps_widened = eps_widened_.value();
  stats.batches = batches_.value();
  stats.batched_queries = batched_queries_.value();
  for (size_t c = 0; c < kNumCostClasses; ++c) {
    const uint64_t count = class_queue_wait_[c].Count();
    stats.queue_wait[c].count = count;
    stats.queue_wait[c].mean_millis =
        count > 0 ? class_queue_wait_[c].SumMillis() /
                        static_cast<double>(count)
                  : 0.0;
    stats.queue_wait[c].p99_millis = class_queue_wait_[c].P99();
  }
  CacheStats cache_stats = cache_.stats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_insertions = cache_stats.insertions;
  stats.cache_evictions = cache_stats.evictions;
  stats.cache_invalidations = cache_stats.invalidations;
  stats.generation = last_seen_generation_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      stats.elapsed_seconds = frozen_elapsed_seconds_ >= 0.0
                                  ? frozen_elapsed_seconds_
                                  : uptime_.ElapsedSeconds();
    }
  }
  if (stats.elapsed_seconds > 0.0) {
    stats.qps = static_cast<double>(stats.completed) / stats.elapsed_seconds;
  }
  stats.p50_millis = latencies_.P50();
  stats.p95_millis = latencies_.P95();
  stats.p99_millis = latencies_.P99();
  return stats;
}

}  // namespace rtr::serve
