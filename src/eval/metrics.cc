#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace rtr::eval {

double NdcgAtK(const std::vector<NodeId>& ranked,
               const std::vector<NodeId>& ground_truth, size_t k) {
  if (ground_truth.empty()) return 0.0;
  std::unordered_set<NodeId> relevant(ground_truth.begin(),
                                      ground_truth.end());
  double dcg = 0.0;
  size_t limit = std::min(k, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal = std::min(k, relevant.size());
  for (size_t i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<NodeId>& ranked,
                    const std::vector<NodeId>& reference, size_t k) {
  if (reference.empty() || k == 0) return 0.0;
  std::unordered_set<NodeId> expected(reference.begin(), reference.end());
  size_t limit = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (expected.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(std::min(k, expected.size()));
}

double KendallTauAgainstScores(const std::vector<NodeId>& ranked,
                               const std::vector<double>& scores) {
  if (ranked.size() < 2) return 1.0;
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    CHECK_LT(ranked[i], scores.size());
    for (size_t j = i + 1; j < ranked.size(); ++j) {
      double si = scores[ranked[i]];
      double sj = scores[ranked[j]];
      if (si > sj) {
        ++concordant;
      } else if (si < sj) {
        ++discordant;
      }
    }
  }
  double total =
      static_cast<double>(ranked.size()) * (ranked.size() - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / total;
}

}  // namespace rtr::eval
