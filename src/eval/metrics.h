#ifndef RTR_EVAL_METRICS_H_
#define RTR_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace rtr::eval {

// NDCG@K with ungraded (binary) judgments, as in Sect. VI-A: relevance 1 for
// ground-truth nodes, 0 otherwise; DCG discount 1/log2(rank+1) with ranks
// starting at 1. The ideal DCG places all |ground_truth| relevant items
// first. Returns 0 when the ground truth is empty.
double NdcgAtK(const std::vector<NodeId>& ranked,
               const std::vector<NodeId>& ground_truth, size_t k);

// Fraction of `reference` found within the first k entries of `ranked`
// (set-based precision of an approximate top-K against the exact top-K,
// Fig. 11(b)).
double PrecisionAtK(const std::vector<NodeId>& ranked,
                    const std::vector<NodeId>& reference, size_t k);

// Kendall tau-a of the order of `ranked` against the ordering induced by
// `scores` (higher score = earlier): (concordant - discordant) / total
// pairs, ties contributing zero. Returns 1 for lists shorter than 2.
double KendallTauAgainstScores(const std::vector<NodeId>& ranked,
                               const std::vector<double>& scores);

}  // namespace rtr::eval

#endif  // RTR_EVAL_METRICS_H_
