#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "util/logging.h"

namespace rtr::eval {

std::vector<NodeId> FilteredRanking(const Graph& g,
                                    const std::vector<double>& scores,
                                    const Query& query,
                                    NodeTypeId target_type, size_t limit) {
  CHECK_EQ(scores.size(), g.num_nodes());
  std::unordered_set<NodeId> query_set(query.begin(), query.end());
  std::vector<NodeId> ids;
  ids.reserve(scores.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node_type(v) != target_type) continue;
    if (query_set.count(v)) continue;
    ids.push_back(v);
  }
  size_t keep = std::min(limit, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + keep, ids.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double QueryNdcg(const Graph& g, ranking::ProximityMeasure& measure,
                 const datasets::EvalQuery& query, NodeTypeId target_type,
                 size_t k) {
  std::vector<double> scores = measure.Score(query.query_nodes);
  std::vector<NodeId> ranked =
      FilteredRanking(g, scores, query.query_nodes, target_type, k);
  return NdcgAtK(ranked, query.ground_truth, k);
}

std::vector<double> PerQueryNdcg(
    const Graph& g, ranking::ProximityMeasure& measure,
    const std::vector<datasets::EvalQuery>& queries, NodeTypeId target_type,
    size_t k) {
  std::vector<double> values;
  values.reserve(queries.size());
  for (const datasets::EvalQuery& query : queries) {
    values.push_back(QueryNdcg(g, measure, query, target_type, k));
  }
  return values;
}

double MeanNdcg(const Graph& g, ranking::ProximityMeasure& measure,
                const datasets::EvalTaskSet& task, size_t k) {
  std::vector<double> values =
      PerQueryNdcg(g, measure, task.test_queries, task.target_type, k);
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / static_cast<double>(values.size());
}

std::vector<double> DefaultBetaGrid() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

double TuneBeta(const datasets::EvalTaskSet& task,
                const MeasureFactory& make_measure,
                const std::vector<double>& beta_grid) {
  CHECK(!beta_grid.empty());
  if (task.dev_queries.empty()) return 0.5;
  // Instantiate one measure per grid point and iterate queries in the outer
  // loop: measures built on a shared FTScorer then hit its per-query cache
  // across the whole grid.
  std::vector<std::unique_ptr<ranking::ProximityMeasure>> measures;
  measures.reserve(beta_grid.size());
  for (double beta : beta_grid) measures.push_back(make_measure(beta));
  std::vector<double> totals(beta_grid.size(), 0.0);
  for (const datasets::EvalQuery& query : task.dev_queries) {
    for (size_t i = 0; i < measures.size(); ++i) {
      totals[i] +=
          QueryNdcg(task.graph, *measures[i], query, task.target_type, 5);
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < totals.size(); ++i) {
    if (totals[i] > totals[best] + 1e-12) best = i;
  }
  return beta_grid[best];
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), rows_.front().size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) line += "  ";
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < widths.size(); ++c) {
        if (c > 0) rule += "--";
        rule += std::string(widths[c], '-');
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace rtr::eval
