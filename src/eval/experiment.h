#ifndef RTR_EVAL_EXPERIMENT_H_
#define RTR_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "datasets/tasks.h"
#include "eval/metrics.h"
#include "graph/graph.h"
#include "ranking/measure.h"

namespace rtr::eval {

// Produces the filtered ranking of Sect. VI-A for one query: nodes ordered
// by score, keeping only nodes of `target_type` and dropping the query
// nodes themselves. At most `limit` entries are returned.
std::vector<NodeId> FilteredRanking(const Graph& g,
                                    const std::vector<double>& scores,
                                    const Query& query,
                                    NodeTypeId target_type, size_t limit);

// NDCG@k of one measure on one query of a task.
double QueryNdcg(const Graph& g, ranking::ProximityMeasure& measure,
                 const datasets::EvalQuery& query, NodeTypeId target_type,
                 size_t k);

// Per-query NDCG@k of a measure over a query set (the unit for paired
// t-tests).
std::vector<double> PerQueryNdcg(const Graph& g,
                                 ranking::ProximityMeasure& measure,
                                 const std::vector<datasets::EvalQuery>& queries,
                                 NodeTypeId target_type, size_t k);

// Mean NDCG@k over the task's test queries.
double MeanNdcg(const Graph& g, ranking::ProximityMeasure& measure,
                const datasets::EvalTaskSet& task, size_t k);

// Selects the specificity bias on the task's development queries
// (Sect. VI-A2): evaluates `make_measure(beta)` at each grid point by mean
// NDCG@5 on dev queries and returns the argmax (ties to the smaller beta).
// Falls back to 0.5 when the task has no dev queries.
using MeasureFactory =
    std::function<std::unique_ptr<ranking::ProximityMeasure>(double beta)>;

double TuneBeta(const datasets::EvalTaskSet& task,
                const MeasureFactory& make_measure,
                const std::vector<double>& beta_grid);

// Default grid {0, 0.1, ..., 1}.
std::vector<double> DefaultBetaGrid();

// Minimal fixed-width table printer for the bench binaries (mimics the
// layout of the paper's figures).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> cells);
  // Renders with aligned columns to stdout.
  void Print() const;

  static std::string FormatDouble(double value, int precision = 4);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtr::eval

#endif  // RTR_EVAL_EXPERIMENT_H_
