#include "datasets/bibnet.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "graph/builder.h"
#include "util/random.h"

namespace rtr::datasets {
namespace {

// Packs a directed node pair into a hashable key.
uint64_t ArcKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

}  // namespace

StatusOr<BibNet> BibNet::Generate(const BibNetConfig& config) {
  if (config.num_areas <= 0 || config.topics_per_area <= 0 ||
      config.num_authors <= 0 || config.num_papers <= 0) {
    return Status::InvalidArgument("BibNet sizes must be positive");
  }
  if (config.min_authors_per_paper < 1 ||
      config.max_authors_per_paper < config.min_authors_per_paper) {
    return Status::InvalidArgument("bad authors-per-paper range");
  }
  if (config.min_terms_per_paper < 1 ||
      config.max_terms_per_paper < config.min_terms_per_paper) {
    return Status::InvalidArgument("bad terms-per-paper range");
  }
  if (config.last_year < config.first_year) {
    return Status::InvalidArgument("bad year range");
  }

  BibNet net;
  net.config_ = config;
  Rng rng(config.seed);
  GraphBuilder builder;
  net.paper_type_ = builder.AddNodeType("paper");
  net.author_type_ = builder.AddNodeType("author");
  net.term_type_ = builder.AddNodeType("term");
  net.venue_type_ = builder.AddNodeType("venue");

  const int num_topics = config.num_areas * config.topics_per_area;

  // --- Venues: broad "major" venues per area + one specialized per topic.
  std::vector<std::vector<int>> area_major_venues(config.num_areas);
  std::vector<int> topic_spec_venue(num_topics, -1);
  for (int area = 0; area < config.num_areas; ++area) {
    for (int m = 0; m < config.major_venues_per_area; ++m) {
      Venue venue;
      venue.node = builder.AddNode(net.venue_type_);
      venue.area = area;
      venue.major = true;
      venue.name =
          "MajorVenue-A" + std::to_string(area) + "-" + std::to_string(m);
      area_major_venues[area].push_back(static_cast<int>(net.venues_.size()));
      net.venues_.push_back(std::move(venue));
    }
    for (int t = 0; t < config.topics_per_area; ++t) {
      int topic = area * config.topics_per_area + t;
      Venue venue;
      venue.node = builder.AddNode(net.venue_type_);
      venue.area = area;
      venue.major = false;
      venue.topic = topic;
      venue.name = "SpecVenue-T" + std::to_string(topic);
      topic_spec_venue[topic] = static_cast<int>(net.venues_.size());
      net.venues_.push_back(std::move(venue));
    }
  }

  // --- Authors: each works on 1-3 topics; within a topic, productivity is
  // Zipfian (a few prolific "faculty", many occasional "students").
  std::vector<NodeId> author_nodes(config.num_authors);
  std::vector<std::vector<NodeId>> topic_authors(num_topics);
  for (int a = 0; a < config.num_authors; ++a) {
    author_nodes[a] = builder.AddNode(net.author_type_);
    int num_author_topics = 1 + static_cast<int>(rng.NextUint64(3));  // 1..3
    std::unordered_set<int> chosen;
    for (int k = 0; k < num_author_topics; ++k) {
      int topic = static_cast<int>(rng.NextUint64(num_topics));
      if (chosen.insert(topic).second) {
        topic_authors[topic].push_back(author_nodes[a]);
      }
    }
  }
  // Guarantee every topic has authors.
  for (int t = 0; t < num_topics; ++t) {
    if (topic_authors[t].empty()) {
      topic_authors[t].push_back(
          author_nodes[rng.NextUint64(config.num_authors)]);
    }
  }
  std::vector<ZipfSampler> topic_author_sampler;
  topic_author_sampler.reserve(num_topics);
  for (int t = 0; t < num_topics; ++t) {
    topic_author_sampler.emplace_back(topic_authors[t].size(), 0.7);
  }

  // --- Terms: shared vocabulary + per-topic vocabularies.
  net.shared_term_nodes_.resize(config.shared_terms);
  for (int i = 0; i < config.shared_terms; ++i) {
    net.shared_term_nodes_[i] = builder.AddNode(net.term_type_);
  }
  net.topic_terms_.assign(num_topics, {});
  for (int t = 0; t < num_topics; ++t) {
    net.topic_terms_[t].resize(config.terms_per_topic);
    for (int i = 0; i < config.terms_per_topic; ++i) {
      net.topic_terms_[t][i] = builder.AddNode(net.term_type_);
    }
  }
  ZipfSampler shared_term_sampler(config.shared_terms,
                                  config.term_zipf_exponent);
  ZipfSampler topic_term_sampler(config.terms_per_topic,
                                 config.term_zipf_exponent);

  // --- Papers, in chronological order so citations point backwards.
  const int num_years = config.last_year - config.first_year + 1;
  std::vector<std::vector<int>> topic_papers(num_topics);
  net.papers_.reserve(config.num_papers);
  const double citation_geo_p = 1.0 / (1.0 + config.mean_citations);
  for (int i = 0; i < config.num_papers; ++i) {
    Paper paper;
    paper.node = builder.AddNode(net.paper_type_);
    paper.year =
        config.first_year + static_cast<int>((static_cast<int64_t>(i) *
                                              num_years) /
                                             config.num_papers);
    paper.topic = static_cast<int>(rng.NextUint64(num_topics));

    // Venue.
    int venue_index;
    if (rng.NextBernoulli(config.major_venue_prob)) {
      int area = paper.topic / config.topics_per_area;
      const auto& majors = area_major_venues[area];
      venue_index = majors[rng.NextUint64(majors.size())];
    } else {
      venue_index = topic_spec_venue[paper.topic];
    }
    paper.venue = net.venues_[venue_index].node;

    // Citations must precede author selection: research-thread continuity
    // draws authors from the cited papers' author lists.
    int num_citations = rng.NextGeometric(citation_geo_p);
    std::unordered_set<NodeId> cited;
    for (int k = 0; k < num_citations; ++k) {
      NodeId target = kInvalidNode;
      if (rng.NextBernoulli(config.same_topic_citation_prob)) {
        const auto& earlier = topic_papers[paper.topic];
        if (!earlier.empty()) {
          target = net.papers_[earlier[rng.NextUint64(earlier.size())]].node;
        }
      } else if (i > 0) {
        target = net.papers_[rng.NextUint64(i)].node;
      }
      if (target != kInvalidNode) cited.insert(target);
    }
    paper.citations.assign(cited.begin(), cited.end());
    std::sort(paper.citations.begin(), paper.citations.end());

    // Pool of continuity candidates: authors of the cited papers. Paper
    // node ids map back to paper indices via the id offset of the first
    // paper node.
    std::vector<NodeId> cited_authors;
    for (NodeId cited_node : paper.citations) {
      const Paper& cited_paper =
          net.papers_[cited_node - net.papers_.front().node];
      cited_authors.insert(cited_authors.end(), cited_paper.authors.begin(),
                           cited_paper.authors.end());
    }

    // Entity pools grow over time: paper i samples from a prefix of each
    // pool (new authors/terms keep entering the field).
    const double growth_fraction =
        config.entity_growth_exponent <= 0.0
            ? 1.0
            : std::pow((i + 1.0) / config.num_papers,
                       config.entity_growth_exponent);
    auto prefix = [growth_fraction](size_t pool_size) {
      size_t avail = static_cast<size_t>(
          std::ceil(growth_fraction * static_cast<double>(pool_size)));
      return std::max<size_t>(std::min<size_t>(pool_size, 5), avail);
    };

    // Authors: continuity draw from cited papers' authors when possible,
    // otherwise Zipf-rank sampled within the topic's active prefix.
    int num_paper_authors = static_cast<int>(rng.NextInt(
        config.min_authors_per_paper, config.max_authors_per_paper));
    std::unordered_set<NodeId> author_set;
    const auto& pool = topic_authors[paper.topic];
    const auto& sampler = topic_author_sampler[paper.topic];
    const size_t author_avail = prefix(pool.size());
    for (int k = 0; k < num_paper_authors * 3 &&
                    static_cast<int>(author_set.size()) < num_paper_authors;
         ++k) {
      if (!cited_authors.empty() &&
          rng.NextBernoulli(config.author_continuity_prob)) {
        author_set.insert(
            cited_authors[rng.NextUint64(cited_authors.size())]);
      } else {
        author_set.insert(pool[sampler.Sample(rng) % author_avail]);
      }
    }
    paper.authors.assign(author_set.begin(), author_set.end());
    std::sort(paper.authors.begin(), paper.authors.end());

    // Terms (mixture of shared and topic vocabulary).
    int num_paper_terms = static_cast<int>(
        rng.NextInt(config.min_terms_per_paper, config.max_terms_per_paper));
    std::unordered_set<NodeId> term_set;
    const size_t shared_avail = prefix(net.shared_term_nodes_.size());
    const size_t topic_avail = prefix(net.topic_terms_[paper.topic].size());
    for (int k = 0; k < num_paper_terms * 3 &&
                    static_cast<int>(term_set.size()) < num_paper_terms;
         ++k) {
      if (rng.NextBernoulli(config.shared_term_prob)) {
        term_set.insert(
            net.shared_term_nodes_[shared_term_sampler.Sample(rng) %
                                   shared_avail]);
      } else {
        term_set.insert(
            net.topic_terms_[paper.topic][topic_term_sampler.Sample(rng) %
                                          topic_avail]);
      }
    }
    paper.terms.assign(term_set.begin(), term_set.end());
    std::sort(paper.terms.begin(), paper.terms.end());

    topic_papers[paper.topic].push_back(i);
    net.papers_.push_back(std::move(paper));
  }

  // --- Materialize edges.
  for (const Paper& paper : net.papers_) {
    builder.AddUndirectedEdge(paper.node, paper.venue,
                              config.paper_venue_weight);
    for (NodeId a : paper.authors) {
      builder.AddUndirectedEdge(paper.node, a, config.paper_author_weight);
    }
    for (NodeId t : paper.terms) {
      builder.AddUndirectedEdge(paper.node, t, config.paper_term_weight);
    }
    for (NodeId cited : paper.citations) {
      builder.AddDirectedEdge(paper.node, cited, config.citation_weight);
    }
  }

  StatusOr<Graph> graph = builder.Build();
  RTR_RETURN_IF_ERROR(graph.status());
  net.graph_ = std::move(graph).value();
  return net;
}

StatusOr<Graph> BibNet::BuildGraphWithoutEdges(
    const std::vector<std::pair<NodeId, NodeId>>& removed) const {
  std::unordered_set<uint64_t> removed_keys;
  removed_keys.reserve(removed.size() * 2);
  for (const auto& [u, v] : removed) {
    removed_keys.insert(ArcKey(u, v));
    removed_keys.insert(ArcKey(v, u));
  }
  GraphBuilder builder;
  for (const std::string& name : graph_.type_names()) {
    builder.AddNodeType(name);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    builder.AddNode(graph_.node_type(v));
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    auto targets = graph_.out_targets(v);
    auto weights = graph_.out_arc_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (removed_keys.count(ArcKey(v, targets[i]))) continue;
      builder.AddDirectedEdge(v, targets[i], weights[i]);
    }
  }
  return builder.Build();
}

StatusOr<EvalTaskSet> BibNet::MakeAuthorTask(int num_test, int num_dev,
                                             uint64_t seed) const {
  if (num_test <= 0 || num_dev < 0) {
    return Status::InvalidArgument("bad query counts");
  }
  const size_t want = static_cast<size_t>(num_test + num_dev);
  if (want > papers_.size()) {
    return Status::InvalidArgument("more queries than papers");
  }
  Rng rng(seed);
  std::vector<size_t> order = rng.SampleWithoutReplacement(papers_.size(),
                                                           papers_.size());
  EvalTaskSet task;
  task.name = "Task 1 (Author)";
  task.target_type = author_type_;
  std::vector<std::pair<NodeId, NodeId>> removed;
  for (size_t idx : order) {
    if (task.test_queries.size() + task.dev_queries.size() >= want) break;
    const Paper& paper = papers_[idx];
    if (paper.authors.empty()) continue;
    EvalQuery q;
    q.query_nodes = {paper.node};
    q.ground_truth = paper.authors;
    for (NodeId a : paper.authors) removed.emplace_back(paper.node, a);
    if (task.test_queries.size() < static_cast<size_t>(num_test)) {
      task.test_queries.push_back(std::move(q));
    } else {
      task.dev_queries.push_back(std::move(q));
    }
  }
  if (task.test_queries.size() + task.dev_queries.size() < want) {
    return Status::FailedPrecondition("not enough eligible papers");
  }
  StatusOr<Graph> graph = BuildGraphWithoutEdges(removed);
  RTR_RETURN_IF_ERROR(graph.status());
  task.graph = std::move(graph).value();
  return task;
}

StatusOr<EvalTaskSet> BibNet::MakeVenueTask(int num_test, int num_dev,
                                            uint64_t seed) const {
  if (num_test <= 0 || num_dev < 0) {
    return Status::InvalidArgument("bad query counts");
  }
  const size_t want = static_cast<size_t>(num_test + num_dev);
  if (want > papers_.size()) {
    return Status::InvalidArgument("more queries than papers");
  }
  Rng rng(seed);
  std::vector<size_t> order = rng.SampleWithoutReplacement(papers_.size(),
                                                           papers_.size());
  EvalTaskSet task;
  task.name = "Task 2 (Venue)";
  task.target_type = venue_type_;
  std::vector<std::pair<NodeId, NodeId>> removed;
  for (size_t idx : order) {
    if (task.test_queries.size() + task.dev_queries.size() >= want) break;
    const Paper& paper = papers_[idx];
    EvalQuery q;
    q.query_nodes = {paper.node};
    q.ground_truth = {paper.venue};
    removed.emplace_back(paper.node, paper.venue);
    if (task.test_queries.size() < static_cast<size_t>(num_test)) {
      task.test_queries.push_back(std::move(q));
    } else {
      task.dev_queries.push_back(std::move(q));
    }
  }
  StatusOr<Graph> graph = BuildGraphWithoutEdges(removed);
  RTR_RETURN_IF_ERROR(graph.status());
  task.graph = std::move(graph).value();
  return task;
}

std::vector<NodeId> BibNet::TopicQueryTerms(int topic, int num_terms) const {
  CHECK_GE(topic, 0);
  CHECK_LT(static_cast<size_t>(topic), topic_terms_.size());
  CHECK_GT(num_terms, 0);
  const auto& vocabulary = topic_terms_[topic];
  std::vector<NodeId> query;
  for (int i = 0; i < num_terms && i < static_cast<int>(vocabulary.size());
       ++i) {
    query.push_back(vocabulary[i]);  // rank 0 is the most-used term
  }
  return query;
}

StatusOr<Subgraph> BibNet::Snapshot(int year) const {
  std::vector<bool> include(graph_.num_nodes(), false);
  for (const Paper& paper : papers_) {
    if (paper.year > year) continue;
    include[paper.node] = true;
    include[paper.venue] = true;
    for (NodeId a : paper.authors) include[a] = true;
    for (NodeId t : paper.terms) include[t] = true;
    for (NodeId c : paper.citations) include[c] = true;
  }
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (include[v]) nodes.push_back(v);
  }
  return InducedSubgraph(graph_, nodes);
}

}  // namespace rtr::datasets
