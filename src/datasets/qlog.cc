#include "datasets/qlog.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "graph/builder.h"
#include "util/random.h"

namespace rtr::datasets {
namespace {

uint64_t ArcKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

// A query log grows mainly by *new concepts arriving*: once a concept is
// being searched, its click neighborhood fills in within days. Each concept
// gets an arrival day; its clicks land shortly after (geometric tail). The
// cumulative snapshots of Fig. 12 therefore grow by adding new, complete
// neighborhoods rather than by densifying old ones — the regime in which
// the paper's active set stays nearly constant while the graph grows.
int SampleClickDay(Rng& rng, int arrival_day, int num_days) {
  int day = arrival_day + rng.NextGeometric(0.25);
  return std::min(day, num_days);
}

}  // namespace

StatusOr<QLog> QLog::Generate(const QLogConfig& config) {
  if (config.num_concepts <= 0 || config.num_portal_urls < 0 ||
      config.num_days <= 0) {
    return Status::InvalidArgument("QLog sizes must be positive");
  }
  if (config.max_phrases_per_concept < 1 || config.max_urls_per_concept < 1) {
    return Status::InvalidArgument("bad per-concept caps");
  }

  QLog log;
  log.config_ = config;
  Rng rng(config.seed);
  GraphBuilder builder;
  log.phrase_type_ = builder.AddNodeType("phrase");
  log.url_type_ = builder.AddNodeType("url");

  // Portal URLs first.
  log.portal_urls_.resize(config.num_portal_urls);
  for (int i = 0; i < config.num_portal_urls; ++i) {
    log.portal_urls_[i] = builder.AddNode(log.url_type_);
  }

  const int num_topics =
      (config.num_concepts + config.concepts_per_topic - 1) /
      std::max(config.concepts_per_topic, 1);
  log.topic_urls_.resize(num_topics);
  for (int t = 0; t < num_topics; ++t) {
    for (int u = 0; u < config.urls_per_topic; ++u) {
      log.topic_urls_[t].push_back(builder.AddNode(log.url_type_));
    }
  }

  // Arrival day of each concept, uniform over the observation window.
  std::vector<int> concept_arrival(config.num_concepts);
  for (int c = 0; c < config.num_concepts; ++c) {
    concept_arrival[c] = 1 + static_cast<int>(rng.NextUint64(config.num_days));
  }

  log.concepts_.reserve(config.num_concepts);
  for (int c = 0; c < config.num_concepts; ++c) {
    const int topic = c / std::max(config.concepts_per_topic, 1);
    Concept cls;
    int num_phrases = std::min(1 + rng.NextGeometric(config.phrase_geo_p),
                               config.max_phrases_per_concept);
    int num_urls = std::min(1 + rng.NextGeometric(config.url_geo_p),
                            config.max_urls_per_concept);
    for (int p = 0; p < num_phrases; ++p) {
      cls.phrases.push_back(builder.AddNode(log.phrase_type_));
    }
    for (int u = 0; u < num_urls; ++u) {
      cls.urls.push_back(builder.AddNode(log.url_type_));
    }

    for (int p = 0; p < num_phrases; ++p) {
      // Canonical phrases are searched more often than late variants.
      double phrase_freq = 1.0 / (1.0 + p);
      for (int u = 0; u < num_urls; ++u) {
        bool clicked = (u == 0) || rng.NextBernoulli(config.click_prob);
        if (!clicked) continue;
        double url_pop = 1.0 / (1.0 + u);
        double mean = config.mean_clicks * phrase_freq * url_pop;
        double weight =
            1.0 + rng.NextGeometric(1.0 / (1.0 + mean));
        Click click;
        click.phrase = cls.phrases[p];
        click.url = cls.urls[u];
        click.weight = weight;
        click.day = SampleClickDay(rng, concept_arrival[c], config.num_days);
        log.clicks_.push_back(click);
      }
      // Clicks on the topic's shared URLs (distractor structure: phrases of
      // *related* concepts share these, phrases of the *same* concept share
      // both these and the concept URLs).
      if (!log.topic_urls_[topic].empty() &&
          rng.NextBernoulli(config.topic_click_prob)) {
        NodeId shared = log.topic_urls_[topic][rng.NextUint64(
            log.topic_urls_[topic].size())];
        Click click;
        click.phrase = cls.phrases[p];
        click.url = shared;
        click.weight =
            1.0 + rng.NextGeometric(1.0 / (1.0 + config.topic_mean_clicks));
        click.day = SampleClickDay(rng, concept_arrival[c], config.num_days);
        log.clicks_.push_back(click);
      }
      // Occasional clicks on generic portals.
      if (config.num_portal_urls > 0 &&
          rng.NextBernoulli(config.portal_click_prob)) {
        int num_portals = 1 + static_cast<int>(rng.NextUint64(2));
        std::unordered_set<NodeId> used;
        for (int k = 0; k < num_portals; ++k) {
          NodeId portal =
              log.portal_urls_[rng.NextUint64(config.num_portal_urls)];
          if (!used.insert(portal).second) continue;
          Click click;
          click.phrase = cls.phrases[p];
          click.url = portal;
          click.weight =
              1.0 + rng.NextGeometric(1.0 / (1.0 + config.portal_mean_clicks));
          click.day = SampleClickDay(rng, concept_arrival[c], config.num_days);
          log.clicks_.push_back(click);
        }
      }
    }
    log.concepts_.push_back(std::move(cls));
  }

  // Second pass: cross-concept clicks onto sibling concepts' top URLs
  // (possible only now that every concept of each topic exists).
  for (int c = 0; c < config.num_concepts; ++c) {
    const int topic = c / std::max(config.concepts_per_topic, 1);
    const int topic_first = topic * config.concepts_per_topic;
    const int topic_last =
        std::min(topic_first + config.concepts_per_topic, config.num_concepts);
    if (topic_last - topic_first < 2) continue;
    for (NodeId phrase : log.concepts_[c].phrases) {
      if (!rng.NextBernoulli(config.cross_click_prob)) continue;
      int sibling = c;
      while (sibling == c) {
        sibling = topic_first + static_cast<int>(rng.NextUint64(
                                    topic_last - topic_first));
      }
      Click click;
      click.phrase = phrase;
      click.url = log.concepts_[sibling].urls[0];
      click.weight =
          1.0 + rng.NextGeometric(1.0 / (1.0 + config.cross_mean_clicks));
      click.day = SampleClickDay(
          rng, std::max(concept_arrival[c], concept_arrival[sibling]),
          config.num_days);
      log.clicks_.push_back(click);
    }
  }

  // Materialize undirected click edges.
  for (const Click& click : log.clicks_) {
    builder.AddUndirectedEdge(click.phrase, click.url, click.weight);
  }
  StatusOr<Graph> graph = builder.Build();
  RTR_RETURN_IF_ERROR(graph.status());
  log.graph_ = std::move(graph).value();

  // Provenance indices.
  log.phrase_concept_.assign(log.graph_.num_nodes(), -1);
  for (size_t c = 0; c < log.concepts_.size(); ++c) {
    for (NodeId phrase : log.concepts_[c].phrases) {
      log.phrase_concept_[phrase] = static_cast<int>(c);
    }
  }
  log.phrase_concept_urls_.assign(log.graph_.num_nodes(), {});
  // Only concept-private URLs qualify as Task 3 ground truth; portals and
  // topic-shared URLs are excluded (they are tailored to no concept).
  std::unordered_set<NodeId> generic_urls(log.portal_urls_.begin(),
                                          log.portal_urls_.end());
  for (const auto& urls : log.topic_urls_) {
    generic_urls.insert(urls.begin(), urls.end());
  }
  log.phrase_concept_url_weights_.assign(log.graph_.num_nodes(), {});
  for (const Click& click : log.clicks_) {
    if (generic_urls.count(click.url)) continue;
    log.phrase_concept_urls_[click.phrase].push_back(click.url);
    log.phrase_concept_url_weights_[click.phrase].push_back(click.weight);
  }
  return log;
}

int QLog::ConceptOfPhrase(NodeId phrase) const {
  CHECK_LT(phrase, phrase_concept_.size());
  return phrase_concept_[phrase];
}

StatusOr<Graph> QLog::BuildGraphWithoutEdges(
    const std::vector<std::pair<NodeId, NodeId>>& removed) const {
  std::unordered_set<uint64_t> removed_keys;
  removed_keys.reserve(removed.size() * 2);
  for (const auto& [u, v] : removed) {
    removed_keys.insert(ArcKey(u, v));
    removed_keys.insert(ArcKey(v, u));
  }
  GraphBuilder builder;
  for (const std::string& name : graph_.type_names()) {
    builder.AddNodeType(name);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    builder.AddNode(graph_.node_type(v));
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    auto targets = graph_.out_targets(v);
    auto weights = graph_.out_arc_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (removed_keys.count(ArcKey(v, targets[i]))) continue;
      builder.AddDirectedEdge(v, targets[i], weights[i]);
    }
  }
  return builder.Build();
}

StatusOr<EvalTaskSet> QLog::MakeRelevantUrlTask(int num_test, int num_dev,
                                                uint64_t seed) const {
  if (num_test <= 0 || num_dev < 0) {
    return Status::InvalidArgument("bad query counts");
  }
  Rng rng(seed);
  // Eligible phrases clicked at least two distinct concept URLs, so removing
  // the ground-truth edge leaves the phrase attached to its concept.
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    std::unordered_set<NodeId> distinct(phrase_concept_urls_[v].begin(),
                                        phrase_concept_urls_[v].end());
    if (distinct.size() >= 2) eligible.push_back(v);
  }
  // Global URL popularity (total click weight) drives the ground-truth
  // draw: users predominantly click well-known sites.
  std::vector<double> url_popularity(graph_.num_nodes(), 0.0);
  for (const Click& click : clicks_) url_popularity[click.url] += click.weight;
  const size_t want = static_cast<size_t>(num_test + num_dev);
  if (eligible.size() < want) {
    return Status::FailedPrecondition("not enough eligible phrases");
  }
  rng.Shuffle(eligible);

  EvalTaskSet task;
  task.name = "Task 3 (Relevant URL)";
  task.target_type = url_type_;
  std::vector<std::pair<NodeId, NodeId>> removed;
  for (size_t i = 0; i < want; ++i) {
    NodeId phrase = eligible[i];
    const auto& urls = phrase_concept_urls_[phrase];
    std::vector<double> weights(urls.size());
    for (size_t u = 0; u < urls.size(); ++u) {
      weights[u] = url_popularity[urls[u]];
    }
    NodeId target = urls[rng.NextWeighted(weights)];
    EvalQuery q;
    q.query_nodes = {phrase};
    q.ground_truth = {target};
    removed.emplace_back(phrase, target);
    if (task.test_queries.size() < static_cast<size_t>(num_test)) {
      task.test_queries.push_back(std::move(q));
    } else {
      task.dev_queries.push_back(std::move(q));
    }
  }
  StatusOr<Graph> graph = BuildGraphWithoutEdges(removed);
  RTR_RETURN_IF_ERROR(graph.status());
  task.graph = std::move(graph).value();
  return task;
}

StatusOr<EvalTaskSet> QLog::MakeEquivalentPhraseTask(int num_test,
                                                     int num_dev,
                                                     uint64_t seed) const {
  if (num_test <= 0 || num_dev < 0) {
    return Status::InvalidArgument("bad query counts");
  }
  Rng rng(seed);
  std::vector<NodeId> eligible;
  for (const Concept& cls : concepts_) {
    if (cls.phrases.size() < 2) continue;
    for (NodeId phrase : cls.phrases) eligible.push_back(phrase);
  }
  const size_t want = static_cast<size_t>(num_test + num_dev);
  if (eligible.size() < want) {
    return Status::FailedPrecondition("not enough equivalence classes");
  }
  rng.Shuffle(eligible);

  EvalTaskSet task;
  task.name = "Task 4 (Equivalent search)";
  task.target_type = phrase_type_;
  task.graph = graph_;  // no direct edges exist between equivalent phrases
  for (size_t i = 0; i < want; ++i) {
    NodeId phrase = eligible[i];
    const Concept& cls = concepts_[phrase_concept_[phrase]];
    EvalQuery q;
    q.query_nodes = {phrase};
    for (NodeId other : cls.phrases) {
      if (other != phrase) q.ground_truth.push_back(other);
    }
    if (task.test_queries.size() < static_cast<size_t>(num_test)) {
      task.test_queries.push_back(std::move(q));
    } else {
      task.dev_queries.push_back(std::move(q));
    }
  }
  return task;
}

StatusOr<Subgraph> QLog::Snapshot(int day) const {
  // Nodes incident to a click observed by `day`.
  std::vector<bool> include(graph_.num_nodes(), false);
  for (const Click& click : clicks_) {
    if (click.day > day) continue;
    include[click.phrase] = true;
    include[click.url] = true;
  }
  Subgraph sub;
  sub.from_parent.assign(graph_.num_nodes(), kInvalidNode);
  GraphBuilder builder;
  for (const std::string& name : graph_.type_names()) {
    builder.AddNodeType(name);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!include[v]) continue;
    sub.from_parent[v] = builder.AddNode(graph_.node_type(v));
    sub.to_parent.push_back(v);
  }
  for (const Click& click : clicks_) {
    if (click.day > day) continue;
    builder.AddUndirectedEdge(sub.from_parent[click.phrase],
                              sub.from_parent[click.url], click.weight);
  }
  StatusOr<Graph> graph = builder.Build();
  RTR_RETURN_IF_ERROR(graph.status());
  sub.graph = std::move(graph).value();
  return sub;
}

}  // namespace rtr::datasets
