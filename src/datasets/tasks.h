#ifndef RTR_DATASETS_TASKS_H_
#define RTR_DATASETS_TASKS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::datasets {

// One evaluation query: the query node(s), the reserved ground-truth nodes to
// re-discover, restricted to results of `target_type` (Sect. VI-A: "we filter
// out the query node itself and nodes not of the target type").
struct EvalQuery {
  Query query_nodes;
  std::vector<NodeId> ground_truth;
};

// A ranking task in the paper's benchmark methodology (Sect. VI-A): ground
// truth nodes are known by construction, and *all direct edges between each
// query and its ground-truth nodes are removed* from the evaluation graph.
//
// The removal is applied jointly for all sampled queries so that every
// proximity measure — including those needing whole-graph precomputation —
// can be evaluated on one shared graph. With a few hundred queries on a
// 10^4..10^5-node graph the perturbation from joint removal is negligible,
// and all measures see the identical graph, keeping comparisons fair.
struct EvalTaskSet {
  std::string name;           // e.g., "Task 1 (Author)"
  Graph graph;                // evaluation graph, ground-truth edges removed
  NodeTypeId target_type = kUntypedNode;
  std::vector<EvalQuery> test_queries;
  std::vector<EvalQuery> dev_queries;  // for tuning the specificity bias
};

}  // namespace rtr::datasets

#endif  // RTR_DATASETS_TASKS_H_
