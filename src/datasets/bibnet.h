#ifndef RTR_DATASETS_BIBNET_H_
#define RTR_DATASETS_BIBNET_H_

#include <string>
#include <vector>

#include "datasets/tasks.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr::datasets {

// Configuration of the synthetic bibliographic network (the paper's BibNet:
// papers, authors, terms, venues from DBLP+Citeseer). Defaults approximate
// the paper's effectiveness subgraph: ~17k nodes, ~350k arcs, 28 venues in
// four areas. See DESIGN.md §1 for the substitution rationale.
struct BibNetConfig {
  uint64_t seed = 20130408;  // ICDE'13 started April 8, 2013

  // Areas (DB/DM/IR/AI in the paper) and research topics per area.
  int num_areas = 4;
  int topics_per_area = 8;

  // Venues: per area, `major_venues_per_area` broad venues accepting papers
  // from every topic of the area (the VLDB/ICDE archetype: important, not
  // specific), plus one specialized venue per topic (the "Spatio-Temporal
  // Databases" archetype: specific, not important).
  int major_venues_per_area = 3;

  // Probability that a paper is published in a major venue of its area
  // rather than its topic's specialized venue. Majors must dominate in
  // volume (even per topic) for the importance/specificity contrast of
  // Figs. 1/6/7 to appear: a major venue's per-topic paper count exceeds
  // the specialized venue's, while the specialized venue stays pure.
  double major_venue_prob = 0.8;

  int num_authors = 3000;
  int num_papers = 12000;

  // Authors per paper, uniform in [min, max].
  int min_authors_per_paper = 1;
  int max_authors_per_paper = 4;

  // Terms: per-topic vocabulary plus a shared general vocabulary (e.g.,
  // "data", "system") drawn by every paper. Term usage is Zipfian.
  int terms_per_topic = 40;
  int shared_terms = 300;
  int min_terms_per_paper = 5;
  int max_terms_per_paper = 12;
  double term_zipf_exponent = 1.05;
  // Fraction of a paper's terms drawn from the shared vocabulary.
  double shared_term_prob = 0.35;

  // Citations: directed paper->paper arcs to earlier papers, mostly within
  // the same topic.
  double mean_citations = 5.0;
  double same_topic_citation_prob = 0.8;

  // Probability that an author slot is filled from the authors of the
  // paper's cited papers (research-thread continuity: people cite their own
  // and their collaborators' earlier work). This is the structural signal
  // that makes Task 1 (author re-discovery) solvable once the direct
  // paper-author edges are removed.
  double author_continuity_prob = 0.6;

  // Publication years, for the cumulative snapshots of Fig. 12 (the paper
  // snapshots BibNet every four years, 1994-2010).
  int first_year = 1994;
  int last_year = 2010;

  // New authors and terms keep appearing over time (as in real DBLP): the
  // i-th paper samples authors/terms from pool prefixes of relative size
  // ((i+1)/num_papers)^entity_growth_exponent. Sublinear pool growth keeps
  // hub degrees growing slowly — the densification property behind the
  // paper's Fig. 13 claim that the active set grows much slower than the
  // graph. Set to 0 to disable (all entities available from the start).
  double entity_growth_exponent = 0.75;

  // Edge weights by type, following the convention of Sarkar et al. [14]
  // that high-fanout term links are down-weighted.
  double paper_term_weight = 0.1;
  double paper_author_weight = 1.0;
  double paper_venue_weight = 1.0;
  double citation_weight = 1.0;
};

// A generated bibliographic network with full provenance: the graph plus the
// metadata needed to derive ground-truth tasks and snapshots.
class BibNet {
 public:
  struct Paper {
    NodeId node = kInvalidNode;
    int year = 0;
    int topic = 0;  // global topic index in [0, num_areas*topics_per_area)
    NodeId venue = kInvalidNode;
    std::vector<NodeId> authors;
    std::vector<NodeId> terms;      // distinct term nodes of this paper
    std::vector<NodeId> citations;  // earlier papers cited
  };

  struct Venue {
    NodeId node = kInvalidNode;
    int area = 0;
    bool major = false;
    int topic = -1;  // specialized venues only; -1 for major venues
    std::string name;
  };

  // Generates a network from `config` (deterministic in config.seed).
  static StatusOr<BibNet> Generate(const BibNetConfig& config);

  const BibNetConfig& config() const { return config_; }
  const Graph& graph() const { return graph_; }

  NodeTypeId paper_type() const { return paper_type_; }
  NodeTypeId author_type() const { return author_type_; }
  NodeTypeId term_type() const { return term_type_; }
  NodeTypeId venue_type() const { return venue_type_; }

  const std::vector<Paper>& papers() const { return papers_; }
  const std::vector<Venue>& venues() const { return venues_; }
  // Term nodes of a topic's private vocabulary, by global topic index.
  const std::vector<std::vector<NodeId>>& topic_terms() const {
    return topic_terms_;
  }
  const std::vector<NodeId>& shared_term_nodes() const {
    return shared_term_nodes_;
  }

  // Task 1 (Author): given a paper, find its authors.
  StatusOr<EvalTaskSet> MakeAuthorTask(int num_test, int num_dev,
                                       uint64_t seed) const;
  // Task 2 (Venue): given a paper, find its venue.
  StatusOr<EvalTaskSet> MakeVenueTask(int num_test, int num_dev,
                                      uint64_t seed) const;

  // Venue-search query of the Fig. 6/7 flavor: the terms of a topic as a
  // multi-node query. Returns `num_terms` high-usage term nodes of the topic.
  std::vector<NodeId> TopicQueryTerms(int topic, int num_terms) const;

  // Cumulative snapshot: the subgraph induced by papers with year <= `year`
  // and every author/term/venue/citation endpoint incident to them (Fig. 12).
  StatusOr<Subgraph> Snapshot(int year) const;

 private:
  BibNet() = default;

  // Rebuilds the graph without the paper->ground-truth arcs in `removed`
  // (pairs are matched in both directions).
  StatusOr<Graph> BuildGraphWithoutEdges(
      const std::vector<std::pair<NodeId, NodeId>>& removed) const;

  BibNetConfig config_;
  Graph graph_;
  NodeTypeId paper_type_ = 0, author_type_ = 0, term_type_ = 0,
             venue_type_ = 0;
  std::vector<Paper> papers_;
  std::vector<Venue> venues_;
  std::vector<std::vector<NodeId>> topic_terms_;
  std::vector<NodeId> shared_term_nodes_;
};

}  // namespace rtr::datasets

#endif  // RTR_DATASETS_BIBNET_H_
