#ifndef RTR_DATASETS_QLOG_H_
#define RTR_DATASETS_QLOG_H_

#include <vector>

#include "datasets/tasks.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr::datasets {

// Configuration of the synthetic query log (the paper's QLog: search phrases
// and clicked URLs, undirected click edges weighted by click counts).
// Defaults give ~18k nodes with an average degree close to the sparse real
// log's. See DESIGN.md §1 for the substitution rationale.
struct QLogConfig {
  uint64_t seed = 200605;  // the paper's log covers May 2006

  // Concepts. Each concept owns an equivalence class of search phrases
  // ("google mail" / "gmail") and a set of relevant URLs.
  int num_concepts = 4000;

  // Phrases per concept: 1 + Geometric(phrase_geo_p), capped.
  double phrase_geo_p = 0.55;
  int max_phrases_per_concept = 5;

  // URLs per concept: 1 + Geometric(url_geo_p), capped.
  double url_geo_p = 0.45;
  int max_urls_per_concept = 6;

  // Probability that a phrase clicks each concept URL (the top-popularity
  // URL is always clicked so no phrase is isolated).
  double click_prob = 0.7;

  // Mean click count scale; actual weights are 1 + Geometric with a mean
  // proportional to phrase frequency and URL popularity.
  double mean_clicks = 6.0;

  // Generic high-traffic "portal" URLs clicked across concepts. These are
  // the importance/specificity stress: portals are easy to reach (popular)
  // but tailored to nothing.
  int num_portal_urls = 40;
  double portal_click_prob = 0.2;
  double portal_mean_clicks = 3.0;

  // Concepts are grouped into topics of `concepts_per_topic`; each topic
  // owns `urls_per_topic` shared URLs that its phrases also click with
  // `topic_click_prob`. Related-but-not-equivalent phrases of the same
  // topic are the distractors that make Task 4 non-trivial (without them,
  // equivalence classes would be the only phrases sharing any URL).
  int concepts_per_topic = 8;
  int urls_per_topic = 3;
  double topic_click_prob = 0.55;
  double topic_mean_clicks = 3.0;

  // Probability that a phrase also clicks the *top* URL of a sibling
  // concept in its topic. Popular URLs thereby attract clicks from beyond
  // their own concept — the reason re-discovering a clicked URL (Task 3)
  // rewards importance (paper: "users are often biased to click on
  // important and well-known sites", Fig. 8 Task 3 beta* < 0.5).
  double cross_click_prob = 0.7;
  double cross_mean_clicks = 6.0;

  // Days 1..num_days stamp each click edge, for cumulative snapshots
  // (the paper snapshots QLog about every six days during May 2006).
  int num_days = 30;
};

// A generated query log with provenance for task construction and snapshots.
class QLog {
 public:
  struct Concept {
    std::vector<NodeId> phrases;  // equivalence class; index 0 is canonical
    std::vector<NodeId> urls;     // concept-relevant URLs, by popularity rank
  };

  struct Click {
    NodeId phrase = kInvalidNode;
    NodeId url = kInvalidNode;
    double weight = 0.0;  // click count (edge weight)
    int day = 0;          // first day observed, in [1, num_days]
  };

  static StatusOr<QLog> Generate(const QLogConfig& config);

  const QLogConfig& config() const { return config_; }
  const Graph& graph() const { return graph_; }
  NodeTypeId phrase_type() const { return phrase_type_; }
  NodeTypeId url_type() const { return url_type_; }

  const std::vector<Concept>& concepts() const { return concepts_; }
  const std::vector<Click>& clicks() const { return clicks_; }
  const std::vector<NodeId>& portal_urls() const { return portal_urls_; }
  // Shared URLs of each topic group (distractor structure).
  const std::vector<std::vector<NodeId>>& topic_urls() const {
    return topic_urls_;
  }
  // Concept index of each phrase node (kInvalidConcept for non-phrase ids).
  int ConceptOfPhrase(NodeId phrase) const;

  // Task 3 (Relevant URL): given a phrase, re-discover one randomly chosen
  // clicked concept URL (the click edge is removed).
  StatusOr<EvalTaskSet> MakeRelevantUrlTask(int num_test, int num_dev,
                                            uint64_t seed) const;
  // Task 4 (Equivalent search): given a phrase, find the other phrases of
  // its concept. (No direct phrase-phrase edges exist to remove.)
  StatusOr<EvalTaskSet> MakeEquivalentPhraseTask(int num_test, int num_dev,
                                                 uint64_t seed) const;

  // Cumulative snapshot: the graph formed by clicks with day <= `day`
  // (Fig. 12). Node ids are remapped densely; `to_parent` maps back.
  StatusOr<Subgraph> Snapshot(int day) const;

 private:
  QLog() = default;

  StatusOr<Graph> BuildGraphWithoutEdges(
      const std::vector<std::pair<NodeId, NodeId>>& removed) const;

  QLogConfig config_;
  Graph graph_;
  NodeTypeId phrase_type_ = 0, url_type_ = 0;
  std::vector<Concept> concepts_;
  std::vector<Click> clicks_;
  std::vector<NodeId> portal_urls_;
  std::vector<std::vector<NodeId>> topic_urls_;
  std::vector<int> phrase_concept_;  // indexed by node id; -1 if not a phrase
  // Concept URLs actually clicked by each phrase node (portals and topic
  // URLs excluded), with the corresponding click weights. Task 3 draws its
  // ground truth proportionally to the click weight — users click popular
  // (important) URLs more, which is what makes Task 3 importance-leaning
  // (Fig. 8: beta* < 0.5).
  std::vector<std::vector<NodeId>> phrase_concept_urls_;
  std::vector<std::vector<double>> phrase_concept_url_weights_;
};

}  // namespace rtr::datasets

#endif  // RTR_DATASETS_QLOG_H_
