#ifndef RTR_CORE_TWOSBOUND_H_
#define RTR_CORE_TWOSBOUND_H_

#include <string>
#include <vector>

#include "core/two_stage.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr::core {

// Online top-K schemes evaluated in Fig. 11. k2SBound is the paper's full
// algorithm; the others weaken one or both sides of the two-stage framework
// (see two_stage.h); kNaive is the exact iterative method of Eqs. 5 and 8.
enum class TopKScheme {
  k2SBound,
  kGupta,
  kSarkar,
  kGPlusS,
  kNaive,
};

const char* TopKSchemeName(TopKScheme scheme);

// Parameters of Algorithm 1 (2SBound).
struct TopKParams {
  int k = 10;
  // Approximation slack of the relaxed top-K conditions (Eqs. 13-14).
  double epsilon = 0.01;
  double alpha = 0.25;
  // Expansion granularities (paper: m_f = 100, m_t = 5).
  int m_f = 100;
  int m_t = 5;
  // Safety cap on expansion rounds.
  int max_rounds = 1000000;
  TopKScheme scheme = TopKScheme::k2SBound;
};

// Wire/storage size of one active-set node record (id + 4 bounds) and one
// arc record (endpoint + weight + prob). Shared by the local active-set
// accounting and the distributed replay so their byte counts agree.
inline constexpr size_t kActiveNodeRecordBytes =
    sizeof(NodeId) + 4 * sizeof(double);
inline constexpr size_t kActiveArcRecordBytes =
    sizeof(NodeId) + 2 * sizeof(double);

// One ranked result with its RoundTripRank bounds at termination.
struct TopKEntry {
  NodeId node = kInvalidNode;
  double lower = 0.0;
  double upper = 0.0;
};

struct TopKResult {
  std::vector<TopKEntry> entries;  // ranked by lower bound, best first
  // True when the epsilon-approximate top-K conditions were certified (or
  // both neighborhoods were fully exhausted, making bounds exact).
  bool converged = false;
  int rounds = 0;
  // Active set accounting (Sect. V-B1): nodes in S_f ∪ S_t and their
  // incident arcs, i.e., the minimum working set of the query.
  size_t active_nodes = 0;
  size_t active_arcs = 0;
  size_t active_set_bytes = 0;
  // The active nodes themselves, in id order (consumed by the distributed
  // AP/GP replay, Sect. V-B2).
  std::vector<NodeId> active_node_ids;

  // Resets to the default state, KEEPING vector capacity — the reuse hook
  // of the allocation-free serving path.
  void Clear() {
    entries.clear();
    converged = false;
    rounds = 0;
    active_nodes = 0;
    active_arcs = 0;
    active_set_bytes = 0;
    active_node_ids.clear();
  }
};

// Runs the requested top-K scheme for RoundTripRank r(q, v) ∝ f(q, v)t(q, v).
// kNaive computes exact scores iteratively; all other schemes run
// branch-and-bound neighborhood expansion with the scheme's bound updates.
//
// Thread safety: pure with respect to `g` — every piece of per-query state
// lives in the caller's workspace (or a call-local one), and the Graph is
// only read. Concurrent calls over one shared Graph are safe and return
// results bit-identical to serial execution (audited for
// serve::QueryService; the determinism is also what makes cached results
// transparent). Workspace reuse never changes results: a steady-state query
// on a warm workspace is bit-identical to a fresh-workspace run AND
// performs zero heap allocations (asserted by bench_micro).
//
// The three forms trade convenience for allocation control:
//  * (g, query, params)            — call-local workspace, fresh result.
//  * (g, query, params, ws)        — reused workspace, fresh result.
//  * (g, query, params, ws, out)   — reused workspace AND result buffers;
//                                    the zero-allocation serving hot path.
StatusOr<TopKResult> TopKRoundTripRank(const Graph& g, const Query& query,
                                       const TopKParams& params);
StatusOr<TopKResult> TopKRoundTripRank(const Graph& g, const Query& query,
                                       const TopKParams& params,
                                       QueryWorkspace& ws);
Status TopKRoundTripRank(const Graph& g, const Query& query,
                         const TopKParams& params, QueryWorkspace& ws,
                         TopKResult* result);

// Exact RoundTripRank scores (f * t) by full iterative computation — the
// reference ranking for approximation-quality metrics. The power-iteration
// kernels run on the util::ParallelFor pool.
std::vector<double> ExactRoundTripRankScores(const Graph& g,
                                             const Query& query,
                                             double alpha = 0.25);

}  // namespace rtr::core

#endif  // RTR_CORE_TWOSBOUND_H_
