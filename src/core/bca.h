#ifndef RTR_CORE_BCA_H_
#define RTR_CORE_BCA_H_

#include <memory>
#include <vector>

#include "core/workspace.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::core {

// Bookmark-Coloring Algorithm (Berkhin [19]) state for one query: an
// incremental, residual-based computation of F-Rank/PPR.
//
// Invariant: f(q, v) = rho(v) + sum_u mu(u) * f(u, v), so rho(v) is a lower
// bound of f(q, v) that tightens as residual is pushed (Eq. 20), and the
// remaining residual mass bounds everything unseen (Prop. 4).
//
// Node selection and the max-residual query use the workspace's
// position-tracked 4-ary heaps (core::NodeHeap): every residual update
// re-keys the node in place, so — unlike the former lazy duplicate-push
// priority_queues — the heaps hold at most one entry per node, pops never
// skip stale entries, and no periodic compaction is needed.
//
// All dense per-query state (rho, mu, seen flags, heap storage) lives in a
// QueryWorkspace; construct with an external workspace (already
// BeginQuery'd) for the allocation-free serving path, or without one for
// tests and one-off drivers (the Bca then owns a private workspace).
//
// Multi-node queries place 1/|Q| initial residual on each query node
// (Linearity Theorem).
class Bca {
 public:
  // Owns a private workspace; convenient, but allocates O(num_nodes).
  Bca(const Graph& g, const Query& query, double alpha);
  // Borrows `ws`, on which the caller must have called
  // BeginQuery(g.num_nodes()) and not yet run another Bca. A null `ws`
  // falls back to a private workspace (as the 3-arg form).
  Bca(const Graph& g, const Query& query, double alpha, QueryWorkspace* ws);

  Bca(const Bca&) = delete;
  Bca& operator=(const Bca&) = delete;

  // One BCA processing step on node v: moves alpha * mu(v) into rho(v),
  // spreads (1 - alpha) * mu(v) to out-neighbors, zeroes mu(v). On a
  // dangling node the non-teleporting mass dies (the walk cannot continue),
  // consistent with the iterative model of Eq. 5.
  void Process(NodeId v);

  // Applies Process to up to `m` nodes with the largest positive benefit
  // mu(v) / max(out_degree(v), 1) — the expansion strategy of Sect. V-A
  // (reduce residual fast, prefer cheap nodes). Returns how many nodes were
  // processed (0 when no residual remains).
  int ProcessBest(int m);

  double alpha() const { return alpha_; }
  const std::vector<double>& rho() const { return ws_->rho; }
  const std::vector<double>& mu() const { return ws_->mu; }

  // Total outstanding residual (kept incrementally; asymptotically -> 0).
  double total_residual() const { return total_residual_; }
  // Maximum single-node residual (heap top; exact, O(1)).
  double MaxResidual() const {
    return ws_->residual_heap.empty() ? 0.0
                                      : ws_->residual_heap.top_priority();
  }

  // Nodes with rho > 0 — the f-neighborhood S_f. Stable insertion order.
  const std::vector<NodeId>& seen() const { return ws_->bca_seen; }

  // Unseen upper bound of Prop. 4 (Eq. 19): accounts for residual repeatedly
  // returning to a node, U / (2 - alpha).
  double UnseenUpperBound() const;

  // The weaker first-visit-only bound used by the Gupta baseline scheme
  // [16]: all residual mass could still reach any node once, so
  // f(q, v) <= rho(v) + total_residual.
  double GuptaUnseenUpperBound() const { return total_residual_; }

 private:
  void AddResidual(NodeId v, double amount);
  double Benefit(NodeId v) const;

  const Graph& graph_;
  double alpha_;
  std::unique_ptr<QueryWorkspace> owned_ws_;  // only without an external ws
  QueryWorkspace* ws_;
  double total_residual_ = 0.0;
};

}  // namespace rtr::core

#endif  // RTR_CORE_BCA_H_
