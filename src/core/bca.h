#ifndef RTR_CORE_BCA_H_
#define RTR_CORE_BCA_H_

#include <queue>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::core {

// Bookmark-Coloring Algorithm (Berkhin [19]) state for one query: an
// incremental, residual-based computation of F-Rank/PPR.
//
// Invariant: f(q, v) = rho(v) + sum_u mu(u) * f(u, v), so rho(v) is a lower
// bound of f(q, v) that tightens as residual is pushed (Eq. 20), and the
// remaining residual mass bounds everything unseen (Prop. 4).
//
// Node selection and the max-residual query use lazy max-heaps: every
// residual update pushes a fresh (priority, node) entry; stale entries are
// discarded on pop. Since a node's residual only grows between processings,
// the top valid entry is always present, and total heap work is bounded by
// the number of residual pushes (= arc traversals).
//
// Multi-node queries place 1/|Q| initial residual on each query node
// (Linearity Theorem).
class Bca {
 public:
  Bca(const Graph& g, const Query& query, double alpha);

  Bca(const Bca&) = delete;
  Bca& operator=(const Bca&) = delete;

  // One BCA processing step on node v: moves alpha * mu(v) into rho(v),
  // spreads (1 - alpha) * mu(v) to out-neighbors, zeroes mu(v). On a
  // dangling node the non-teleporting mass dies (the walk cannot continue),
  // consistent with the iterative model of Eq. 5.
  void Process(NodeId v);

  // Applies Process to up to `m` nodes with the largest positive benefit
  // mu(v) / max(out_degree(v), 1) — the expansion strategy of Sect. V-A
  // (reduce residual fast, prefer cheap nodes). Returns how many nodes were
  // processed (0 when no residual remains).
  int ProcessBest(int m);

  double alpha() const { return alpha_; }
  const std::vector<double>& rho() const { return rho_; }
  const std::vector<double>& mu() const { return mu_; }

  // Total outstanding residual (kept incrementally; asymptotically -> 0).
  double total_residual() const { return total_residual_; }
  // Maximum single-node residual (lazy-heap lookup, amortized cheap).
  double MaxResidual();

  // Nodes with rho > 0 — the f-neighborhood S_f. Stable insertion order.
  const std::vector<NodeId>& seen() const { return seen_; }

  // Unseen upper bound of Prop. 4 (Eq. 19): accounts for residual repeatedly
  // returning to a node, U / (2 - alpha).
  double UnseenUpperBound();

  // The weaker first-visit-only bound used by the Gupta baseline scheme
  // [16]: all residual mass could still reach any node once, so
  // f(q, v) <= rho(v) + total_residual.
  double GuptaUnseenUpperBound() const { return total_residual_; }

 private:
  struct HeapEntry {
    double priority;
    NodeId node;
    bool operator<(const HeapEntry& other) const {
      return priority < other.priority;
    }
  };

  void AddResidual(NodeId v, double amount);
  double Benefit(NodeId v) const;

  const Graph& graph_;
  double alpha_;
  std::vector<double> rho_;
  std::vector<double> mu_;
  std::vector<NodeId> seen_;
  std::vector<bool> in_seen_;
  std::priority_queue<HeapEntry> benefit_heap_;
  std::priority_queue<HeapEntry> residual_heap_;
  double total_residual_ = 0.0;
};

}  // namespace rtr::core

#endif  // RTR_CORE_BCA_H_
