#include "core/twosbound.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.h"
#include "ranking/pagerank.h"
#include "util/logging.h"

namespace rtr::core {
namespace {

// Tracing reads the clock only at geometric check boundaries (O(log rounds)
// reads per query), never inside the per-round Expand loop.
inline int64_t TraceNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Builds the scheme-specific bounder options.
FBounderOptions MakeFOptions(const TopKParams& params) {
  FBounderOptions options;
  options.alpha = params.alpha;
  options.pick_per_expansion = params.m_f;
  bool weakened = params.scheme == TopKScheme::kGupta ||
                  params.scheme == TopKScheme::kGPlusS;
  options.paper_unseen_bound = !weakened;
  options.stage2 = !weakened;
  return options;
}

TBounderOptions MakeTOptions(const TopKParams& params) {
  TBounderOptions options;
  options.alpha = params.alpha;
  options.pick_per_expansion = params.m_t;
  bool weakened = params.scheme == TopKScheme::kSarkar ||
                  params.scheme == TopKScheme::kGPlusS;
  options.stage2_fixpoint = !weakened;
  return options;
}

// Exact top-K through the workspace's reusable power-iteration buffers.
void NaiveTopKInto(const Graph& g, const Query& query,
                   const TopKParams& params, QueryWorkspace& ws,
                   TopKResult* result) {
  ranking::WalkParams walk;
  walk.alpha = params.alpha;
  ranking::FRankInto(g, query, walk, &ws.exact_f, &ws.exact_scratch);
  ranking::TRankInto(g, query, walk, &ws.exact_t, &ws.exact_scratch);
  std::vector<double>& scores = ws.exact_scores;
  scores.resize(g.num_nodes());
  for (size_t v = 0; v < scores.size(); ++v) {
    scores[v] = ws.exact_f[v] * ws.exact_t[v];
  }
  std::vector<NodeId>& ids = ws.exact_ids;
  ids.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  size_t keep = std::min<size_t>(params.k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + keep, ids.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  result->converged = true;
  for (size_t i = 0; i < keep; ++i) {
    result->entries.push_back({ids[i], scores[ids[i]], scores[ids[i]]});
  }
  // The naive method's working set is the whole graph.
  result->active_nodes = g.num_nodes();
  result->active_arcs = g.num_arcs();
  result->active_set_bytes = g.MemoryBytes();
}

}  // namespace

const char* TopKSchemeName(TopKScheme scheme) {
  switch (scheme) {
    case TopKScheme::k2SBound:
      return "2SBound";
    case TopKScheme::kGupta:
      return "Gupta";
    case TopKScheme::kSarkar:
      return "Sarkar";
    case TopKScheme::kGPlusS:
      return "G+S";
    case TopKScheme::kNaive:
      return "Naive";
  }
  return "unknown";
}

std::vector<double> ExactRoundTripRankScores(const Graph& g,
                                             const Query& query,
                                             double alpha) {
  ranking::WalkParams params;
  params.alpha = alpha;
  std::vector<double> f = ranking::FRank(g, query, params);
  std::vector<double> t = ranking::TRank(g, query, params);
  std::vector<double> scores(g.num_nodes());
  for (size_t v = 0; v < scores.size(); ++v) scores[v] = f[v] * t[v];
  return scores;
}

StatusOr<TopKResult> TopKRoundTripRank(const Graph& g, const Query& query,
                                       const TopKParams& params) {
  QueryWorkspace ws;
  return TopKRoundTripRank(g, query, params, ws);
}

StatusOr<TopKResult> TopKRoundTripRank(const Graph& g, const Query& query,
                                       const TopKParams& params,
                                       QueryWorkspace& ws) {
  TopKResult result;
  RTR_RETURN_IF_ERROR(TopKRoundTripRank(g, query, params, ws, &result));
  return result;
}

Status TopKRoundTripRank(const Graph& g, const Query& query,
                         const TopKParams& params, QueryWorkspace& ws,
                         TopKResult* result) {
  if (params.k <= 0) return Status::InvalidArgument("k must be positive");
  if (params.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  if (!(params.alpha > 0.0 && params.alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (query.empty()) return Status::InvalidArgument("empty query");
  for (NodeId q : query) {
    if (q >= g.num_nodes()) {
      return Status::InvalidArgument("query node out of range");
    }
  }
  result->Clear();
  // Carry-aware reset: a repeat of the previous (query, alpha) — e.g. a
  // scheduler batch hammering one hot node — keeps the teleport vector
  // warm instead of clearing and rebuilding it. Query range was validated
  // above, as the carry path requires.
  ws.BeginQuery(g.num_nodes(), query, params.alpha);
  if (params.scheme == TopKScheme::kNaive) {
    NaiveTopKInto(g, query, params, ws, result);
    return Status::OK();
  }

  FRankBounder f_bounder(g, query, MakeFOptions(params), &ws);
  TRankBounder t_bounder(g, query, MakeTOptions(params), &ws);
  const size_t k = static_cast<size_t>(params.k);

  // Expansion rounds between check boundaries accrue to the Stage I span;
  // the Refine + bounds-evaluation section at each boundary accrues to the
  // Stage II span. `segment_start` carries the running segment's origin.
  obs::TraceRecorder* const trace = ws.trace;
  int64_t segment_start = trace != nullptr ? TraceNowNanos() : 0;
  auto close_segment = [&](obs::Phase phase) {
    if (trace == nullptr) return;
    const int64_t now = TraceNowNanos();
    trace->AddSpanAt(phase, now, now - segment_start);
    segment_start = now;
  };

  using Candidate = QueryWorkspace::Candidate;
  std::vector<Candidate>& candidates = ws.candidates;
  // Checking the top-K conditions costs O(|S_f| + |S_t|); schemes with weak
  // bounds can need thousands of expansion rounds, so checks back off
  // geometrically instead of running every round.
  int next_check = 1;
  for (int round = 1; round <= params.max_rounds; ++round) {
    result->rounds = round;
    // Stage I on both sides every round (cheap, amortized O(new work)).
    bool f_progress = f_bounder.Expand();
    bool t_progress = t_bounder.Expand();
    bool exhausted = !f_progress && !t_progress;
    if (round < next_check && !exhausted && round < params.max_rounds) {
      continue;
    }
    close_segment(obs::Phase::kStage1Expand);
    next_check = std::max(next_check + 1,
                          static_cast<int>(next_check * 1.25));
    // Bound initialization + Stage II refinement cost O(|neighborhood|), so
    // they run only when the top-K conditions are about to be evaluated.
    f_bounder.Refine();
    t_bounder.Refine();

    // Bounds decomposition (Eq. 15): the r-neighborhood is S_f ∩ S_t.
    candidates.clear();
    const std::vector<NodeId>& f_seen = f_bounder.seen();
    double max_f_only_upper = 0.0;  // max over S_f \ S of f-hat(q, v)
    for (NodeId v : f_seen) {
      if (t_bounder.IsSeen(v)) {
        candidates.push_back({v, f_bounder.Lower(v) * t_bounder.Lower(v),
                              f_bounder.Upper(v) * t_bounder.Upper(v)});
      } else {
        max_f_only_upper = std::max(max_f_only_upper, f_bounder.Upper(v));
      }
    }
    double max_t_only_upper = 0.0;  // max over S_t \ S of t-hat(q, v)
    for (NodeId v : t_bounder.seen()) {
      if (!f_bounder.IsSeen(v)) {
        max_t_only_upper = std::max(max_t_only_upper, t_bounder.Upper(v));
      }
    }
    // Unseen upper bound (Eq. 16).
    double f_unseen = f_bounder.UnseenUpper();
    double t_unseen = t_bounder.UnseenUpper();
    double unseen_upper =
        std::max({f_unseen * t_unseen, max_f_only_upper * t_unseen,
                  f_unseen * max_t_only_upper});

    // Candidate ranking by lower bound.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.lower != b.lower) return a.lower > b.lower;
                return a.node < b.node;
              });

    bool enough = candidates.size() >= k;
    if (enough || exhausted) {
      size_t keep = std::min(k, candidates.size());
      bool ok = true;
      if (keep > 0 && candidates.size() >= keep) {
        // Eq. 13: no other node may beat the K-th by more than epsilon.
        double kth_lower = candidates[keep - 1].lower;
        double best_other = unseen_upper;
        for (size_t i = keep; i < candidates.size(); ++i) {
          best_other = std::max(best_other, candidates[i].upper);
        }
        if (!(kth_lower > best_other - params.epsilon)) ok = false;
        // Eq. 14: adjacent pairs must be ordered within epsilon.
        for (size_t i = 0; ok && i + 1 < keep; ++i) {
          if (!(candidates[i].lower > candidates[i + 1].upper -
                                          params.epsilon)) {
            ok = false;
          }
        }
      }
      if ((ok && enough) || exhausted) {
        result->converged = ok || exhausted;
        size_t out = std::min(k, candidates.size());
        for (size_t i = 0; i < out; ++i) {
          result->entries.push_back(
              {candidates[i].node, candidates[i].lower, candidates[i].upper});
        }
        close_segment(obs::Phase::kStage2Refine);
        break;
      }
    }
    if (round == params.max_rounds) {
      // Out of budget: report the current best effort, unconverged.
      size_t out = std::min(k, candidates.size());
      for (size_t i = 0; i < out; ++i) {
        result->entries.push_back(
            {candidates[i].node, candidates[i].lower, candidates[i].upper});
      }
    }
    close_segment(obs::Phase::kStage2Refine);
  }

  // Active set accounting (Sect. V-B1): nodes of either neighborhood plus
  // their incident arcs. Sorted union of the two seen lists — O(s log s) in
  // the active-set size instead of the former O(num_nodes) scan.
  obs::ScopedSpan finalize_span(trace, obs::Phase::kFinalize);
  std::vector<NodeId>& active = ws.active_scratch;
  active.assign(f_bounder.seen().begin(), f_bounder.seen().end());
  active.insert(active.end(), t_bounder.seen().begin(),
                t_bounder.seen().end());
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  size_t arcs = 0;
  for (NodeId v : active) {
    arcs += g.out_degree(v) + g.in_degree(v);
    result->active_node_ids.push_back(v);
  }
  result->active_nodes = active.size();
  result->active_arcs = arcs;
  result->active_set_bytes = active.size() * kActiveNodeRecordBytes +
                             arcs * kActiveArcRecordBytes;
  return Status::OK();
}

}  // namespace rtr::core
