#ifndef RTR_CORE_ROUND_TRIP_RANK_H_
#define RTR_CORE_ROUND_TRIP_RANK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "ranking/measure.h"
#include "ranking/pagerank.h"

namespace rtr::core {

// RoundTripRank (Definition 2): given that a surfer starting at q completes
// a round trip (L + L' geometric steps returning to q), the probability that
// the trip's target — the node after the first L steps — is v. By
// Proposition 2 this decomposes with rank equivalence into
//
//   r(q, v) ∝ f(q, v) * t(q, v),
//
// the product of reachability from the query (importance) and reachability
// back to the query (specificity). The measure shares the (f, t) power
// iterations of `scorer` with any other measure built on it.
std::unique_ptr<ranking::ProximityMeasure> MakeRoundTripRankMeasure(
    std::shared_ptr<ranking::FTScorer> scorer);

// RoundTripRank+ (Definition 3 / Eq. 12): hybrid random surfers shortcut
// either leg of the round trip; the composition reduces to one parameter,
// the specificity bias beta in [0, 1]:
//
//   r_beta(q, v) = f(q, v)^(1-beta) * t(q, v)^beta.
//
// beta = 0 reduces to F-Rank, beta = 1 to T-Rank, beta = 0.5 to (the ranking
// of) RoundTripRank.
std::unique_ptr<ranking::ProximityMeasure> MakeRoundTripRankPlusMeasure(
    std::shared_ptr<ranking::FTScorer> scorer, double beta,
    std::string name = "RoundTripRank+");

// One vector-matrix step of the walk: next[v] = sum_u dist[u] * M[u][v] —
// the distribution after one more step. `next` is resized to dist.size();
// it must not alias `dist`. Runs on the util::ParallelFor pool with
// thread-count-independent results (tests/util/parallel_for_test.cc).
void StepForwardInto(const Graph& g, const std::vector<double>& dist,
                     std::vector<double>* next);

// Backward step: next[v] = sum_u M[v][u] * prob[u] — probability of
// reaching a fixed destination set in one more step.
void StepBackwardInto(const Graph& g, const std::vector<double>& prob,
                      std::vector<double>* next);

// Exact target distribution of *constant-length* round trips, as in the
// paper's toy example (Fig. 4, L = L' = 2):
//
//   score(v) = p(W_L = v, W_{L+L'} = q | W_0 = q)
//            = (M^L)[q][v] * (M^{L'})[v][q],
//
// proportional to RoundTripRank with constant walk lengths. Computed with
// two vector-matrix power sequences; O((L+L') * E).
std::vector<double> ConstantLengthRoundTripScores(const Graph& g, NodeId q,
                                                  int steps_out,
                                                  int steps_back);

// Monte-Carlo simulation of Definition 2: sample round trips (L, L' ~
// Geo(alpha)) from q, keep those that return to q, and histogram the
// targets. Used to validate the decomposition (Proposition 2) empirically.
struct RoundTripSimParams {
  double alpha = 0.25;
  int num_trips = 200000;
  uint64_t seed = 613;  // first page of the paper
};

// Returns the empirical target distribution (sums to 1 over all nodes,
// conditioned on completing a round trip). All-zero if no trip completed.
std::vector<double> SimulateRoundTripRank(const Graph& g, NodeId q,
                                          const RoundTripSimParams& params);

}  // namespace rtr::core

#endif  // RTR_CORE_ROUND_TRIP_RANK_H_
