#include "core/round_trip_rank.h"

#include <cmath>
#include <utility>

#include "util/dense_kernels.h"
#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace rtr::core {
namespace {

using ranking::FTScorer;
using ranking::FTVectors;
using ranking::ProximityMeasure;

class RoundTripRankMeasure : public ProximityMeasure {
 public:
  RoundTripRankMeasure(std::shared_ptr<FTScorer> scorer, double beta,
                       std::string name)
      : scorer_(std::move(scorer)), beta_(beta), name_(std::move(name)) {
    CHECK(scorer_ != nullptr);
    CHECK_GE(beta_, 0.0);
    CHECK_LE(beta_, 1.0);
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    const FTVectors& ft = scorer_->Compute(query);
    std::vector<double> scores(ft.f.size());
    if (beta_ == 0.5) {
      // Plain RoundTripRank: f*t, rank-equivalent to f^0.5 * t^0.5.
      for (size_t v = 0; v < scores.size(); ++v) {
        scores[v] = ft.f[v] * ft.t[v];
      }
      return scores;
    }
    for (size_t v = 0; v < scores.size(); ++v) {
      double f = ft.f[v], t = ft.t[v];
      if (beta_ == 0.0) {
        scores[v] = f;
      } else if (beta_ == 1.0) {
        scores[v] = t;
      } else if (f <= 0.0 || t <= 0.0) {
        scores[v] = 0.0;
      } else {
        scores[v] = std::pow(f, 1.0 - beta_) * std::pow(t, beta_);
      }
    }
    return scores;
  }

 private:
  std::shared_ptr<FTScorer> scorer_;
  double beta_;
  std::string name_;
};

// Arc mass per chunk of the parallel step kernels (see pagerank.cc).
constexpr size_t kArcGrain = 1 << 14;

}  // namespace

void StepForwardInto(const Graph& g, const std::vector<double>& dist,
                     std::vector<double>* next) {
  CHECK_EQ(dist.size(), g.num_nodes());
  CHECK(&dist != next);
  next->resize(dist.size());
  size_t bounds[util::kMaxChunks + 1];
  const size_t chunks = util::BalancedChunkBounds(
      g.in_offsets().data(), g.num_nodes(), kArcGrain, bounds);
  std::vector<double>& out = *next;
  // Gather-dot kernels over the hoisted (source, prob) columns; the f32
  // column is used when present and opted in (see util/dense_kernels.h).
  const size_t* off = g.in_offsets().data();
  const NodeId* src = g.in_sources().data();
  const double* probs = g.in_probs().data();
  const float* probs32 = util::F32KernelsEnabled() && g.has_f32_probs()
                             ? g.in_probs_f32().data()
                             : nullptr;
  util::ParallelForChunks(
      bounds, chunks, [&](size_t, size_t begin, size_t end) {
        for (size_t v = begin; v < end; ++v) {
          const size_t row = off[v];
          const size_t deg = off[v + 1] - row;
          out[v] = probs32 != nullptr
                       ? util::GatherDotF32(src + row, probs32 + row, deg,
                                            dist.data())
                       : util::GatherDotF64(src + row, probs + row, deg,
                                            dist.data());
        }
      });
}

void StepBackwardInto(const Graph& g, const std::vector<double>& prob,
                      std::vector<double>* next) {
  CHECK_EQ(prob.size(), g.num_nodes());
  CHECK(&prob != next);
  next->resize(prob.size());
  size_t bounds[util::kMaxChunks + 1];
  const size_t chunks = util::BalancedChunkBounds(
      g.out_offsets().data(), g.num_nodes(), kArcGrain, bounds);
  std::vector<double>& out = *next;
  const size_t* off = g.out_offsets().data();
  const NodeId* tgt = g.out_targets().data();
  const double* probs = g.out_probs().data();
  const float* probs32 = util::F32KernelsEnabled() && g.has_f32_probs()
                             ? g.out_probs_f32().data()
                             : nullptr;
  util::ParallelForChunks(
      bounds, chunks, [&](size_t, size_t begin, size_t end) {
        for (size_t v = begin; v < end; ++v) {
          const size_t row = off[v];
          const size_t deg = off[v + 1] - row;
          out[v] = probs32 != nullptr
                       ? util::GatherDotF32(tgt + row, probs32 + row, deg,
                                            prob.data())
                       : util::GatherDotF64(tgt + row, probs + row, deg,
                                            prob.data());
        }
      });
}

std::unique_ptr<ProximityMeasure> MakeRoundTripRankMeasure(
    std::shared_ptr<FTScorer> scorer) {
  return std::make_unique<RoundTripRankMeasure>(std::move(scorer), 0.5,
                                                "RoundTripRank");
}

std::unique_ptr<ProximityMeasure> MakeRoundTripRankPlusMeasure(
    std::shared_ptr<FTScorer> scorer, double beta, std::string name) {
  return std::make_unique<RoundTripRankMeasure>(std::move(scorer), beta,
                                                std::move(name));
}

std::vector<double> ConstantLengthRoundTripScores(const Graph& g, NodeId q,
                                                  int steps_out,
                                                  int steps_back) {
  CHECK_LT(q, g.num_nodes());
  CHECK_GE(steps_out, 0);
  CHECK_GE(steps_back, 0);
  // Forward: distribution of W_L starting from q.
  std::vector<double> forward(g.num_nodes(), 0.0), scratch(g.num_nodes());
  forward[q] = 1.0;
  for (int s = 0; s < steps_out; ++s) {
    StepForwardInto(g, forward, &scratch);
    forward.swap(scratch);
  }
  // Backward: probability of being at q after steps_back more steps.
  std::vector<double> backward(g.num_nodes(), 0.0);
  backward[q] = 1.0;
  for (int s = 0; s < steps_back; ++s) {
    StepBackwardInto(g, backward, &scratch);
    backward.swap(scratch);
  }

  std::vector<double> scores(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    scores[v] = forward[v] * backward[v];
  }
  return scores;
}

std::vector<double> SimulateRoundTripRank(const Graph& g, NodeId q,
                                          const RoundTripSimParams& params) {
  CHECK_LT(q, g.num_nodes());
  CHECK_GT(params.num_trips, 0);
  CHECK_GT(params.alpha, 0.0);
  CHECK_LT(params.alpha, 1.0);
  Rng rng(params.seed);
  std::vector<double> counts(g.num_nodes(), 0.0);
  double completed = 0.0;
  for (int trip = 0; trip < params.num_trips; ++trip) {
    int len_out = rng.NextGeometric(params.alpha);
    int len_back = rng.NextGeometric(params.alpha);
    NodeId current = q;
    NodeId target = kInvalidNode;
    bool dead = false;
    for (int step = 0; step < len_out + len_back; ++step) {
      // Degree check before the draw keeps the RNG stream identical to the
      // pre-SoA walker (dangling nodes never consumed a draw).
      if (g.out_degree(current) == 0) {
        dead = true;
        break;
      }
      current = g.SampleOutNeighbor(current, rng.NextDouble());
      if (step + 1 == len_out) target = current;
    }
    if (dead || current != q) continue;
    if (len_out == 0) target = q;  // zero-length outbound leg targets q
    completed += 1.0;
    counts[target] += 1.0;
  }
  if (completed > 0.0) {
    for (double& c : counts) c /= completed;
  }
  return counts;
}

}  // namespace rtr::core
