#include "core/two_stage.h"

#include <algorithm>
#include <cmath>

#include "util/dense_kernels.h"
#include "util/logging.h"

namespace {

// Prefetch distance for the Stage-II refinement sweeps: the seen-node order
// is query-dependent (BCA discovery order), so the hardware prefetcher
// cannot predict the adjacency rows; software prefetch of the row ~8 nodes
// ahead hides the column-load latency. The offsets array itself is dense
// and hot, so reading offsets[w] up front costs nothing.
constexpr size_t kRefinePrefetchDistance = 8;

}  // namespace

namespace rtr::core {

// ---------------------------------------------------------------------------
// FRankBounder
// ---------------------------------------------------------------------------

FRankBounder::FRankBounder(const Graph& g, const Query& query,
                           const FBounderOptions& options, QueryWorkspace* ws)
    : graph_(g),
      options_(options),
      owned_ws_(ws == nullptr ? std::make_unique<QueryWorkspace>() : nullptr),
      ws_([&]() -> QueryWorkspace* {
        if (owned_ws_ == nullptr) return ws;
        owned_ws_->BeginQuery(g.num_nodes());
        return owned_ws_.get();
      }()),
      bca_(g, query, options.alpha, ws_) {
  CHECK_GT(options.pick_per_expansion, 0);
  // Builds (or reuses, when the TRankBounder of the same query got there
  // first) the shared teleport vector alpha * I(q, v) of Eqs. 17-18.
  ws_->Teleport(query, options.alpha);
}

bool FRankBounder::Expand() {
  if (exhausted()) return false;
  return bca_.ProcessBest(options_.pick_per_expansion) > 0;
}

void FRankBounder::Refine() {
  InitializeBounds();
  if (options_.stage2) RefineStage2();
}

void FRankBounder::InitializeBounds() {
  // Nodes seen for the first time since the last refinement were covered by
  // the previous unseen upper bound; they inherit it so their individual
  // bound never exceeds the bound that already applied to them.
  const std::vector<NodeId>& seen = bca_.seen();
  std::vector<double>& lower = ws_->f_lower;
  std::vector<double>& upper = ws_->f_upper;
  for (size_t i = initialized_count_; i < seen.size(); ++i) {
    upper[seen[i]] = std::min(upper[seen[i]], unseen_upper_);
  }
  initialized_count_ = seen.size();

  double fresh = options_.paper_unseen_bound ? bca_.UnseenUpperBound()
                                             : bca_.GuptaUnseenUpperBound();
  unseen_upper_ = std::min(unseen_upper_, fresh);
  const std::vector<double>& rho = bca_.rho();
  for (NodeId v : seen) {
    lower[v] = std::max(lower[v], rho[v]);
    upper[v] = std::min(upper[v], rho[v] + unseen_upper_);
    // Bounds must stay consistent even under fp noise.
    upper[v] = std::max(upper[v], lower[v]);
  }
}

void FRankBounder::RefineStage2() {
  const double one_minus_alpha = 1.0 - options_.alpha;
  const std::vector<NodeId>& nodes = bca_.seen();
  const std::vector<double>& teleport = ws_->teleport;
  std::vector<double>& lower = ws_->f_lower;
  std::vector<double>& upper = ws_->f_upper;
  const size_t* in_off = graph_.in_offsets().data();
  const NodeId* in_src = graph_.in_sources().data();
  const double* in_probs = graph_.in_probs().data();
  for (int sweep = 0; sweep < options_.max_refine_sweeps; ++sweep) {
    double change = 0.0;
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (j + kRefinePrefetchDistance < nodes.size()) {
        const NodeId w = nodes[j + kRefinePrefetchDistance];
        const size_t row = in_off[w];
        util::PrefetchRead(in_src + row);
        util::PrefetchRead(in_probs + row);
        util::PrefetchRead(&lower[w]);
      }
      const NodeId v = nodes[j];
      double lo_sum = 0.0;
      double up_sum = 0.0;
      auto sources = graph_.in_sources(v);
      auto probs = graph_.in_probs(v);
      for (size_t i = 0; i < sources.size(); ++i) {
        if (IsSeen(sources[i])) {
          lo_sum += probs[i] * lower[sources[i]];
          up_sum += probs[i] * upper[sources[i]];
        } else {
          up_sum += probs[i] * unseen_upper_;
        }
      }
      double lo = teleport[v] + one_minus_alpha * lo_sum;
      double up = teleport[v] + one_minus_alpha * up_sum;
      if (lo > lower[v]) {
        change += lo - lower[v];
        lower[v] = lo;
      }
      if (up < upper[v]) {
        change += upper[v] - up;
        upper[v] = up;
      }
      if (upper[v] < lower[v]) upper[v] = lower[v];  // fp guard
    }
    if (change < options_.refine_tolerance) break;
  }
}

// ---------------------------------------------------------------------------
// TRankBounder
// ---------------------------------------------------------------------------

TRankBounder::TRankBounder(const Graph& g, const Query& query,
                           const TBounderOptions& options, QueryWorkspace* ws)
    : graph_(g),
      options_(options),
      owned_ws_(ws == nullptr ? std::make_unique<QueryWorkspace>() : nullptr),
      ws_([&]() -> QueryWorkspace* {
        if (owned_ws_ == nullptr) return ws;
        owned_ws_->BeginQuery(g.num_nodes());
        return owned_ws_.get();
      }()) {
  CHECK_GT(options.pick_per_expansion, 0);
  CHECK_EQ(ws_->num_nodes(), g.num_nodes());
  const std::vector<double>& teleport = ws_->Teleport(query, options.alpha);
  // Stage I, first expansion (Sect. V-A3): S_t = {q}, lower = alpha * I,
  // upper = 1, unseen upper via Eq. 22.
  for (NodeId q : query) {
    CHECK_LT(q, g.num_nodes());
    if (ws_->t_in_seen[q]) continue;
    ws_->t_in_seen[q] = 1;
    ws_->t_seen.push_back(q);
    ws_->t_lower[q] = teleport[q];
  }
  for (NodeId q : ws_->t_seen) {
    int outside = 0;
    for (NodeId source : graph_.in_sources(q)) {
      if (!ws_->t_in_seen[source]) ++outside;
    }
    ws_->t_unseen_in[q] = outside;
    if (outside > 0) {
      ++border_count_;
      ws_->t_border.push_back(q);
    }
  }
  RecomputeUnseenUpper();
}

void TRankBounder::AddNode(NodeId v, double upper_init) {
  DCHECK(!ws_->t_in_seen[v]);
  ws_->t_in_seen[v] = 1;
  ws_->t_seen.push_back(v);
  ws_->t_lower[v] = ws_->teleport[v] > 0.0 ? ws_->teleport[v] : 0.0;
  ws_->t_upper[v] = upper_init;
}

void TRankBounder::CompactBorderList() {
  // Border membership is monotone: once unseen_in_count hits zero it stays
  // zero, so stale entries can simply be dropped.
  std::vector<NodeId>& border = ws_->t_border;
  size_t keep = 0;
  for (NodeId v : border) {
    if (ws_->t_unseen_in[v] > 0) border[keep++] = v;
  }
  border.resize(keep);
}

bool TRankBounder::Expand() {
  if (border_count_ == 0) return false;
  CompactBorderList();
  std::vector<NodeId>& border = ws_->t_border;
  DCHECK_EQ(border.size(), border_count_);

  // Pick up to m border nodes with the largest upper bounds.
  const std::vector<double>& upper = ws_->t_upper;
  size_t count =
      std::min<size_t>(options_.pick_per_expansion, border.size());
  std::partial_sort(
      border.begin(), border.begin() + count, border.end(),
      [&upper](NodeId a, NodeId b) { return upper[a] > upper[b]; });
  std::vector<NodeId>& picked = ws_->t_picked;
  picked.assign(border.begin(), border.begin() + count);

  // Bring all in-neighbors of the picked border nodes into S_t. The
  // workspace's stamped flags dedup nodes reachable through several picked
  // borders (epoch bump instead of clearing a hash set).
  std::vector<NodeId>& fresh = ws_->t_fresh;
  fresh.clear();
  StampedFlags& pending = ws_->t_pending;
  pending.NewEpoch();
  for (NodeId b : picked) {
    for (NodeId source : graph_.in_sources(b)) {
      if (!ws_->t_in_seen[source] && !pending.Test(source)) {
        pending.Set(source);
        fresh.push_back(source);
      }
    }
  }
  // Decrement the unseen-in counters of previously seen nodes that gain a
  // newly seen in-neighbor.
  for (NodeId u : fresh) {
    for (NodeId target : graph_.out_targets(u)) {
      if (ws_->t_in_seen[target]) {
        if (--ws_->t_unseen_in[target] == 0) --border_count_;
      }
    }
  }
  double upper_init = unseen_upper_;  // valid: these nodes were unseen
  for (NodeId u : fresh) AddNode(u, upper_init);
  for (NodeId u : fresh) {
    int outside = 0;
    for (NodeId source : graph_.in_sources(u)) {
      if (!ws_->t_in_seen[source]) ++outside;
    }
    ws_->t_unseen_in[u] = outside;
    if (outside > 0) {
      ++border_count_;
      border.push_back(u);
    }
  }
  return true;
}

void TRankBounder::Refine() {
  RecomputeUnseenUpper();
  RefineSweeps(options_.stage2_fixpoint ? options_.max_refine_sweeps : 1);
}

void TRankBounder::RefineSweeps(int sweeps) {
  const double one_minus_alpha = 1.0 - options_.alpha;
  const std::vector<NodeId>& nodes = ws_->t_seen;
  const std::vector<double>& teleport = ws_->teleport;
  const std::vector<uint8_t>& in_seen = ws_->t_in_seen;
  std::vector<double>& lower = ws_->t_lower;
  std::vector<double>& upper = ws_->t_upper;
  const size_t* out_off = graph_.out_offsets().data();
  const NodeId* out_tgt = graph_.out_targets().data();
  const double* out_probs = graph_.out_probs().data();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double change = 0.0;
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (j + kRefinePrefetchDistance < nodes.size()) {
        const NodeId w = nodes[j + kRefinePrefetchDistance];
        const size_t row = out_off[w];
        util::PrefetchRead(out_tgt + row);
        util::PrefetchRead(out_probs + row);
        util::PrefetchRead(&lower[w]);
      }
      const NodeId v = nodes[j];
      double lo_sum = 0.0;
      double up_sum = 0.0;
      auto targets = graph_.out_targets(v);
      auto probs = graph_.out_probs(v);
      for (size_t i = 0; i < targets.size(); ++i) {
        if (in_seen[targets[i]]) {
          lo_sum += probs[i] * lower[targets[i]];
          up_sum += probs[i] * upper[targets[i]];
        } else {
          up_sum += probs[i] * unseen_upper_;
        }
      }
      double lo = teleport[v] + one_minus_alpha * lo_sum;
      double up = teleport[v] + one_minus_alpha * up_sum;
      if (lo > lower[v]) {
        change += lo - lower[v];
        lower[v] = lo;
      }
      if (up < upper[v]) {
        change += upper[v] - up;
        upper[v] = up;
      }
      if (upper[v] < lower[v]) upper[v] = lower[v];  // fp guard
    }
    RecomputeUnseenUpper();
    if (change < options_.refine_tolerance) break;
  }
}

void TRankBounder::RecomputeUnseenUpper() {
  // Eq. 22: reaching q from outside must first enter through a border node,
  // costing at least one non-teleporting step.
  if (border_count_ == 0) {
    unseen_upper_ = 0.0;
    return;
  }
  double best = 0.0;
  for (NodeId v : ws_->t_border) {
    if (ws_->t_unseen_in[v] > 0) best = std::max(best, ws_->t_upper[v]);
  }
  double fresh = (1.0 - options_.alpha) * best;
  unseen_upper_ = std::min(unseen_upper_, fresh);
}

}  // namespace rtr::core
