#include "core/two_stage.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace rtr::core {
namespace {

std::vector<double> TeleportVector(const Graph& g, const Query& query,
                                   double alpha) {
  CHECK(!query.empty());
  std::vector<double> teleport(g.num_nodes(), 0.0);
  double mass = alpha / static_cast<double>(query.size());
  for (NodeId q : query) {
    CHECK_LT(q, g.num_nodes());
    teleport[q] += mass;
  }
  return teleport;
}

}  // namespace

// ---------------------------------------------------------------------------
// FRankBounder
// ---------------------------------------------------------------------------

FRankBounder::FRankBounder(const Graph& g, const Query& query,
                           const FBounderOptions& options)
    : graph_(g),
      query_(query),
      options_(options),
      bca_(g, query, options.alpha),
      teleport_(TeleportVector(g, query, options.alpha)),
      lower_(g.num_nodes(), 0.0),
      upper_(g.num_nodes(), 1.0) {
  CHECK_GT(options.pick_per_expansion, 0);
}

bool FRankBounder::Expand() {
  if (exhausted()) return false;
  return bca_.ProcessBest(options_.pick_per_expansion) > 0;
}

void FRankBounder::Refine() {
  InitializeBounds();
  if (options_.stage2) RefineStage2();
}

void FRankBounder::InitializeBounds() {
  // Nodes seen for the first time since the last refinement were covered by
  // the previous unseen upper bound; they inherit it so their individual
  // bound never exceeds the bound that already applied to them.
  const std::vector<NodeId>& seen = bca_.seen();
  for (size_t i = initialized_count_; i < seen.size(); ++i) {
    upper_[seen[i]] = std::min(upper_[seen[i]], unseen_upper_);
  }
  initialized_count_ = seen.size();

  double fresh = options_.paper_unseen_bound ? bca_.UnseenUpperBound()
                                             : bca_.GuptaUnseenUpperBound();
  unseen_upper_ = std::min(unseen_upper_, fresh);
  const std::vector<double>& rho = bca_.rho();
  for (NodeId v : seen) {
    lower_[v] = std::max(lower_[v], rho[v]);
    upper_[v] = std::min(upper_[v], rho[v] + unseen_upper_);
    // Bounds must stay consistent even under fp noise.
    upper_[v] = std::max(upper_[v], lower_[v]);
  }
}

void FRankBounder::RefineStage2() {
  const double one_minus_alpha = 1.0 - options_.alpha;
  const std::vector<NodeId>& nodes = bca_.seen();
  for (int sweep = 0; sweep < options_.max_refine_sweeps; ++sweep) {
    double change = 0.0;
    for (NodeId v : nodes) {
      double lo_sum = 0.0;
      double up_sum = 0.0;
      auto sources = graph_.in_sources(v);
      auto probs = graph_.in_probs(v);
      for (size_t i = 0; i < sources.size(); ++i) {
        if (IsSeen(sources[i])) {
          lo_sum += probs[i] * lower_[sources[i]];
          up_sum += probs[i] * upper_[sources[i]];
        } else {
          up_sum += probs[i] * unseen_upper_;
        }
      }
      double lo = teleport_[v] + one_minus_alpha * lo_sum;
      double up = teleport_[v] + one_minus_alpha * up_sum;
      if (lo > lower_[v]) {
        change += lo - lower_[v];
        lower_[v] = lo;
      }
      if (up < upper_[v]) {
        change += upper_[v] - up;
        upper_[v] = up;
      }
      if (upper_[v] < lower_[v]) upper_[v] = lower_[v];  // fp guard
    }
    if (change < options_.refine_tolerance) break;
  }
}

// ---------------------------------------------------------------------------
// TRankBounder
// ---------------------------------------------------------------------------

TRankBounder::TRankBounder(const Graph& g, const Query& query,
                           const TBounderOptions& options)
    : graph_(g),
      query_(query),
      options_(options),
      in_seen_(g.num_nodes(), false),
      teleport_(TeleportVector(g, query, options.alpha)),
      lower_(g.num_nodes(), 0.0),
      upper_(g.num_nodes(), 1.0),
      unseen_in_count_(g.num_nodes(), 0) {
  CHECK_GT(options.pick_per_expansion, 0);
  // Stage I, first expansion (Sect. V-A3): S_t = {q}, lower = alpha * I,
  // upper = 1, unseen upper via Eq. 22.
  for (NodeId q : query_) {
    if (in_seen_[q]) continue;
    in_seen_[q] = true;
    seen_.push_back(q);
    lower_[q] = teleport_[q];
  }
  for (NodeId q : seen_) {
    int outside = 0;
    for (NodeId source : graph_.in_sources(q)) {
      if (!in_seen_[source]) ++outside;
    }
    unseen_in_count_[q] = outside;
    if (outside > 0) {
      ++border_count_;
      border_list_.push_back(q);
    }
  }
  RecomputeUnseenUpper();
}

void TRankBounder::AddNode(NodeId v, double upper_init) {
  DCHECK(!in_seen_[v]);
  in_seen_[v] = true;
  seen_.push_back(v);
  lower_[v] = teleport_[v] > 0.0 ? teleport_[v] : 0.0;
  upper_[v] = upper_init;
}

void TRankBounder::CompactBorderList() {
  // Border membership is monotone: once unseen_in_count hits zero it stays
  // zero, so stale entries can simply be dropped.
  size_t keep = 0;
  for (NodeId v : border_list_) {
    if (unseen_in_count_[v] > 0) border_list_[keep++] = v;
  }
  border_list_.resize(keep);
}

bool TRankBounder::Expand() {
  if (border_count_ == 0) return false;
  CompactBorderList();
  DCHECK_EQ(border_list_.size(), border_count_);

  // Pick up to m border nodes with the largest upper bounds.
  size_t count =
      std::min<size_t>(options_.pick_per_expansion, border_list_.size());
  std::partial_sort(
      border_list_.begin(), border_list_.begin() + count, border_list_.end(),
      [this](NodeId a, NodeId b) { return upper_[a] > upper_[b]; });
  std::vector<NodeId> picked(border_list_.begin(),
                             border_list_.begin() + count);

  // Bring all in-neighbors of the picked border nodes into S_t.
  std::vector<NodeId> fresh;
  std::unordered_set<NodeId> pending;
  for (NodeId b : picked) {
    for (NodeId source : graph_.in_sources(b)) {
      if (!in_seen_[source] && pending.insert(source).second) {
        fresh.push_back(source);
      }
    }
  }
  // Decrement the unseen-in counters of previously seen nodes that gain a
  // newly seen in-neighbor.
  for (NodeId u : fresh) {
    for (NodeId target : graph_.out_targets(u)) {
      if (in_seen_[target]) {
        if (--unseen_in_count_[target] == 0) --border_count_;
      }
    }
  }
  double upper_init = unseen_upper_;  // valid: these nodes were unseen
  for (NodeId u : fresh) AddNode(u, upper_init);
  for (NodeId u : fresh) {
    int outside = 0;
    for (NodeId source : graph_.in_sources(u)) {
      if (!in_seen_[source]) ++outside;
    }
    unseen_in_count_[u] = outside;
    if (outside > 0) {
      ++border_count_;
      border_list_.push_back(u);
    }
  }
  return true;
}

void TRankBounder::Refine() {
  RecomputeUnseenUpper();
  RefineSweeps(options_.stage2_fixpoint ? options_.max_refine_sweeps : 1);
}

void TRankBounder::RefineSweeps(int sweeps) {
  const double one_minus_alpha = 1.0 - options_.alpha;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double change = 0.0;
    for (NodeId v : seen_) {
      double lo_sum = 0.0;
      double up_sum = 0.0;
      auto targets = graph_.out_targets(v);
      auto probs = graph_.out_probs(v);
      for (size_t i = 0; i < targets.size(); ++i) {
        if (in_seen_[targets[i]]) {
          lo_sum += probs[i] * lower_[targets[i]];
          up_sum += probs[i] * upper_[targets[i]];
        } else {
          up_sum += probs[i] * unseen_upper_;
        }
      }
      double lo = teleport_[v] + one_minus_alpha * lo_sum;
      double up = teleport_[v] + one_minus_alpha * up_sum;
      if (lo > lower_[v]) {
        change += lo - lower_[v];
        lower_[v] = lo;
      }
      if (up < upper_[v]) {
        change += upper_[v] - up;
        upper_[v] = up;
      }
      if (upper_[v] < lower_[v]) upper_[v] = lower_[v];  // fp guard
    }
    RecomputeUnseenUpper();
    if (change < options_.refine_tolerance) break;
  }
}

void TRankBounder::RecomputeUnseenUpper() {
  // Eq. 22: reaching q from outside must first enter through a border node,
  // costing at least one non-teleporting step.
  if (border_count_ == 0) {
    unseen_upper_ = 0.0;
    return;
  }
  double best = 0.0;
  for (NodeId v : border_list_) {
    if (unseen_in_count_[v] > 0) best = std::max(best, upper_[v]);
  }
  double fresh = (1.0 - options_.alpha) * best;
  unseen_upper_ = std::min(unseen_upper_, fresh);
}

}  // namespace rtr::core
