#include "core/workspace.h"

namespace rtr::core {

// ---------------------------------------------------------------------------
// NodeHeap
// ---------------------------------------------------------------------------

void NodeHeap::Reset(size_t n) {
  for (NodeId v : node_) pos_[v] = kNotInHeap;
  node_.clear();
  prio_.clear();
  if (pos_.size() != n) pos_.assign(n, kNotInHeap);
}

void NodeHeap::RemoveSlot(uint32_t slot) {
  DCHECK_LT(slot, node_.size());
  pos_[node_[slot]] = kNotInHeap;
  const uint32_t last = static_cast<uint32_t>(node_.size()) - 1;
  if (slot != last) {
    node_[slot] = node_[last];
    prio_[slot] = prio_[last];
    pos_[node_[slot]] = slot;
    node_.pop_back();
    prio_.pop_back();
    // The replacement came from the bottom: usually it sinks. If SiftDown
    // leaves it in place it may still need to rise (when the removed entry
    // was not an ancestor of the last slot); SiftUp is a no-op otherwise.
    SiftDown(slot);
    SiftUp(slot);
  } else {
    node_.pop_back();
    prio_.pop_back();
  }
}

void NodeHeap::SiftDown(uint32_t slot) {
  const uint32_t count = static_cast<uint32_t>(node_.size());
  for (;;) {
    uint32_t best = slot;
    const uint32_t first_child = slot * 4 + 1;
    const uint32_t last_child = std::min<uint32_t>(first_child + 4, count);
    for (uint32_t c = first_child; c < last_child; ++c) {
      if (prio_[c] > prio_[best]) best = c;
    }
    if (best == slot) return;
    SwapSlots(slot, best);
    slot = best;
  }
}

// ---------------------------------------------------------------------------
// QueryWorkspace
// ---------------------------------------------------------------------------

void QueryWorkspace::BeginQuery(size_t n) {
  // Query unknown: the next carry-aware BeginQuery must not match against
  // a teleport vector this caller may mutate by hand (tests do).
  last_query_.clear();
  Reset(n, /*keep_teleport=*/false);
}

void QueryWorkspace::BeginQuery(size_t n, const Query& query, double alpha) {
  const bool carry = teleport_built_ && n == num_nodes_ &&
                     alpha == teleport_alpha_ && query == last_query_;
  Reset(n, carry);
  // Capacity-reusing copy: allocates only while queries keep growing.
  last_query_ = query;
}

void QueryWorkspace::Reset(size_t n, bool keep_teleport) {
  if (n != num_nodes_) {
    rho.assign(n, 0.0);
    mu.assign(n, 0.0);
    bca_in_seen.assign(n, 0);
    teleport.assign(n, 0.0);
    f_lower.assign(n, 0.0);
    f_upper.assign(n, 1.0);
    t_in_seen.assign(n, 0);
    t_lower.assign(n, 0.0);
    t_upper.assign(n, 1.0);
    t_unseen_in.assign(n, 0);
    num_nodes_ = n;
  } else {
    for (NodeId v : mu_touched) mu[v] = 0.0;
    for (NodeId v : bca_seen) {
      rho[v] = 0.0;
      bca_in_seen[v] = 0;
      f_lower[v] = 0.0;
      f_upper[v] = 1.0;
    }
    if (!keep_teleport) {
      for (NodeId v : teleport_touched) teleport[v] = 0.0;
    }
    for (NodeId v : t_seen) {
      t_in_seen[v] = 0;
      t_lower[v] = 0.0;
      t_upper[v] = 1.0;
      t_unseen_in[v] = 0;
    }
  }
  mu_touched.clear();
  bca_seen.clear();
  if (!keep_teleport) {
    // teleport_touched survives a carry: the next non-carry reset still
    // walks it to clear the kept entries.
    teleport_touched.clear();
    teleport_built_ = false;
  }
  t_seen.clear();
  t_border.clear();
  t_picked.clear();
  t_fresh.clear();
  candidates.clear();
  active_scratch.clear();
  benefit_heap.Reset(n);
  residual_heap.Reset(n);
  t_pending.Reset(n);
}

const std::vector<double>& QueryWorkspace::Teleport(const Query& query,
                                                    double alpha) {
  if (!teleport_built_) {
    const double mass = alpha / static_cast<double>(query.size());
    for (NodeId q : query) {
      CHECK_LT(q, num_nodes_);
      if (teleport[q] == 0.0) teleport_touched.push_back(q);
      teleport[q] += mass;
    }
    teleport_built_ = true;
    teleport_alpha_ = alpha;
  } else {
    // Both bounders of one query must agree on alpha, or the second would
    // silently score with the first's teleport vector. Hard CHECK (not
    // DCHECK): the mismatch is a caller bug that would corrupt rankings,
    // and the test costs one compare per query.
    CHECK_EQ(teleport_alpha_, alpha);
  }
  return teleport;
}

}  // namespace rtr::core
