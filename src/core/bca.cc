#include "core/bca.h"

#include <algorithm>

#include "util/logging.h"

namespace rtr::core {

Bca::Bca(const Graph& g, const Query& query, double alpha)
    : Bca(g, query, alpha, nullptr) {}

Bca::Bca(const Graph& g, const Query& query, double alpha, QueryWorkspace* ws)
    : graph_(g),
      alpha_(alpha),
      owned_ws_(ws == nullptr ? std::make_unique<QueryWorkspace>() : nullptr),
      ws_(ws == nullptr ? owned_ws_.get() : ws) {
  CHECK_GT(alpha, 0.0);
  CHECK_LT(alpha, 1.0);
  CHECK(!query.empty());
  if (owned_ws_ != nullptr) owned_ws_->BeginQuery(g.num_nodes());
  CHECK_EQ(ws_->num_nodes(), g.num_nodes());
  double mass = 1.0 / static_cast<double>(query.size());
  for (NodeId q : query) {
    CHECK_LT(q, g.num_nodes());
    AddResidual(q, mass);
  }
}

double Bca::Benefit(NodeId v) const {
  size_t degree = std::max<size_t>(graph_.out_degree(v), 1);
  return ws_->mu[v] / static_cast<double>(degree);
}

void Bca::AddResidual(NodeId v, double amount) {
  double& residual = ws_->mu[v];
  if (residual == 0.0) ws_->mu_touched.push_back(v);
  residual += amount;
  total_residual_ += amount;
  ws_->benefit_heap.Update(v, Benefit(v));
  ws_->residual_heap.Update(v, residual);
}

void Bca::Process(NodeId v) {
  DCHECK_LT(v, graph_.num_nodes());
  double residual = ws_->mu[v];
  if (residual <= 0.0) return;
  ws_->mu[v] = 0.0;
  ws_->benefit_heap.Remove(v);
  ws_->residual_heap.Remove(v);
  total_residual_ -= residual;

  ws_->rho[v] += alpha_ * residual;
  if (!ws_->bca_in_seen[v]) {
    ws_->bca_in_seen[v] = 1;
    ws_->bca_seen.push_back(v);
  }
  // Hot loop: streams only the (target, prob) columns.
  double spread = (1.0 - alpha_) * residual;
  auto targets = graph_.out_targets(v);
  auto probs = graph_.out_probs(v);
  for (size_t i = 0; i < targets.size(); ++i) {
    AddResidual(targets[i], spread * probs[i]);
  }
}

int Bca::ProcessBest(int m) {
  CHECK_GT(m, 0);
  // The heap is exact (one entry per node, re-keyed in place), so the top
  // is always the true best benefit and every pop is productive.
  int processed = 0;
  while (processed < m && !ws_->benefit_heap.empty()) {
    Process(ws_->benefit_heap.top());
    ++processed;
  }
  return processed;
}

double Bca::UnseenUpperBound() const {
  // Eq. 19: alpha/(2-alpha) * max_u mu(u) + (1-alpha)/(2-alpha) * sum_u mu(u).
  double max_mu = MaxResidual();
  return (alpha_ * max_mu + (1.0 - alpha_) * total_residual_) /
         (2.0 - alpha_);
}

}  // namespace rtr::core
