#include "core/bca.h"

#include <algorithm>

#include "util/logging.h"

namespace rtr::core {

Bca::Bca(const Graph& g, const Query& query, double alpha)
    : graph_(g), alpha_(alpha) {
  CHECK_GT(alpha, 0.0);
  CHECK_LT(alpha, 1.0);
  CHECK(!query.empty());
  rho_.assign(g.num_nodes(), 0.0);
  mu_.assign(g.num_nodes(), 0.0);
  in_seen_.assign(g.num_nodes(), false);
  double mass = 1.0 / static_cast<double>(query.size());
  for (NodeId q : query) {
    CHECK_LT(q, g.num_nodes());
    AddResidual(q, mass);
  }
}

double Bca::Benefit(NodeId v) const {
  size_t degree = std::max<size_t>(graph_.out_degree(v), 1);
  return mu_[v] / static_cast<double>(degree);
}

void Bca::AddResidual(NodeId v, double amount) {
  mu_[v] += amount;
  total_residual_ += amount;
  benefit_heap_.push({Benefit(v), v});
  residual_heap_.push({mu_[v], v});
}

void Bca::Process(NodeId v) {
  DCHECK_LT(v, graph_.num_nodes());
  double residual = mu_[v];
  if (residual <= 0.0) return;
  mu_[v] = 0.0;
  total_residual_ -= residual;

  rho_[v] += alpha_ * residual;
  if (!in_seen_[v]) {
    in_seen_[v] = true;
    seen_.push_back(v);
  }
  // Hot loop: streams only the (target, prob) columns.
  double spread = (1.0 - alpha_) * residual;
  auto targets = graph_.out_targets(v);
  auto probs = graph_.out_probs(v);
  for (size_t i = 0; i < targets.size(); ++i) {
    AddResidual(targets[i], spread * probs[i]);
  }
}

int Bca::ProcessBest(int m) {
  CHECK_GT(m, 0);
  // Compact the lazy heaps when stale entries dominate (bounds memory on
  // long runs): rebuild from the nodes that currently hold residual.
  const size_t cap =
      std::max<size_t>(1 << 20, 8 * graph_.num_nodes());
  if (benefit_heap_.size() > cap || residual_heap_.size() > cap) {
    std::priority_queue<HeapEntry> fresh_benefit, fresh_residual;
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (mu_[v] > 0.0) {
        fresh_benefit.push({Benefit(v), v});
        fresh_residual.push({mu_[v], v});
      }
    }
    benefit_heap_.swap(fresh_benefit);
    residual_heap_.swap(fresh_residual);
  }
  int processed = 0;
  while (processed < m && !benefit_heap_.empty()) {
    HeapEntry entry = benefit_heap_.top();
    benefit_heap_.pop();
    if (mu_[entry.node] <= 0.0) continue;  // stale: already processed
    double current = Benefit(entry.node);
    if (current > entry.priority) {
      // Stale underestimate (residual grew since the push); a fresher entry
      // with the grown priority exists, so this one is redundant.
      continue;
    }
    Process(entry.node);
    ++processed;
  }
  return processed;
}

double Bca::MaxResidual() {
  while (!residual_heap_.empty()) {
    const HeapEntry& top = residual_heap_.top();
    if (mu_[top.node] > 0.0 && mu_[top.node] == top.priority) {
      return top.priority;
    }
    residual_heap_.pop();  // stale (processed or superseded by a later push)
  }
  return 0.0;
}

double Bca::UnseenUpperBound() {
  // Eq. 19: alpha/(2-alpha) * max_u mu(u) + (1-alpha)/(2-alpha) * sum_u mu(u).
  double max_mu = MaxResidual();
  return (alpha_ * max_mu + (1.0 - alpha_) * total_residual_) /
         (2.0 - alpha_);
}

}  // namespace rtr::core
