#ifndef RTR_CORE_WORKSPACE_H_
#define RTR_CORE_WORKSPACE_H_

// Per-query workspace arena for the online top-K path (DESIGN.md §7).
//
// The 2SBound hot path used to pay O(num_nodes) allocation + zeroing per
// query (teleport/score vectors, seen-flag arrays, two std::priority_queues
// that grow with every residual push). A QueryWorkspace owns all of that
// state once — per worker thread in serve::QueryService — and readies it
// for the next query in O(state touched by the previous query):
//
//  * dense arrays whose touched entries are enumerated by an existing list
//    (BCA's seen list, the T-side seen list, the query itself) are plain
//    vectors reset by walking that list — their hot-loop reads stay a
//    single load;
//  * sets with no natural touched list use generation stamps
//    (StampedFlags): an epoch bump invalidates every entry in O(1), and
//    the stamp array is only hard-cleared on growth or u32 epoch wrap;
//  * BCA's node selection uses position-tracked 4-ary heaps (NodeHeap)
//    whose storage persists across queries.
//
// After one warm-up query at a given graph size, a steady-state 2SBound
// query performs zero heap allocations (asserted by bench_micro's
// operator-new interposer). Reusing a workspace never changes results:
// scores are bit-identical to a fresh-workspace run
// (tests/core/workspace_test.cc).
//
// Thread safety: none — one workspace per thread. The Graph it is used
// against may be shared freely (graph/graph.h).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace rtr::obs {
class TraceRecorder;
}  // namespace rtr::obs

namespace rtr::core {

// Epoch-stamped membership set over [0, n): Test(i) is true iff Set(i) was
// called since the last Reset/NewEpoch. Invalidation is O(1) — the stamp
// array is hard-cleared only on growth or when the u32 epoch wraps (once
// every ~4 billion epochs).
class StampedFlags {
 public:
  void Reset(size_t n) {
    if (stamps_.size() != n) {
      stamps_.assign(n, 0);
      epoch_ = 1;
      return;
    }
    NewEpoch();
  }

  // Invalidates every entry without resizing.
  void NewEpoch() {
    if (++epoch_ == 0) {  // wrap: stamp 0 must keep meaning "never set"
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  size_t size() const { return stamps_.size(); }
  bool Test(size_t i) const {
    DCHECK_LT(i, stamps_.size());
    return stamps_[i] == epoch_;
  }
  void Set(size_t i) {
    DCHECK_LT(i, stamps_.size());
    stamps_[i] = epoch_;
  }

  uint32_t epoch() const { return epoch_; }
  // Drives the epoch to the wrap boundary (workspace_test only).
  void ForceEpochForTest(uint32_t epoch) { epoch_ = epoch; }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

// Position-tracked 4-ary max-heap over (priority, node) with at most one
// entry per node. Update() inserts or re-keys in place (sift up on grown
// priorities — the common case, BCA residuals only grow between
// processings — sift down on shrunk ones), so unlike the old lazy
// duplicate-push priority_queues there are no stale entries to skip on pop
// and no periodic compaction. 4-ary: half the cache-missing levels of a
// binary heap on the mostly-sift-up push pattern. Storage persists across
// queries; Reset is O(live entries).
class NodeHeap {
 public:
  static constexpr uint32_t kNotInHeap = 0xffffffffu;

  // O(live entries) + O(1) amortized; storage is kept.
  void Reset(size_t n);

  bool empty() const { return node_.empty(); }
  size_t size() const { return node_.size(); }
  bool Contains(NodeId v) const {
    DCHECK_LT(v, pos_.size());
    return pos_[v] != kNotInHeap;
  }
  double Priority(NodeId v) const {
    DCHECK(Contains(v));
    return prio_[pos_[v]];
  }

  NodeId top() const {
    DCHECK(!empty());
    return node_[0];
  }
  double top_priority() const {
    DCHECK(!empty());
    return prio_[0];
  }

  // Inserts v or re-keys it to `priority`.
  void Update(NodeId v, double priority) {
    DCHECK_LT(v, pos_.size());
    uint32_t slot = pos_[v];
    if (slot == kNotInHeap) {
      slot = static_cast<uint32_t>(node_.size());
      node_.push_back(v);
      prio_.push_back(priority);
      pos_[v] = slot;
      SiftUp(slot);
      return;
    }
    const double old = prio_[slot];
    prio_[slot] = priority;
    if (priority > old) {
      SiftUp(slot);
    } else if (priority < old) {
      SiftDown(slot);
    }
  }

  void Pop() { RemoveSlot(0); }

  // No-op if v is not in the heap.
  void Remove(NodeId v) {
    DCHECK_LT(v, pos_.size());
    if (pos_[v] != kNotInHeap) RemoveSlot(pos_[v]);
  }

 private:
  void RemoveSlot(uint32_t slot);
  void SiftDown(uint32_t slot);

  void SiftUp(uint32_t slot) {
    while (slot != 0) {
      const uint32_t parent = (slot - 1) / 4;
      if (prio_[parent] >= prio_[slot]) break;
      SwapSlots(slot, parent);
      slot = parent;
    }
  }

  void SwapSlots(uint32_t a, uint32_t b) {
    std::swap(node_[a], node_[b]);
    std::swap(prio_[a], prio_[b]);
    pos_[node_[a]] = a;
    pos_[node_[b]] = b;
  }

  std::vector<double> prio_;   // heap order, parallel to node_
  std::vector<NodeId> node_;
  std::vector<uint32_t> pos_;  // node -> slot; persists across queries
};

// The arena. The buffers are public scratch, grouped by consumer (Bca, the
// two bounders, the 2SBound driver in twosbound.cc); each consumer keeps
// the invariant "my touched entries are enumerated by my list", which is
// what lets BeginQuery reset in O(touched).
class QueryWorkspace {
 public:
  QueryWorkspace() = default;
  QueryWorkspace(const QueryWorkspace&) = delete;
  QueryWorkspace& operator=(const QueryWorkspace&) = delete;

  // Readies every structure for a query over a graph with `n` nodes.
  // O(state touched by the previous query); O(n) only on first use or when
  // the graph size changes.
  void BeginQuery(size_t n);

  // Carry-aware variant for callers that know the upcoming query: when the
  // previous query built a teleport vector for the same (query, alpha) on
  // the same graph size, the vector is kept instead of being cleared and
  // rebuilt — a scheduler batch of repeats of one hot query warms it once.
  // Teleport is a pure function of (query, alpha, n), so carrying it never
  // changes scores (workspace_test pins bit-identity). The query must
  // already be validated against [0, n) — this skips Teleport()'s range
  // CHECKs on the carry path.
  void BeginQuery(size_t n, const Query& query, double alpha);

  size_t num_nodes() const { return num_nodes_; }

  // Shared teleport vector alpha * I(q, v) of Eqs. 17-18, built lazily on
  // first request after BeginQuery and shared by both bounders (they always
  // score the same query at the same alpha within one 2SBound run).
  const std::vector<double>& Teleport(const Query& query, double alpha);

  // --- BCA (F-side Stage I) --------------------------------------------
  std::vector<double> rho;           // zeroed via bca_seen
  std::vector<double> mu;            // zeroed via mu_touched
  std::vector<NodeId> bca_seen;      // rho > 0, insertion order
  std::vector<NodeId> mu_touched;    // every node whose mu went 0 -> +
  std::vector<uint8_t> bca_in_seen;  // byte array, not vector<bool>
  NodeHeap benefit_heap;
  NodeHeap residual_heap;

  // --- shared teleport (via Teleport() above) ---------------------------
  std::vector<double> teleport;
  std::vector<NodeId> teleport_touched;

  // --- F-Rank bounder ---------------------------------------------------
  std::vector<double> f_lower;  // written only for BCA-seen nodes
  std::vector<double> f_upper;  // default 1.0; written only for seen nodes

  // --- T-Rank bounder ---------------------------------------------------
  std::vector<uint8_t> t_in_seen;
  std::vector<double> t_lower;
  std::vector<double> t_upper;
  std::vector<int> t_unseen_in;  // written only for T-seen nodes
  std::vector<NodeId> t_seen;
  std::vector<NodeId> t_border;
  std::vector<NodeId> t_picked;
  std::vector<NodeId> t_fresh;
  StampedFlags t_pending;        // per-Expand in-neighbor dedup

  // --- 2SBound driver (twosbound.cc) ------------------------------------
  struct Candidate {
    NodeId node;
    double lower;
    double upper;
  };
  std::vector<Candidate> candidates;
  std::vector<NodeId> active_scratch;  // S_f ∪ S_t accounting

  // Optional per-query trace recorder (obs/trace.h), owned by the caller
  // and untouched by BeginQuery. Null by default: every instrumentation
  // site in the engine is a single pointer test when tracing is off, which
  // preserves the zero-allocation steady-state contract above.
  obs::TraceRecorder* trace = nullptr;

  // --- exact / naive baseline -------------------------------------------
  std::vector<double> exact_f;
  std::vector<double> exact_t;
  std::vector<double> exact_scratch;
  std::vector<double> exact_scores;
  std::vector<NodeId> exact_ids;

 private:
  // Shared reset body; keep_teleport preserves the built teleport vector
  // (and its touched list, still needed by the next full reset).
  void Reset(size_t n, bool keep_teleport);

  size_t num_nodes_ = 0;
  bool teleport_built_ = false;
  double teleport_alpha_ = 0.0;
  // The query the current teleport vector was built for (carry detection);
  // cleared by the query-blind BeginQuery(n) overload.
  Query last_query_;
};

}  // namespace rtr::core

#endif  // RTR_CORE_WORKSPACE_H_
