#ifndef RTR_CORE_TWO_STAGE_H_
#define RTR_CORE_TWO_STAGE_H_

#include <memory>
#include <vector>

#include "core/bca.h"
#include "core/workspace.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::core {

// The two-stage bounds updating framework of Sect. V-A3, realized once for
// F-Rank (BCA-driven) and once for T-Rank (border-node driven).
//
// Each bounder exposes the two stages separately:
//  * Expand() — Stage I neighborhood growth. Amortized O(new work): BCA
//    pushes on the F side, border-frontier absorption on the T side.
//  * Refine() — bound (re)initialization plus Stage II iterative refinement
//    (Eqs. 17-18) to a fixpoint. Costs O(|neighborhood|); the 2SBound driver
//    therefore calls it only when it is about to evaluate the top-K
//    conditions. Bounds are valid at all times — skipping refinement only
//    leaves them looser (never wrong).
//
// All dense per-query state (teleport, lower/upper bound arrays, seen
// flags, the border list) lives in a QueryWorkspace. Both bounders of one
// query share a single workspace (their arrays are disjoint, the teleport
// vector is shared); construct them with the same external workspace for
// the allocation-free serving path, or without one for tests (each bounder
// then owns a private workspace).
//
// The baseline schemes of Fig. 11 are expressed through the options:
//  * Gupta  — F-side: first-visit residual bound instead of Prop. 4, and no
//             Stage II on F.
//  * Sarkar — T-side: a single refinement sweep instead of the fixpoint.
//  * G+S    — both weakenings at once.

// Options of the F-Rank bounder.
struct FBounderOptions {
  double alpha = 0.25;
  // Nodes picked per Stage-I expansion (paper: m = 100).
  int pick_per_expansion = 100;
  // Use the Prop. 4 (Eq. 19) unseen bound; false = Gupta first-visit bound.
  bool paper_unseen_bound = true;
  // Run Stage II iterative refinement.
  bool stage2 = true;
  // Stage II sweep cap (the fixpoint usually converges much earlier).
  int max_refine_sweeps = 30;
  double refine_tolerance = 1e-15;
};

// Maintains S_f with lower/upper F-Rank bounds for every seen node and a
// common unseen upper bound.
class FRankBounder {
 public:
  FRankBounder(const Graph& g, const Query& query,
               const FBounderOptions& options)
      : FRankBounder(g, query, options, nullptr) {}
  // Borrows `ws` (the caller must have called BeginQuery(g.num_nodes()));
  // null falls back to a private workspace.
  FRankBounder(const Graph& g, const Query& query,
               const FBounderOptions& options, QueryWorkspace* ws);

  FRankBounder(const FRankBounder&) = delete;
  FRankBounder& operator=(const FRankBounder&) = delete;

  // Stage I: one BCA expansion. Returns false (no-op) once all residual is
  // exhausted.
  bool Expand();

  // Bound initialization from the current BCA state (Prop. 4) + Stage II
  // refinement when enabled.
  void Refine();

  // Convenience for tests and simple drivers: Expand and, if any progress
  // was made, Refine. Returns Expand's result.
  bool ExpandAndRefine() {
    bool progress = Expand();
    if (progress) Refine();
    return progress;
  }

  // True when BCA has no residual left: rho == f exactly (up to fp error).
  bool exhausted() const { return bca_.total_residual() <= 1e-15; }

  const std::vector<NodeId>& seen() const { return bca_.seen(); }
  // A node counts as seen once its bounds have been initialized (i.e.,
  // after the Refine following its first BCA touch).
  bool IsSeen(NodeId v) const { return ws_->f_lower[v] > 0.0; }

  double Lower(NodeId v) const { return ws_->f_lower[v]; }
  // Individual bound for seen nodes; the unseen bound otherwise.
  double Upper(NodeId v) const {
    return IsSeen(v) ? ws_->f_upper[v] : unseen_upper_;
  }
  double UnseenUpper() const { return unseen_upper_; }

 private:
  void InitializeBounds();
  void RefineStage2();

  const Graph& graph_;
  FBounderOptions options_;
  std::unique_ptr<QueryWorkspace> owned_ws_;
  QueryWorkspace* ws_;
  Bca bca_;
  double unseen_upper_ = 1.0;
  // Number of seen nodes whose upper bound has been initialized.
  size_t initialized_count_ = 0;
};

// Options of the T-Rank bounder.
struct TBounderOptions {
  double alpha = 0.25;
  // Border nodes picked per Stage-I expansion (paper: m = 5).
  int pick_per_expansion = 5;
  // Run Stage II refinement to a fixpoint; false = one sweep per Refine
  // (the Sarkar baseline).
  bool stage2_fixpoint = true;
  int max_refine_sweeps = 30;
  double refine_tolerance = 1e-15;
};

// Maintains S_t with lower/upper T-Rank bounds, the border set, and the
// Eq. 22 unseen upper bound. Border membership is monotone (in-neighbors
// are only ever added), so the border list is maintained incrementally with
// lazy deletion.
class TRankBounder {
 public:
  TRankBounder(const Graph& g, const Query& query,
               const TBounderOptions& options)
      : TRankBounder(g, query, options, nullptr) {}
  // Borrows `ws` (the caller must have called BeginQuery(g.num_nodes()));
  // null falls back to a private workspace.
  TRankBounder(const Graph& g, const Query& query,
               const TBounderOptions& options, QueryWorkspace* ws);

  TRankBounder(const TRankBounder&) = delete;
  TRankBounder& operator=(const TRankBounder&) = delete;

  // Stage I: absorb the in-neighborhoods of up to m border nodes with the
  // largest upper bounds. Returns false when no border remains.
  bool Expand();

  // Eq. 22 unseen-bound update + Stage II refinement sweeps.
  void Refine();

  bool ExpandAndRefine() {
    bool progress = Expand();
    if (progress) Refine();
    return progress;
  }

  // True when no node outside S_t can reach the query.
  bool closed() const { return border_count_ == 0; }

  const std::vector<NodeId>& seen() const { return ws_->t_seen; }
  bool IsSeen(NodeId v) const { return ws_->t_in_seen[v] != 0; }

  double Lower(NodeId v) const { return IsSeen(v) ? ws_->t_lower[v] : 0.0; }
  double Upper(NodeId v) const {
    return IsSeen(v) ? ws_->t_upper[v] : unseen_upper_;
  }
  double UnseenUpper() const { return unseen_upper_; }

  bool IsBorder(NodeId v) const {
    return IsSeen(v) && ws_->t_unseen_in[v] > 0;
  }

 private:
  void AddNode(NodeId v, double upper_init);
  void CompactBorderList();
  void RefineSweeps(int sweeps);
  void RecomputeUnseenUpper();

  const Graph& graph_;
  TBounderOptions options_;
  std::unique_ptr<QueryWorkspace> owned_ws_;
  QueryWorkspace* ws_;
  double unseen_upper_ = 1.0;
  size_t border_count_ = 0;
};

}  // namespace rtr::core

#endif  // RTR_CORE_TWO_STAGE_H_
