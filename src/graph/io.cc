#include "graph/io.h"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "graph/builder.h"

namespace rtr {

Status SaveGraphText(const Graph& g, std::ostream& out) {
  out << "rtr-graph 1\n";
  out << g.type_names().size() << "\n";
  for (const std::string& name : g.type_names()) out << name << "\n";
  out << g.num_nodes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << g.node_type(v) << "\n";
  }
  out << g.num_arcs() << "\n";
  out.precision(17);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto targets = g.out_targets(v);
    auto weights = g.out_arc_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      out << v << " " << targets[i] << " " << weights[i] << "\n";
    }
  }
  if (!out) return Status::IoError("failed writing graph stream");
  return Status::OK();
}

Status SaveGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return SaveGraphText(g, out);
}

StatusOr<Graph> LoadGraphText(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "rtr-graph" || version != 1) {
    return Status::IoError("bad graph header");
  }
  size_t num_types = 0;
  if (!(in >> num_types) || num_types == 0) {
    return Status::IoError("bad type count");
  }
  if (num_types > std::numeric_limits<NodeTypeId>::max()) {
    return Status::IoError("type count overflows NodeTypeId");
  }
  GraphBuilder builder;
  for (size_t i = 0; i < num_types; ++i) {
    std::string name;
    if (!(in >> name)) return Status::IoError("bad type name");
    if (i == 0) {
      // Type 0 is pre-registered; names must agree.
      if (name != "untyped") {
        return Status::IoError("type 0 must be 'untyped'");
      }
      continue;
    }
    builder.AddNodeType(name);
  }
  size_t num_nodes = 0;
  if (!(in >> num_nodes)) return Status::IoError("bad node count");
  // NodeId is u32: a node count at or beyond kInvalidNode cannot be indexed.
  if (num_nodes >= kInvalidNode) {
    return Status::IoError("node count overflows NodeId");
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    unsigned type = 0;
    if (!(in >> type) || type >= num_types) {
      return Status::IoError("bad node type");
    }
    builder.AddNode(static_cast<NodeTypeId>(type));
  }
  size_t num_arcs = 0;
  if (!(in >> num_arcs)) return Status::IoError("bad arc count");
  for (size_t i = 0; i < num_arcs; ++i) {
    NodeId u = 0, v = 0;
    double w = 0.0;
    // A short read here is the arc-count-mismatch case: the header promised
    // more arcs than the stream carries (truncated input).
    if (!(in >> u >> v >> w)) return Status::IoError("bad arc line");
    if (u >= num_nodes || v >= num_nodes || !(w > 0.0)) {
      return Status::IoError("invalid arc");
    }
    builder.AddDirectedEdge(u, v, w);
  }
  // The declared arc count must also exhaust the stream; leftover tokens
  // mean the header undercounts (or the file was concatenated/corrupted).
  std::string trailing;
  if (in >> trailing) {
    return Status::IoError("trailing garbage after arc list");
  }
  return builder.Build();
}

StatusOr<Graph> LoadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return LoadGraphText(in);
}

}  // namespace rtr
