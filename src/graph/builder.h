#ifndef RTR_GRAPH_BUILDER_H_
#define RTR_GRAPH_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr {

// Mutable staging area for constructing a Graph.
//
// Usage:
//   GraphBuilder b;
//   NodeTypeId paper = b.AddNodeType("paper");
//   NodeId p = b.AddNode(paper);
//   b.AddDirectedEdge(p, q, 1.0);
//   b.AddUndirectedEdge(p, a, 1.0);       // materialized as two arcs
//   StatusOr<Graph> g = b.Build();
//
// Parallel arcs between the same ordered pair are merged by summing weights.
// Self-loops are permitted (they occur in the paper's toy example only via
// round trips, not arcs, but nothing forbids them structurally).
class GraphBuilder {
 public:
  GraphBuilder();

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;
  GraphBuilder(GraphBuilder&&) = default;
  GraphBuilder& operator=(GraphBuilder&&) = default;

  // Registers a node type and returns its id. Registering an existing name
  // returns the previously assigned id. Type id 0 is pre-registered as
  // "untyped".
  NodeTypeId AddNodeType(std::string_view name);

  // Adds a node of the given (already registered) type; returns its id.
  NodeId AddNode(NodeTypeId type = kUntypedNode);

  // Adds `count` nodes of the given type; returns the id of the first.
  NodeId AddNodes(size_t count, NodeTypeId type = kUntypedNode);

  // Adds a directed arc u -> v with weight w (must be > 0).
  void AddDirectedEdge(NodeId u, NodeId v, double w);

  // Adds arcs u -> v and v -> u, each with weight w.
  void AddUndirectedEdge(NodeId u, NodeId v, double w);

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_staged_arcs() const { return arcs_.size(); }

  // Validates and freezes into an immutable CSR Graph. Fails with
  // InvalidArgument on out-of-range endpoints or non-positive weights
  // (detected eagerly in AddDirectedEdge via DCHECK, and re-validated here).
  StatusOr<Graph> Build() const;

 private:
  struct StagedArc {
    NodeId source;
    NodeId target;
    double weight;
  };

  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> type_names_;
  std::vector<StagedArc> arcs_;
};

}  // namespace rtr

#endif  // RTR_GRAPH_BUILDER_H_
