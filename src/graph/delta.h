#ifndef RTR_GRAPH_DELTA_H_
#define RTR_GRAPH_DELTA_H_

// Incremental graph maintenance (DESIGN.md §8): a GraphDelta describes the
// difference between two consecutive graph generations — appended nodes and
// node types, removed arcs, inserted arcs — and ApplyDelta() turns
// generation g into generation g+1 without replaying the whole
// GraphBuilder pipeline. The growth experiments (Figs. 12-13) and the live
// serving path (graph/store.h) both feed on this: arcs arrive while
// queries are in flight, and each batch of arrivals becomes one delta.
//
// The maintenance idiom is "update derived state, don't recompute it":
// only the CSR rows a delta touches are re-merged and re-normalized
// (transition probabilities are derived from per-source weight totals, so
// a changed source invalidates exactly its own out-row and its targets'
// in-row entries); every untouched row is block-copied verbatim. Applied
// work is O(|delta| + arcs incident to touched nodes) on top of the
// unavoidable column copy into the new immutable generation.
//
// Bit-identity contract (gtest-enforced): the graph produced by ApplyDelta
// is column-for-column bit-identical to a from-scratch GraphBuilder build
// of the same logical graph, so rankings computed on an incrementally
// built generation match a full rebuild exactly.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr {

// One arc insertion. Inserting over an existing arc adds to its weight
// (GraphBuilder's parallel-arc merge semantics); inserting an arc removed
// by the same delta re-adds it fresh with this weight.
struct ArcInsert {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  double weight = 0.0;

  bool operator==(const ArcInsert&) const = default;
};

// One arc removal. The arc must exist in the base generation.
struct ArcRemove {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;

  bool operator==(const ArcRemove&) const = default;
};

// A batch of mutations taking generation `base_generation` to the next
// one. Application order within the delta: types and nodes are appended
// first, then every removal, then every insertion (so remove-then-readd
// replaces an arc's weight instead of accumulating into it). Node ids are
// append-only — deltas never delete or renumber nodes, matching the
// datasets' cumulative snapshots (papers are published, never unwritten).
struct GraphDelta {
  uint64_t base_generation = 0;

  // New node types, appended after the base graph's type table.
  std::vector<std::string> added_type_names;
  // Types of the nodes this delta appends; node ids are assigned densely
  // from base.num_nodes(). Each type indexes the base table extended by
  // added_type_names.
  std::vector<NodeTypeId> added_node_types;

  std::vector<ArcRemove> removed_arcs;
  std::vector<ArcInsert> added_arcs;

  bool Empty() const {
    return added_type_names.empty() && added_node_types.empty() &&
           removed_arcs.empty() && added_arcs.empty();
  }
  size_t NumOps() const {
    return added_node_types.size() + removed_arcs.size() + added_arcs.size();
  }
};

// Applies `delta` to `base`, producing the next generation's Graph.
// Fails with InvalidArgument (leaving no partial state) on:
//   - an arc endpoint outside the post-append node range (dangling
//     source/target),
//   - removal of an arc the base (minus earlier removals) does not have,
//   - duplicate removal of the same arc,
//   - a non-positive insert weight,
//   - an added node whose type is outside the extended type table.
// Note: base_generation is NOT checked here — this is pure column algebra;
// the generation handshake lives in GraphStore::Apply and the delta-file
// loaders.
StatusOr<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta);

// Structural diff: the delta that turns `base` into `next`, assuming
// append-only evolution (next contains base's nodes as an id-stable prefix
// and base's type table as a prefix — the shape of the datasets' cumulative
// snapshots). Arc weight changes surface as remove + insert. Fails with
// InvalidArgument when `next` is not an append-only extension of `base`.
// ApplyDelta(base, DiffGraphs(base, next)) reproduces next's columns
// bit-identically whenever next itself came out of GraphBuilder.
StatusOr<GraphDelta> DiffGraphs(const Graph& base, const Graph& next);

// --------------------------------------------------------------------------
// On-disk delta files ("rtr-delt" version 1) — the v2 storage story:
// a base snapshot (graph/snapshot.h, generation id in the header) plus a
// chain of checksummed delta files lets a serving process catch up to the
// current generation from disk (GraphStore::CatchUp).
//
// Layout (little-endian, every section zero-padded to 8 bytes, checksummed
// with the same word-wise FNV-1a as snapshots):
//
//   header (64 bytes):
//     char[8]  magic            "rtr-delt"
//     u32      version          1
//     u32      header_bytes     64
//     u64      base_generation  generation this delta applies to
//     u64      num_added_types
//     u64      num_added_nodes
//     u64      num_removed_arcs
//     u64      num_added_arcs
//     u64      payload_checksum (FNV-1a 64 over everything after the header)
//   payload:
//     added type names          num_added_types x (u32 length + bytes), padded
//     added node types          num_added_nodes x u16, padded
//     removed arcs              num_removed_arcs x (u32 source, u32 target)
//     added arcs                num_added_arcs x (u32 source, u32 target,
//                               f64 weight)
//
// The loader validates magic, version, exact file size and checksum, so
// truncated or corrupt delta files are rejected before application. All
// failures are Status::IoError.
// --------------------------------------------------------------------------

inline constexpr char kDeltaMagic[8] = {'r', 't', 'r', '-', 'd', 'e', 'l', 't'};
inline constexpr uint32_t kDeltaVersion = 1;

Status SaveGraphDelta(const GraphDelta& delta, std::ostream& out);
Status SaveGraphDeltaToFile(const GraphDelta& delta, const std::string& path);

StatusOr<GraphDelta> LoadGraphDelta(std::istream& in);
StatusOr<GraphDelta> LoadGraphDeltaFromFile(const std::string& path);

// True if `path` starts with the delta magic; IoError if it cannot be read
// at all. Files shorter than the magic are simply "not deltas".
StatusOr<bool> IsDeltaFile(const std::string& path);

// Header fields of a delta file without loading the ops — `rtr info` on a
// delta file.
struct DeltaFileInfo {
  uint32_t version = 0;
  uint64_t base_generation = 0;
  uint64_t num_added_types = 0;
  uint64_t num_added_nodes = 0;
  uint64_t num_removed_arcs = 0;
  uint64_t num_added_arcs = 0;
  uint64_t payload_checksum = 0;
};
StatusOr<DeltaFileInfo> ReadDeltaFileInfo(const std::string& path);

}  // namespace rtr

#endif  // RTR_GRAPH_DELTA_H_
