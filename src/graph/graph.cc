#include "graph/graph.h"

#include "graph/builder.h"

namespace rtr {

double Graph::TransitionProb(NodeId u, NodeId v) const {
  for (const OutArc& arc : out_arcs(u)) {
    if (arc.target == v) return arc.prob;
  }
  return 0.0;
}

std::vector<NodeId> Graph::NodesOfType(NodeTypeId t) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (node_types_[v] == t) nodes.push_back(v);
  }
  return nodes;
}

Graph UniformWeightCopy(const Graph& g) {
  GraphBuilder builder;
  for (const std::string& name : g.type_names()) builder.AddNodeType(name);
  for (NodeId v = 0; v < g.num_nodes(); ++v) builder.AddNode(g.node_type(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const OutArc& arc : g.out_arcs(v)) {
      builder.AddDirectedEdge(v, arc.target, 1.0);
    }
  }
  return builder.Build().value();
}

size_t Graph::MemoryBytes() const {
  size_t bytes = 0;
  bytes += node_types_.size() * sizeof(NodeTypeId);
  bytes += out_offsets_.size() * sizeof(size_t);
  bytes += out_arcs_.size() * sizeof(OutArc);
  bytes += out_weights_.size() * sizeof(double);
  bytes += in_offsets_.size() * sizeof(size_t);
  bytes += in_arcs_.size() * sizeof(InArc);
  return bytes;
}

}  // namespace rtr
