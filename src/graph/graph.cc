#include "graph/graph.h"

#include <utility>

#include "graph/builder.h"

namespace rtr {

void Graph::RebindViews() {
  node_types_view_ = node_types_;
  out_offsets_view_ = out_offsets_;
  out_targets_view_ = out_targets_;
  out_arc_weights_view_ = out_arc_weights_;
  out_probs_view_ = out_probs_;
  out_weights_view_ = out_weights_;
  in_offsets_view_ = in_offsets_;
  in_sources_view_ = in_sources_;
  in_arc_weights_view_ = in_arc_weights_;
  in_probs_view_ = in_probs_;
  out_probs_f32_view_ = out_probs_f32_;
  in_probs_f32_view_ = in_probs_f32_;
}

void Graph::RebindOwnedViews() {
  if (!node_types_.empty()) node_types_view_ = node_types_;
  if (!out_offsets_.empty()) out_offsets_view_ = out_offsets_;
  if (!out_targets_.empty()) out_targets_view_ = out_targets_;
  if (!out_arc_weights_.empty()) out_arc_weights_view_ = out_arc_weights_;
  if (!out_probs_.empty()) out_probs_view_ = out_probs_;
  if (!out_weights_.empty()) out_weights_view_ = out_weights_;
  if (!in_offsets_.empty()) in_offsets_view_ = in_offsets_;
  if (!in_sources_.empty()) in_sources_view_ = in_sources_;
  if (!in_arc_weights_.empty()) in_arc_weights_view_ = in_arc_weights_;
  if (!in_probs_.empty()) in_probs_view_ = in_probs_;
  if (!out_probs_f32_.empty()) out_probs_f32_view_ = out_probs_f32_;
  if (!in_probs_f32_.empty()) in_probs_f32_view_ = in_probs_f32_;
}

Graph::Graph(const Graph& other)
    : node_types_(other.node_types_),
      type_names_(other.type_names_),
      out_offsets_(other.out_offsets_),
      out_targets_(other.out_targets_),
      out_arc_weights_(other.out_arc_weights_),
      out_probs_(other.out_probs_),
      out_weights_(other.out_weights_),
      in_offsets_(other.in_offsets_),
      in_sources_(other.in_sources_),
      in_arc_weights_(other.in_arc_weights_),
      in_probs_(other.in_probs_),
      out_probs_f32_(other.out_probs_f32_),
      in_probs_f32_(other.in_probs_f32_),
      node_types_view_(other.node_types_view_),
      out_offsets_view_(other.out_offsets_view_),
      out_targets_view_(other.out_targets_view_),
      out_arc_weights_view_(other.out_arc_weights_view_),
      out_probs_view_(other.out_probs_view_),
      out_weights_view_(other.out_weights_view_),
      in_offsets_view_(other.in_offsets_view_),
      in_sources_view_(other.in_sources_view_),
      in_arc_weights_view_(other.in_arc_weights_view_),
      in_probs_view_(other.in_probs_view_),
      out_probs_f32_view_(other.out_probs_f32_view_),
      in_probs_f32_view_(other.in_probs_f32_view_),
      has_f32_probs_(other.has_f32_probs_),
      mapping_(other.mapping_) {
  // Borrowed views (into `mapping_`, shared above) carry over verbatim;
  // views over `other`'s vectors must re-anchor on this copy's vectors.
  RebindOwnedViews();
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Graph Graph::MaterializeOwning() const {
  Graph g;
  g.type_names_ = type_names_;
  g.node_types_.assign(node_types_view_.begin(), node_types_view_.end());
  g.out_offsets_.assign(out_offsets_view_.begin(), out_offsets_view_.end());
  g.out_targets_.assign(out_targets_view_.begin(), out_targets_view_.end());
  g.out_arc_weights_.assign(out_arc_weights_view_.begin(),
                            out_arc_weights_view_.end());
  g.out_probs_.assign(out_probs_view_.begin(), out_probs_view_.end());
  g.out_weights_.assign(out_weights_view_.begin(), out_weights_view_.end());
  g.in_offsets_.assign(in_offsets_view_.begin(), in_offsets_view_.end());
  g.in_sources_.assign(in_sources_view_.begin(), in_sources_view_.end());
  g.in_arc_weights_.assign(in_arc_weights_view_.begin(),
                           in_arc_weights_view_.end());
  g.in_probs_.assign(in_probs_view_.begin(), in_probs_view_.end());
  g.out_probs_f32_.assign(out_probs_f32_view_.begin(),
                          out_probs_f32_view_.end());
  g.in_probs_f32_.assign(in_probs_f32_view_.begin(), in_probs_f32_view_.end());
  g.has_f32_probs_ = has_f32_probs_;
  g.RebindViews();
  return g;
}

void Graph::PopulateF32Probs() {
  if (has_f32_probs_) return;
  out_probs_f32_.resize(out_probs_view_.size());
  for (size_t i = 0; i < out_probs_view_.size(); ++i) {
    out_probs_f32_[i] = static_cast<float>(out_probs_view_[i]);
  }
  in_probs_f32_.resize(in_probs_view_.size());
  for (size_t i = 0; i < in_probs_view_.size(); ++i) {
    in_probs_f32_[i] = static_cast<float>(in_probs_view_[i]);
  }
  out_probs_f32_view_ = out_probs_f32_;
  in_probs_f32_view_ = in_probs_f32_;
  has_f32_probs_ = true;
}

double Graph::TransitionProb(NodeId u, NodeId v) const {
  DCHECK_LT(u, num_nodes());
  const size_t begin = out_offsets_view_[u];
  const size_t end = out_offsets_view_[u + 1];
  for (size_t i = begin; i < end; ++i) {
    if (out_targets_view_[i] == v) return out_probs_view_[i];
  }
  return 0.0;
}

std::vector<NodeId> Graph::NodesOfType(NodeTypeId t) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (node_types_view_[v] == t) nodes.push_back(v);
  }
  return nodes;
}

Graph UniformWeightCopy(const Graph& g) {
  GraphBuilder builder;
  for (const std::string& name : g.type_names()) builder.AddNodeType(name);
  for (NodeId v = 0; v < g.num_nodes(); ++v) builder.AddNode(g.node_type(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId target : g.out_targets(v)) {
      builder.AddDirectedEdge(v, target, 1.0);
    }
  }
  return builder.Build().value();
}

size_t Graph::MemoryBytes() const {
  size_t bytes = 0;
  bytes += node_types_view_.size() * sizeof(NodeTypeId);
  bytes += (out_offsets_view_.size() + in_offsets_view_.size()) *
           sizeof(size_t);
  bytes += (out_targets_view_.size() + in_sources_view_.size()) *
           sizeof(NodeId);
  bytes += (out_arc_weights_view_.size() + in_arc_weights_view_.size()) *
           sizeof(double);
  bytes += (out_probs_view_.size() + in_probs_view_.size()) * sizeof(double);
  bytes += out_weights_view_.size() * sizeof(double);
  bytes += (out_probs_f32_view_.size() + in_probs_f32_view_.size()) *
           sizeof(float);
  return bytes;
}

}  // namespace rtr
