#include "graph/graph.h"

#include "graph/builder.h"

namespace rtr {

double Graph::TransitionProb(NodeId u, NodeId v) const {
  DCHECK_LT(u, num_nodes());
  const size_t begin = out_offsets_[u];
  const size_t end = out_offsets_[u + 1];
  for (size_t i = begin; i < end; ++i) {
    if (out_targets_[i] == v) return out_probs_[i];
  }
  return 0.0;
}

std::vector<NodeId> Graph::NodesOfType(NodeTypeId t) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (node_types_[v] == t) nodes.push_back(v);
  }
  return nodes;
}

Graph UniformWeightCopy(const Graph& g) {
  GraphBuilder builder;
  for (const std::string& name : g.type_names()) builder.AddNodeType(name);
  for (NodeId v = 0; v < g.num_nodes(); ++v) builder.AddNode(g.node_type(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId target : g.out_targets(v)) {
      builder.AddDirectedEdge(v, target, 1.0);
    }
  }
  return builder.Build().value();
}

size_t Graph::MemoryBytes() const {
  size_t bytes = 0;
  bytes += node_types_.size() * sizeof(NodeTypeId);
  bytes += (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t);
  bytes += (out_targets_.size() + in_sources_.size()) * sizeof(NodeId);
  bytes += (out_arc_weights_.size() + in_arc_weights_.size()) * sizeof(double);
  bytes += (out_probs_.size() + in_probs_.size()) * sizeof(double);
  bytes += out_weights_.size() * sizeof(double);
  return bytes;
}

}  // namespace rtr
