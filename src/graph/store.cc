#include "graph/store.h"

#include <utility>

#include "graph/snapshot.h"
#include "util/logging.h"

namespace rtr {

GraphStore::GraphStore(std::shared_ptr<const Graph> initial,
                       uint64_t generation) {
  CHECK(initial != nullptr) << "GraphStore needs an initial generation";
  current_ = std::make_shared<const Generation>(
      Generation{generation, std::move(initial)});
  // Lifecycle series for the exposition: the current generation id, how
  // many generations were published here, how many are still pinned by
  // in-flight readers, and the pin rate. Callbacks take mu_ (registry
  // mutex -> mu_; nothing takes them in the other order).
  auto& registry = obs::MetricsRegistry::Default();
  registrations_.push_back(
      registry.RegisterCounter("rtr_store_pins_total", {}, &pins_));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_store_generation", {},
      [this] { return static_cast<double>(this->generation()); }));
  registrations_.push_back(registry.RegisterCallbackCounter(
      "rtr_store_generations_published_total", {},
      [this] { return this->swap_count(); }));
  registrations_.push_back(registry.RegisterCallbackGauge(
      "rtr_store_live_generations", {},
      [this] { return static_cast<double>(this->live_generations()); }));
}

GraphStore::GraphStore(Graph initial, uint64_t generation)
    : GraphStore(std::make_shared<const Graph>(std::move(initial)),
                 generation) {}

StatusOr<std::unique_ptr<GraphStore>> GraphStore::Open(
    const std::string& path, MapMode map_mode) {
  uint64_t generation = 0;
  StatusOr<Graph> loaded = LoadGraphAuto(path, &generation, map_mode);
  RTR_RETURN_IF_ERROR(loaded.status());
  return std::make_unique<GraphStore>(std::move(loaded).value(), generation);
}

PinnedGraph GraphStore::Pin() const {
  pins_.Increment();
  std::shared_ptr<const Generation> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = current_;
  }
  // Aliasing pointer: the pin shares the Generation's control block, so a
  // retired generation's weak_ptr in retired_ expires exactly when its last
  // reader drains — live_generations() is the RCU epoch counter.
  return PinnedGraph{
      std::shared_ptr<const Graph>(current, current->graph.get()),
      current->id};
}

std::shared_ptr<const Graph> GraphStore::Current() const {
  return Pin().graph;
}

uint64_t GraphStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id;
}

uint64_t GraphStore::swap_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swap_count_;
}

size_t GraphStore::live_generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 1;  // the current generation
  for (const std::weak_ptr<const Generation>& retired : retired_) {
    if (!retired.expired()) ++live;
  }
  return live;
}

void GraphStore::PublishLocked(Generation next) {
  auto published = std::make_shared<const Generation>(std::move(next));
  const uint64_t id = published->id;
  const size_t nodes = published->graph->num_nodes();
  const size_t arcs = published->graph->num_arcs();
  size_t still_pinned = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Compact drained entries so the retire list tracks only generations a
    // reader can still touch.
    std::erase_if(retired_,
                  [](const std::weak_ptr<const Generation>& retired) {
                    return retired.expired();
                  });
    retired_.push_back(current_);
    current_ = std::move(published);
    ++swap_count_;
    still_pinned = retired_.size();
  }
  LOG(INFO) << "published generation " << id << " (" << nodes << " nodes, "
            << arcs << " arcs); " << still_pinned
            << " retired generation(s) awaiting reader drain";
}

StatusOr<uint64_t> GraphStore::Apply(const GraphDelta& delta) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  // Writers are serialized, so the current generation cannot move under us
  // between this check and the publish below.
  PinnedGraph base = Pin();
  if (delta.base_generation != base.generation) {
    LOG(WARNING) << "rejecting stale delta: targets generation "
                 << delta.base_generation << ", store is at "
                 << base.generation;
    return Status::FailedPrecondition(
        "delta targets generation " + std::to_string(delta.base_generation) +
        " but the store is at " + std::to_string(base.generation));
  }
  // The expensive part runs with no store lock held: readers keep pinning
  // the old generation while the new columns are assembled.
  StatusOr<Graph> next = ApplyDelta(*base.graph, delta);
  RTR_RETURN_IF_ERROR(next.status());
  const uint64_t next_id = base.generation + 1;
  PublishLocked(Generation{
      next_id, std::make_shared<const Graph>(std::move(next).value())});
  return next_id;
}

Status GraphStore::Publish(Graph next, uint64_t generation) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const uint64_t current = this->generation();
  if (generation != current + 1) {
    return Status::FailedPrecondition(
        "publish of generation " + std::to_string(generation) +
        " out of order (store is at " + std::to_string(current) + ")");
  }
  PublishLocked(Generation{
      generation, std::make_shared<const Graph>(std::move(next))});
  return Status::OK();
}

StatusOr<uint64_t> GraphStore::CatchUp(const std::string& delta_path) {
  StatusOr<GraphDelta> delta = LoadGraphDeltaFromFile(delta_path);
  RTR_RETURN_IF_ERROR(delta.status());
  return Apply(*delta);
}

}  // namespace rtr
