#ifndef RTR_GRAPH_STORE_H_
#define RTR_GRAPH_STORE_H_

// Versioned graph generations with RCU-style publication (DESIGN.md §8).
//
// A GraphStore owns a sequence of immutable Graph generations. Readers pin
// the current generation with Pin() — a shared_ptr copy — and keep using it
// for the whole query even if a newer generation is published meanwhile;
// writers build the next generation OFF the store's lock (ApplyDelta is the
// expensive part) and publish it with a single pointer swap, so readers are
// never blocked by ingestion. A retired generation's memory is reclaimed
// when its last pinned reader drains (the shared_ptr refcount is the grace
// period); live_generations() reports how many retired generations are
// still pinned, the store's analogue of an RCU epoch counter.
//
// Writers are serialized among themselves (one delta applies at a time, in
// generation order); the generation id increments by exactly one per
// publish and every delta must name the generation it applies to — a stale
// delta is rejected instead of silently rebased.
//
// Disk catch-up (the v2 storage story): Open() brings a store up from a
// base snapshot (generation id in the snapshot header, graph/snapshot.h)
// and CatchUp() replays checksummed delta files (graph/delta.h) until the
// store reaches the producer's generation.
//
// Thread safety: every member is safe to call concurrently; Pin() is a
// mutex-protected pointer copy (no allocation, no graph access), and
// Apply/Publish/CatchUp hold the writer lock for the build but the reader
// lock only for the swap.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace rtr {

// A reader's lease on one generation: the graph pointer keeps the columns
// alive until the pin is dropped.
struct PinnedGraph {
  std::shared_ptr<const Graph> graph;
  uint64_t generation = 0;
};

class GraphStore {
 public:
  // Wraps an initial generation. The shared_ptr form is the ownership
  // handoff used by the serving layer; the value form is a convenience
  // that moves the graph into shared ownership.
  GraphStore(std::shared_ptr<const Graph> initial, uint64_t generation = 0);
  explicit GraphStore(Graph initial, uint64_t generation = 0);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // Process bring-up from a saved base: binary snapshots carry their
  // generation id in the header; text graphs start at generation 0.
  // `map_mode` selects the snapshot loader (graph/snapshot.h): the default
  // kAuto honors RTR_GRAPH_MMAP, kPrefer/kRequire map the file zero-copy.
  // A mapped base generation is safe here: Apply/CatchUp build the next
  // generation's columns in owning storage (DeltaOps reads the base through
  // its views — copy-on-write), never in place.
  static StatusOr<std::unique_ptr<GraphStore>> Open(
      const std::string& path, MapMode map_mode = MapMode::kAuto);

  // Pins the current generation for the caller's lifetime-of-use.
  PinnedGraph Pin() const;
  // The current generation's graph without the id (equivalent to Pin().graph).
  std::shared_ptr<const Graph> Current() const;
  uint64_t generation() const;
  // Generations published after construction.
  uint64_t swap_count() const;
  // Retired generations still pinned by in-flight readers, plus the current
  // one: 1 when fully drained.
  size_t live_generations() const;

  // Builds generation g+1 from the current generation g by applying
  // `delta`, then publishes it. Fails with FailedPrecondition when
  // delta.base_generation != generation() (stale or out-of-order delta) and
  // with ApplyDelta's InvalidArgument on malformed ops; the store is
  // unchanged on any failure. Returns the new generation id.
  StatusOr<uint64_t> Apply(const GraphDelta& delta);

  // Publishes an externally built graph as generation `generation`, which
  // must be exactly generation() + 1 (FailedPrecondition otherwise).
  Status Publish(Graph next, uint64_t generation);

  // Disk catch-up: loads a delta file and Apply()s it. A delta whose
  // base_generation does not match the current generation is rejected
  // (FailedPrecondition) — replay files in order.
  StatusOr<uint64_t> CatchUp(const std::string& delta_path);

 private:
  struct Generation {
    uint64_t id = 0;
    std::shared_ptr<const Graph> graph;
  };

  // Swaps in a new current generation and retires the old one.
  void PublishLocked(Generation next);

  // Serializes writers; held across the whole build-and-publish of one
  // delta so generation ids advance one at a time.
  std::mutex writer_mu_;
  // Guards current_ and retired_; readers hold it only for a pointer copy.
  mutable std::mutex mu_;
  std::shared_ptr<const Generation> current_;
  // Weak handles to retired generations, compacted opportunistically; an
  // expired entry means every reader of that generation has drained.
  std::vector<std::weak_ptr<const Generation>> retired_;
  uint64_t swap_count_ = 0;
  // Generation lifecycle metrics (rtr_store_*); the registry merges the
  // series of every store in the process. Declared after the state the
  // callback gauges read, before registrations_ (which must die first).
  mutable obs::Counter pins_;
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace rtr

#endif  // RTR_GRAPH_STORE_H_
