#include "graph/builder.h"

#include <algorithm>
#include <numeric>

namespace rtr {

GraphBuilder::GraphBuilder() { type_names_.push_back("untyped"); }

NodeTypeId GraphBuilder::AddNodeType(std::string_view name) {
  for (size_t i = 0; i < type_names_.size(); ++i) {
    if (type_names_[i] == name) return static_cast<NodeTypeId>(i);
  }
  type_names_.emplace_back(name);
  return static_cast<NodeTypeId>(type_names_.size() - 1);
}

NodeId GraphBuilder::AddNode(NodeTypeId type) {
  DCHECK_LT(type, type_names_.size());
  node_types_.push_back(type);
  return static_cast<NodeId>(node_types_.size() - 1);
}

NodeId GraphBuilder::AddNodes(size_t count, NodeTypeId type) {
  CHECK_GT(count, 0u);
  NodeId first = static_cast<NodeId>(node_types_.size());
  node_types_.insert(node_types_.end(), count, type);
  return first;
}

void GraphBuilder::AddDirectedEdge(NodeId u, NodeId v, double w) {
  DCHECK_LT(u, num_nodes());
  DCHECK_LT(v, num_nodes());
  DCHECK_GT(w, 0.0);
  arcs_.push_back({u, v, w});
}

void GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, double w) {
  AddDirectedEdge(u, v, w);
  AddDirectedEdge(v, u, w);
}

StatusOr<Graph> GraphBuilder::Build() const {
  const size_t n = num_nodes();
  for (const StagedArc& arc : arcs_) {
    if (arc.source >= n || arc.target >= n) {
      return Status::InvalidArgument("arc endpoint out of range");
    }
    if (!(arc.weight > 0.0)) {
      return Status::InvalidArgument("arc weight must be positive");
    }
  }

  // Sort by (source, target) and merge parallel arcs.
  std::vector<StagedArc> sorted = arcs_;
  std::sort(sorted.begin(), sorted.end(),
            [](const StagedArc& a, const StagedArc& b) {
              if (a.source != b.source) return a.source < b.source;
              return a.target < b.target;
            });
  std::vector<StagedArc> merged;
  merged.reserve(sorted.size());
  for (const StagedArc& arc : sorted) {
    if (!merged.empty() && merged.back().source == arc.source &&
        merged.back().target == arc.target) {
      merged.back().weight += arc.weight;
    } else {
      merged.push_back(arc);
    }
  }

  Graph g;
  g.node_types_ = node_types_;
  g.type_names_ = type_names_;

  // Out-CSR columns with transition probabilities.
  g.out_offsets_.assign(n + 1, 0);
  for (const StagedArc& arc : merged) g.out_offsets_[arc.source + 1]++;
  std::partial_sum(g.out_offsets_.begin(), g.out_offsets_.end(),
                   g.out_offsets_.begin());
  g.out_weights_.assign(n, 0.0);
  for (const StagedArc& arc : merged) g.out_weights_[arc.source] += arc.weight;

  g.out_targets_.resize(merged.size());
  g.out_arc_weights_.resize(merged.size());
  g.out_probs_.resize(merged.size());
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const StagedArc& arc : merged) {
      size_t slot = cursor[arc.source]++;
      g.out_targets_[slot] = arc.target;
      g.out_arc_weights_[slot] = arc.weight;
      g.out_probs_[slot] = arc.weight / g.out_weights_[arc.source];
    }
  }

  // In-CSR columns mirroring the same probabilities.
  g.in_offsets_.assign(n + 1, 0);
  for (const StagedArc& arc : merged) g.in_offsets_[arc.target + 1]++;
  std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                   g.in_offsets_.begin());
  g.in_sources_.resize(merged.size());
  g.in_arc_weights_.resize(merged.size());
  g.in_probs_.resize(merged.size());
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const StagedArc& arc : merged) {
      size_t slot = cursor[arc.target]++;
      g.in_sources_[slot] = arc.source;
      g.in_arc_weights_[slot] = arc.weight;
      g.in_probs_[slot] = arc.weight / g.out_weights_[arc.source];
    }
  }

  g.RebindViews();
  return g;
}

}  // namespace rtr
