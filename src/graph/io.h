#ifndef RTR_GRAPH_IO_H_
#define RTR_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rtr {

// Text serialization of a Graph. Format (whitespace separated):
//
//   rtr-graph 1
//   <num_types>
//   <type_name> x num_types
//   <num_nodes>
//   <node_type_id> x num_nodes
//   <num_arcs>
//   <source> <target> <weight> x num_arcs
//
// Transition probabilities are derived, not stored. The loader rejects
// malformed input (truncated arc lists, trailing garbage, node counts that
// overflow NodeId) with Status::IoError. For the fast binary format used in
// production bring-up, see graph/snapshot.h.
Status SaveGraphText(const Graph& g, std::ostream& out);
Status SaveGraphToFile(const Graph& g, const std::string& path);

StatusOr<Graph> LoadGraphText(std::istream& in);
StatusOr<Graph> LoadGraphFromFile(const std::string& path);

}  // namespace rtr

#endif  // RTR_GRAPH_IO_H_
