#ifndef RTR_GRAPH_SNAPSHOT_H_
#define RTR_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rtr {

// Binary graph snapshots ("rtr-snap" version 2).
//
// A snapshot freezes a Graph's columnar CSR arrays verbatim so a process can
// come up without replaying text parsing + GraphBuilder sorting/merging: the
// loader performs one bulk read and block-copies each column into place.
// Layout (all integers little-endian, every section padded to an 8-byte
// boundary so a loader may also mmap the file and point spans directly at
// it):
//
//   header (64 bytes):
//     char[8]  magic            "rtr-snap"
//     u32      version          2
//     u32      header_bytes     64
//     u64      num_types
//     u64      num_nodes
//     u64      num_arcs
//     u64      type_block_bytes (padded size of the type-name section)
//     u64      payload_checksum (FNV-1a 64 over everything after the header)
//     u64      generation       (v2; the v1 reserved field, always 0 there)
//   payload:
//     type names                num_types x (u32 length + bytes), padded
//     node_types                num_nodes x u16, padded
//     out_offsets               (num_nodes+1) x u64
//     out_targets               num_arcs x u32, padded
//     out_arc_weights           num_arcs x f64
//     out_probs                 num_arcs x f64
//     out_node_weights          num_nodes x f64
//     in_offsets                (num_nodes+1) x u64
//     in_sources                num_arcs x u32, padded
//     in_arc_weights            num_arcs x f64
//     in_probs                  num_arcs x f64
//
// The loader validates the magic, version, exact file size (truncated or
// oversized/trailing-garbage files are rejected), checksum, offset
// monotonicity and endpoint/type ranges, so a load that returns OK yields a
// Graph bit-identical to the one saved. All failures are Status::IoError.
//
// Versioning: v2 (current) records the graph's generation id (graph/store.h)
// where v1 had a zeroed reserved field; the payload is unchanged, and the
// loader accepts both versions (a v1 file is generation 0). Together with
// delta files (graph/delta.h) this is the on-disk story for live graphs: one
// base snapshot per epoch plus a chain of deltas to catch up from.

inline constexpr char kSnapshotMagic[8] = {'r', 't', 'r', '-',
                                           's', 'n', 'a', 'p'};
inline constexpr uint32_t kSnapshotVersion = 2;
// Oldest version the loader still reads.
inline constexpr uint32_t kMinSnapshotVersion = 1;

Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         uint64_t generation = 0);
Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               uint64_t generation = 0);

// `generation` (optional) receives the header's generation id (0 for v1
// files) when the load succeeds.
StatusOr<Graph> LoadGraphSnapshot(std::istream& in,
                                  uint64_t* generation = nullptr);
StatusOr<Graph> LoadGraphSnapshotFromFile(const std::string& path,
                                          uint64_t* generation = nullptr);

// Header fields of a snapshot without loading the columns — `rtr info` on a
// snapshot file.
struct SnapshotFileInfo {
  uint32_t version = 0;
  uint64_t generation = 0;
  uint64_t num_types = 0;
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  uint64_t payload_checksum = 0;
};
StatusOr<SnapshotFileInfo> ReadSnapshotFileInfo(const std::string& path);

// True if `path` starts with the snapshot magic; IoError if it cannot be
// read at all. Files shorter than the magic are simply "not snapshots".
StatusOr<bool> IsSnapshotFile(const std::string& path);

// Loads a graph from either format, auto-detected by magic: binary
// snapshots go through LoadGraphSnapshotFromFile, everything else through
// the text loader (graph/io.h). `generation` (optional) receives the
// snapshot header's generation id (text graphs are generation 0).
StatusOr<Graph> LoadGraphAuto(const std::string& path,
                              uint64_t* generation = nullptr);

}  // namespace rtr

#endif  // RTR_GRAPH_SNAPSHOT_H_
