#ifndef RTR_GRAPH_SNAPSHOT_H_
#define RTR_GRAPH_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rtr {

// Binary graph snapshots ("rtr-snap" versions 2 and 3).
//
// A snapshot freezes a Graph's columnar CSR arrays verbatim so a process can
// come up without replaying text parsing + GraphBuilder sorting/merging. Two
// loaders exist: LoadGraphSnapshotFromFile performs one bulk read and
// block-copies each column into owning vectors, and LoadGraphMapped mmaps
// the file and points the Graph's column spans directly at the mapping
// (zero copy; see MappedSnapshot below). Layout (all integers little-endian,
// every section padded to an 8-byte boundary precisely so the mapped loader
// can alias each column in place):
//
//   header (64 bytes):
//     char[8]  magic            "rtr-snap"
//     u32      version          2 (or 3 when the f32 columns are present)
//     u32      header_bytes     64
//     u64      num_types
//     u64      num_nodes
//     u64      num_arcs
//     u64      type_block_bytes (padded size of the type-name section)
//     u64      payload_checksum (FNV-1a 64 over everything after the header)
//     u64      generation       (v2+; the v1 reserved field, always 0 there)
//   payload:
//     type names                num_types x (u32 length + bytes), padded
//     node_types                num_nodes x u16, padded
//     out_offsets               (num_nodes+1) x u64
//     out_targets               num_arcs x u32, padded
//     out_arc_weights           num_arcs x f64
//     out_probs                 num_arcs x f64
//     out_node_weights          num_nodes x f64
//     in_offsets                (num_nodes+1) x u64
//     in_sources                num_arcs x u32, padded
//     in_arc_weights            num_arcs x f64
//     in_probs                  num_arcs x f64
//   v3 only (appended; SnapshotWriteOptions.f32_probs):
//     out_probs_f32             num_arcs x f32, padded
//     in_probs_f32              num_arcs x f32, padded
//
// The bulk loader validates the magic, version, exact file size (truncated
// or oversized/trailing-garbage files are rejected), checksum, offset
// monotonicity and endpoint/type ranges, so a load that returns OK yields a
// Graph bit-identical to the one saved. All failures are Status::IoError.
//
// The mapped loader performs the same structural validation (it touches the
// header, offsets, endpoints and node-type pages) but skips the full
// payload checksum by default — checksumming would fault in every page and
// defeat the O(page faults) cold start. Set RTR_MMAP_VERIFY=1 to force the
// checksum pass on mapped loads too.
//
// Versioning: v2 records the graph's generation id (graph/store.h) where v1
// had a zeroed reserved field; v3 appends the two optional f32 transition-
// probability columns (exact casts of the f64 ones, for the single-precision
// SIMD kernels in util/dense_kernels.h). The loader accepts v1..v3; the
// writer emits v2 unless f32 columns are requested. Together with delta
// files (graph/delta.h) this is the on-disk story for live graphs: one base
// snapshot per epoch plus a chain of deltas to catch up from.

inline constexpr char kSnapshotMagic[8] = {'r', 't', 'r', '-',
                                           's', 'n', 'a', 'p'};
// Version written by default (no f32 columns).
inline constexpr uint32_t kSnapshotVersion = 2;
// Version written when the optional f32 prob columns are included.
inline constexpr uint32_t kSnapshotF32Version = 3;
// Version range the loader reads.
inline constexpr uint32_t kMinSnapshotVersion = 1;
inline constexpr uint32_t kMaxSnapshotVersion = 3;

struct SnapshotWriteOptions {
  uint64_t generation = 0;
  // Append the f32 transition-probability columns (writes a v3 file). The
  // columns are taken from the graph when present (Graph::has_f32_probs)
  // and derived by casting the f64 probs otherwise.
  bool f32_probs = false;
};

Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         uint64_t generation = 0);
Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         const SnapshotWriteOptions& options);
Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               uint64_t generation = 0);
Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               const SnapshotWriteOptions& options);

// `generation` (optional) receives the header's generation id (0 for v1
// files) when the load succeeds.
StatusOr<Graph> LoadGraphSnapshot(std::istream& in,
                                  uint64_t* generation = nullptr);
StatusOr<Graph> LoadGraphSnapshotFromFile(const std::string& path,
                                          uint64_t* generation = nullptr);

// A read-only mmap of an rtr-snap file. A Graph loaded by LoadGraphMapped
// keeps one of these alive via shared_ptr and points its column spans into
// the mapping, so the columns are file-backed: cold-start cost is O(page
// faults on first touch) and every process mapping the same file shares one
// physical copy. Unmapped (and thereby released) when the last referencing
// Graph goes away.
class MappedSnapshot {
 public:
  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  // Maps `path` read-only (MAP_PRIVATE) and advises the kernel the pages
  // will be needed (MADV_WILLNEED). IoError on platforms without mmap, on
  // open/stat/map failure, and on empty files.
  static StatusOr<std::shared_ptr<const MappedSnapshot>> Map(
      const std::string& path);

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

 private:
  MappedSnapshot(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

// Test hook: forces MappedSnapshot::Map to fail, exercising the
// mmap-to-bulk-read fallback without an actually unmappable file.
void SetMmapFailForTesting(bool fail);

// How LoadGraphAuto brings a snapshot online.
enum class MapMode {
  // Resolve from the environment: RTR_GRAPH_MMAP=1 (or "on") means kPrefer,
  // anything else means kNever. The default everywhere, so one env var
  // flips every loader in a process (CI runs the whole suite both ways).
  kAuto,
  // Bulk read into owning vectors (the classic path).
  kNever,
  // Try the mapped loader; on failure log a WARNING, bump the
  // `rtr_store_mmap_fallbacks` counter, and fall back to the bulk read.
  kPrefer,
  // Mapped or fail: no silent fallback.
  kRequire,
};

// Zero-copy load: validates the header and structure, then returns a Graph
// whose columns borrow from the mapped file (Graph::is_mapped() == true).
// Skips the payload checksum unless RTR_MMAP_VERIFY=1 (see above).
StatusOr<Graph> LoadGraphMapped(const std::string& path,
                                uint64_t* generation = nullptr);

// Header fields of a snapshot without loading the columns — `rtr info` on a
// snapshot file.
struct SnapshotFileInfo {
  uint32_t version = 0;
  uint64_t generation = 0;
  uint64_t num_types = 0;
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  uint64_t payload_checksum = 0;
  // True for v3 files carrying the f32 prob columns.
  bool has_f32_probs = false;
};
StatusOr<SnapshotFileInfo> ReadSnapshotFileInfo(const std::string& path);

// True if `path` starts with the snapshot magic; IoError if it cannot be
// read at all. Files shorter than the magic are simply "not snapshots".
StatusOr<bool> IsSnapshotFile(const std::string& path);

// Loads a graph from either format, auto-detected by magic: binary
// snapshots go through the bulk or mapped snapshot loader per `map_mode`,
// everything else through the text loader (graph/io.h, never mapped).
// `generation` (optional) receives the snapshot header's generation id
// (text graphs are generation 0).
StatusOr<Graph> LoadGraphAuto(const std::string& path,
                              uint64_t* generation = nullptr,
                              MapMode map_mode = MapMode::kAuto);

}  // namespace rtr

#endif  // RTR_GRAPH_SNAPSHOT_H_
