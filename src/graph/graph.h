#ifndef RTR_GRAPH_GRAPH_H_
#define RTR_GRAPH_GRAPH_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace rtr {

class MappedSnapshot;  // graph/snapshot.h: RAII mmap of an rtr-snap file.

// Immutable directed weighted graph in columnar (structure-of-arrays) CSR
// form, with both out- and in-adjacency and precomputed row-stochastic
// transition probabilities.
//
// Random-walk semantics (Sect. III of the paper): from node v the surfer
// moves to out-neighbor u with probability M[v][u] = w(v,u) / sum_u' w(v,u').
// Undirected edges are materialized as two arcs by the builder. Nodes with no
// out-arcs are "dangling": the walk terminates there (no mass redistributed),
// matching the iterative formulations in Eqs. 5 and 8.
//
// Storage layout: each adjacency direction is three parallel columns —
// endpoint ids (u32), raw weights (f64), transition probabilities (f64) —
// indexed by one offsets array. The online 2SBound phase is memory-bandwidth
// bound, and its hot loops only read (endpoint, prob); splitting the columns
// keeps the weight column out of the cache on those paths (12 bytes per arc
// streamed instead of the 24-byte arc records of the old AoS layout). The
// frozen columns are also exactly what the binary snapshot format
// (graph/snapshot.h) writes and reads verbatim.
//
// Storage polymorphism: every column is exposed through a std::span view.
// A graph built by GraphBuilder (or bulk-loaded from a snapshot) owns its
// columns in std::vectors and the views alias those vectors. A graph loaded
// by LoadGraphMapped() instead borrows its views straight out of a
// MappedSnapshot (a read-only mmap of the rtr-snap file); the owning vectors
// stay empty and the mapping is kept alive by a shared_ptr held here, so
// copies of a mapped Graph share one physical copy of the columns. Use
// is_mapped() to tell the two apart and MaterializeOwning() to deep-copy a
// mapped graph into owning storage (required before any code path that
// assembles new columns in place, e.g. DeltaOps).
//
// Construct via GraphBuilder::Build() or LoadGraphSnapshot().
//
// Thread safety: a Graph never mutates after construction, and every member
// function is const and touches only the frozen columns. Any number of
// threads may therefore share one Graph with no synchronization — the
// contract the serving layer (serve::QueryService) relies on to run one
// graph under a worker pool. (PopulateF32Probs() is the one exception: it
// backfills the optional f32 column and must finish before the graph is
// shared.)
class Graph {
 public:
  Graph() = default;

  // Copies rebind every owning column's view onto the copy's own vectors;
  // borrowed (mapped) columns stay borrowed and share the mapping.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  // Moves are cheap and safe: vector heap buffers are stable under move, so
  // the views transfer verbatim. The moved-from graph is only good for
  // destruction or reassignment (its views are unspecified).
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t num_nodes() const { return node_types_view_.size(); }
  // Number of directed arcs (an undirected edge counts twice).
  size_t num_arcs() const { return out_targets_view_.size(); }

  NodeTypeId node_type(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return node_types_view_[v];
  }

  // Registered type names; index is the NodeTypeId.
  const std::vector<std::string>& type_names() const { return type_names_; }
  const std::string& type_name(NodeTypeId t) const {
    DCHECK_LT(t, type_names_.size());
    return type_names_[t];
  }

  size_t out_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_offsets_view_[v + 1] - out_offsets_view_[v];
  }
  size_t in_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return in_offsets_view_[v + 1] - in_offsets_view_[v];
  }

  // Per-node column spans. Entries at the same index within a node's spans
  // describe the same arc; out-columns are sorted by target (in-columns by
  // source) within each node.
  std::span<const NodeId> out_targets(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_targets_view_.data() + out_offsets_view_[v], out_degree(v)};
  }
  std::span<const double> out_probs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_probs_view_.data() + out_offsets_view_[v], out_degree(v)};
  }
  std::span<const double> out_arc_weights(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_arc_weights_view_.data() + out_offsets_view_[v],
            out_degree(v)};
  }
  std::span<const NodeId> in_sources(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_sources_view_.data() + in_offsets_view_[v], in_degree(v)};
  }
  std::span<const double> in_probs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_probs_view_.data() + in_offsets_view_[v], in_degree(v)};
  }
  std::span<const double> in_arc_weights(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_arc_weights_view_.data() + in_offsets_view_[v], in_degree(v)};
  }

  // Whole-graph column views (snapshot I/O, shard extraction, column-equality
  // assertions in tests). The offsets arrays have num_nodes()+1 entries.
  std::span<const NodeTypeId> node_types() const { return node_types_view_; }
  std::span<const size_t> out_offsets() const { return out_offsets_view_; }
  std::span<const NodeId> out_targets() const { return out_targets_view_; }
  std::span<const double> out_probs() const { return out_probs_view_; }
  std::span<const double> out_arc_weights() const {
    return out_arc_weights_view_;
  }
  std::span<const double> out_weights() const { return out_weights_view_; }
  std::span<const size_t> in_offsets() const { return in_offsets_view_; }
  std::span<const NodeId> in_sources() const { return in_sources_view_; }
  std::span<const double> in_probs() const { return in_probs_view_; }
  std::span<const double> in_arc_weights() const {
    return in_arc_weights_view_;
  }

  // Optional single-precision transition-probability columns (snapshot v3,
  // or backfilled by PopulateF32Probs). Element i is exactly
  // static_cast<float>(probs()[i]); empty spans when absent.
  bool has_f32_probs() const { return has_f32_probs_; }
  std::span<const float> out_probs_f32() const { return out_probs_f32_view_; }
  std::span<const float> in_probs_f32() const { return in_probs_f32_view_; }
  std::span<const float> out_probs_f32(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_probs_f32_view_.data() + out_offsets_view_[v], out_degree(v)};
  }
  std::span<const float> in_probs_f32(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_probs_f32_view_.data() + in_offsets_view_[v], in_degree(v)};
  }
  // Backfills the f32 prob columns from the f64 ones (no-op when already
  // present). Not thread-safe: call before the graph is shared.
  void PopulateF32Probs();

  // True when the columns borrow from a MappedSnapshot instead of owning
  // vectors. The spans stay valid for this Graph's lifetime either way.
  bool is_mapped() const { return mapping_ != nullptr; }

  // Deep-copies every column into owning vectors and drops the mapping
  // reference. Identity for graphs that already own their storage.
  Graph MaterializeOwning() const;

  // Total outgoing weight of v (0 for dangling nodes).
  double out_weight(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_weights_view_[v];
  }

  // Samples an out-neighbor of v by transition probability given one uniform
  // draw u in [0, 1): walks the cumulative probs and falls back to the last
  // target under floating-point round-off. Returns kInvalidNode when v is
  // dangling. The inner loop of every Monte-Carlo walker in the repo.
  NodeId SampleOutNeighbor(NodeId v, double u) const {
    DCHECK_LT(v, num_nodes());
    const size_t begin = out_offsets_view_[v];
    const size_t end = out_offsets_view_[v + 1];
    if (begin == end) return kInvalidNode;
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) {
      acc += out_probs_view_[i];
      if (u < acc) return out_targets_view_[i];
    }
    return out_targets_view_[end - 1];
  }

  // One-step transition probability M[u][v]; 0 if the arc does not exist.
  // O(out_degree(u)) lookup, intended for tests and small-scale tools.
  double TransitionProb(NodeId u, NodeId v) const;

  // All nodes of the given type, in id order.
  std::vector<NodeId> NodesOfType(NodeTypeId t) const;

  // Approximate resident size of the CSR structures in bytes; this is the
  // "snapshot size" metric of Fig. 12. For a mapped graph this counts the
  // borrowed (file-backed) bytes, which are shared across processes.
  size_t MemoryBytes() const;

  // Average total degree (arcs / nodes), the D-bar of Sect. V-B1.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_arcs()) /
                     static_cast<double>(num_nodes());
  }

 private:
  friend class GraphBuilder;
  // graph/snapshot.cc: reconstructs the frozen columns from a binary
  // snapshot without a GraphBuilder replay, or points the views straight
  // into a MappedSnapshot.
  friend class SnapshotCodec;
  // graph/delta.cc: assembles the next generation's columns from the
  // previous generation plus a GraphDelta, touching only mutated rows.
  friend class DeltaOps;

  // Points every view at its owning vector. Builders/codecs that fill the
  // vectors directly must call this before handing the Graph out.
  void RebindViews();
  // Rebinds only the views whose owning vector is non-empty; borrowed
  // (mapped or empty) columns keep the view they were copied with. Used by
  // the copy constructor, where owning columns must re-anchor on the copy's
  // own vectors.
  void RebindOwnedViews();

  // Owning storage. Empty for columns that borrow from `mapping_`.
  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> type_names_;  // always owned

  std::vector<size_t> out_offsets_;       // size num_nodes()+1
  std::vector<NodeId> out_targets_;       // column: arc target
  std::vector<double> out_arc_weights_;   // column: raw arc weight
  std::vector<double> out_probs_;         // column: M[source][target]
  std::vector<double> out_weights_;       // per node: total out weight

  std::vector<size_t> in_offsets_;        // size num_nodes()+1
  std::vector<NodeId> in_sources_;        // column: arc source
  std::vector<double> in_arc_weights_;    // column: raw arc weight
  std::vector<double> in_probs_;          // column: M[source][this]

  std::vector<float> out_probs_f32_;      // optional f32 twin of out_probs_
  std::vector<float> in_probs_f32_;       // optional f32 twin of in_probs_

  // Column views: alias the vectors above, or borrow from `mapping_`.
  std::span<const NodeTypeId> node_types_view_;
  std::span<const size_t> out_offsets_view_;
  std::span<const NodeId> out_targets_view_;
  std::span<const double> out_arc_weights_view_;
  std::span<const double> out_probs_view_;
  std::span<const double> out_weights_view_;
  std::span<const size_t> in_offsets_view_;
  std::span<const NodeId> in_sources_view_;
  std::span<const double> in_arc_weights_view_;
  std::span<const double> in_probs_view_;
  std::span<const float> out_probs_f32_view_;
  std::span<const float> in_probs_f32_view_;

  bool has_f32_probs_ = false;
  // Keeps the mmap alive while any view borrows from it; null for graphs
  // that own all their columns.
  std::shared_ptr<const MappedSnapshot> mapping_;
};

// Returns a copy of `g` with every arc's weight replaced by 1 (transition
// probabilities become uniform over out-arcs). This is the authority-flow
// view used by the ObjectRank family, which transfers authority by link
// structure alone rather than by content-derived edge weights.
Graph UniformWeightCopy(const Graph& g);

}  // namespace rtr

#endif  // RTR_GRAPH_GRAPH_H_
