#ifndef RTR_GRAPH_GRAPH_H_
#define RTR_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace rtr {

// Immutable directed weighted graph in CSR form, with both out- and
// in-adjacency and precomputed row-stochastic transition probabilities.
//
// Random-walk semantics (Sect. III of the paper): from node v the surfer
// moves to out-neighbor u with probability M[v][u] = w(v,u) / sum_u' w(v,u').
// Undirected edges are materialized as two arcs by the builder. Nodes with no
// out-arcs are "dangling": the walk terminates there (no mass redistributed),
// matching the iterative formulations in Eqs. 5 and 8.
//
// Construct via GraphBuilder::Build().
//
// Thread safety: a Graph never mutates after Build(), and every member
// function is const and touches only the frozen CSR arrays. Any number of
// threads may therefore share one Graph with no synchronization — the
// contract the serving layer (serve::QueryService) relies on to run one
// graph under a worker pool.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t num_nodes() const { return node_types_.size(); }
  // Number of directed arcs (an undirected edge counts twice).
  size_t num_arcs() const { return out_arcs_.size(); }

  NodeTypeId node_type(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return node_types_[v];
  }

  // Registered type names; index is the NodeTypeId.
  const std::vector<std::string>& type_names() const { return type_names_; }
  const std::string& type_name(NodeTypeId t) const {
    DCHECK_LT(t, type_names_.size());
    return type_names_[t];
  }

  size_t out_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t in_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  std::span<const OutArc> out_arcs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_arcs_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const InArc> in_arcs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_arcs_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  // Total outgoing weight of v (0 for dangling nodes).
  double out_weight(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_weights_[v];
  }

  // One-step transition probability M[u][v]; 0 if the arc does not exist.
  // O(out_degree(u)) lookup, intended for tests and small-scale tools.
  double TransitionProb(NodeId u, NodeId v) const;

  // All nodes of the given type, in id order.
  std::vector<NodeId> NodesOfType(NodeTypeId t) const;

  // Approximate resident size of the CSR structures in bytes; this is the
  // "snapshot size" metric of Fig. 12.
  size_t MemoryBytes() const;

  // Average total degree (arcs / nodes), the D-bar of Sect. V-B1.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_arcs()) /
                     static_cast<double>(num_nodes());
  }

 private:
  friend class GraphBuilder;

  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> type_names_;

  std::vector<size_t> out_offsets_;  // size num_nodes()+1
  std::vector<OutArc> out_arcs_;
  std::vector<double> out_weights_;

  std::vector<size_t> in_offsets_;  // size num_nodes()+1
  std::vector<InArc> in_arcs_;
};

// Returns a copy of `g` with every arc's weight replaced by 1 (transition
// probabilities become uniform over out-arcs). This is the authority-flow
// view used by the ObjectRank family, which transfers authority by link
// structure alone rather than by content-derived edge weights.
Graph UniformWeightCopy(const Graph& g);

}  // namespace rtr

#endif  // RTR_GRAPH_GRAPH_H_
