#ifndef RTR_GRAPH_GRAPH_H_
#define RTR_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace rtr {

// Immutable directed weighted graph in columnar (structure-of-arrays) CSR
// form, with both out- and in-adjacency and precomputed row-stochastic
// transition probabilities.
//
// Random-walk semantics (Sect. III of the paper): from node v the surfer
// moves to out-neighbor u with probability M[v][u] = w(v,u) / sum_u' w(v,u').
// Undirected edges are materialized as two arcs by the builder. Nodes with no
// out-arcs are "dangling": the walk terminates there (no mass redistributed),
// matching the iterative formulations in Eqs. 5 and 8.
//
// Storage layout: each adjacency direction is three parallel columns —
// endpoint ids (u32), raw weights (f64), transition probabilities (f64) —
// indexed by one offsets array. The online 2SBound phase is memory-bandwidth
// bound, and its hot loops only read (endpoint, prob); splitting the columns
// keeps the weight column out of the cache on those paths (12 bytes per arc
// streamed instead of the 24-byte arc records of the old AoS layout). The
// frozen columns are also exactly what the binary snapshot format
// (graph/snapshot.h) writes and reads verbatim.
//
// Construct via GraphBuilder::Build() or LoadGraphSnapshot().
//
// Thread safety: a Graph never mutates after construction, and every member
// function is const and touches only the frozen columns. Any number of
// threads may therefore share one Graph with no synchronization — the
// contract the serving layer (serve::QueryService) relies on to run one
// graph under a worker pool.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t num_nodes() const { return node_types_.size(); }
  // Number of directed arcs (an undirected edge counts twice).
  size_t num_arcs() const { return out_targets_.size(); }

  NodeTypeId node_type(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return node_types_[v];
  }

  // Registered type names; index is the NodeTypeId.
  const std::vector<std::string>& type_names() const { return type_names_; }
  const std::string& type_name(NodeTypeId t) const {
    DCHECK_LT(t, type_names_.size());
    return type_names_[t];
  }

  size_t out_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t in_degree(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  // Per-node column spans. Entries at the same index within a node's spans
  // describe the same arc; out-columns are sorted by target (in-columns by
  // source) within each node.
  std::span<const NodeId> out_targets(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_targets_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const double> out_probs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_probs_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const double> out_arc_weights(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {out_arc_weights_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const NodeId> in_sources(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_sources_.data() + in_offsets_[v], in_degree(v)};
  }
  std::span<const double> in_probs(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_probs_.data() + in_offsets_[v], in_degree(v)};
  }
  std::span<const double> in_arc_weights(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return {in_arc_weights_.data() + in_offsets_[v], in_degree(v)};
  }

  // Whole-graph column views (snapshot I/O, shard extraction, column-equality
  // assertions in tests). The offsets arrays have num_nodes()+1 entries.
  std::span<const size_t> out_offsets() const { return out_offsets_; }
  std::span<const NodeId> out_targets() const { return out_targets_; }
  std::span<const double> out_probs() const { return out_probs_; }
  std::span<const double> out_arc_weights() const { return out_arc_weights_; }
  std::span<const size_t> in_offsets() const { return in_offsets_; }
  std::span<const NodeId> in_sources() const { return in_sources_; }
  std::span<const double> in_probs() const { return in_probs_; }
  std::span<const double> in_arc_weights() const { return in_arc_weights_; }

  // Total outgoing weight of v (0 for dangling nodes).
  double out_weight(NodeId v) const {
    DCHECK_LT(v, num_nodes());
    return out_weights_[v];
  }

  // Samples an out-neighbor of v by transition probability given one uniform
  // draw u in [0, 1): walks the cumulative probs and falls back to the last
  // target under floating-point round-off. Returns kInvalidNode when v is
  // dangling. The inner loop of every Monte-Carlo walker in the repo.
  NodeId SampleOutNeighbor(NodeId v, double u) const {
    DCHECK_LT(v, num_nodes());
    const size_t begin = out_offsets_[v];
    const size_t end = out_offsets_[v + 1];
    if (begin == end) return kInvalidNode;
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) {
      acc += out_probs_[i];
      if (u < acc) return out_targets_[i];
    }
    return out_targets_[end - 1];
  }

  // One-step transition probability M[u][v]; 0 if the arc does not exist.
  // O(out_degree(u)) lookup, intended for tests and small-scale tools.
  double TransitionProb(NodeId u, NodeId v) const;

  // All nodes of the given type, in id order.
  std::vector<NodeId> NodesOfType(NodeTypeId t) const;

  // Approximate resident size of the CSR structures in bytes; this is the
  // "snapshot size" metric of Fig. 12.
  size_t MemoryBytes() const;

  // Average total degree (arcs / nodes), the D-bar of Sect. V-B1.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_arcs()) /
                     static_cast<double>(num_nodes());
  }

 private:
  friend class GraphBuilder;
  // graph/snapshot.cc: reconstructs the frozen columns from a binary
  // snapshot without a GraphBuilder replay.
  friend class SnapshotCodec;
  // graph/delta.cc: assembles the next generation's columns from the
  // previous generation plus a GraphDelta, touching only mutated rows.
  friend class DeltaOps;

  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> type_names_;

  std::vector<size_t> out_offsets_;       // size num_nodes()+1
  std::vector<NodeId> out_targets_;       // column: arc target
  std::vector<double> out_arc_weights_;   // column: raw arc weight
  std::vector<double> out_probs_;         // column: M[source][target]
  std::vector<double> out_weights_;       // per node: total out weight

  std::vector<size_t> in_offsets_;        // size num_nodes()+1
  std::vector<NodeId> in_sources_;        // column: arc source
  std::vector<double> in_arc_weights_;    // column: raw arc weight
  std::vector<double> in_probs_;          // column: M[source][this]
};

// Returns a copy of `g` with every arc's weight replaced by 1 (transition
// probabilities become uniform over out-arcs). This is the authority-flow
// view used by the ObjectRank family, which transfers authority by link
// structure alone rather than by content-derived edge weights.
Graph UniformWeightCopy(const Graph& g);

}  // namespace rtr

#endif  // RTR_GRAPH_GRAPH_H_
