#ifndef RTR_GRAPH_SUBGRAPH_H_
#define RTR_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rtr {

// A subgraph together with the node-id mappings to/from the parent graph.
struct Subgraph {
  Graph graph;
  // new id -> old id; size == graph.num_nodes().
  std::vector<NodeId> to_parent;
  // old id -> new id, or kInvalidNode when the node is not in the subgraph;
  // size == parent.num_nodes().
  std::vector<NodeId> from_parent;
};

// Builds the subgraph induced by `nodes` (duplicates ignored): keeps exactly
// the arcs whose both endpoints are selected, with their original weights
// (transition probabilities are re-normalized over the kept arcs, as happens
// when the paper evaluates on hand-picked subgraphs).
StatusOr<Subgraph> InducedSubgraph(const Graph& parent,
                                   const std::vector<NodeId>& nodes);

// Nodes reachable from `seeds` within `hops` steps, treating every arc as
// traversable in both directions (the paper's QLog subgraph construction:
// "start with 200 random nodes, and expand to their neighbors for three
// hops"). Includes the seeds.
std::vector<NodeId> KHopNeighborhood(const Graph& g,
                                     const std::vector<NodeId>& seeds,
                                     int hops);

}  // namespace rtr

#endif  // RTR_GRAPH_SUBGRAPH_H_
