#include "graph/scc.h"

#include <algorithm>

#include "graph/builder.h"

namespace rtr {

SccResult ComputeScc(const Graph& g) {
  const size_t n = g.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;

  // Explicit DFS frame: node and position within its out-arc list.
  struct Frame {
    NodeId node;
    size_t arc_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId v = frame.node;
      if (frame.arc_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      auto targets = g.out_targets(v);
      while (frame.arc_pos < targets.size()) {
        NodeId w = targets[frame.arc_pos];
        ++frame.arc_pos;
        if (index[w] == -1) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // v is finished.
      if (lowlink[v] == index[v]) {
        int comp = result.num_components++;
        for (;;) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component[w] = comp;
          if (w == v) break;
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

bool IsStronglyConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ComputeScc(g).num_components == 1;
}

StatusOr<Graph> MakeIrreducible(const Graph& g, double epsilon_weight) {
  if (!(epsilon_weight > 0.0)) {
    return Status::InvalidArgument("epsilon_weight must be positive");
  }
  SccResult scc = ComputeScc(g);
  if (scc.num_components <= 1) return g;

  // One representative node per component.
  std::vector<NodeId> representative(scc.num_components, kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (representative[scc.component[v]] == kInvalidNode) {
      representative[scc.component[v]] = v;
    }
  }

  // Rebuild with the original arcs plus a cycle over the representatives.
  // Tarjan numbering is a reverse topological order of the condensation, so
  // chaining representatives in component order plus a closing arc yields a
  // strongly connected condensation.
  GraphBuilder builder;
  for (const std::string& name : g.type_names()) builder.AddNodeType(name);
  for (NodeId v = 0; v < g.num_nodes(); ++v) builder.AddNode(g.node_type(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto targets = g.out_targets(v);
    auto weights = g.out_arc_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      builder.AddDirectedEdge(v, targets[i], weights[i]);
    }
  }
  for (int c = 0; c < scc.num_components; ++c) {
    int next = (c + 1) % scc.num_components;
    builder.AddDirectedEdge(representative[c], representative[next],
                            epsilon_weight);
  }
  return builder.Build();
}

}  // namespace rtr
