#ifndef RTR_GRAPH_TYPES_H_
#define RTR_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace rtr {

// Dense node identifier. Nodes are numbered 0..n-1 by the GraphBuilder.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Per-graph node type (e.g., paper/author/term/venue on BibNet, phrase/url on
// QLog). Type names are registered on the builder and carried by the graph.
using NodeTypeId = uint16_t;

inline constexpr NodeTypeId kUntypedNode = 0;

// Query: one or more nodes; proximity for multi-node queries follows the
// Linearity Theorem (uniform mixture over the query nodes).
using Query = std::vector<NodeId>;

}  // namespace rtr

#endif  // RTR_GRAPH_TYPES_H_
