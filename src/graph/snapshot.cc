#include "graph/snapshot.h"

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RTR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "graph/io.h"
#include "obs/metrics.h"

namespace rtr {
namespace {

// The format stores the size_t offset columns verbatim as u64 and writes
// multi-byte values in native order; rtr targets 64-bit little-endian.
static_assert(sizeof(size_t) == 8, "rtr-snap 1 assumes 64-bit size_t");
static_assert(std::endian::native == std::endian::little,
              "rtr-snap 1 assumes a little-endian host");

constexpr size_t kHeaderBytes = 64;
// Far above any graph this system serves; keeps the size arithmetic below
// safely inside 64 bits for arbitrary (hostile) header values.
constexpr uint64_t kMaxSnapshotArcs = uint64_t{1} << 48;

bool g_mmap_fail_for_testing = false;

// Truthy env flag: set, non-empty, and not one of the usual "off" spellings.
bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

// FNV-1a over the payload interpreted as 64-bit little-endian words. Every
// payload section is zero-padded to 8 bytes, so the payload is always a
// whole number of words; hashing word-wise keeps the integrity pass an
// order of magnitude cheaper than byte-wise FNV on multi-GB snapshots.
uint64_t Fnv1a64Words(const char* data, size_t n) {
  DCHECK_EQ(n % 8, 0u);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr size_t Padded(size_t n) { return (n + 7) & ~size_t{7}; }

void AppendRaw(std::string* buf, const void* data, size_t n) {
  if (n > 0) buf->append(static_cast<const char*>(data), n);
}

void AppendPadding(std::string* buf) {
  buf->append(Padded(buf->size()) - buf->size(), '\0');
}

template <typename T>
void AppendU(std::string* buf, T value) {
  AppendRaw(buf, &value, sizeof(value));
}

template <typename T>
void AppendColumn(std::string* buf, std::span<const T> column) {
  AppendRaw(buf, column.data(), column.size() * sizeof(T));
  AppendPadding(buf);
}

// The f32 prob columns are defined as exact casts of the f64 ones, so the
// writer always derives them from the f64 column — byte-identical whether
// or not the in-memory graph already carries an f32 twin.
void AppendF32CastColumn(std::string* buf, std::span<const double> column) {
  for (double v : column) AppendU<float>(buf, static_cast<float>(v));
  AppendPadding(buf);
}

// Copies a column out of the payload into an owning vector (bulk loader).
template <typename T>
Status ReadColumn(std::string_view buf, size_t* pos, size_t count,
                  std::vector<T>* out, const char* what) {
  const size_t bytes = count * sizeof(T);
  if (bytes > buf.size() || *pos > buf.size() - bytes) {
    return Status::IoError(std::string("snapshot truncated in ") + what);
  }
  out->resize(count);
  if (bytes > 0) std::memcpy(out->data(), buf.data() + *pos, bytes);
  *pos += Padded(bytes);
  return Status::OK();
}

// Points a span at a column in place (mapped loader). Every section start
// is 8-aligned within the payload and the mapping itself is page-aligned,
// so the alignment check only fires on hand-corrupted inputs — but a
// misaligned reinterpret_cast would be UB, so it is a hard error (the
// caller falls back to the bulk loader).
template <typename T>
Status BorrowColumn(std::string_view buf, size_t* pos, size_t count,
                    std::span<const T>* out, const char* what) {
  const size_t bytes = count * sizeof(T);
  if (bytes > buf.size() || *pos > buf.size() - bytes) {
    return Status::IoError(std::string("snapshot truncated in ") + what);
  }
  const char* p = buf.data() + *pos;
  if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) {
    return Status::IoError(std::string("snapshot column misaligned: ") + what);
  }
  *out = {reinterpret_cast<const T*>(p), count};
  *pos += Padded(bytes);
  return Status::OK();
}

Status ValidateOffsets(std::span<const size_t> offsets, size_t num_arcs,
                       const char* what) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != num_arcs) {
    return Status::IoError(std::string(what) + " do not span the arc count");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IoError(std::string(what) + " are not monotone");
    }
  }
  return Status::OK();
}

Status ValidateEndpoints(std::span<const NodeId> endpoints, size_t num_nodes,
                         const char* what) {
  for (NodeId v : endpoints) {
    if (v >= num_nodes) {
      return Status::IoError(std::string(what) + " endpoint out of range");
    }
  }
  return Status::OK();
}

// Parses the length-prefixed type-name block (shared by both loaders; type
// names are always owned strings, even on the mapped path).
Status ParseTypeNames(std::string_view payload, uint64_t num_types,
                      uint64_t type_block_bytes,
                      std::vector<std::string>* names) {
  if (type_block_bytes > payload.size()) {
    return Status::IoError("snapshot truncated in type names");
  }
  size_t pos = 0;
  names->reserve(num_types);
  for (uint64_t t = 0; t < num_types; ++t) {
    uint32_t len = 0;
    if (pos + sizeof(len) > type_block_bytes) {
      return Status::IoError("snapshot type-name block truncated");
    }
    std::memcpy(&len, payload.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (len > type_block_bytes - pos) {
      return Status::IoError("snapshot type name overruns its block");
    }
    names->emplace_back(payload.data() + pos, len);
    pos += len;
  }
  if (type_block_bytes - pos >= 8) {
    return Status::IoError("snapshot type-name block has slack");
  }
  return Status::OK();
}

}  // namespace

// Friend of Graph: packs and unpacks the frozen columns without a
// GraphBuilder replay, either copying them (Deserialize) or aliasing them
// inside a MappedSnapshot (DeserializeBorrowed).
class SnapshotCodec {
 public:
  // Everything after the 64-byte header. Reads through the column views, so
  // mapped graphs serialize the same as owning ones.
  static std::string SerializePayload(const Graph& g, bool f32_probs) {
    std::string payload;
    payload.reserve(g.MemoryBytes() + 64 * g.type_names().size());
    for (const std::string& name : g.type_names()) {
      AppendU<uint32_t>(&payload, static_cast<uint32_t>(name.size()));
      AppendRaw(&payload, name.data(), name.size());
    }
    AppendPadding(&payload);  // type_block_bytes ends 8-aligned
    AppendColumn(&payload, g.node_types());
    AppendColumn(&payload, g.out_offsets());
    AppendColumn(&payload, g.out_targets());
    AppendColumn(&payload, g.out_arc_weights());
    AppendColumn(&payload, g.out_probs());
    AppendColumn(&payload, g.out_weights());
    AppendColumn(&payload, g.in_offsets());
    AppendColumn(&payload, g.in_sources());
    AppendColumn(&payload, g.in_arc_weights());
    AppendColumn(&payload, g.in_probs());
    if (f32_probs) {
      AppendF32CastColumn(&payload, g.out_probs());
      AppendF32CastColumn(&payload, g.in_probs());
    }
    return payload;
  }

  static size_t TypeBlockBytes(const Graph& g) {
    size_t bytes = 0;
    for (const std::string& name : g.type_names()) {
      bytes += sizeof(uint32_t) + name.size();
    }
    return Padded(bytes);
  }

  // Structural validation over the bound views: a load that returns OK must
  // yield a graph every consumer can traverse without bounds checks.
  static Status ValidateGraph(const Graph& g, uint64_t num_types,
                              uint64_t num_nodes, uint64_t num_arcs) {
    for (NodeTypeId t : g.node_types()) {
      if (t >= num_types) return Status::IoError("snapshot node type invalid");
    }
    RTR_RETURN_IF_ERROR(ValidateOffsets(g.out_offsets(), num_arcs,
                                        "snapshot out-offsets"));
    RTR_RETURN_IF_ERROR(ValidateOffsets(g.in_offsets(), num_arcs,
                                        "snapshot in-offsets"));
    RTR_RETURN_IF_ERROR(ValidateEndpoints(g.out_targets(), num_nodes,
                                          "snapshot out-arc"));
    RTR_RETURN_IF_ERROR(ValidateEndpoints(g.in_sources(), num_nodes,
                                          "snapshot in-arc"));
    return Status::OK();
  }

  static StatusOr<Graph> Deserialize(uint64_t num_types, uint64_t num_nodes,
                                     uint64_t num_arcs,
                                     uint64_t type_block_bytes, bool has_f32,
                                     std::string_view payload) {
    Graph g;
    RTR_RETURN_IF_ERROR(
        ParseTypeNames(payload, num_types, type_block_bytes, &g.type_names_));
    size_t pos = type_block_bytes;

    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_nodes, &g.node_types_, "node types"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes + 1,
                                   &g.out_offsets_, "out offsets"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.out_targets_, "out targets"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                   &g.out_arc_weights_, "out weights"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.out_probs_, "out probs"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes, &g.out_weights_,
                                   "node out-weights"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes + 1,
                                   &g.in_offsets_, "in offsets"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.in_sources_, "in sources"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                   &g.in_arc_weights_, "in weights"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.in_probs_, "in probs"));
    if (has_f32) {
      RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                     &g.out_probs_f32_, "out probs f32"));
      RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                     &g.in_probs_f32_, "in probs f32"));
      g.has_f32_probs_ = true;
    }
    if (pos != payload.size()) {
      return Status::IoError("snapshot has trailing garbage");
    }
    g.RebindViews();
    RTR_RETURN_IF_ERROR(ValidateGraph(g, num_types, num_nodes, num_arcs));
    return g;
  }

  // Zero-copy twin of Deserialize: binds the column views straight into the
  // mapped payload and stores `mapping` to keep the pages alive. Only the
  // type names are copied out (owned strings).
  static StatusOr<Graph> DeserializeBorrowed(
      uint64_t num_types, uint64_t num_nodes, uint64_t num_arcs,
      uint64_t type_block_bytes, bool has_f32, std::string_view payload,
      std::shared_ptr<const MappedSnapshot> mapping) {
    Graph g;
    RTR_RETURN_IF_ERROR(
        ParseTypeNames(payload, num_types, type_block_bytes, &g.type_names_));
    size_t pos = type_block_bytes;

    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_nodes,
                                     &g.node_types_view_, "node types"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_nodes + 1,
                                     &g.out_offsets_view_, "out offsets"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.out_targets_view_, "out targets"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.out_arc_weights_view_,
                                     "out weights"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.out_probs_view_, "out probs"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_nodes,
                                     &g.out_weights_view_,
                                     "node out-weights"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_nodes + 1,
                                     &g.in_offsets_view_, "in offsets"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.in_sources_view_, "in sources"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.in_arc_weights_view_, "in weights"));
    RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                     &g.in_probs_view_, "in probs"));
    if (has_f32) {
      RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                       &g.out_probs_f32_view_,
                                       "out probs f32"));
      RTR_RETURN_IF_ERROR(BorrowColumn(payload, &pos, num_arcs,
                                       &g.in_probs_f32_view_,
                                       "in probs f32"));
      g.has_f32_probs_ = true;
    }
    if (pos != payload.size()) {
      return Status::IoError("snapshot has trailing garbage");
    }
    g.mapping_ = std::move(mapping);
    RTR_RETURN_IF_ERROR(ValidateGraph(g, num_types, num_nodes, num_arcs));
    return g;
  }
};

Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         const SnapshotWriteOptions& options) {
  const std::string payload =
      SnapshotCodec::SerializePayload(g, options.f32_probs);

  std::string header;
  header.reserve(kHeaderBytes);
  AppendRaw(&header, kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU<uint32_t>(&header,
                    options.f32_probs ? kSnapshotF32Version : kSnapshotVersion);
  AppendU<uint32_t>(&header, static_cast<uint32_t>(kHeaderBytes));
  AppendU<uint64_t>(&header, g.type_names().size());
  AppendU<uint64_t>(&header, g.num_nodes());
  AppendU<uint64_t>(&header, g.num_arcs());
  AppendU<uint64_t>(&header, SnapshotCodec::TypeBlockBytes(g));
  AppendU<uint64_t>(&header, Fnv1a64Words(payload.data(), payload.size()));
  AppendU<uint64_t>(&header, options.generation);
  DCHECK_EQ(header.size(), kHeaderBytes);

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IoError("failed writing snapshot stream");
  return Status::OK();
}

Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         uint64_t generation) {
  SnapshotWriteOptions options;
  options.generation = generation;
  return SaveGraphSnapshot(g, out, options);
}

Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               const SnapshotWriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return SaveGraphSnapshot(g, out, options);
}

Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               uint64_t generation) {
  SnapshotWriteOptions options;
  options.generation = generation;
  return SaveGraphSnapshotToFile(g, path, options);
}

namespace {

struct SnapshotHeader {
  SnapshotFileInfo info;
  uint64_t type_block_bytes = 0;
  Status status = Status::OK();
};

// Parses and validates the fixed 64-byte header; `buf` may be just the
// header (ReadSnapshotFileInfo) or the whole file.
SnapshotHeader ParseSnapshotHeader(std::string_view buf) {
  SnapshotHeader h;
  if (buf.size() < kHeaderBytes) {
    h.status = Status::IoError("snapshot shorter than its header");
    return h;
  }
  if (std::memcmp(buf.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    h.status = Status::IoError("bad snapshot magic");
    return h;
  }
  uint32_t version = 0, header_bytes = 0;
  std::memcpy(&version, buf.data() + 8, sizeof(version));
  std::memcpy(&header_bytes, buf.data() + 12, sizeof(header_bytes));
  if (version < kMinSnapshotVersion || version > kMaxSnapshotVersion) {
    h.status = Status::IoError("unsupported snapshot version " +
                               std::to_string(version));
    return h;
  }
  if (header_bytes != kHeaderBytes) {
    h.status = Status::IoError("bad snapshot header size");
    return h;
  }
  uint64_t fields[6];
  std::memcpy(fields, buf.data() + 16, sizeof(fields));
  h.info.version = version;
  h.info.num_types = fields[0];
  h.info.num_nodes = fields[1];
  h.info.num_arcs = fields[2];
  h.type_block_bytes = fields[3];
  h.info.payload_checksum = fields[4];
  h.info.has_f32_probs = version >= kSnapshotF32Version;
  // v1 wrote a zeroed reserved word where v2 keeps the generation id; either
  // way the value is the generation the file represents.
  h.info.generation = fields[5];
  if (version < 2 && h.info.generation != 0) {
    h.status = Status::IoError("v1 snapshot has nonzero reserved field");
  }
  return h;
}

// Header parse + range checks + exact-size check, shared by the bulk and
// mapped loaders. On OK, `payload` views everything after the header.
Status CheckSnapshotShape(std::string_view buf, SnapshotHeader* header,
                          std::string_view* payload) {
  *header = ParseSnapshotHeader(buf);
  RTR_RETURN_IF_ERROR(header->status);
  const uint64_t num_types = header->info.num_types;
  const uint64_t num_nodes = header->info.num_nodes;
  const uint64_t num_arcs = header->info.num_arcs;
  const uint64_t type_block_bytes = header->type_block_bytes;

  // Range checks before any size arithmetic. NodeId is u32: a node count at
  // or beyond kInvalidNode cannot be indexed (u32 overflow guard).
  if (num_nodes >= kInvalidNode) {
    return Status::IoError("snapshot node count overflows NodeId");
  }
  if (num_types == 0 || num_types > std::numeric_limits<NodeTypeId>::max()) {
    return Status::IoError("snapshot type count out of range");
  }
  if (num_arcs > kMaxSnapshotArcs) {
    return Status::IoError("snapshot arc count out of range");
  }
  if (type_block_bytes % 8 != 0 || type_block_bytes > buf.size()) {
    return Status::IoError("snapshot type-name block size invalid");
  }

  // Exact-size check: truncated and oversized (trailing-garbage) files are
  // both rejected before the checksum pass.
  uint64_t expected_payload =
      type_block_bytes + Padded(num_nodes * sizeof(NodeTypeId)) +
      2 * ((num_nodes + 1) * sizeof(uint64_t)) +     // offsets
      2 * Padded(num_arcs * sizeof(NodeId)) +        // targets + sources
      4 * (num_arcs * sizeof(double)) +              // arc weights + probs
      num_nodes * sizeof(double);                    // per-node out-weights
  if (header->info.has_f32_probs) {
    expected_payload += 2 * Padded(num_arcs * sizeof(float));
  }
  if (buf.size() - kHeaderBytes != expected_payload) {
    return Status::IoError(
        buf.size() - kHeaderBytes < expected_payload
            ? "snapshot truncated (arc/node counts disagree with file size)"
            : "snapshot has trailing garbage");
  }
  *payload = std::string_view(buf.data() + kHeaderBytes,
                              buf.size() - kHeaderBytes);
  return Status::OK();
}

StatusOr<Graph> LoadGraphSnapshotBuffer(std::string_view buf,
                                        uint64_t* generation) {
  SnapshotHeader header;
  std::string_view payload;
  RTR_RETURN_IF_ERROR(CheckSnapshotShape(buf, &header, &payload));
  if (Fnv1a64Words(payload.data(), payload.size()) !=
      header.info.payload_checksum) {
    return Status::IoError("snapshot checksum mismatch");
  }
  StatusOr<Graph> g = SnapshotCodec::Deserialize(
      header.info.num_types, header.info.num_nodes, header.info.num_arcs,
      header.type_block_bytes, header.info.has_f32_probs, payload);
  if (g.ok() && generation != nullptr) *generation = header.info.generation;
  return g;
}

}  // namespace

StatusOr<Graph> LoadGraphSnapshot(std::istream& in, uint64_t* generation) {
  std::string buf(std::istreambuf_iterator<char>(in), {});
  return LoadGraphSnapshotBuffer(buf, generation);
}

StatusOr<Graph> LoadGraphSnapshotFromFile(const std::string& path,
                                          uint64_t* generation) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IoError("cannot determine snapshot size: " + path);
  }
  in.seekg(0);
  // One bulk read of the whole file; the columns are then block-copied into
  // place (see SnapshotCodec::Deserialize) with no per-arc work.
  std::string buf(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(buf.data(), size)) {
    return Status::IoError("failed reading snapshot: " + path);
  }
  return LoadGraphSnapshotBuffer(buf, generation);
}

MappedSnapshot::~MappedSnapshot() {
#if defined(RTR_HAVE_MMAP)
  if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
}

StatusOr<std::shared_ptr<const MappedSnapshot>> MappedSnapshot::Map(
    const std::string& path) {
  if (g_mmap_fail_for_testing) {
    return Status::IoError("mmap failure injected for testing");
  }
#if defined(RTR_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot mmap non-regular file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::IoError("cannot mmap empty file: " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  // Advisory only: tells readahead the whole snapshot is about to be
  // touched. First-touch latency stays O(page faults) either way.
  ::madvise(addr, size, MADV_WILLNEED);
  return std::shared_ptr<const MappedSnapshot>(new MappedSnapshot(addr, size));
#else
  return Status::IoError("mmap is not supported on this platform");
#endif
}

void SetMmapFailForTesting(bool fail) { g_mmap_fail_for_testing = fail; }

StatusOr<Graph> LoadGraphMapped(const std::string& path,
                                uint64_t* generation) {
  StatusOr<std::shared_ptr<const MappedSnapshot>> mapped =
      MappedSnapshot::Map(path);
  RTR_RETURN_IF_ERROR(mapped.status());
  std::shared_ptr<const MappedSnapshot> mapping = std::move(mapped).value();
  const std::string_view buf(mapping->data(), mapping->size());
  SnapshotHeader header;
  std::string_view payload;
  RTR_RETURN_IF_ERROR(CheckSnapshotShape(buf, &header, &payload));
  // The full checksum would fault in every page up front, defeating the
  // zero-copy cold start; structural validation below still touches the
  // header, offsets, endpoint and node-type pages. RTR_MMAP_VERIFY=1 forces
  // the integrity pass for operators who want it.
  if (EnvFlagSet("RTR_MMAP_VERIFY") &&
      Fnv1a64Words(payload.data(), payload.size()) !=
          header.info.payload_checksum) {
    return Status::IoError("snapshot checksum mismatch");
  }
  StatusOr<Graph> g = SnapshotCodec::DeserializeBorrowed(
      header.info.num_types, header.info.num_nodes, header.info.num_arcs,
      header.type_block_bytes, header.info.has_f32_probs, payload,
      std::move(mapping));
  if (g.ok() && generation != nullptr) *generation = header.info.generation;
  return g;
}

StatusOr<SnapshotFileInfo> ReadSnapshotFileInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string buf(kHeaderBytes, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<size_t>(in.gcount()));
  SnapshotHeader header = ParseSnapshotHeader(buf);
  RTR_RETURN_IF_ERROR(header.status);
  return header.info;
}

StatusOr<bool> IsSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[sizeof(kSnapshotMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

namespace {

MapMode ResolveMapMode(MapMode mode) {
  if (mode != MapMode::kAuto) return mode;
  return EnvFlagSet("RTR_GRAPH_MMAP") ? MapMode::kPrefer : MapMode::kNever;
}

}  // namespace

StatusOr<Graph> LoadGraphAuto(const std::string& path, uint64_t* generation,
                              MapMode map_mode) {
  StatusOr<bool> is_snapshot = IsSnapshotFile(path);
  RTR_RETURN_IF_ERROR(is_snapshot.status());
  if (*is_snapshot) {
    const MapMode mode = ResolveMapMode(map_mode);
    if (mode == MapMode::kRequire) return LoadGraphMapped(path, generation);
    if (mode == MapMode::kPrefer) {
      StatusOr<Graph> mapped = LoadGraphMapped(path, generation);
      if (mapped.ok()) return mapped;
      LOG(WARNING) << "mmap load of " << path << " failed ("
                   << mapped.status().ToString()
                   << "); falling back to bulk read";
      obs::MetricsRegistry::Default()
          .GetCounter("rtr_store_mmap_fallbacks")
          ->Increment();
    }
    return LoadGraphSnapshotFromFile(path, generation);
  }
  if (generation != nullptr) *generation = 0;
  return LoadGraphFromFile(path);
}

}  // namespace rtr
