#include "graph/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/io.h"

namespace rtr {
namespace {

// The format stores the size_t offset columns verbatim as u64 and writes
// multi-byte values in native order; rtr targets 64-bit little-endian.
static_assert(sizeof(size_t) == 8, "rtr-snap 1 assumes 64-bit size_t");
static_assert(std::endian::native == std::endian::little,
              "rtr-snap 1 assumes a little-endian host");

constexpr size_t kHeaderBytes = 64;
// Far above any graph this system serves; keeps the size arithmetic below
// safely inside 64 bits for arbitrary (hostile) header values.
constexpr uint64_t kMaxSnapshotArcs = uint64_t{1} << 48;

// FNV-1a over the payload interpreted as 64-bit little-endian words. Every
// payload section is zero-padded to 8 bytes, so the payload is always a
// whole number of words; hashing word-wise keeps the integrity pass an
// order of magnitude cheaper than byte-wise FNV on multi-GB snapshots.
uint64_t Fnv1a64Words(const char* data, size_t n) {
  DCHECK_EQ(n % 8, 0u);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr size_t Padded(size_t n) { return (n + 7) & ~size_t{7}; }

void AppendRaw(std::string* buf, const void* data, size_t n) {
  if (n > 0) buf->append(static_cast<const char*>(data), n);
}

void AppendPadding(std::string* buf) {
  buf->append(Padded(buf->size()) - buf->size(), '\0');
}

template <typename T>
void AppendU(std::string* buf, T value) {
  AppendRaw(buf, &value, sizeof(value));
}

template <typename T>
void AppendColumn(std::string* buf, const std::vector<T>& column) {
  AppendRaw(buf, column.data(), column.size() * sizeof(T));
  AppendPadding(buf);
}

template <typename T>
Status ReadColumn(std::string_view buf, size_t* pos, size_t count,
                  std::vector<T>* out, const char* what) {
  const size_t bytes = count * sizeof(T);
  if (bytes > buf.size() || *pos > buf.size() - bytes) {
    return Status::IoError(std::string("snapshot truncated in ") + what);
  }
  out->resize(count);
  if (bytes > 0) std::memcpy(out->data(), buf.data() + *pos, bytes);
  *pos += Padded(bytes);
  return Status::OK();
}

Status ValidateOffsets(const std::vector<size_t>& offsets, size_t num_arcs,
                       const char* what) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != num_arcs) {
    return Status::IoError(std::string(what) + " do not span the arc count");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IoError(std::string(what) + " are not monotone");
    }
  }
  return Status::OK();
}

Status ValidateEndpoints(const std::vector<NodeId>& endpoints,
                         size_t num_nodes, const char* what) {
  for (NodeId v : endpoints) {
    if (v >= num_nodes) {
      return Status::IoError(std::string(what) + " endpoint out of range");
    }
  }
  return Status::OK();
}

}  // namespace

// Friend of Graph: packs and unpacks the frozen columns without a
// GraphBuilder replay.
class SnapshotCodec {
 public:
  // Everything after the 64-byte header.
  static std::string SerializePayload(const Graph& g) {
    std::string payload;
    payload.reserve(g.MemoryBytes() + 64 * g.type_names().size());
    for (const std::string& name : g.type_names()) {
      AppendU<uint32_t>(&payload, static_cast<uint32_t>(name.size()));
      AppendRaw(&payload, name.data(), name.size());
    }
    AppendPadding(&payload);  // type_block_bytes ends 8-aligned
    AppendColumn(&payload, g.node_types_);
    AppendColumn(&payload, g.out_offsets_);
    AppendColumn(&payload, g.out_targets_);
    AppendColumn(&payload, g.out_arc_weights_);
    AppendColumn(&payload, g.out_probs_);
    AppendColumn(&payload, g.out_weights_);
    AppendColumn(&payload, g.in_offsets_);
    AppendColumn(&payload, g.in_sources_);
    AppendColumn(&payload, g.in_arc_weights_);
    AppendColumn(&payload, g.in_probs_);
    return payload;
  }

  static size_t TypeBlockBytes(const Graph& g) {
    size_t bytes = 0;
    for (const std::string& name : g.type_names()) {
      bytes += sizeof(uint32_t) + name.size();
    }
    return Padded(bytes);
  }

  static StatusOr<Graph> Deserialize(uint64_t num_types, uint64_t num_nodes,
                                     uint64_t num_arcs,
                                     uint64_t type_block_bytes,
                                     std::string_view payload) {
    Graph g;

    // Type-name block (length-prefixed strings, zero-padded to 8 bytes).
    if (type_block_bytes > payload.size()) {
      return Status::IoError("snapshot truncated in type names");
    }
    size_t pos = 0;
    g.type_names_.reserve(num_types);
    for (uint64_t t = 0; t < num_types; ++t) {
      uint32_t len = 0;
      if (pos + sizeof(len) > type_block_bytes) {
        return Status::IoError("snapshot type-name block truncated");
      }
      std::memcpy(&len, payload.data() + pos, sizeof(len));
      pos += sizeof(len);
      if (len > type_block_bytes - pos) {
        return Status::IoError("snapshot type name overruns its block");
      }
      g.type_names_.emplace_back(payload.data() + pos, len);
      pos += len;
    }
    if (type_block_bytes - pos >= 8) {
      return Status::IoError("snapshot type-name block has slack");
    }
    pos = type_block_bytes;

    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_nodes, &g.node_types_, "node types"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes + 1,
                                   &g.out_offsets_, "out offsets"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.out_targets_, "out targets"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                   &g.out_arc_weights_, "out weights"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.out_probs_, "out probs"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes, &g.out_weights_,
                                   "node out-weights"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_nodes + 1,
                                   &g.in_offsets_, "in offsets"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.in_sources_, "in sources"));
    RTR_RETURN_IF_ERROR(ReadColumn(payload, &pos, num_arcs,
                                   &g.in_arc_weights_, "in weights"));
    RTR_RETURN_IF_ERROR(
        ReadColumn(payload, &pos, num_arcs, &g.in_probs_, "in probs"));
    if (pos != payload.size()) {
      return Status::IoError("snapshot has trailing garbage");
    }

    // Structural validation: a load that returns OK must yield a graph every
    // consumer can traverse without bounds checks.
    for (NodeTypeId t : g.node_types_) {
      if (t >= num_types) return Status::IoError("snapshot node type invalid");
    }
    RTR_RETURN_IF_ERROR(ValidateOffsets(g.out_offsets_, num_arcs,
                                        "snapshot out-offsets"));
    RTR_RETURN_IF_ERROR(ValidateOffsets(g.in_offsets_, num_arcs,
                                        "snapshot in-offsets"));
    RTR_RETURN_IF_ERROR(ValidateEndpoints(g.out_targets_, num_nodes,
                                          "snapshot out-arc"));
    RTR_RETURN_IF_ERROR(ValidateEndpoints(g.in_sources_, num_nodes,
                                          "snapshot in-arc"));
    return g;
  }
};

Status SaveGraphSnapshot(const Graph& g, std::ostream& out,
                         uint64_t generation) {
  const std::string payload = SnapshotCodec::SerializePayload(g);

  std::string header;
  header.reserve(kHeaderBytes);
  AppendRaw(&header, kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU<uint32_t>(&header, kSnapshotVersion);
  AppendU<uint32_t>(&header, static_cast<uint32_t>(kHeaderBytes));
  AppendU<uint64_t>(&header, g.type_names().size());
  AppendU<uint64_t>(&header, g.num_nodes());
  AppendU<uint64_t>(&header, g.num_arcs());
  AppendU<uint64_t>(&header, SnapshotCodec::TypeBlockBytes(g));
  AppendU<uint64_t>(&header, Fnv1a64Words(payload.data(), payload.size()));
  AppendU<uint64_t>(&header, generation);
  DCHECK_EQ(header.size(), kHeaderBytes);

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IoError("failed writing snapshot stream");
  return Status::OK();
}

Status SaveGraphSnapshotToFile(const Graph& g, const std::string& path,
                               uint64_t generation) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return SaveGraphSnapshot(g, out, generation);
}

namespace {

struct SnapshotHeader {
  SnapshotFileInfo info;
  uint64_t type_block_bytes = 0;
  Status status = Status::OK();
};

// Parses and validates the fixed 64-byte header; `buf` may be just the
// header (ReadSnapshotFileInfo) or the whole file.
SnapshotHeader ParseSnapshotHeader(std::string_view buf) {
  SnapshotHeader h;
  if (buf.size() < kHeaderBytes) {
    h.status = Status::IoError("snapshot shorter than its header");
    return h;
  }
  if (std::memcmp(buf.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    h.status = Status::IoError("bad snapshot magic");
    return h;
  }
  uint32_t version = 0, header_bytes = 0;
  std::memcpy(&version, buf.data() + 8, sizeof(version));
  std::memcpy(&header_bytes, buf.data() + 12, sizeof(header_bytes));
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    h.status = Status::IoError("unsupported snapshot version " +
                               std::to_string(version));
    return h;
  }
  if (header_bytes != kHeaderBytes) {
    h.status = Status::IoError("bad snapshot header size");
    return h;
  }
  uint64_t fields[6];
  std::memcpy(fields, buf.data() + 16, sizeof(fields));
  h.info.version = version;
  h.info.num_types = fields[0];
  h.info.num_nodes = fields[1];
  h.info.num_arcs = fields[2];
  h.type_block_bytes = fields[3];
  h.info.payload_checksum = fields[4];
  // v1 wrote a zeroed reserved word where v2 keeps the generation id; either
  // way the value is the generation the file represents.
  h.info.generation = fields[5];
  if (version < 2 && h.info.generation != 0) {
    h.status = Status::IoError("v1 snapshot has nonzero reserved field");
  }
  return h;
}

StatusOr<Graph> LoadGraphSnapshotBuffer(const std::string& buf,
                                        uint64_t* generation) {
  SnapshotHeader header = ParseSnapshotHeader(buf);
  RTR_RETURN_IF_ERROR(header.status);
  const uint64_t num_types = header.info.num_types;
  const uint64_t num_nodes = header.info.num_nodes;
  const uint64_t num_arcs = header.info.num_arcs;
  const uint64_t type_block_bytes = header.type_block_bytes;
  const uint64_t checksum = header.info.payload_checksum;

  // Range checks before any size arithmetic. NodeId is u32: a node count at
  // or beyond kInvalidNode cannot be indexed (u32 overflow guard).
  if (num_nodes >= kInvalidNode) {
    return Status::IoError("snapshot node count overflows NodeId");
  }
  if (num_types == 0 || num_types > std::numeric_limits<NodeTypeId>::max()) {
    return Status::IoError("snapshot type count out of range");
  }
  if (num_arcs > kMaxSnapshotArcs) {
    return Status::IoError("snapshot arc count out of range");
  }
  if (type_block_bytes % 8 != 0 || type_block_bytes > buf.size()) {
    return Status::IoError("snapshot type-name block size invalid");
  }

  // Exact-size check: truncated and oversized (trailing-garbage) files are
  // both rejected before the checksum pass.
  const uint64_t expected_payload =
      type_block_bytes + Padded(num_nodes * sizeof(NodeTypeId)) +
      2 * ((num_nodes + 1) * sizeof(uint64_t)) +     // offsets
      2 * Padded(num_arcs * sizeof(NodeId)) +        // targets + sources
      4 * (num_arcs * sizeof(double)) +              // arc weights + probs
      num_nodes * sizeof(double);                    // per-node out-weights
  if (buf.size() - kHeaderBytes != expected_payload) {
    return Status::IoError(
        buf.size() - kHeaderBytes < expected_payload
            ? "snapshot truncated (arc/node counts disagree with file size)"
            : "snapshot has trailing garbage");
  }

  const std::string_view payload(buf.data() + kHeaderBytes,
                                 buf.size() - kHeaderBytes);
  if (Fnv1a64Words(payload.data(), payload.size()) != checksum) {
    return Status::IoError("snapshot checksum mismatch");
  }
  StatusOr<Graph> g = SnapshotCodec::Deserialize(num_types, num_nodes,
                                                 num_arcs, type_block_bytes,
                                                 payload);
  if (g.ok() && generation != nullptr) *generation = header.info.generation;
  return g;
}

}  // namespace

StatusOr<Graph> LoadGraphSnapshot(std::istream& in, uint64_t* generation) {
  std::string buf(std::istreambuf_iterator<char>(in), {});
  return LoadGraphSnapshotBuffer(buf, generation);
}

StatusOr<Graph> LoadGraphSnapshotFromFile(const std::string& path,
                                          uint64_t* generation) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IoError("cannot determine snapshot size: " + path);
  }
  in.seekg(0);
  // One bulk read of the whole file; the columns are then block-copied into
  // place (see SnapshotCodec::Deserialize) with no per-arc work.
  std::string buf(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(buf.data(), size)) {
    return Status::IoError("failed reading snapshot: " + path);
  }
  return LoadGraphSnapshotBuffer(buf, generation);
}

StatusOr<SnapshotFileInfo> ReadSnapshotFileInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string buf(kHeaderBytes, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<size_t>(in.gcount()));
  SnapshotHeader header = ParseSnapshotHeader(buf);
  RTR_RETURN_IF_ERROR(header.status);
  return header.info;
}

StatusOr<bool> IsSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[sizeof(kSnapshotMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

StatusOr<Graph> LoadGraphAuto(const std::string& path, uint64_t* generation) {
  StatusOr<bool> is_snapshot = IsSnapshotFile(path);
  RTR_RETURN_IF_ERROR(is_snapshot.status());
  if (*is_snapshot) return LoadGraphSnapshotFromFile(path, generation);
  if (generation != nullptr) *generation = 0;
  return LoadGraphFromFile(path);
}

}  // namespace rtr
