#include "graph/delta.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <string_view>
#include <utility>

namespace rtr {
namespace {

static_assert(sizeof(size_t) == 8, "rtr-delt 1 assumes 64-bit size_t");
static_assert(std::endian::native == std::endian::little,
              "rtr-delt 1 assumes a little-endian host");

// One delta operation in (source, target) order. Removals sort before the
// inserts on the same arc (a delta removes first, then inserts — so
// remove-then-readd replaces the weight); inserts on one arc keep their
// added_arcs order so repeated inserts accumulate deterministically.
struct Op {
  NodeId source;
  NodeId target;
  double weight;  // 0 for removals
  bool remove;
  uint32_t seq;

  bool operator<(const Op& other) const {
    if (source != other.source) return source < other.source;
    if (target != other.target) return target < other.target;
    if (remove != other.remove) return remove;  // removal first
    return seq < other.seq;
  }
};

std::string ArcName(NodeId u, NodeId v) {
  return std::to_string(u) + "->" + std::to_string(v);
}

// Binary search for `target` in a node's sorted out-targets span; returns
// the in-span index or npos.
size_t FindArcSlot(std::span<const NodeId> targets, NodeId target) {
  auto it = std::lower_bound(targets.begin(), targets.end(), target);
  if (it == targets.end() || *it != target) {
    return std::string::npos;
  }
  return static_cast<size_t>(it - targets.begin());
}

}  // namespace

// Friend of Graph: assembles the next generation's frozen columns directly,
// block-copying every row the delta does not touch.
class DeltaOps {
 public:
  static StatusOr<Graph> Apply(const Graph& base, const GraphDelta& delta) {
    const size_t old_n = base.num_nodes();
    const size_t n = old_n + delta.added_node_types.size();
    const size_t num_types =
        base.type_names().size() + delta.added_type_names.size();

    // ---- Validation (all-or-nothing: nothing is built until it passes).
    if (n >= kInvalidNode) {
      return Status::InvalidArgument("delta node count overflows NodeId");
    }
    if (num_types > std::numeric_limits<NodeTypeId>::max()) {
      return Status::InvalidArgument("delta type count overflows NodeTypeId");
    }
    for (NodeTypeId t : delta.added_node_types) {
      if (t >= num_types) {
        return Status::InvalidArgument("added node type out of range");
      }
    }
    for (const ArcRemove& r : delta.removed_arcs) {
      // Removals run before inserts, so they can only name base arcs.
      if (r.source >= old_n || r.target >= old_n) {
        return Status::InvalidArgument("removed arc " +
                                       ArcName(r.source, r.target) +
                                       " endpoint out of range");
      }
      if (FindArcSlot(base.out_targets(r.source), r.target) ==
          std::string::npos) {
        return Status::InvalidArgument("removed arc " +
                                       ArcName(r.source, r.target) +
                                       " not present in base");
      }
    }
    for (const ArcInsert& a : delta.added_arcs) {
      if (a.source >= n || a.target >= n) {
        return Status::InvalidArgument("inserted arc " +
                                       ArcName(a.source, a.target) +
                                       " endpoint out of range");
      }
      if (!(a.weight > 0.0)) {
        return Status::InvalidArgument("inserted arc " +
                                       ArcName(a.source, a.target) +
                                       " weight must be positive");
      }
    }

    // ---- Sort the ops by (source, target); detect duplicate removals.
    std::vector<Op> ops;
    ops.reserve(delta.removed_arcs.size() + delta.added_arcs.size());
    for (const ArcRemove& r : delta.removed_arcs) {
      ops.push_back({r.source, r.target, 0.0, true, 0});
    }
    for (uint32_t i = 0; i < delta.added_arcs.size(); ++i) {
      const ArcInsert& a = delta.added_arcs[i];
      ops.push_back({a.source, a.target, a.weight, false, i});
    }
    std::sort(ops.begin(), ops.end());
    for (size_t i = 1; i < ops.size(); ++i) {
      if (ops[i].remove && ops[i - 1].remove &&
          ops[i].source == ops[i - 1].source &&
          ops[i].target == ops[i - 1].target) {
        return Status::InvalidArgument(
            "arc " + ArcName(ops[i].source, ops[i].target) +
            " removed twice");
      }
    }

    // ---- Touched-row bookkeeping. A source with any op gets its out-row
    // re-merged and its out-weight (hence every out-prob) recomputed; the
    // in-rows of all op targets AND of every touched source's new targets
    // carry derived probabilities that must be refreshed.
    std::vector<uint8_t> out_touched(n, 0);
    std::vector<uint8_t> in_dirty(n, 0);
    for (const Op& op : ops) {
      out_touched[op.source] = 1;
      in_dirty[op.target] = 1;
    }

    // The output generation always owns its columns: every base read below
    // goes through the accessor spans, so a mapped base (columns borrowed
    // from a read-only mmap) is copied-on-write here rather than aliased or
    // — worse — read through its empty owning vectors.
    Graph g;
    g.type_names_ = base.type_names();
    g.type_names_.insert(g.type_names_.end(), delta.added_type_names.begin(),
                         delta.added_type_names.end());
    g.node_types_.assign(base.node_types().begin(), base.node_types().end());
    g.node_types_.insert(g.node_types_.end(), delta.added_node_types.begin(),
                         delta.added_node_types.end());

    // ---- Out-CSR. Merge each touched source's base row with its op run;
    // untouched rows are block-copied with their probabilities intact
    // (their weight total is unchanged, so the derived values still hold).
    g.out_offsets_.assign(n + 1, 0);
    g.out_weights_.assign(n, 0.0);

    // Per-source merged rows for touched sources, stored flat. The merge
    // mirrors GraphBuilder exactly: rows sorted by target, parallel inserts
    // summed in staging order, weight totals accumulated in target order.
    std::vector<NodeId> merged_targets;
    std::vector<double> merged_weights;
    std::vector<size_t> merged_row_begin(n + 1, 0);  // only touched rows used
    {
      size_t op_i = 0;
      for (NodeId v = 0; v < n; ++v) {
        merged_row_begin[v] = merged_targets.size();
        const bool touched = out_touched[v] != 0;
        // Advance over this source's op run even if logic below bails.
        const size_t run_begin = op_i;
        while (op_i < ops.size() && ops[op_i].source == v) ++op_i;
        if (!touched) continue;
        std::span<const NodeId> bt =
            v < old_n ? base.out_targets(v) : std::span<const NodeId>{};
        std::span<const double> bw =
            v < old_n ? base.out_arc_weights(v) : std::span<const double>{};
        size_t bi = 0;
        size_t oi = run_begin;
        while (bi < bt.size() || oi < op_i) {
          NodeId bt_target = bi < bt.size() ? bt[bi] : kInvalidNode;
          NodeId op_target = oi < op_i ? ops[oi].target : kInvalidNode;
          if (bt_target < op_target) {  // base arc, no ops
            merged_targets.push_back(bt_target);
            merged_weights.push_back(bw[bi]);
            ++bi;
            continue;
          }
          // Ops on op_target (with the base arc's weight when it exists and
          // survives: removal zeroes it, inserts accumulate in seq order).
          NodeId t = op_target;
          bool present = bt_target == t;
          double w = present ? bw[bi] : 0.0;
          if (present) ++bi;
          for (; oi < op_i && ops[oi].target == t; ++oi) {
            if (ops[oi].remove) {
              present = false;
              w = 0.0;
            } else {
              w = present ? w + ops[oi].weight : ops[oi].weight;
              present = true;
            }
          }
          if (present) {
            merged_targets.push_back(t);
            merged_weights.push_back(w);
          }
        }
        g.out_offsets_[v + 1] =
            merged_targets.size() - merged_row_begin[v];  // degree, for now
      }
      merged_row_begin[n] = merged_targets.size();
    }
    for (NodeId v = 0; v < n; ++v) {
      if (!out_touched[v]) {
        g.out_offsets_[v + 1] = v < old_n ? base.out_degree(v) : 0;
      }
    }
    for (size_t v = 0; v < n; ++v) {
      g.out_offsets_[v + 1] += g.out_offsets_[v];
    }
    const size_t num_arcs = g.out_offsets_[n];

    g.out_targets_.resize(num_arcs);
    g.out_arc_weights_.resize(num_arcs);
    g.out_probs_.resize(num_arcs);
    for (NodeId v = 0; v < n; ++v) {
      const size_t dst = g.out_offsets_[v];
      const size_t deg = g.out_offsets_[v + 1] - dst;
      if (!out_touched[v]) {
        if (deg == 0) {
          // Dangling (or brand-new) node: builder leaves the weight at 0.
          continue;
        }
        const size_t src = base.out_offsets()[v];
        std::memcpy(g.out_targets_.data() + dst,
                    base.out_targets().data() + src, deg * sizeof(NodeId));
        std::memcpy(g.out_arc_weights_.data() + dst,
                    base.out_arc_weights().data() + src,
                    deg * sizeof(double));
        std::memcpy(g.out_probs_.data() + dst, base.out_probs().data() + src,
                    deg * sizeof(double));
        g.out_weights_[v] = base.out_weight(v);
        continue;
      }
      const size_t row = merged_row_begin[v];
      // Weight total first, accumulated in target order — the exact
      // summation order GraphBuilder uses, so the total (and every prob
      // derived from it) is bit-identical to a from-scratch build.
      double total = 0.0;
      for (size_t i = 0; i < deg; ++i) total += merged_weights[row + i];
      g.out_weights_[v] = total;
      for (size_t i = 0; i < deg; ++i) {
        g.out_targets_[dst + i] = merged_targets[row + i];
        g.out_arc_weights_[dst + i] = merged_weights[row + i];
        g.out_probs_[dst + i] = merged_weights[row + i] / total;
      }
      // Every arc leaving a touched source carries a re-derived probability;
      // its target's in-row copy must be refreshed too.
      for (size_t i = 0; i < deg; ++i) in_dirty[merged_targets[row + i]] = 1;
    }

    // ---- In-CSR. Dirty rows are rebuilt by consulting the NEW out-rows
    // (the in-columns mirror them entry for entry); clean rows are
    // block-copied.
    g.in_offsets_.assign(n + 1, 0);
    // Candidate sources for each dirty in-row: the base row's sources plus
    // every op source targeting it. Collect op sources per target.
    std::vector<Op> by_target = std::move(ops);
    std::sort(by_target.begin(), by_target.end(),
              [](const Op& a, const Op& b) {
                if (a.target != b.target) return a.target < b.target;
                return a.source < b.source;
              });
    std::vector<NodeId> row_sources;  // scratch, reused per dirty row
    // Pass 1: degrees. Pass 2: fill. Both walk the same merged candidates,
    // so the row construction is factored into a lambda.
    std::vector<NodeId> in_sources_scratch;
    auto build_dirty_row = [&](NodeId t, size_t op_begin, size_t op_end,
                               std::vector<NodeId>* out_sources) {
      out_sources->clear();
      std::span<const NodeId> bs =
          t < old_n ? base.in_sources(t) : std::span<const NodeId>{};
      size_t bi = 0;
      size_t oi = op_begin;
      NodeId last = kInvalidNode;
      while (bi < bs.size() || oi < op_end) {
        NodeId b_src = bi < bs.size() ? bs[bi] : kInvalidNode;
        NodeId o_src = oi < op_end ? by_target[oi].source : kInvalidNode;
        NodeId s = std::min(b_src, o_src);
        if (b_src == s) ++bi;
        while (oi < op_end && by_target[oi].source == s) ++oi;
        if (s == last) continue;  // op + base arc on the same source
        last = s;
        // The arc (s, t) exists in the next generation iff the new out-row
        // of s still carries it.
        std::span<const NodeId> row{
            g.out_targets_.data() + g.out_offsets_[s],
            g.out_offsets_[s + 1] - g.out_offsets_[s]};
        if (FindArcSlot(row, t) != std::string::npos) {
          out_sources->push_back(s);
        }
      }
    };

    std::vector<size_t> dirty_op_begin(n + 1, 0);
    {
      size_t oi = 0;
      for (NodeId t = 0; t < n; ++t) {
        dirty_op_begin[t] = oi;
        while (oi < by_target.size() && by_target[oi].target == t) ++oi;
      }
      dirty_op_begin[n] = by_target.size();
    }
    for (NodeId t = 0; t < n; ++t) {
      if (!in_dirty[t]) {
        g.in_offsets_[t + 1] = t < old_n ? base.in_degree(t) : 0;
      } else {
        build_dirty_row(t, dirty_op_begin[t], dirty_op_begin[t + 1],
                        &row_sources);
        g.in_offsets_[t + 1] = row_sources.size();
      }
    }
    for (size_t t = 0; t < n; ++t) g.in_offsets_[t + 1] += g.in_offsets_[t];
    DCHECK_EQ(g.in_offsets_[n], num_arcs);

    g.in_sources_.resize(num_arcs);
    g.in_arc_weights_.resize(num_arcs);
    g.in_probs_.resize(num_arcs);
    for (NodeId t = 0; t < n; ++t) {
      const size_t dst = g.in_offsets_[t];
      const size_t deg = g.in_offsets_[t + 1] - dst;
      if (!in_dirty[t]) {
        if (deg == 0) continue;
        const size_t src = base.in_offsets()[t];
        std::memcpy(g.in_sources_.data() + dst,
                    base.in_sources().data() + src, deg * sizeof(NodeId));
        std::memcpy(g.in_arc_weights_.data() + dst,
                    base.in_arc_weights().data() + src, deg * sizeof(double));
        std::memcpy(g.in_probs_.data() + dst, base.in_probs().data() + src,
                    deg * sizeof(double));
        continue;
      }
      build_dirty_row(t, dirty_op_begin[t], dirty_op_begin[t + 1],
                      &row_sources);
      DCHECK_EQ(row_sources.size(), deg);
      for (size_t i = 0; i < deg; ++i) {
        const NodeId s = row_sources[i];
        std::span<const NodeId> row{
            g.out_targets_.data() + g.out_offsets_[s],
            g.out_offsets_[s + 1] - g.out_offsets_[s]};
        const size_t slot = g.out_offsets_[s] + FindArcSlot(row, t);
        // Mirror the out-side entry verbatim — bitwise the same weight and
        // probability a from-scratch build would store here.
        g.in_sources_[dst + i] = s;
        g.in_arc_weights_[dst + i] = g.out_arc_weights_[slot];
        g.in_probs_[dst + i] = g.out_probs_[slot];
      }
    }

    g.RebindViews();
    // A base carrying the optional f32 columns hands them down so the
    // capability survives delta catch-up (exact casts of the new probs).
    if (base.has_f32_probs()) g.PopulateF32Probs();
    return g;
  }
};

StatusOr<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta) {
  return DeltaOps::Apply(base, delta);
}

StatusOr<GraphDelta> DiffGraphs(const Graph& base, const Graph& next) {
  const size_t old_n = base.num_nodes();
  if (next.num_nodes() < old_n) {
    return Status::InvalidArgument(
        "next graph has fewer nodes than base (deltas are append-only)");
  }
  if (next.type_names().size() < base.type_names().size() ||
      !std::equal(base.type_names().begin(), base.type_names().end(),
                  next.type_names().begin())) {
    return Status::InvalidArgument(
        "base type table is not a prefix of next's");
  }
  for (NodeId v = 0; v < old_n; ++v) {
    if (base.node_type(v) != next.node_type(v)) {
      return Status::InvalidArgument("node " + std::to_string(v) +
                                     " changed type between generations");
    }
  }

  GraphDelta delta;
  delta.added_type_names.assign(
      next.type_names().begin() +
          static_cast<ptrdiff_t>(base.type_names().size()),
      next.type_names().end());
  for (NodeId v = static_cast<NodeId>(old_n); v < next.num_nodes(); ++v) {
    delta.added_node_types.push_back(next.node_type(v));
  }

  for (NodeId v = 0; v < next.num_nodes(); ++v) {
    std::span<const NodeId> bt =
        v < old_n ? base.out_targets(v) : std::span<const NodeId>{};
    std::span<const double> bw =
        v < old_n ? base.out_arc_weights(v) : std::span<const double>{};
    std::span<const NodeId> nt = next.out_targets(v);
    std::span<const double> nw = next.out_arc_weights(v);
    size_t bi = 0, ni = 0;
    while (bi < bt.size() || ni < nt.size()) {
      NodeId b = bi < bt.size() ? bt[bi] : kInvalidNode;
      NodeId t = ni < nt.size() ? nt[ni] : kInvalidNode;
      if (b < t) {
        delta.removed_arcs.push_back({v, b});
        ++bi;
      } else if (t < b) {
        delta.added_arcs.push_back({v, t, nw[ni]});
        ++ni;
      } else {
        // Same arc in both; a weight change is a remove + fresh insert so
        // the re-applied weight is next's exact double.
        if (bw[bi] != nw[ni]) {
          delta.removed_arcs.push_back({v, b});
          delta.added_arcs.push_back({v, t, nw[ni]});
        }
        ++bi;
        ++ni;
      }
    }
  }
  return delta;
}

// --------------------------------------------------------------------------
// Delta file I/O. Shares the snapshot format's building blocks: 8-aligned
// sections, word-wise FNV-1a checksum, exact-size validation.
// --------------------------------------------------------------------------

namespace {

constexpr size_t kDeltaHeaderBytes = 64;
// Same hostile-header guard as snapshots.
constexpr uint64_t kMaxDeltaOps = uint64_t{1} << 48;

uint64_t Fnv1a64Words(const char* data, size_t n) {
  DCHECK_EQ(n % 8, 0u);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr size_t Padded(size_t n) { return (n + 7) & ~size_t{7}; }

void AppendRaw(std::string* buf, const void* data, size_t n) {
  if (n > 0) buf->append(static_cast<const char*>(data), n);
}

void AppendPadding(std::string* buf) {
  buf->append(Padded(buf->size()) - buf->size(), '\0');
}

template <typename T>
void AppendU(std::string* buf, T value) {
  AppendRaw(buf, &value, sizeof(value));
}

std::string SerializeDeltaPayload(const GraphDelta& delta) {
  std::string payload;
  for (const std::string& name : delta.added_type_names) {
    AppendU<uint32_t>(&payload, static_cast<uint32_t>(name.size()));
    AppendRaw(&payload, name.data(), name.size());
  }
  AppendPadding(&payload);
  AppendRaw(&payload, delta.added_node_types.data(),
            delta.added_node_types.size() * sizeof(NodeTypeId));
  AppendPadding(&payload);
  for (const ArcRemove& r : delta.removed_arcs) {
    AppendU<uint32_t>(&payload, r.source);
    AppendU<uint32_t>(&payload, r.target);
  }
  for (const ArcInsert& a : delta.added_arcs) {
    AppendU<uint32_t>(&payload, a.source);
    AppendU<uint32_t>(&payload, a.target);
    AppendU<double>(&payload, a.weight);
  }
  return payload;
}

struct DeltaHeader {
  DeltaFileInfo info;
  Status status = Status::OK();
};

DeltaHeader ParseDeltaHeader(std::string_view buf) {
  DeltaHeader h;
  if (buf.size() < kDeltaHeaderBytes) {
    h.status = Status::IoError("delta file shorter than its header");
    return h;
  }
  if (std::memcmp(buf.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    h.status = Status::IoError("bad delta magic");
    return h;
  }
  uint32_t version = 0, header_bytes = 0;
  std::memcpy(&version, buf.data() + 8, sizeof(version));
  std::memcpy(&header_bytes, buf.data() + 12, sizeof(header_bytes));
  if (version != kDeltaVersion) {
    h.status = Status::IoError("unsupported delta version " +
                               std::to_string(version));
    return h;
  }
  if (header_bytes != kDeltaHeaderBytes) {
    h.status = Status::IoError("bad delta header size");
    return h;
  }
  uint64_t fields[6];
  std::memcpy(fields, buf.data() + 16, sizeof(fields));
  h.info.version = version;
  h.info.base_generation = fields[0];
  h.info.num_added_types = fields[1];
  h.info.num_added_nodes = fields[2];
  h.info.num_removed_arcs = fields[3];
  h.info.num_added_arcs = fields[4];
  h.info.payload_checksum = fields[5];
  return h;
}

StatusOr<GraphDelta> LoadGraphDeltaBuffer(const std::string& buf) {
  DeltaHeader header = ParseDeltaHeader(buf);
  RTR_RETURN_IF_ERROR(header.status);
  const DeltaFileInfo& info = header.info;
  if (info.num_added_nodes >= kInvalidNode ||
      info.num_added_types > std::numeric_limits<NodeTypeId>::max() ||
      info.num_removed_arcs > kMaxDeltaOps ||
      info.num_added_arcs > kMaxDeltaOps) {
    return Status::IoError("delta header counts out of range");
  }

  // The type-name block is variable-length; everything after it is fixed,
  // so the minimum-size check runs first and the exact-size check once the
  // names are parsed.
  const uint64_t fixed_bytes =
      Padded(info.num_added_nodes * sizeof(NodeTypeId)) +
      info.num_removed_arcs * 2 * sizeof(uint32_t) +
      info.num_added_arcs * (2 * sizeof(uint32_t) + sizeof(double));
  if (buf.size() < kDeltaHeaderBytes + fixed_bytes) {
    return Status::IoError("delta file truncated");
  }
  const std::string_view payload(buf.data() + kDeltaHeaderBytes,
                                 buf.size() - kDeltaHeaderBytes);
  const size_t type_block_bytes = payload.size() - fixed_bytes;
  if (type_block_bytes % 8 != 0) {
    return Status::IoError("delta type-name block misaligned");
  }
  if (Fnv1a64Words(payload.data(), payload.size()) != info.payload_checksum) {
    return Status::IoError("delta checksum mismatch");
  }

  GraphDelta delta;
  delta.base_generation = info.base_generation;
  size_t pos = 0;
  delta.added_type_names.reserve(info.num_added_types);
  for (uint64_t t = 0; t < info.num_added_types; ++t) {
    uint32_t len = 0;
    if (pos + sizeof(len) > type_block_bytes) {
      return Status::IoError("delta type-name block truncated");
    }
    std::memcpy(&len, payload.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (len > type_block_bytes - pos) {
      return Status::IoError("delta type name overruns its block");
    }
    delta.added_type_names.emplace_back(payload.data() + pos, len);
    pos += len;
  }
  if (type_block_bytes - pos >= 8) {
    return Status::IoError("delta type-name block has slack");
  }
  pos = type_block_bytes;

  delta.added_node_types.resize(info.num_added_nodes);
  if (info.num_added_nodes > 0) {
    std::memcpy(delta.added_node_types.data(), payload.data() + pos,
                info.num_added_nodes * sizeof(NodeTypeId));
  }
  pos += Padded(info.num_added_nodes * sizeof(NodeTypeId));

  delta.removed_arcs.resize(info.num_removed_arcs);
  for (ArcRemove& r : delta.removed_arcs) {
    std::memcpy(&r.source, payload.data() + pos, sizeof(uint32_t));
    std::memcpy(&r.target, payload.data() + pos + 4, sizeof(uint32_t));
    pos += 2 * sizeof(uint32_t);
  }
  delta.added_arcs.resize(info.num_added_arcs);
  for (ArcInsert& a : delta.added_arcs) {
    std::memcpy(&a.source, payload.data() + pos, sizeof(uint32_t));
    std::memcpy(&a.target, payload.data() + pos + 4, sizeof(uint32_t));
    std::memcpy(&a.weight, payload.data() + pos + 8, sizeof(double));
    pos += 2 * sizeof(uint32_t) + sizeof(double);
  }
  if (pos != payload.size()) {
    return Status::IoError("delta file has trailing garbage");
  }
  return delta;
}

}  // namespace

Status SaveGraphDelta(const GraphDelta& delta, std::ostream& out) {
  const std::string payload = SerializeDeltaPayload(delta);

  std::string header;
  header.reserve(kDeltaHeaderBytes);
  AppendRaw(&header, kDeltaMagic, sizeof(kDeltaMagic));
  AppendU<uint32_t>(&header, kDeltaVersion);
  AppendU<uint32_t>(&header, static_cast<uint32_t>(kDeltaHeaderBytes));
  AppendU<uint64_t>(&header, delta.base_generation);
  AppendU<uint64_t>(&header, delta.added_type_names.size());
  AppendU<uint64_t>(&header, delta.added_node_types.size());
  AppendU<uint64_t>(&header, delta.removed_arcs.size());
  AppendU<uint64_t>(&header, delta.added_arcs.size());
  AppendU<uint64_t>(&header, Fnv1a64Words(payload.data(), payload.size()));
  DCHECK_EQ(header.size(), kDeltaHeaderBytes);

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IoError("failed writing delta stream");
  return Status::OK();
}

Status SaveGraphDeltaToFile(const GraphDelta& delta, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return SaveGraphDelta(delta, out);
}

StatusOr<GraphDelta> LoadGraphDelta(std::istream& in) {
  std::string buf(std::istreambuf_iterator<char>(in), {});
  return LoadGraphDeltaBuffer(buf);
}

StatusOr<GraphDelta> LoadGraphDeltaFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  return LoadGraphDelta(in);
}

StatusOr<bool> IsDeltaFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[sizeof(kDeltaMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kDeltaMagic, sizeof(magic)) == 0;
}

StatusOr<DeltaFileInfo> ReadDeltaFileInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string buf(kDeltaHeaderBytes, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<size_t>(in.gcount()));
  DeltaHeader header = ParseDeltaHeader(buf);
  RTR_RETURN_IF_ERROR(header.status);
  return header.info;
}

}  // namespace rtr
