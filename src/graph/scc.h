#ifndef RTR_GRAPH_SCC_H_
#define RTR_GRAPH_SCC_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rtr {

// Strongly connected components of a directed graph.
struct SccResult {
  // component[v] is the SCC index of node v, in reverse topological order of
  // the condensation (Tarjan numbering: a component is finished before any
  // component that can reach it... specifically, if there is an arc from
  // component A to component B (A != B), then component[A] > component[B]).
  std::vector<int> component;
  int num_components = 0;
};

// Computes SCCs with an iterative Tarjan algorithm (no recursion, safe for
// million-node graphs).
SccResult ComputeScc(const Graph& g);

// True when the graph is irreducible (a single SCC). The paper requires
// irreducibility so that t(q, v) > 0 whenever f(q, v) > 0 (Sect. III-B).
bool IsStronglyConnected(const Graph& g);

// Returns a copy of `g` made irreducible by adding epsilon-weight dummy
// edges: one representative per SCC is chained into a cycle following the
// condensation's topological order, which makes the condensation (hence the
// graph) strongly connected while adding only num_components arcs.
//
// `epsilon_weight` should be far below real edge weights (default 1e-3) so
// the dummy arcs carry negligible probability. A graph that is already
// irreducible is returned unchanged.
StatusOr<Graph> MakeIrreducible(const Graph& g, double epsilon_weight = 1e-3);

}  // namespace rtr

#endif  // RTR_GRAPH_SCC_H_
