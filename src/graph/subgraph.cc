#include "graph/subgraph.h"

#include <algorithm>

#include "graph/builder.h"

namespace rtr {

StatusOr<Subgraph> InducedSubgraph(const Graph& parent,
                                   const std::vector<NodeId>& nodes) {
  for (NodeId v : nodes) {
    if (v >= parent.num_nodes()) {
      return Status::InvalidArgument("subgraph node out of range");
    }
  }

  Subgraph sub;
  sub.from_parent.assign(parent.num_nodes(), kInvalidNode);

  GraphBuilder builder;
  for (const std::string& name : parent.type_names()) {
    builder.AddNodeType(name);
  }
  for (NodeId old_id : nodes) {
    if (sub.from_parent[old_id] != kInvalidNode) continue;  // duplicate
    NodeId new_id = builder.AddNode(parent.node_type(old_id));
    sub.from_parent[old_id] = new_id;
    sub.to_parent.push_back(old_id);
  }
  for (NodeId old_id : sub.to_parent) {
    NodeId new_source = sub.from_parent[old_id];
    auto targets = parent.out_targets(old_id);
    auto weights = parent.out_arc_weights(old_id);
    for (size_t i = 0; i < targets.size(); ++i) {
      NodeId new_target = sub.from_parent[targets[i]];
      if (new_target == kInvalidNode) continue;
      builder.AddDirectedEdge(new_source, new_target, weights[i]);
    }
  }
  StatusOr<Graph> graph = builder.Build();
  RTR_RETURN_IF_ERROR(graph.status());
  sub.graph = std::move(graph).value();
  return sub;
}

std::vector<NodeId> KHopNeighborhood(const Graph& g,
                                     const std::vector<NodeId>& seeds,
                                     int hops) {
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<NodeId> frontier;
  std::vector<NodeId> result;
  for (NodeId s : seeds) {
    CHECK_LT(s, g.num_nodes());
    if (!visited[s]) {
      visited[s] = true;
      frontier.push_back(s);
      result.push_back(s);
    }
  }
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (NodeId target : g.out_targets(v)) {
        if (!visited[target]) {
          visited[target] = true;
          next.push_back(target);
          result.push_back(target);
        }
      }
      for (NodeId source : g.in_sources(v)) {
        if (!visited[source]) {
          visited[source] = true;
          next.push_back(source);
          result.push_back(source);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace rtr
