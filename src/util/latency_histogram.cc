#include "util/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace rtr {

LatencyHistogram::LatencyHistogram() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t LatencyHistogram::BucketIndex(double millis) {
  if (!(millis > kMinMillis)) return 0;
  double raw = std::floor(std::log(millis / kMinMillis) / std::log(kGrowth));
  if (raw >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(raw);
}

double LatencyHistogram::BucketLowerEdge(size_t i) {
  return kMinMillis * std::pow(kGrowth, static_cast<double>(i));
}

void LatencyHistogram::Record(double millis) {
  if (millis < 0.0) millis = 0.0;
  buckets_[BucketIndex(millis)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_millis_.fetch_add(millis, std::memory_order_relaxed);
  uint64_t nanos = static_cast<uint64_t>(millis * 1e6);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snapshot;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum_millis = sum_millis_.load(std::memory_order_relaxed);
  snapshot.max_millis = MaxMillis();
  return snapshot;
}

void LatencyHistogram::MergeFrom(const Snapshot& snapshot) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (snapshot.buckets[i] != 0) {
      buckets_[i].fetch_add(snapshot.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_millis_.fetch_add(snapshot.sum_millis, std::memory_order_relaxed);
  uint64_t nanos = static_cast<uint64_t>(snapshot.max_millis * 1e6);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_millis += other.sum_millis;
  max_millis = std::max(max_millis, other.max_millis);
}

double LatencyHistogram::Snapshot::MeanMillis() const {
  return count == 0 ? 0.0 : sum_millis / static_cast<double>(count);
}

double LatencyHistogram::Snapshot::Percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  // Documented zero-sample contract: an empty histogram has no quantile
  // sample to bound, so the estimate is exactly 0.
  if (total == 0) return 0.0;
  // Rank of the quantile sample, 1-based; q = 0 means the first sample.
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The true sample lies within the bucket; report its upper edge but
      // never beyond the largest recorded value. The last bucket is
      // open-ended, so its only meaningful upper edge is the max itself.
      if (i + 1 == kNumBuckets) return max_millis;
      return std::min(BucketLowerEdge(i + 1), max_millis);
    }
  }
  return max_millis;
}

double LatencyHistogram::MeanMillis() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : sum_millis_.load(std::memory_order_relaxed) /
                            static_cast<double>(n);
}

double LatencyHistogram::MaxMillis() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e6;
}

double LatencyHistogram::Percentile(double q) const {
  return TakeSnapshot().Percentile(q);
}

}  // namespace rtr
