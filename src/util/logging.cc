#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace rtr {
namespace internal_logging {
namespace {

LogSeverity ParseThreshold(const char* value) {
  if (value == nullptr || value[0] == '\0') return LogSeverity::kWarning;
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lowered == "info" || lowered == "debug") return LogSeverity::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogSeverity::kWarning;
  if (lowered == "error") return LogSeverity::kError;
  if (lowered == "off" || lowered == "none") return LogSeverity::kOff;
  return LogSeverity::kWarning;
}

std::atomic<int>& ThresholdStorage() {
  static std::atomic<int> threshold{
      static_cast<int>(ParseThreshold(std::getenv("RTR_LOG_LEVEL")))};
  return threshold;
}

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kOff:
      break;
  }
  return '?';
}

// file.cc from a full path, matching the compact glog-style prefix.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  return base;
}

}  // namespace

LogSeverity LogThreshold() {
  return static_cast<LogSeverity>(
      ThresholdStorage().load(std::memory_order_relaxed));
}

void SetLogThreshold(LogSeverity severity) {
  ThresholdStorage().store(static_cast<int>(severity),
                           std::memory_order_relaxed);
}

LogMessageStream::LogMessageStream(LogSeverity severity, const char* file,
                                   int line) {
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - secs)
          .count();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "%c %02d:%02d:%02d.%03d %s:%d] ",
                SeverityLetter(severity), tm_buf.tm_hour, tm_buf.tm_min,
                tm_buf.tm_sec, static_cast<int>(millis), Basename(file),
                line);
  stream_ << prefix;
}

LogMessageStream::~LogMessageStream() {
  stream_ << '\n';
  // One fwrite per line so concurrent log statements interleave cleanly.
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace rtr
