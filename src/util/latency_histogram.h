#ifndef RTR_UTIL_LATENCY_HISTOGRAM_H_
#define RTR_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rtr {

// Concurrent fixed-bucket latency histogram for the serving layer's SLO
// accounting. Buckets are geometrically spaced, so percentile estimates
// carry at most one bucket of relative error (kGrowth - 1 = 25%) while
// Record stays wait-free: one relaxed fetch_add per sample, no locks, no
// allocation. Any number of threads may Record concurrently with readers;
// readers see a (possibly slightly stale) consistent-enough view, which is
// all latency reporting needs.
class LatencyHistogram {
 public:
  // Bucket i covers millis in [kMinMillis * kGrowth^i, kMinMillis *
  // kGrowth^(i+1)); samples below the range land in bucket 0, samples above
  // in the last bucket. The range spans 1 microsecond to ~20 minutes.
  static constexpr double kMinMillis = 1e-3;
  static constexpr double kGrowth = 1.25;
  static constexpr size_t kNumBuckets = 96;

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one latency sample. Negative samples count as 0. Wait-free.
  void Record(double millis);

  // Total samples recorded.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  // Mean of all recorded samples; 0 when empty.
  double MeanMillis() const;

  // Largest recorded sample (exact, not bucketed); 0 when empty.
  double MaxMillis() const;

  // Upper edge of the bucket holding the q-quantile sample (q in [0, 1]),
  // i.e., an estimate overshooting the true quantile by at most a factor of
  // kGrowth. Returns 0 when empty. P50/P95/P99 are shorthands.
  double Percentile(double q) const;
  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  // Lower edge of bucket i, in millis (exposed for tests).
  static double BucketLowerEdge(size_t i);

 private:
  static size_t BucketIndex(double millis);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_millis_{0.0};
  // Max encoded as nanoseconds so a plain integer CAS-max works.
  std::atomic<uint64_t> max_nanos_{0};
};

}  // namespace rtr

#endif  // RTR_UTIL_LATENCY_HISTOGRAM_H_
