#ifndef RTR_UTIL_LATENCY_HISTOGRAM_H_
#define RTR_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rtr {

// Concurrent fixed-bucket latency histogram for the serving layer's SLO
// accounting. Buckets are geometrically spaced, so percentile estimates
// carry at most one bucket of relative error (kGrowth - 1 = 25%) while
// Record stays wait-free: one relaxed fetch_add per sample, no locks, no
// allocation. Any number of threads may Record concurrently with readers;
// readers see a (possibly slightly stale) consistent-enough view, which is
// all latency reporting needs.
//
// TakeSnapshot() copies the bucket state into a plain, copyable Snapshot
// that supports Merge(): per-worker histograms can be aggregated into one
// (e.g. by the obs::MetricsRegistry renderer) without any global lock on
// the record path — merging integer bucket counts is exact, so percentiles
// of a merged snapshot equal percentiles of a single histogram fed the
// union of the samples (tests/util/latency_histogram_test.cc).
class LatencyHistogram {
 public:
  // Bucket i covers millis in [kMinMillis * kGrowth^i, kMinMillis *
  // kGrowth^(i+1)); samples below the range land in bucket 0, samples above
  // in the last bucket. The range spans 1 microsecond to ~20 minutes.
  static constexpr double kMinMillis = 1e-3;
  static constexpr double kGrowth = 1.25;
  static constexpr size_t kNumBuckets = 96;

  // A point-in-time copy of a histogram's state: plain data, copyable and
  // mergeable. All derived figures (percentiles, mean) are computed the
  // same way as on the live histogram.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    double sum_millis = 0.0;
    double max_millis = 0.0;

    // Adds `other`'s samples to this snapshot. Bucket counts and count are
    // exact integer sums; sum_millis is a float sum (mean may differ from
    // a single-stream histogram by rounding), max is the max of maxes.
    void Merge(const Snapshot& other);

    // Mean of the recorded samples; 0 when empty.
    double MeanMillis() const;

    // Upper edge of the bucket holding the q-quantile sample (q clamped to
    // [0, 1]), i.e. an estimate overshooting the true quantile by at most
    // a factor of kGrowth, capped at the recorded max. An EMPTY snapshot
    // (count == 0) returns exactly 0.0 — callers rendering percentiles of
    // idle histograms rely on this explicit zero-sample contract.
    double Percentile(double q) const;
    double P50() const { return Percentile(0.50); }
    double P95() const { return Percentile(0.95); }
    double P99() const { return Percentile(0.99); }
  };

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one latency sample. Negative samples count as 0. Wait-free.
  void Record(double millis);

  // Copies the current state. Concurrent Records may or may not be
  // included (each sample is counted at most once per field, but a
  // snapshot racing a Record can see the bucket bump without the sum).
  Snapshot TakeSnapshot() const;

  // Adds every sample of `snapshot` to this histogram, as if the samples
  // had been Recorded here (bucket-exact; see Snapshot::Merge). Used to
  // drain per-worker histograms into a shared one.
  void MergeFrom(const Snapshot& snapshot);

  // Total samples recorded.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  // Sum of all recorded samples in millis; 0 when empty.
  double SumMillis() const {
    return sum_millis_.load(std::memory_order_relaxed);
  }

  // Mean of all recorded samples; 0 when empty.
  double MeanMillis() const;

  // Largest recorded sample (exact, not bucketed); 0 when empty.
  double MaxMillis() const;

  // Percentile estimate (see Snapshot::Percentile). An empty histogram
  // returns exactly 0.0. P50/P95/P99 are shorthands.
  double Percentile(double q) const;
  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  // Lower edge of bucket i, in millis (exposed for tests and the
  // exposition renderer's `le` bucket bounds).
  static double BucketLowerEdge(size_t i);

 private:
  static size_t BucketIndex(double millis);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_millis_{0.0};
  // Max encoded as nanoseconds so a plain integer CAS-max works.
  std::atomic<uint64_t> max_nanos_{0};
};

}  // namespace rtr

#endif  // RTR_UTIL_LATENCY_HISTOGRAM_H_
