// AVX2 bodies for util/dense_kernels.h. This is the ONE translation unit
// compiled with -mavx2 (see CMakeLists.txt) — and deliberately NOT -mfma:
// the bit-identity contract requires separate mul + add, and without -mfma
// the compiler cannot contract them into vfmadd either. On non-x86 builds
// the file compiles to a null registration and dispatch stays portable.

#include "util/dense_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rtr::util::internal {
namespace {

// Lane j of the accumulator takes the products at indices i+j — the exact
// association of the portable 4-lane loop. vpgatherdpd consumes SIGNED
// 32-bit indices; the header's contract (idx[i] < 2^31) makes the
// reinterpretation safe.
double GatherDotF64Avx2(const uint32_t* idx, const double* probs, size_t n,
                        const double* x) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256d vx = _mm256_i32gather_pd(x, vi, sizeof(double));
    const __m256d vp = _mm256_loadu_pd(probs + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vp, vx));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += probs[i] * x[idx[i]];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double GatherDotF32Avx2(const uint32_t* idx, const float* probs, size_t n,
                        const double* x) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256d vx = _mm256_i32gather_pd(x, vi, sizeof(double));
    // Widen the four f32 probs to f64 before the multiply: accumulation
    // stays in double, so only the stored prob precision differs from the
    // f64 kernel.
    const __m256d vp = _mm256_cvtps_pd(_mm_loadu_ps(probs + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vp, vx));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += static_cast<double>(probs[i]) * x[idx[i]];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

const GatherKernels* Avx2Kernels() {
  static const GatherKernels kernels{&GatherDotF64Avx2, &GatherDotF32Avx2};
  return &kernels;
}

}  // namespace rtr::util::internal

#else  // !defined(__AVX2__)

namespace rtr::util::internal {

const GatherKernels* Avx2Kernels() { return nullptr; }

}  // namespace rtr::util::internal

#endif  // defined(__AVX2__)
