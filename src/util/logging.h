#ifndef RTR_UTIL_LOGGING_H_
#define RTR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rtr {
namespace internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the CHECK macros below; never instantiate directly.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lowest-precedence void sink: `Voidify() & stream` lets streamed `<<`
// arguments bind to the stream first while the whole expression stays void,
// so CHECK works both as a statement and inside a ternary.
struct Voidify {
  void operator&(CheckFailureStream&) {}
  void operator&(CheckFailureStream&&) {}
};

// Severity of a LOG statement, ordered so a threshold comparison gates
// emission. kOff is only a threshold value, never a message severity.
enum class LogSeverity : int { kInfo = 0, kWarning = 1, kError = 2, kOff = 3 };

// The active threshold, parsed once from RTR_LOG_LEVEL
// (info|warn|warning|error|off, case-insensitive; default warn). Messages
// below the threshold are skipped before their arguments are evaluated.
LogSeverity LogThreshold();

// Test/CLI hook to override the env-derived threshold at runtime.
void SetLogThreshold(LogSeverity severity);

// Accumulates one log line and writes it to stderr on destruction:
// `W0000 12:34:56.789 file.cc:42] message`. Each line is a single write so
// concurrent loggers interleave per-line, not per-token.
class LogMessageStream {
 public:
  LogMessageStream(LogSeverity severity, const char* file, int line);

  LogMessageStream(const LogMessageStream&) = delete;
  LogMessageStream& operator=(const LogMessageStream&) = delete;

  ~LogMessageStream();

  template <typename T>
  LogMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Void sink overloads for the LOG stream (same trick as for CHECK).
struct LogVoidify {
  void operator&(LogMessageStream&) {}
  void operator&(LogMessageStream&&) {}
};

}  // namespace internal_logging
}  // namespace rtr

// LOG(severity) << ...; severity is INFO, WARNING (alias WARN), or ERROR.
// Gated by the RTR_LOG_LEVEL env var (default warn): suppressed statements
// do not evaluate their streamed arguments.
#define RTR_LOG_INFO ::rtr::internal_logging::LogSeverity::kInfo
#define RTR_LOG_WARNING ::rtr::internal_logging::LogSeverity::kWarning
#define RTR_LOG_WARN ::rtr::internal_logging::LogSeverity::kWarning
#define RTR_LOG_ERROR ::rtr::internal_logging::LogSeverity::kError

#define LOG(severity)                                                 \
  (RTR_LOG_##severity < ::rtr::internal_logging::LogThreshold())      \
      ? (void)0                                                       \
      : ::rtr::internal_logging::LogVoidify() &                       \
            ::rtr::internal_logging::LogMessageStream(                \
                RTR_LOG_##severity, __FILE__, __LINE__)

// LOG_IF(severity, cond) logs only when `cond` holds (and the severity
// passes the threshold); the condition is always evaluated first.
#define LOG_IF(severity, condition) \
  !(condition) ? (void)0 : LOG(severity)

// CHECK(cond) aborts with a message if `cond` is false. Additional context
// can be streamed: CHECK(x > 0) << "x=" << x;
#define CHECK(condition)                                            \
  (condition) ? (void)0                                             \
              : ::rtr::internal_logging::Voidify() &                \
                    ::rtr::internal_logging::CheckFailureStream(    \
                        "CHECK", __FILE__, __LINE__, #condition)

#define CHECK_OP(op, a, b)                                                 \
  ((a)op(b)) ? (void)0                                                     \
             : ::rtr::internal_logging::Voidify() &                        \
                   (::rtr::internal_logging::CheckFailureStream(           \
                        "CHECK", __FILE__, __LINE__, #a " " #op " " #b)    \
                    << "(" << (a) << " vs " << (b) << ") ")

#define CHECK_EQ(a, b) CHECK_OP(==, a, b)
#define CHECK_NE(a, b) CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) CHECK_OP(<, a, b)
#define CHECK_LE(a, b) CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) CHECK_OP(>, a, b)
#define CHECK_GE(a, b) CHECK_OP(>=, a, b)

#ifndef NDEBUG
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define DCHECK(condition) \
  while (false) CHECK(condition)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#endif

#endif  // RTR_UTIL_LOGGING_H_
