#include "util/dense_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rtr::util {
namespace {

// Portable reference implementations of the 4-lane contract documented in
// the header. Plain mul + add on purpose: this TU is built without -mfma,
// so the compiler cannot contract the pair and break bit-identity with the
// AVX2 path.
double PortableGatherDotF64(const uint32_t* idx, const double* probs,
                            size_t n, const double* x) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] += probs[i] * x[idx[i]];
    lanes[1] += probs[i + 1] * x[idx[i + 1]];
    lanes[2] += probs[i + 2] * x[idx[i + 2]];
    lanes[3] += probs[i + 3] * x[idx[i + 3]];
  }
  for (; i < n; ++i) lanes[i & 3] += probs[i] * x[idx[i]];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double PortableGatherDotF32(const uint32_t* idx, const float* probs,
                            size_t n, const double* x) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] += static_cast<double>(probs[i]) * x[idx[i]];
    lanes[1] += static_cast<double>(probs[i + 1]) * x[idx[i + 1]];
    lanes[2] += static_cast<double>(probs[i + 2]) * x[idx[i + 2]];
    lanes[3] += static_cast<double>(probs[i + 3]) * x[idx[i + 3]];
  }
  for (; i < n; ++i) lanes[i & 3] += static_cast<double>(probs[i]) * x[idx[i]];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

bool HostHasAvx2() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool EnvDisables(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "false") == 0;
}

bool EnvEnables(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

// Dispatch state. The function pointers are resolved eagerly and swapped
// atomically by SetSimdEnabled; relaxed loads keep the hot-path indirection
// at one predicted branch-free call.
struct DispatchState {
  std::atomic<internal::GatherF64Fn> f64{&PortableGatherDotF64};
  std::atomic<internal::GatherF32Fn> f32{&PortableGatherDotF32};
  std::atomic<bool> simd{false};
  std::atomic<bool> use_f32{false};

  DispatchState() {
    use_f32.store(EnvEnables("RTR_F32_KERNELS"), std::memory_order_relaxed);
    Select(HostHasAvx2() && !EnvDisables("RTR_SIMD"));
  }

  void Select(bool want_simd) {
    const internal::GatherKernels* avx2 = internal::Avx2Kernels();
    const bool on = want_simd && HostHasAvx2() && avx2 != nullptr;
    f64.store(on ? avx2->f64 : &PortableGatherDotF64,
              std::memory_order_relaxed);
    f32.store(on ? avx2->f32 : &PortableGatherDotF32,
              std::memory_order_relaxed);
    simd.store(on, std::memory_order_relaxed);
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

}  // namespace

double GatherDotF64(const uint32_t* idx, const double* probs, size_t n,
                    const double* x) {
  return State().f64.load(std::memory_order_relaxed)(idx, probs, n, x);
}

double GatherDotF32(const uint32_t* idx, const float* probs, size_t n,
                    const double* x) {
  return State().f32.load(std::memory_order_relaxed)(idx, probs, n, x);
}

const char* DenseKernelIsa() {
  return State().simd.load(std::memory_order_relaxed) ? "avx2" : "portable";
}

bool SimdEnabled() {
  return State().simd.load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) { State().Select(enabled); }

bool F32KernelsEnabled() {
  return State().use_f32.load(std::memory_order_relaxed);
}

void SetF32Kernels(bool enabled) {
  State().use_f32.store(enabled, std::memory_order_relaxed);
}

}  // namespace rtr::util
