#include "util/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace rtr::util {
namespace {

int DefaultNumThreads() {
  const char* env = std::getenv("RTR_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Persistent pool with static chunk assignment: a job publishes its chunk
// bounds once, participant p (p = 0 is the submitting caller) executes
// chunks c ≡ p (mod team) — no work-stealing, no shared counters in the
// chunk loop. All job state is published and reclaimed under one mutex, so
// the pool is trivially race-free (the CI TSan job covers it); workers
// check in exactly once per job generation, and the caller returns only
// after every worker has checked in, so job state never outlives a Run.
// Pool-wide registry series (DESIGN.md §9): job/chunk throughput plus a
// utilization ratio derivable as participants_total / (jobs_total * threads).
struct PoolMetrics {
  obs::Counter* jobs = obs::MetricsRegistry::Default().GetCounter(
      "rtr_pool_jobs_total");
  obs::Counter* inline_jobs = obs::MetricsRegistry::Default().GetCounter(
      "rtr_pool_inline_jobs_total");
  obs::Counter* chunks = obs::MetricsRegistry::Default().GetCounter(
      "rtr_pool_chunks_total");
  obs::Counter* participants = obs::MetricsRegistry::Default().GetCounter(
      "rtr_pool_participants_total");
  obs::Gauge* threads = obs::MetricsRegistry::Default().GetGauge(
      "rtr_pool_threads");
};

class Pool {
 public:
  static Pool& Instance() {
    // Leaked on purpose: worker threads must not be joined from static
    // destructors (they may still serve another static's destructor). The
    // pointer stays reachable, so LeakSanitizer does not report it.
    static Pool* pool = new Pool(DefaultNumThreads());
    return *pool;
  }

  int num_threads() {
    std::lock_guard<std::mutex> job_lock(job_mu_);
    return team_;
  }

  void SetNumThreads(int n) {
    if (n < 1) n = DefaultNumThreads();
    std::lock_guard<std::mutex> job_lock(job_mu_);  // no job in flight
    if (n == team_) return;
    StopWorkers();
    team_ = n;
    StartWorkers();
    metrics_.threads->Set(static_cast<double>(team_));
  }

  void Run(const size_t* bounds, size_t num_chunks, internal::ChunkFn fn,
           void* ctx) {
    if (num_chunks == 0) return;
    // One job at a time; concurrent callers queue here. Serializing before
    // the inline shortcut keeps the team_ read ordered after any resize.
    std::unique_lock<std::mutex> job_lock(job_mu_);
    const size_t team = static_cast<size_t>(team_);
    metrics_.jobs->Increment();
    metrics_.chunks->Add(num_chunks);
    if (team <= 1 || num_chunks <= 1) {
      metrics_.inline_jobs->Increment();
      metrics_.participants->Increment();  // the caller alone
      job_lock.unlock();
      // Same chunk-by-chunk execution as the parallel path: bit-identical.
      for (size_t c = 0; c < num_chunks; ++c) {
        fn(ctx, c, bounds[c], bounds[c + 1]);
      }
      return;
    }
    // Only as many participants as there are chunks: surplus workers wake
    // but neither execute nor check in, so the caller's completion wait
    // never depends on threads that own no work.
    const size_t participants = std::min(team, num_chunks);
    metrics_.participants->Add(participants);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_bounds_ = bounds;
      job_chunks_ = num_chunks;
      job_fn_ = fn;
      job_ctx_ = ctx;
      job_team_ = participants;
      workers_done_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    // The caller is participant 0.
    for (size_t c = 0; c < num_chunks; c += participants) {
      fn(ctx, c, bounds[c], bounds[c + 1]);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_done_ == job_team_ - 1; });
    job_fn_ = nullptr;
  }

 private:
  explicit Pool(int team) : team_(std::max(1, team)) {
    StartWorkers();
    metrics_.threads->Set(static_cast<double>(team_));
  }

  void StartWorkers() {
    for (int p = 1; p < team_; ++p) {
      workers_.emplace_back(&Pool::WorkerLoop, this, static_cast<size_t>(p));
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }

  void WorkerLoop(size_t participant) {
    uint64_t seen_generation = 0;
    for (;;) {
      const size_t* bounds;
      size_t chunks, team;
      internal::ChunkFn fn;
      void* ctx;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        bounds = job_bounds_;
        chunks = job_chunks_;
        team = job_team_;
        fn = job_fn_;
        ctx = job_ctx_;
      }
      // Workers beyond the job's participant count own no chunks and must
      // not check in (the caller only waits on team - 1 check-ins).
      if (fn == nullptr || participant >= team) continue;
      for (size_t c = participant; c < chunks; c += team) {
        fn(ctx, c, bounds[c], bounds[c + 1]);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        // Count the check-in only if no newer job replaced the one this
        // worker saw (a worker woken by a resize or shutdown-restart would
        // otherwise check in for a generation it did no work for).
        if (generation_ == seen_generation) ++workers_done_;
      }
      done_cv_.notify_one();  // only the submitting caller waits
    }
  }

  std::mutex job_mu_;  // serializes Run/SetNumThreads; held for a whole job
  int team_;
  PoolMetrics metrics_;  // registry-owned pointers, never unregistered
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_, done_cv_;
  uint64_t generation_ = 0;
  size_t workers_done_ = 0;
  bool shutdown_ = false;
  const size_t* job_bounds_ = nullptr;
  size_t job_chunks_ = 0;
  size_t job_team_ = 1;
  internal::ChunkFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
};

}  // namespace

int NumThreads() { return Pool::Instance().num_threads(); }

void SetNumThreads(int n) { Pool::Instance().SetNumThreads(n); }

size_t ChunkCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  size_t chunk = std::max(grain, (n + kMaxChunks - 1) / kMaxChunks);
  return (n + chunk - 1) / chunk;
}

size_t BalancedChunkBounds(const size_t* offsets, size_t n, size_t grain,
                           size_t* bounds) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const size_t total = offsets[n] - offsets[0];
  size_t chunks = std::min<size_t>(kMaxChunks, std::max<size_t>(
      1, (total + grain - 1) / grain));
  chunks = std::min(chunks, n);  // at least one index per chunk boundary
  bounds[0] = 0;
  for (size_t c = 1; c < chunks; ++c) {
    // First index whose offset reaches the c-th equal share of the mass.
    const size_t target = offsets[0] + (total * c) / chunks;
    const size_t* it = std::upper_bound(offsets, offsets + n + 1, target);
    size_t split = static_cast<size_t>(it - offsets);
    split = split == 0 ? 0 : split - 1;
    bounds[c] = std::clamp(split, bounds[c - 1], n);
  }
  bounds[chunks] = n;
  return chunks;
}

namespace internal {

void ParallelForBounds(const size_t* bounds, size_t num_chunks, ChunkFn fn,
                       void* ctx) {
  Pool::Instance().Run(bounds, num_chunks, fn, ctx);
}

void ParallelForUniform(size_t n, size_t grain, ChunkFn fn, void* ctx) {
  const size_t num_chunks = ChunkCount(n, grain);
  if (num_chunks == 0) return;
  const size_t chunk =
      std::max(grain == 0 ? size_t{1} : grain, (n + kMaxChunks - 1) / kMaxChunks);
  size_t bounds[kMaxChunks + 1];
  for (size_t c = 0; c < num_chunks; ++c) bounds[c] = c * chunk;
  bounds[num_chunks] = n;
  Pool::Instance().Run(bounds, num_chunks, fn, ctx);
}

}  // namespace internal

}  // namespace rtr::util
