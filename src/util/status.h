#ifndef RTR_UTIL_STATUS_H_
#define RTR_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace rtr {

// Error codes for fallible operations. The library does not use exceptions
// (database-style error handling): functions that can fail return Status or
// StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  // Transient refusal: the operation may succeed if retried later (e.g., a
  // serving admission queue at capacity, a service shutting down).
  kUnavailable = 8,
  // A bounded wait expired before the operation finished (e.g., an RPC
  // attempt ran past its per-request timeout budget).
  kDeadlineExceeded = 9,
};

// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// Value-semantic success/error result. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Access to the value when
// holding an error is a programming error (CHECK-fails).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace rtr

// Propagates a non-OK status to the caller.
#define RTR_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::rtr::Status _rtr_status = (expr);        \
    if (!_rtr_status.ok()) return _rtr_status; \
  } while (false)

#endif  // RTR_UTIL_STATUS_H_
