#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rtr {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller; draws u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

int Rng::NextGeometric(double p) {
  CHECK_GT(p, 0.0);
  CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  double u = 1.0 - NextDouble();  // in (0, 1]
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DCHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0) << "NextWeighted requires a positive total weight";
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = NextUint64(n);
    if (chosen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double exponent) : exponent_(exponent) {
  CHECK_GT(n, 0u);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  CHECK_LT(rank, cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rtr
