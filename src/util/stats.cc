#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rtr {
namespace {

// Regularized incomplete beta function I_x(a, b) via the continued-fraction
// expansion (Lentz's algorithm), as in Numerical Recipes.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  double front = std::exp(ln_beta + a * std::log(x) + b * std::log1p(-x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTCdf(double t, double df) {
  CHECK_GT(df, 0.0);
  if (t == 0.0) return 0.5;
  double x = df / (df + t * t);
  double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  CHECK_GT(p, 0.0);
  CHECK_LT(p, 1.0);
  double lo = -1e6, hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

SummaryStats Summarize(const std::vector<double>& sample) {
  SummaryStats stats;
  stats.n = sample.size();
  if (sample.empty()) return stats;
  stats.min = *std::min_element(sample.begin(), sample.end());
  stats.max = *std::max_element(sample.begin(), sample.end());
  double sum = 0.0;
  for (double x : sample) sum += x;
  stats.mean = sum / static_cast<double>(stats.n);
  if (stats.n >= 2) {
    double ss = 0.0;
    for (double x : sample) {
      double d = x - stats.mean;
      ss += d * d;
    }
    stats.stddev = std::sqrt(ss / static_cast<double>(stats.n - 1));
  }
  return stats;
}

double SummaryStats::ConfidenceHalfWidth(double level) const {
  if (n < 2) return 0.0;
  double df = static_cast<double>(n - 1);
  double quantile = StudentTQuantile(0.5 + level / 2.0, df);
  return quantile * stddev / std::sqrt(static_cast<double>(n));
}

PairedTTestResult PairedTTest(const std::vector<double>& a,
                              const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  CHECK_GE(a.size(), 2u);
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  SummaryStats d = Summarize(diff);

  PairedTTestResult result;
  result.degrees_of_freedom = d.n - 1;
  result.mean_difference = d.mean;
  if (d.stddev == 0.0) {
    result.t_statistic = d.mean == 0.0 ? 0.0
                         : (d.mean > 0.0 ? 1e30 : -1e30);
    result.p_value = d.mean == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic =
      d.mean / (d.stddev / std::sqrt(static_cast<double>(d.n)));
  double df = static_cast<double>(result.degrees_of_freedom);
  double cdf = StudentTCdf(std::fabs(result.t_statistic), df);
  result.p_value = 2.0 * (1.0 - cdf);
  return result;
}

}  // namespace rtr
