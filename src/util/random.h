#ifndef RTR_UTIL_RANDOM_H_
#define RTR_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rtr {

// Deterministic, seedable pseudo-random generator (xoshiro256++ seeded via
// SplitMix64). All experiments in this repository are reproducible: every
// random decision flows through an explicitly seeded Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Reseeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [0, bound). Requires bound > 0.
  uint32_t NextUint32(uint32_t bound) {
    return static_cast<uint32_t>(NextUint64(bound));
  }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Bernoulli draw with success probability p in [0, 1].
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Approximately normal via sum of uniforms is NOT used; this is a proper
  // Box-Muller draw with the given mean and standard deviation.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  // Geometric number of failures before the first success:
  // p(k) = (1-p)^k * p for k = 0, 1, 2, ... Requires p in (0, 1].
  // This is exactly the walk-length distribution L ~ Geo(alpha) of the paper.
  int NextGeometric(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

// Zipf-distributed sampler over ranks {0, ..., n-1} with exponent s:
// p(rank k) proportional to 1/(k+1)^s. Precomputes the CDF for O(log n) draws.
// Used for term frequencies and URL popularity in the synthetic datasets.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t n() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  // Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  // Probability mass of a given rank.
  double Pmf(size_t rank) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace rtr

#endif  // RTR_UTIL_RANDOM_H_
