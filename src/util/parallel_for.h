#ifndef RTR_UTIL_PARALLEL_FOR_H_
#define RTR_UTIL_PARALLEL_FOR_H_

// Deterministic data-parallel loops over a persistent thread pool
// (DESIGN.md §7). The pool is process-wide, created lazily on first use,
// and sized by RTR_NUM_THREADS (falling back to the hardware concurrency).
//
// Determinism contract: chunk geometry depends only on the iteration space
// (n / offsets and grain) — NEVER on the thread count — and chunk count is
// capped at kMaxChunks so per-chunk partial accumulators fit on the
// caller's stack. A kernel that writes per-index outputs and reduces
// per-chunk partials in chunk order therefore produces bit-identical
// results at 1 and N threads (tests/util/parallel_for_test.cc).
//
// Allocation-free: the callable is borrowed by reference (no std::function
// copy), job state lives in the pool, and chunk bounds live on the caller's
// stack — a ParallelFor call performs zero heap allocations.
//
// Nesting is not supported: a kernel running under ParallelFor must not
// call ParallelFor itself (the pool serializes jobs on one mutex, so a
// nested call from a worker thread would deadlock). Concurrent calls from
// *different* threads (e.g. serve::QueryService workers) are safe — they
// simply queue behind one another.

#include <cstddef>
#include <type_traits>

namespace rtr::util {

// Upper bound on chunks per parallel region (see the determinism contract
// above). 64 saturates far more cores than the serving tier targets while
// keeping partial arrays at one cache line's worth of pointers.
inline constexpr size_t kMaxChunks = 64;

// Threads participating in parallel regions (>= 1, includes the caller).
int NumThreads();

// Resizes the pool; n < 1 resets to the default (RTR_NUM_THREADS env var,
// else hardware concurrency). Must not race in-flight ParallelFor calls.
void SetNumThreads(int n);

// Uniform chunk geometry for an index space [0, n): chunks of size
// max(grain, ceil(n / kMaxChunks)). Depends only on (n, grain).
size_t ChunkCount(size_t n, size_t grain);

// Balanced chunk geometry for a CSR adjacency: splits [0, n) at the
// `bounds` array (caller-allocated, kMaxChunks + 1 slots) so every chunk
// spans roughly equal offsets-mass (arcs), targeting `grain` arcs per
// chunk. `offsets` is a CSR offsets array with n + 1 entries. Returns the
// chunk count. Depends only on (offsets, grain).
size_t BalancedChunkBounds(const size_t* offsets, size_t n, size_t grain,
                           size_t* bounds);

namespace internal {
using ChunkFn = void (*)(void* ctx, size_t chunk, size_t begin, size_t end);
// Runs fn(ctx, c, bounds[c], bounds[c+1]) for c in [0, num_chunks).
void ParallelForBounds(const size_t* bounds, size_t num_chunks, ChunkFn fn,
                       void* ctx);
// Uniform-chunk variant over [0, n).
void ParallelForUniform(size_t n, size_t grain, ChunkFn fn, void* ctx);
}  // namespace internal

// Runs fn(chunk, begin, end) for every uniform chunk of [0, n). fn must
// only write per-index outputs and/or per-chunk accumulator slots.
template <typename F>
void ParallelFor(size_t n, size_t grain, F&& fn) {
  internal::ParallelForUniform(
      n, grain,
      [](void* ctx, size_t chunk, size_t begin, size_t end) {
        (*static_cast<std::remove_reference_t<F>*>(ctx))(chunk, begin, end);
      },
      &fn);
}

// Same, over caller-computed chunk bounds (see BalancedChunkBounds).
template <typename F>
void ParallelForChunks(const size_t* bounds, size_t num_chunks, F&& fn) {
  internal::ParallelForBounds(
      bounds, num_chunks,
      [](void* ctx, size_t chunk, size_t begin, size_t end) {
        (*static_cast<std::remove_reference_t<F>*>(ctx))(chunk, begin, end);
      },
      &fn);
}

}  // namespace rtr::util

#endif  // RTR_UTIL_PARALLEL_FOR_H_
