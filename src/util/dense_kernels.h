#ifndef RTR_UTIL_DENSE_KERNELS_H_
#define RTR_UTIL_DENSE_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Vectorized gather-multiply-accumulate primitives for the dense pull
// kernels (ranking::FRankInto / TRankInto and the power-iteration steps in
// core/round_trip_rank.cc). One CSR row's contribution is
//
//   sum_i probs[i] * x[idx[i]]       for i in [0, n)
//
// — a bandwidth-bound gather-dot. Two implementations exist: a portable
// scalar one and an AVX2 one (vpgatherdpd + mul + add), selected once at
// startup by CPU detection and switchable at runtime.
//
// Bit-identity contract: every implementation uses the SAME fixed 4-lane
// summation — the main loop accumulates products into four independent lane
// accumulators (lane j takes the products at indices i+j), the scalar tail
// adds element i into lane i&3, and the final combine is
// (l0 + l1) + (l2 + l3). No implementation may use FMA (the AVX2
// translation unit is compiled with -mavx2 only, never -mfma, so the
// compiler cannot contract the mul+add either). Under IEEE-754 the portable
// and AVX2 paths therefore return bit-identical doubles, which is what lets
// the f64 rank tests assert exact equality across {scalar, SIMD}.
//
// The f32 variant reads a float prob column (snapshot v3 /
// Graph::PopulateF32Probs), converts each prob to double and accumulates in
// f64 with the same 4-lane shape: f32-scalar and f32-AVX2 are bit-identical
// to each other, and differ from the f64 kernels only by the one
// float-cast of each prob (the documented bounded-delta path).
//
// Indices are u32 and gathered with signed-32 addressing on AVX2: callers
// guarantee idx[i] < 2^31, which Graph enforces a fortiori (node counts are
// far below kInvalidNode).

namespace rtr::util {

// sum over i<n of probs[i] * x[idx[i]], fixed 4-lane association.
double GatherDotF64(const uint32_t* idx, const double* probs, size_t n,
                    const double* x);
// Same, reading f32 probs (each cast to double before the multiply).
double GatherDotF32(const uint32_t* idx, const float* probs, size_t n,
                    const double* x);

// "avx2" or "portable": the implementation GatherDot* currently dispatches
// to (reflects both CPU support and SetSimdEnabled).
const char* DenseKernelIsa();

// Runtime switch for the vector path. Defaults to on when the CPU supports
// AVX2; RTR_SIMD=off (or 0/false) in the environment forces portable.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

// Opt-in for the f32 prob columns on the dense path. Defaults to off (the
// exact f64 kernels); RTR_F32_KERNELS=1 in the environment opts in. Callers
// must still check Graph::has_f32_probs() — this flag only expresses
// intent.
bool F32KernelsEnabled();
void SetF32Kernels(bool enabled);

// Read-prefetch hint with low temporal locality; no-op where unsupported.
// Used by the Stage-II refinement sweeps to hide the adjacency-column
// latency of the next few nodes.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

namespace internal {

using GatherF64Fn = double (*)(const uint32_t*, const double*, size_t,
                               const double*);
using GatherF32Fn = double (*)(const uint32_t*, const float*, size_t,
                               const double*);

struct GatherKernels {
  GatherF64Fn f64;
  GatherF32Fn f32;
};

// Defined in dense_kernels_avx2.cc (the only TU compiled with -mavx2);
// returns null when AVX2 code was not compiled in. The caller still gates
// on runtime CPU detection.
const GatherKernels* Avx2Kernels();

}  // namespace internal
}  // namespace rtr::util

#endif  // RTR_UTIL_DENSE_KERNELS_H_
