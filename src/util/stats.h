#ifndef RTR_UTIL_STATS_H_
#define RTR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace rtr {

// Summary of a sample: count, mean, sample standard deviation, extremes.
struct SummaryStats {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample (n-1) standard deviation; 0 when n < 2
  double min = 0.0;
  double max = 0.0;

  // Half-width of the two-sided confidence interval of the mean at the given
  // confidence level (e.g., 0.99 for the paper's 99% intervals), using the
  // Student t quantile. Returns 0 when n < 2.
  double ConfidenceHalfWidth(double level) const;
};

// Computes summary statistics of `sample` (empty sample yields all-zero).
SummaryStats Summarize(const std::vector<double>& sample);

// Result of a paired two-tail Student t-test between two equal-length samples.
struct PairedTTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;  // two-tail
  size_t degrees_of_freedom = 0;
  double mean_difference = 0.0;  // mean(a - b)

  // True when p_value < alpha.
  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

// Paired two-tail t-test of H0: mean(a - b) == 0. Requires a.size() ==
// b.size() and at least two pairs. Used for the paper's significance claims
// (p < 0.01). Degenerate inputs (zero variance of differences) yield
// p = 1 when the mean difference is 0 and p = 0 otherwise.
PairedTTestResult PairedTTest(const std::vector<double>& a,
                              const std::vector<double>& b);

// CDF of the Student t distribution with `df` degrees of freedom, used by the
// test above; exposed for unit testing against known quantiles.
double StudentTCdf(double t, double df);

// Inverse CDF (quantile) of the Student t distribution, via bisection on
// StudentTCdf. `p` must be in (0, 1).
double StudentTQuantile(double p, double df);

}  // namespace rtr

#endif  // RTR_UTIL_STATS_H_
