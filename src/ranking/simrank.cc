#include "ranking/simrank.h"

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace rtr::ranking {
namespace {

class SimRankMeasure : public ProximityMeasure {
 public:
  SimRankMeasure(const Graph& g, const SimRankParams& params)
      : graph_(g), params_(params) {
    CHECK_GT(params.num_walks, 0);
    CHECK_GT(params.walk_length, 0);
    CHECK_GT(params.decay, 0.0);
    CHECK_LT(params.decay, 1.0);
    BuildFingerprints();
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    CHECK(!query.empty());
    std::vector<double> scores(graph_.num_nodes(), 0.0);
    const int steps = params_.walk_length + 1;  // positions include step 0
    // Power table for C^tau.
    std::vector<double> decay_pow(steps);
    for (int s = 0; s < steps; ++s) decay_pow[s] = std::pow(params_.decay, s);

    for (NodeId q : query) {
      CHECK_LT(q, graph_.num_nodes());
      for (int r = 0; r < params_.num_walks; ++r) {
        // Two coupled walks meet at the first step s where they occupy the
        // same node simultaneously; the pair then contributes C^s. Scanning
        // every node's walk keeps this O(n * L) per (query, walk) pair.
        for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
          if (v == q) {
            scores[v] += 1.0;  // s(q, q) = 1
            continue;
          }
          for (int s = 1; s < steps; ++s) {
            NodeId walked_v = Position(v, r, s);
            if (walked_v == kInvalidNode) break;
            NodeId walked_q = Position(q, r, s);
            if (walked_q == kInvalidNode) break;
            if (walked_v == walked_q) {
              scores[v] += decay_pow[s];
              break;
            }
          }
        }
      }
    }
    double norm =
        1.0 / (static_cast<double>(params_.num_walks) * query.size());
    for (double& s : scores) s *= norm;
    return scores;
  }

 private:
  // positions_[r][s * n + v] = node where walk r from v is at step s.
  // Stored flat; step 0 is omitted (it is v itself).
  void BuildFingerprints() {
    const size_t n = graph_.num_nodes();
    // Per-node cumulative in-weights for weighted in-neighbor sampling.
    std::vector<double> in_weight(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      for (double w : graph_.in_arc_weights(v)) in_weight[v] += w;
    }
    positions_.assign(params_.num_walks,
                      std::vector<NodeId>(params_.walk_length * n));
    Rng rng(params_.seed);
    for (int r = 0; r < params_.num_walks; ++r) {
      for (NodeId v = 0; v < n; ++v) {
        NodeId current = v;
        for (int s = 0; s < params_.walk_length; ++s) {
          current = StepBack(current, in_weight, rng);
          positions_[r][static_cast<size_t>(s) * n + v] = current;
          if (current == kInvalidNode) {
            for (int rest = s + 1; rest < params_.walk_length; ++rest) {
              positions_[r][static_cast<size_t>(rest) * n + v] = kInvalidNode;
            }
            break;
          }
        }
      }
    }
  }

  NodeId StepBack(NodeId v, const std::vector<double>& in_weight, Rng& rng) {
    if (v == kInvalidNode) return kInvalidNode;
    auto sources = graph_.in_sources(v);
    auto weights = graph_.in_arc_weights(v);
    if (sources.empty() || in_weight[v] <= 0.0) return kInvalidNode;
    double u = rng.NextDouble() * in_weight[v];
    double acc = 0.0;
    for (size_t i = 0; i < sources.size(); ++i) {
      acc += weights[i];
      if (u < acc) return sources[i];
    }
    return sources.back();
  }

  NodeId Position(NodeId v, int walk, int step) const {
    DCHECK_GE(step, 1);
    return positions_[walk]
                     [static_cast<size_t>(step - 1) * graph_.num_nodes() + v];
  }

  const Graph& graph_;
  SimRankParams params_;
  std::vector<std::vector<NodeId>> positions_;
  std::string name_ = "SimRank";
};

}  // namespace

std::unique_ptr<ProximityMeasure> MakeSimRankMeasure(
    const Graph& g, const SimRankParams& params) {
  return std::make_unique<SimRankMeasure>(g, params);
}

}  // namespace rtr::ranking
