#ifndef RTR_RANKING_TCOMMUTE_H_
#define RTR_RANKING_TCOMMUTE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "ranking/measure.h"

namespace rtr::ranking {

// Parameters of truncated commute time [11], [14].
struct TCommuteParams {
  // Truncation horizon; the paper uses the recommended T = 10.
  int horizon = 10;
  // Walks used to estimate the outbound truncated hitting time h(q -> v)
  // (the inbound direction h(v -> q) is computed exactly by DP).
  int num_walks = 3000;
  uint64_t seed = 1014;
  // Weight on the inbound (specificity-flavored) direction; 0.5 is the
  // original symmetric commute time, other values give the customized
  // "TCommute+" of Fig. 10.
  double beta = 0.5;
  std::string name = "TCommute";
};

// Truncated commute time: score(q, v) =
//   -[ 2(1-beta) * h_T(q -> v) + 2 beta * h_T(v -> q) ],
// where h_T is the expected hitting time truncated at T steps (unreachable
// within T counts as T). Smaller commute distance = higher score.
//
// h_T(v -> q) for all v is one exact O(T * E) dynamic program; h_T(q -> v)
// for all v is estimated from `num_walks` first-passage Monte-Carlo walks
// (the per-target DP would cost O(n * T * E)) — deterministic under `seed`.
// Multi-node queries average the per-query-node distances.
std::unique_ptr<ProximityMeasure> MakeTCommuteMeasure(
    const Graph& g, const TCommuteParams& params = {});

}  // namespace rtr::ranking

#endif  // RTR_RANKING_TCOMMUTE_H_
