#ifndef RTR_RANKING_SIMRANK_H_
#define RTR_RANKING_SIMRANK_H_

#include <cstdint>
#include <memory>

#include "ranking/measure.h"

namespace rtr::ranking {

// Parameters of the Monte-Carlo SimRank estimator.
struct SimRankParams {
  // Decay constant; the paper uses the recommended C = 0.85.
  double decay = 0.85;
  // Number of coupled reverse walks per node (Fogaras-Racz fingerprints).
  int num_walks = 64;
  // Length of each reverse walk; contributions beyond this are < decay^L.
  int walk_length = 11;
  uint64_t seed = 88;
};

// SimRank [8] estimated by reverse-walk fingerprints: s(a, b) =
// E[ C^tau ] where tau is the first meeting time of two coupled backward
// random walks from a and b. Exact SimRank is O(n^2 d^2) per iteration —
// infeasible beyond toy graphs (the reason the paper evaluates SimRank on
// subgraphs); the fingerprint estimator is the standard scalable stand-in
// and is deterministic under `seed`.
//
// Walks follow in-arcs with probability proportional to in-arc weight.
// Multi-node queries average the per-query-node scores.
std::unique_ptr<ProximityMeasure> MakeSimRankMeasure(
    const Graph& g, const SimRankParams& params = {});

}  // namespace rtr::ranking

#endif  // RTR_RANKING_SIMRANK_H_
