#ifndef RTR_RANKING_MEASURE_H_
#define RTR_RANKING_MEASURE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::ranking {

// A graph-based proximity measure bound to one graph. Implementations may
// hold per-graph precomputation (e.g., SimRank fingerprints) and per-query
// caches; Score therefore is non-const — and, by the same token, a measure
// instance is NOT safe for concurrent Score calls. Use one instance per
// thread; the underlying Graph may be shared freely.
//
// The returned vector has one entry per node; higher scores mean closer to
// the query. Ties are broken downstream by node id.
class ProximityMeasure {
 public:
  virtual ~ProximityMeasure() = default;

  virtual const std::string& name() const = 0;

  // Proximity of every node to `query` (one or more query nodes; multi-node
  // queries follow the Linearity Theorem where applicable).
  virtual std::vector<double> Score(const Query& query) = 0;
};

// Extracts the indices of the top-k entries of `scores` in decreasing score
// order (ties by ascending node id), skipping entries listed in `exclude`.
std::vector<NodeId> TopKNodes(const std::vector<double>& scores, size_t k,
                              const std::vector<NodeId>& exclude = {});

}  // namespace rtr::ranking

#endif  // RTR_RANKING_MEASURE_H_
