#include "ranking/combinators.h"

#include <utility>

#include "util/logging.h"

namespace rtr::ranking {
namespace {

// Applies a binary combination of the f and t vectors.
template <typename Combine>
class FTCombinatorMeasure : public ProximityMeasure {
 public:
  FTCombinatorMeasure(std::shared_ptr<FTScorer> scorer, std::string name,
                      Combine combine)
      : scorer_(std::move(scorer)),
        name_(std::move(name)),
        combine_(std::move(combine)) {
    CHECK(scorer_ != nullptr);
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    const FTVectors& ft = scorer_->Compute(query);
    std::vector<double> scores(ft.f.size());
    for (size_t v = 0; v < scores.size(); ++v) {
      scores[v] = combine_(ft.f[v], ft.t[v]);
    }
    return scores;
  }

 private:
  std::shared_ptr<FTScorer> scorer_;
  std::string name_;
  Combine combine_;
};

template <typename Combine>
std::unique_ptr<ProximityMeasure> MakeCombinator(
    std::shared_ptr<FTScorer> scorer, std::string name, Combine combine) {
  return std::make_unique<FTCombinatorMeasure<Combine>>(
      std::move(scorer), std::move(name), std::move(combine));
}

}  // namespace

std::unique_ptr<ProximityMeasure> MakeFRankMeasure(
    std::shared_ptr<FTScorer> scorer) {
  return MakeCombinator(std::move(scorer), "F-Rank/PPR",
                        [](double f, double) { return f; });
}

std::unique_ptr<ProximityMeasure> MakeTRankMeasure(
    std::shared_ptr<FTScorer> scorer) {
  return MakeCombinator(std::move(scorer), "T-Rank",
                        [](double, double t) { return t; });
}

std::unique_ptr<ProximityMeasure> MakeArithmeticMeasure(
    std::shared_ptr<FTScorer> scorer, double beta, std::string name) {
  CHECK_GE(beta, 0.0);
  CHECK_LE(beta, 1.0);
  return MakeCombinator(std::move(scorer), std::move(name),
                        [beta](double f, double t) {
                          return (1.0 - beta) * f + beta * t;
                        });
}

std::unique_ptr<ProximityMeasure> MakeHarmonicMeasure(
    std::shared_ptr<FTScorer> scorer, double beta, std::string name) {
  CHECK_GE(beta, 0.0);
  CHECK_LE(beta, 1.0);
  return MakeCombinator(std::move(scorer), std::move(name),
                        [beta](double f, double t) {
                          if (f <= 0.0 || t <= 0.0) return 0.0;
                          return 1.0 / ((1.0 - beta) / f + beta / t);
                        });
}

}  // namespace rtr::ranking
