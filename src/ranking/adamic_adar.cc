#include "ranking/adamic_adar.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace rtr::ranking {
namespace {

class AdamicAdarMeasure : public ProximityMeasure {
 public:
  explicit AdamicAdarMeasure(const Graph& g) : graph_(g) {
    // Undirected adjacency (out ∪ in, deduplicated), built once.
    neighbors_.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::unordered_set<NodeId> set;
      for (NodeId target : g.out_targets(v)) set.insert(target);
      for (NodeId source : g.in_sources(v)) set.insert(source);
      neighbors_[v].assign(set.begin(), set.end());
    }
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    CHECK(!query.empty());
    std::vector<double> scores(graph_.num_nodes(), 0.0);
    for (NodeId q : query) {
      CHECK_LT(q, graph_.num_nodes());
      for (NodeId u : neighbors_[q]) {
        size_t degree = neighbors_[u].size();
        if (degree < 2) continue;  // log(1) = 0 would blow up; u adds nothing
        double contribution = 1.0 / std::log(static_cast<double>(degree));
        for (NodeId v : neighbors_[u]) {
          scores[v] += contribution;
        }
      }
    }
    double norm = 1.0 / static_cast<double>(query.size());
    for (double& s : scores) s *= norm;
    return scores;
  }

 private:
  const Graph& graph_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::string name_ = "AdamicAdar";
};

}  // namespace

std::unique_ptr<ProximityMeasure> MakeAdamicAdarMeasure(const Graph& g) {
  return std::make_unique<AdamicAdarMeasure>(g);
}

}  // namespace rtr::ranking
