#include "ranking/tcommute.h"

#include <vector>

#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace rtr::ranking {
namespace {

class TCommuteMeasure : public ProximityMeasure {
 public:
  TCommuteMeasure(const Graph& g, const TCommuteParams& params)
      : graph_(g), params_(params) {
    CHECK_GT(params.horizon, 0);
    CHECK_GT(params.num_walks, 0);
    CHECK_GE(params.beta, 0.0);
    CHECK_LE(params.beta, 1.0);
  }

  const std::string& name() const override { return params_.name; }

  std::vector<double> Score(const Query& query) override {
    CHECK(!query.empty());
    const size_t n = graph_.num_nodes();
    std::vector<double> total(n, 0.0);
    for (NodeId q : query) {
      CHECK_LT(q, n);
      std::vector<double> inbound = InboundHittingTimes(q);
      std::vector<double> outbound = OutboundHittingTimes(q);
      for (size_t v = 0; v < n; ++v) {
        total[v] += 2.0 * (1.0 - params_.beta) * outbound[v] +
                    2.0 * params_.beta * inbound[v];
      }
    }
    std::vector<double> scores(n);
    double norm = 1.0 / static_cast<double>(query.size());
    for (size_t v = 0; v < n; ++v) {
      scores[v] = -(total[v] * norm);
    }
    return scores;
  }

 private:
  // Exact DP for h_T(v -> q), all v: h^0 = 0;
  // h^tau(v) = 0 if v == q, else 1 + sum_u M[v][u] * h^{tau-1}(u).
  // Dangling nodes never hit q and saturate at T.
  std::vector<double> InboundHittingTimes(NodeId q) const {
    const size_t n = graph_.num_nodes();
    std::vector<double> h(n, 0.0), next(n, 0.0);
    // Dense per-tau sweep: every next[v] is independent, so the sweep runs
    // on the util::ParallelFor pool (arc-balanced chunks; per-index writes
    // keep the DP bit-identical at any thread count).
    size_t bounds[util::kMaxChunks + 1];
    const size_t chunks = util::BalancedChunkBounds(
        graph_.out_offsets().data(), n, size_t{1} << 14, bounds);
    for (int tau = 1; tau <= params_.horizon; ++tau) {
      util::ParallelForChunks(
          bounds, chunks, [&](size_t, size_t begin, size_t end) {
            for (size_t v = begin; v < end; ++v) {
              if (v == q) {
                next[v] = 0.0;
                continue;
              }
              auto targets = graph_.out_targets(static_cast<NodeId>(v));
              if (targets.empty()) {
                // The walk is stuck: treat as a self-loop, accruing time.
                next[v] = 1.0 + h[v];
                continue;
              }
              auto probs = graph_.out_probs(static_cast<NodeId>(v));
              double sum = 0.0;
              for (size_t i = 0; i < targets.size(); ++i) {
                sum += probs[i] * h[targets[i]];
              }
              next[v] = 1.0 + sum;
            }
          });
      h.swap(next);
    }
    return h;
  }

  // Monte-Carlo first-passage estimate of h_T(q -> v) for all v.
  std::vector<double> OutboundHittingTimes(NodeId q) const {
    const size_t n = graph_.num_nodes();
    const double T = static_cast<double>(params_.horizon);
    std::vector<double> sum(n, T * params_.num_walks);
    // Derive the walk seed from the query so scores are query-deterministic
    // regardless of evaluation order.
    Rng rng(params_.seed ^ (0x9e3779b97f4a7c15ULL * (q + 1)));
    std::vector<int> first_visit(n, -1);
    std::vector<NodeId> visited;
    for (int w = 0; w < params_.num_walks; ++w) {
      NodeId current = q;
      first_visit[q] = 0;
      visited.push_back(q);
      for (int step = 1; step <= params_.horizon; ++step) {
        if (graph_.out_degree(current) == 0) break;
        current = graph_.SampleOutNeighbor(current, rng.NextDouble());
        if (first_visit[current] < 0) {
          first_visit[current] = step;
          visited.push_back(current);
        }
      }
      for (NodeId v : visited) {
        sum[v] -= T - static_cast<double>(first_visit[v]);
        first_visit[v] = -1;
      }
      visited.clear();
    }
    std::vector<double> h(n);
    for (size_t v = 0; v < n; ++v) {
      h[v] = sum[v] / static_cast<double>(params_.num_walks);
    }
    return h;
  }

  const Graph& graph_;
  TCommuteParams params_;
};

}  // namespace

std::unique_ptr<ProximityMeasure> MakeTCommuteMeasure(
    const Graph& g, const TCommuteParams& params) {
  return std::make_unique<TCommuteMeasure>(g, params);
}

}  // namespace rtr::ranking
