#ifndef RTR_RANKING_PAGERANK_H_
#define RTR_RANKING_PAGERANK_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rtr::ranking {

// Parameters of the geometric random-walk model shared by F-Rank, T-Rank,
// RoundTripRank and ObjectRank. The walk length L ~ Geo(alpha), i.e., the
// surfer teleports with probability alpha per step (the paper uses
// alpha = 0.25 throughout).
struct WalkParams {
  double alpha = 0.25;
  // Power iteration stops when the L1 change drops below `tolerance` or
  // after `max_iterations` passes, whichever first. The iteration is a
  // (1-alpha)-contraction, so ~100 iterations reach 1e-12.
  double tolerance = 1e-12;
  int max_iterations = 200;
};

// F-Rank (Eq. 1/5): f(q, v) = p(W_L = v | W_0 = q), the probability that a
// trip of geometric length from the query lands on v. Equivalent to
// Personalized PageRank (Proposition 1). Multi-node queries start uniformly
// at random from the query nodes (Linearity Theorem).
//
// Computed by power iteration on f = alpha*e_q + (1-alpha) * M^T f. The
// per-iteration kernel runs on the util::ParallelFor pool, chunked by arc
// mass over the in-offsets column; results are bit-identical at any thread
// count (the determinism contract of DESIGN.md §7).
std::vector<double> FRank(const Graph& g, const Query& query,
                          const WalkParams& params = {});

// T-Rank (Eq. 8): t(q, v) = p(W_L' = q | W_0 = v), the probability that a
// trip of geometric length from v lands on the query — the paper's
// specificity sense. Computed by power iteration on
// t = alpha*e_q + (1-alpha) * M t, parallelized like FRank.
std::vector<double> TRank(const Graph& g, const Query& query,
                          const WalkParams& params = {});

// In-place variants: `out` receives the scores, `scratch` is the
// ping-pong buffer; both are resized to num_nodes and may carry capacity
// across calls, making repeat queries allocation-free (the workspace-arena
// contract the naive top-K baseline relies on).
void FRankInto(const Graph& g, const Query& query, const WalkParams& params,
               std::vector<double>* out, std::vector<double>* scratch);
void TRankInto(const Graph& g, const Query& query, const WalkParams& params,
               std::vector<double>* out, std::vector<double>* scratch);

// The F-Rank and T-Rank vectors of one query.
struct FTVectors {
  std::vector<double> f;
  std::vector<double> t;
};

// Computes and caches (f, t) per query. Multiple measures built on the same
// scorer (RoundTripRank, RoundTripRank+ sweeps, F-Rank, T-Rank, harmonic /
// arithmetic combinations) share one pair of power iterations per query.
//
// NOT thread-safe: Compute overwrites the single-entry query cache and
// returns a reference into it. Concurrent servers must instantiate one
// FTScorer (and one measure stack) per worker thread; sharing the Graph
// underneath is safe (see graph/graph.h).
class FTScorer {
 public:
  explicit FTScorer(const Graph& g, const WalkParams& params = {})
      : graph_(g), params_(params) {}

  FTScorer(const FTScorer&) = delete;
  FTScorer& operator=(const FTScorer&) = delete;

  const Graph& graph() const { return graph_; }
  const WalkParams& params() const { return params_; }

  // Returns the cached vectors, recomputing when `query` differs from the
  // previous call. The reference stays valid until the next Compute call.
  const FTVectors& Compute(const Query& query);

 private:
  const Graph& graph_;
  WalkParams params_;
  Query cached_query_;
  bool has_cache_ = false;
  FTVectors cache_;
};

}  // namespace rtr::ranking

#endif  // RTR_RANKING_PAGERANK_H_
