#ifndef RTR_RANKING_ADAMIC_ADAR_H_
#define RTR_RANKING_ADAMIC_ADAR_H_

#include <memory>

#include "ranking/measure.h"

namespace rtr::ranking {

// Adamic-Adar [7]: score(q, v) = sum over common undirected neighbors u of
// 1 / log(degree(u)). A "closeness" baseline with no finer importance /
// specificity interpretation (Fig. 5). Multi-node queries average the
// per-query-node scores.
std::unique_ptr<ProximityMeasure> MakeAdamicAdarMeasure(const Graph& g);

}  // namespace rtr::ranking

#endif  // RTR_RANKING_ADAMIC_ADAR_H_
