#ifndef RTR_RANKING_OBJECTRANK_H_
#define RTR_RANKING_OBJECTRANK_H_

#include <memory>
#include <string>

#include "ranking/measure.h"
#include "ranking/pagerank.h"

namespace rtr::ranking {

// ObjSqrtInv of Hristidis et al. [5]: the dual-sensed combination of
// authority flow (ObjectRank, the importance sub-measure — equivalent to a
// personalized random walk from the query with damping d) with Inverse
// ObjectRank (the same walk on the reversed graph, their specificity
// hypothesis). The fixed original combination is
//
//   score(q, v) = OR(q, v) * sqrt(IOR(q, v)),
//
// i.e., importance weighted by the square root of specificity. The paper
// uses d = 0.25.
struct ObjSqrtInvParams {
  double damping = 0.25;
  double tolerance = 1e-12;
  int max_iterations = 200;
};

std::unique_ptr<ProximityMeasure> MakeObjSqrtInvMeasure(
    const Graph& g, const ObjSqrtInvParams& params = {});

// Customized "ObjSqrtInv+" (Fig. 10): weights (1-beta, beta) in the
// exponents, OR^(1-beta) * IOR^beta; beta = 1/3 recovers the ranking of the
// original (rank-equivalent: (OR * sqrt(IOR))^(2/3) = OR^(2/3) IOR^(1/3)).
std::unique_ptr<ProximityMeasure> MakeObjSqrtInvPlusMeasure(
    const Graph& g, double beta, const ObjSqrtInvParams& params = {},
    std::string name = "ObjSqrtInv+");

// Same, but sharing an externally owned FTScorer so a beta-grid sweep costs
// one pair of power iterations per query. The scorer should be built on the
// authority-flow view (UniformWeightCopy of the graph) with
// WalkParams.alpha = the ObjectRank damping d.
std::unique_ptr<ProximityMeasure> MakeObjSqrtInvPlusFromScorer(
    std::shared_ptr<FTScorer> scorer, double beta,
    std::string name = "ObjSqrtInv+");

}  // namespace rtr::ranking

#endif  // RTR_RANKING_OBJECTRANK_H_
