#ifndef RTR_RANKING_COMBINATORS_H_
#define RTR_RANKING_COMBINATORS_H_

#include <memory>
#include <string>

#include "ranking/measure.h"
#include "ranking/pagerank.h"

namespace rtr::ranking {

// Mono-sensed measures and the dual-sensed mean-style baselines of
// Sect. VI-A2, all defined on the shared (f, t) vectors of an FTScorer.
//
// The customized "+" variants (Fig. 10) put weights (1-beta, beta) on the
// two sub-measures; beta = 0.5 recovers the original fixed combination.

// F-Rank / Personalized PageRank: importance only.
std::unique_ptr<ProximityMeasure> MakeFRankMeasure(
    std::shared_ptr<FTScorer> scorer);

// T-Rank: specificity only (backward reachability to the query).
std::unique_ptr<ProximityMeasure> MakeTRankMeasure(
    std::shared_ptr<FTScorer> scorer);

// Arithmetic combination (1-beta)*f + beta*t; "Arithmetic" of Fig. 9 is
// beta = 0.5 (rank-equivalent to the plain arithmetic mean).
std::unique_ptr<ProximityMeasure> MakeArithmeticMeasure(
    std::shared_ptr<FTScorer> scorer, double beta = 0.5,
    std::string name = "Arithmetic");

// Weighted harmonic combination 1 / ((1-beta)/f + beta/t); zero when either
// sense is zero. beta = 0.5 is rank-equivalent to the harmonic mean of
// Agarwal et al. [12] / Fang & Chang [13].
std::unique_ptr<ProximityMeasure> MakeHarmonicMeasure(
    std::shared_ptr<FTScorer> scorer, double beta = 0.5,
    std::string name = "Harmonic");

}  // namespace rtr::ranking

#endif  // RTR_RANKING_COMBINATORS_H_
