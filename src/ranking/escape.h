#ifndef RTR_RANKING_ESCAPE_H_
#define RTR_RANKING_ESCAPE_H_

#include <cstdint>
#include <memory>

#include "ranking/measure.h"

namespace rtr::ranking {

// Parameters of the escape-probability estimator.
struct EscapeParams {
  // Monte-Carlo walks per query node.
  int num_walks = 2000;
  // Walks are truncated here if they neither return nor die earlier.
  int max_steps = 100;
  uint64_t seed = 747;
};

// Escape probability (Koren et al. [9], Tong et al. [10]): the probability
// that a random walk starting at the query visits v before returning to the
// query. A mono-sensed "closeness" measure from the paper's related work
// (Sect. II), implemented as an extension beyond the paper's evaluated
// baselines.
//
// One sampled walk yields the visited-before-first-return indicator for
// every node simultaneously, so the estimator costs O(walks * max_steps)
// per query. esc(q, q) = 1 by convention. Deterministic under `seed`;
// multi-node queries average the per-query-node estimates.
std::unique_ptr<ProximityMeasure> MakeEscapeProbabilityMeasure(
    const Graph& g, const EscapeParams& params = {});

}  // namespace rtr::ranking

#endif  // RTR_RANKING_ESCAPE_H_
