#include "ranking/escape.h"

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace rtr::ranking {
namespace {

class EscapeProbabilityMeasure : public ProximityMeasure {
 public:
  EscapeProbabilityMeasure(const Graph& g, const EscapeParams& params)
      : graph_(g), params_(params) {
    CHECK_GT(params.num_walks, 0);
    CHECK_GT(params.max_steps, 0);
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    CHECK(!query.empty());
    const size_t n = graph_.num_nodes();
    std::vector<double> scores(n, 0.0);
    std::vector<int> last_walk(n, -1);  // visited marker per walk id
    for (NodeId q : query) {
      CHECK_LT(q, n);
      // Query-derived seed: results are independent of evaluation order.
      Rng rng(params_.seed ^ (0x9e3779b97f4a7c15ULL * (q + 1)));
      std::vector<double> hits(n, 0.0);
      for (int walk = 0; walk < params_.num_walks; ++walk) {
        NodeId current = q;
        for (int step = 0; step < params_.max_steps; ++step) {
          if (graph_.out_degree(current) == 0) break;  // the walk dies
          current = graph_.SampleOutNeighbor(current, rng.NextDouble());
          if (current == q) break;  // returned before visiting more nodes
          if (last_walk[current] != walk) {
            last_walk[current] = walk;
            hits[current] += 1.0;
          }
        }
      }
      for (size_t v = 0; v < n; ++v) {
        scores[v] += hits[v] / params_.num_walks;
      }
      scores[q] += 1.0;  // esc(q, q) = 1 by convention
      std::fill(last_walk.begin(), last_walk.end(), -1);
    }
    double norm = 1.0 / static_cast<double>(query.size());
    for (double& s : scores) s *= norm;
    return scores;
  }

 private:
  const Graph& graph_;
  EscapeParams params_;
  std::string name_ = "EscapeProbability";
};

}  // namespace

std::unique_ptr<ProximityMeasure> MakeEscapeProbabilityMeasure(
    const Graph& g, const EscapeParams& params) {
  return std::make_unique<EscapeProbabilityMeasure>(g, params);
}

}  // namespace rtr::ranking
