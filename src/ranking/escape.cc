#include "ranking/escape.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace rtr::ranking {
namespace {

class EscapeProbabilityMeasure : public ProximityMeasure {
 public:
  EscapeProbabilityMeasure(const Graph& g, const EscapeParams& params)
      : graph_(g), params_(params) {
    CHECK_GT(params.num_walks, 0);
    CHECK_GT(params.max_steps, 0);
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    CHECK(!query.empty());
    const size_t n = graph_.num_nodes();
    for (NodeId q : query) CHECK_LT(q, n);
    // Each query node's walk bundle is independent (its RNG stream is
    // query-derived), so bundles run on the util::ParallelFor pool. Waves
    // bound the transient memory to kWave O(n) bundles (not O(|Q|)), and
    // accumulation stays in query order within and across waves, keeping
    // scores bit-identical to the sequential evaluation at any thread
    // count or wave size.
    constexpr size_t kWave = 16;
    std::vector<std::vector<double>> hits(std::min(kWave, query.size()));
    std::vector<double> scores(n, 0.0);
    for (size_t wave = 0; wave < query.size(); wave += kWave) {
      const size_t count = std::min(kWave, query.size() - wave);
      util::ParallelFor(count, 1, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i] = WalkHits(query[wave + i]);
        }
      });
      for (size_t i = 0; i < count; ++i) {
        for (size_t v = 0; v < n; ++v) {
          scores[v] += hits[i][v] / params_.num_walks;
        }
        scores[query[wave + i]] += 1.0;  // esc(q, q) = 1 by convention
        std::vector<double>().swap(hits[i]);  // release the bundle
      }
    }
    double norm = 1.0 / static_cast<double>(query.size());
    for (double& s : scores) s *= norm;
    return scores;
  }

 private:
  // One bundle of num_walks walks from q: the visited-before-first-return
  // counts for every node.
  std::vector<double> WalkHits(NodeId q) const {
    const size_t n = graph_.num_nodes();
    // Query-derived seed: results are independent of evaluation order.
    Rng rng(params_.seed ^ (0x9e3779b97f4a7c15ULL * (q + 1)));
    std::vector<double> hits(n, 0.0);
    std::vector<int> last_walk(n, -1);  // visited marker per walk id
    for (int walk = 0; walk < params_.num_walks; ++walk) {
      NodeId current = q;
      for (int step = 0; step < params_.max_steps; ++step) {
        if (graph_.out_degree(current) == 0) break;  // the walk dies
        current = graph_.SampleOutNeighbor(current, rng.NextDouble());
        if (current == q) break;  // returned before visiting more nodes
        if (last_walk[current] != walk) {
          last_walk[current] = walk;
          hits[current] += 1.0;
        }
      }
    }
    return hits;
  }

  const Graph& graph_;
  EscapeParams params_;
  std::string name_ = "EscapeProbability";
};

}  // namespace

std::unique_ptr<ProximityMeasure> MakeEscapeProbabilityMeasure(
    const Graph& g, const EscapeParams& params) {
  return std::make_unique<EscapeProbabilityMeasure>(g, params);
}

}  // namespace rtr::ranking
