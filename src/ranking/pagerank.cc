#include "ranking/pagerank.h"

#include <cmath>

#include "util/logging.h"

namespace rtr::ranking {
namespace {

// Start distribution: uniform over the query nodes.
std::vector<double> StartVector(const Graph& g, const Query& query) {
  CHECK(!query.empty()) << "empty query";
  std::vector<double> e(g.num_nodes(), 0.0);
  double mass = 1.0 / static_cast<double>(query.size());
  for (NodeId q : query) {
    CHECK_LT(q, g.num_nodes());
    e[q] += mass;
  }
  return e;
}

double L1Diff(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace

std::vector<double> FRank(const Graph& g, const Query& query,
                          const WalkParams& params) {
  const std::vector<double> start = StartVector(g, query);
  std::vector<double> f = start;  // alpha-scaling folded into the update
  for (double& x : f) x *= params.alpha;
  std::vector<double> next(g.num_nodes(), 0.0);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Hot loop: streams only the (source, prob) columns.
      auto sources = g.in_sources(v);
      auto probs = g.in_probs(v);
      double sum = 0.0;
      for (size_t i = 0; i < sources.size(); ++i) {
        sum += probs[i] * f[sources[i]];
      }
      next[v] = params.alpha * start[v] + (1.0 - params.alpha) * sum;
    }
    double diff = L1Diff(f, next);
    f.swap(next);
    if (diff < params.tolerance) break;
  }
  return f;
}

std::vector<double> TRank(const Graph& g, const Query& query,
                          const WalkParams& params) {
  const std::vector<double> start = StartVector(g, query);
  std::vector<double> t = start;
  for (double& x : t) x *= params.alpha;
  std::vector<double> next(g.num_nodes(), 0.0);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto targets = g.out_targets(v);
      auto probs = g.out_probs(v);
      double sum = 0.0;
      for (size_t i = 0; i < targets.size(); ++i) {
        sum += probs[i] * t[targets[i]];
      }
      next[v] = params.alpha * start[v] + (1.0 - params.alpha) * sum;
    }
    double diff = L1Diff(t, next);
    t.swap(next);
    if (diff < params.tolerance) break;
  }
  return t;
}

const FTVectors& FTScorer::Compute(const Query& query) {
  if (has_cache_ && query == cached_query_) return cache_;
  cache_.f = FRank(graph_, query, params_);
  cache_.t = TRank(graph_, query, params_);
  cached_query_ = query;
  has_cache_ = true;
  return cache_;
}

}  // namespace rtr::ranking
