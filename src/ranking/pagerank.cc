#include "ranking/pagerank.h"

#include <cmath>

#include "util/dense_kernels.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace rtr::ranking {
namespace {

// Arc mass per chunk of the parallel power-iteration kernels: coarse
// enough that a chunk amortizes the pool's wake-up, fine enough to load-
// balance skewed degree distributions.
constexpr size_t kArcGrain = 1 << 14;

void CheckQuery(const Graph& g, const Query& query,
                const std::vector<double>* out,
                const std::vector<double>* scratch) {
  CHECK(!query.empty()) << "empty query";
  for (NodeId q : query) CHECK_LT(q, g.num_nodes());
  CHECK(out != scratch) << "out and scratch must be distinct buffers";
}

// One power iteration to convergence. `Pull(v)` must return
// sum_u M-prob * x[u] over the pulled adjacency of v; `offsets` is that
// adjacency's offsets column (chunk balancing). Writes the result into
// *out using *scratch as the ping-pong buffer.
//
// Determinism: chunk bounds depend only on (offsets, kArcGrain); each chunk
// writes its own index range and one partial-diff slot, and the partials
// are reduced in chunk order — so the result is bit-identical at any
// thread count.
template <typename PullFn>
void PowerIterate(const Graph& g, const Query& query,
                  const WalkParams& params, std::span<const size_t> offsets,
                  std::vector<double>* out, std::vector<double>* scratch,
                  const PullFn& pull) {
  const size_t n = g.num_nodes();
  const double mass = 1.0 / static_cast<double>(query.size());
  const double teleport = params.alpha * mass;

  std::vector<double>& x = *out;
  std::vector<double>& next = *scratch;
  x.assign(n, 0.0);
  next.assign(n, 0.0);
  for (NodeId q : query) x[q] += teleport;  // x0 = alpha * e_q

  size_t bounds[util::kMaxChunks + 1];
  const size_t chunks =
      util::BalancedChunkBounds(offsets.data(), n, kArcGrain, bounds);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    double partial[util::kMaxChunks];
    util::ParallelForChunks(
        bounds, chunks, [&](size_t chunk, size_t begin, size_t end) {
          for (size_t v = begin; v < end; ++v) {
            next[v] = (1.0 - params.alpha) * pull(x, static_cast<NodeId>(v));
          }
          // Teleport lands inside the owning chunk so the L1 diff below
          // sees final values in one pass.
          for (NodeId q : query) {
            if (q >= begin && q < end) next[q] += teleport;
          }
          double diff = 0.0;
          for (size_t v = begin; v < end; ++v) {
            diff += std::fabs(x[v] - next[v]);
          }
          partial[chunk] = diff;
        });
    double diff = 0.0;
    for (size_t c = 0; c < chunks; ++c) diff += partial[c];  // chunk order
    x.swap(next);
    if (diff < params.tolerance) break;
  }
}

}  // namespace

void FRankInto(const Graph& g, const Query& query, const WalkParams& params,
               std::vector<double>* out, std::vector<double>* scratch) {
  CheckQuery(g, query, out, scratch);
  // Hot loop: streams only the (source, prob) columns through the
  // gather-dot kernels (util/dense_kernels.h). Column pointers are hoisted
  // once; the f32 prob column is used only when both the graph carries it
  // and the process opted in.
  const size_t* off = g.in_offsets().data();
  const NodeId* src = g.in_sources().data();
  const double* probs = g.in_probs().data();
  const float* probs32 = util::F32KernelsEnabled() && g.has_f32_probs()
                             ? g.in_probs_f32().data()
                             : nullptr;
  PowerIterate(g, query, params, g.in_offsets(), out, scratch,
               [=](const std::vector<double>& x, NodeId v) {
                 const size_t begin = off[v];
                 const size_t deg = off[v + 1] - begin;
                 return probs32 != nullptr
                            ? util::GatherDotF32(src + begin, probs32 + begin,
                                                 deg, x.data())
                            : util::GatherDotF64(src + begin, probs + begin,
                                                 deg, x.data());
               });
}

void TRankInto(const Graph& g, const Query& query, const WalkParams& params,
               std::vector<double>* out, std::vector<double>* scratch) {
  CheckQuery(g, query, out, scratch);
  const size_t* off = g.out_offsets().data();
  const NodeId* tgt = g.out_targets().data();
  const double* probs = g.out_probs().data();
  const float* probs32 = util::F32KernelsEnabled() && g.has_f32_probs()
                             ? g.out_probs_f32().data()
                             : nullptr;
  PowerIterate(g, query, params, g.out_offsets(), out, scratch,
               [=](const std::vector<double>& x, NodeId v) {
                 const size_t begin = off[v];
                 const size_t deg = off[v + 1] - begin;
                 return probs32 != nullptr
                            ? util::GatherDotF32(tgt + begin, probs32 + begin,
                                                 deg, x.data())
                            : util::GatherDotF64(tgt + begin, probs + begin,
                                                 deg, x.data());
               });
}

std::vector<double> FRank(const Graph& g, const Query& query,
                          const WalkParams& params) {
  std::vector<double> out, scratch;
  FRankInto(g, query, params, &out, &scratch);
  return out;
}

std::vector<double> TRank(const Graph& g, const Query& query,
                          const WalkParams& params) {
  std::vector<double> out, scratch;
  TRankInto(g, query, params, &out, &scratch);
  return out;
}

const FTVectors& FTScorer::Compute(const Query& query) {
  if (has_cache_ && query == cached_query_) return cache_;
  cache_.f = FRank(graph_, query, params_);
  cache_.t = TRank(graph_, query, params_);
  cached_query_ = query;
  has_cache_ = true;
  return cache_;
}

}  // namespace rtr::ranking
