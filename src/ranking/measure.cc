#include "ranking/measure.h"

#include <algorithm>

#include "util/logging.h"

namespace rtr::ranking {

std::vector<NodeId> TopKNodes(const std::vector<double>& scores, size_t k,
                              const std::vector<NodeId>& exclude) {
  std::vector<bool> excluded;
  if (!exclude.empty()) {
    excluded.assign(scores.size(), false);
    for (NodeId v : exclude) {
      CHECK_LT(v, scores.size());
      excluded[v] = true;
    }
  }
  std::vector<NodeId> ids;
  ids.reserve(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) {
    if (!excluded.empty() && excluded[v]) continue;
    ids.push_back(v);
  }
  size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + keep, ids.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

}  // namespace rtr::ranking
