#include "ranking/objectrank.h"

#include <cmath>
#include <utility>

#include "util/logging.h"

namespace rtr::ranking {
namespace {

class ObjSqrtInvMeasure : public ProximityMeasure {
 public:
  ObjSqrtInvMeasure(std::shared_ptr<FTScorer> scorer, double f_exponent,
                    double t_exponent, std::string name,
                    std::shared_ptr<const Graph> owned_graph = nullptr)
      : name_(std::move(name)),
        f_exponent_(f_exponent),
        t_exponent_(t_exponent),
        owned_graph_(std::move(owned_graph)),
        scorer_(std::move(scorer)) {
    CHECK(scorer_ != nullptr);
  }

  const std::string& name() const override { return name_; }

  std::vector<double> Score(const Query& query) override {
    const FTVectors& ft = scorer_->Compute(query);
    std::vector<double> scores(ft.f.size());
    for (size_t v = 0; v < scores.size(); ++v) {
      if (ft.f[v] <= 0.0 || ft.t[v] <= 0.0) {
        // An exponent of zero keeps the other sense alone.
        if (f_exponent_ == 0.0 && ft.t[v] > 0.0) {
          scores[v] = std::pow(ft.t[v], t_exponent_);
        } else if (t_exponent_ == 0.0 && ft.f[v] > 0.0) {
          scores[v] = std::pow(ft.f[v], f_exponent_);
        } else {
          scores[v] = 0.0;
        }
        continue;
      }
      scores[v] =
          std::pow(ft.f[v], f_exponent_) * std::pow(ft.t[v], t_exponent_);
    }
    return scores;
  }

 private:
  std::string name_;
  double f_exponent_;
  double t_exponent_;
  // The authority-flow (uniform-weight) view when built from a raw graph.
  std::shared_ptr<const Graph> owned_graph_;
  std::shared_ptr<FTScorer> scorer_;
};

// ObjectRank transfers authority by link structure alone (its per-edge-type
// transfer rates are not derived from content weights), so the walk runs on
// the uniform-weight view of the graph.
std::unique_ptr<ObjSqrtInvMeasure> MakeFromRawGraph(
    const Graph& g, const ObjSqrtInvParams& params, double f_exponent,
    double t_exponent, std::string name) {
  auto authority_view = std::make_shared<const Graph>(UniformWeightCopy(g));
  WalkParams walk;
  walk.alpha = params.damping;
  walk.tolerance = params.tolerance;
  walk.max_iterations = params.max_iterations;
  auto scorer = std::make_shared<FTScorer>(*authority_view, walk);
  return std::make_unique<ObjSqrtInvMeasure>(std::move(scorer), f_exponent,
                                             t_exponent, std::move(name),
                                             std::move(authority_view));
}

}  // namespace

std::unique_ptr<ProximityMeasure> MakeObjSqrtInvMeasure(
    const Graph& g, const ObjSqrtInvParams& params) {
  return MakeFromRawGraph(g, params, 1.0, 0.5, "ObjSqrtInv");
}

std::unique_ptr<ProximityMeasure> MakeObjSqrtInvPlusMeasure(
    const Graph& g, double beta, const ObjSqrtInvParams& params,
    std::string name) {
  CHECK_GE(beta, 0.0);
  CHECK_LE(beta, 1.0);
  return MakeFromRawGraph(g, params, 1.0 - beta, beta, std::move(name));
}

std::unique_ptr<ProximityMeasure> MakeObjSqrtInvPlusFromScorer(
    std::shared_ptr<FTScorer> scorer, double beta, std::string name) {
  CHECK_GE(beta, 0.0);
  CHECK_LE(beta, 1.0);
  return std::make_unique<ObjSqrtInvMeasure>(std::move(scorer), 1.0 - beta,
                                             beta, std::move(name));
}

}  // namespace rtr::ranking
