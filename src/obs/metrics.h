#ifndef RTR_OBS_METRICS_H_
#define RTR_OBS_METRICS_H_

// Process-wide metrics registry (DESIGN.md §9).
//
// The serving tier used to expose counters through bespoke structs
// (ServiceStats, CacheStats) that every consumer printed its own way. This
// registry is the one place those signals meet: subsystems register named
// metrics once at setup time, keep writing them lock-free on their hot
// paths, and any reader renders a consistent-enough snapshot of everything
// at once — as a Prometheus-style text exposition (RenderText) or as JSON
// (RenderJson).
//
// Three metric shapes:
//  * Counter   — monotonic u64, one relaxed fetch_add per bump;
//  * Gauge     — settable f64 (atomic store / CAS add);
//  * Histogram — util::LatencyHistogram (wait-free bucketed samples).
//
// Two registration styles:
//  * registry-owned, get-or-create (`GetCounter(name, labels)`): the metric
//    lives as long as the registry and the same (name, labels, kind) always
//    returns the same pointer — the right shape for process-global
//    subsystems like the util::ParallelFor pool;
//  * borrowed (`RegisterCounter(name, labels, &my_counter)`): the caller
//    owns the metric as an ordinary member and the returned RAII
//    Registration unregisters it on destruction — the right shape for
//    components with their own lifetime (serve::QueryService registers its
//    per-service counters this way and keeps ServiceStats as a snapshot
//    view over them). Callback gauges/counters sample a closure at render
//    time for values that are derived rather than stored (generation ids,
//    cache occupancy, QPS).
//
// Duplicate series (same name + labels, e.g. two QueryServices in one test
// process) are legal at registration and merged at render time: counters
// and gauges sum, histograms merge bucket-wise — the exposition never emits
// the same series twice (tests/cli/rtr_cli_metrics_test.sh checks this).
//
// Thread safety: metric writes are lock-free and may race renders freely
// (the TSan job covers many writers + a rendering reader). Registration,
// unregistration, and rendering serialize on one mutex. Render-time
// callbacks run under that mutex and therefore must not call back into the
// registry.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/latency_histogram.h"

namespace rtr::obs {

// Sorted-by-construction label set. Keep values short and low-cardinality
// (backend names, phase names, shard ids) — every distinct label set is one
// series in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonic counter. Wait-free writes; value() may be read concurrently.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins double gauge; Add is a CAS loop (gauges are not hot-path
// metrics — hot paths use counters and histograms).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  // RAII handle for a borrowed registration: unregisters on destruction,
  // so a component's metrics disappear from the exposition exactly when
  // the component does. Movable, not copyable; a default-constructed
  // handle is empty.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    Registration& operator=(Registration&& other) noexcept;
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { Release(); }

    void Release();

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}

    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry (leaked on purpose: metrics must stay
  // writable from worker threads that may outlive static destruction).
  static MetricsRegistry& Default();

  // Registry-owned metrics, get-or-create by (name, labels): the same key
  // always returns the same pointer, valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name, Labels labels = {});

  // Borrowed metrics: `metric` must outlive the returned Registration.
  [[nodiscard]] Registration RegisterCounter(const std::string& name,
                                             Labels labels,
                                             const Counter* metric);
  [[nodiscard]] Registration RegisterGauge(const std::string& name,
                                           Labels labels,
                                           const Gauge* metric);
  [[nodiscard]] Registration RegisterHistogram(
      const std::string& name, Labels labels,
      const LatencyHistogram* metric);

  // Render-time sampled series for derived values. The callback runs under
  // the registry mutex: it must be cheap and must not call back into the
  // registry. Callback counters must return monotonically non-decreasing
  // values (they render as counters).
  [[nodiscard]] Registration RegisterCallbackGauge(
      const std::string& name, Labels labels, std::function<double()> fn);
  [[nodiscard]] Registration RegisterCallbackCounter(
      const std::string& name, Labels labels, std::function<uint64_t()> fn);

  // Prometheus-style text exposition: `# TYPE` comments, `_total`-suffixed
  // counter conventions left to the caller's names, histograms as sparse
  // cumulative `_bucket{le=...}` lines plus `_sum`/`_count`. Series are
  // sorted by (name, labels) and duplicates are merged, so the output is
  // deterministic for a given set of values.
  std::string RenderText() const;

  // The same snapshot as a JSON document: {"metrics": [...]}, histograms
  // with count/sum/max/p50/p95/p99 and sparse cumulative buckets.
  std::string RenderJson() const;

  // Registered series count (before duplicate merging); test hook.
  size_t NumSeries() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge,
                    kCallbackCounter };

  struct Entry {
    uint64_t id = 0;
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
    std::function<double()> gauge_fn;
    std::function<uint64_t()> counter_fn;
  };

  // One merged series, sampled under the mutex.
  struct Sample {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    uint64_t counter_value = 0;
    double gauge_value = 0.0;
    LatencyHistogram::Snapshot histogram_value;
  };

  Registration Add(Entry entry);
  void Remove(uint64_t id);
  // Sampled, merged, sorted view of every series (locks mu_).
  std::vector<Sample> Collect() const;

  friend class Registration;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  // Stable storage for registry-owned metrics (deques never relocate).
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<LatencyHistogram> owned_histograms_;
  uint64_t next_id_ = 1;
};

}  // namespace rtr::obs

#endif  // RTR_OBS_METRICS_H_
