#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace rtr::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kGenerationPin:
      return "generation_pin";
    case Phase::kCacheLookup:
      return "cache_lookup";
    case Phase::kStage1Expand:
      return "stage1_expand";
    case Phase::kStage2Refine:
      return "stage2_refine";
    case Phase::kFinalize:
      return "finalize";
    case Phase::kSchedWait:
      return "sched_wait";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder() { spans_.reserve(64); }

int64_t TraceRecorder::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::BeginQuery(int64_t query_id) {
  query_id_ = query_id;
  epoch_nanos_ = NowNanos();
  open_depth_ = 0;
  spans_.clear();
  phase_nanos_.fill(0);
  phase_counts_.fill(0);
  last_end_nanos_ = 0;
  min_start_nanos_ = 0;
  dropped_spans_ = 0;
}

int32_t TraceRecorder::BeginSpan(Phase phase) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return -1;
  }
  TraceSpan span;
  span.phase = phase;
  span.depth = open_depth_++;
  span.start_nanos = NowNanos() - epoch_nanos_;
  span.duration_nanos = -1;  // open
  spans_.push_back(span);
  return static_cast<int32_t>(spans_.size() - 1);
}

void TraceRecorder::EndSpan(int32_t index) {
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  TraceSpan& span = spans_[index];
  if (span.duration_nanos >= 0) return;  // already closed
  const int64_t end = NowNanos() - epoch_nanos_;
  span.duration_nanos = end - span.start_nanos;
  open_depth_ = span.depth;
  last_end_nanos_ = std::max(last_end_nanos_, end);
  min_start_nanos_ = std::min(min_start_nanos_, span.start_nanos);
  if (span.depth == 0) {
    const size_t p = static_cast<size_t>(span.phase);
    phase_nanos_[p] += span.duration_nanos;
    ++phase_counts_[p];
  }
}

void TraceRecorder::AddSpan(Phase phase, int64_t duration_nanos) {
  AddSpanAt(phase, NowNanos(), duration_nanos);
}

void TraceRecorder::AddSpanAt(Phase phase, int64_t end_abs_nanos,
                              int64_t duration_nanos) {
  if (duration_nanos < 0) duration_nanos = 0;
  const int64_t end = end_abs_nanos - epoch_nanos_;
  last_end_nanos_ = std::max(last_end_nanos_, end);
  min_start_nanos_ = std::min(min_start_nanos_, end - duration_nanos);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
  } else {
    TraceSpan span;
    span.phase = phase;
    span.depth = open_depth_;
    span.start_nanos = end - duration_nanos;
    span.duration_nanos = duration_nanos;
    spans_.push_back(span);
  }
  if (open_depth_ == 0) {
    const size_t p = static_cast<size_t>(phase);
    phase_nanos_[p] += duration_nanos;
    ++phase_counts_[p];
  }
}

double TraceRecorder::PhaseMillis(Phase phase) const {
  return static_cast<double>(phase_nanos_[static_cast<size_t>(phase)]) / 1e6;
}

uint64_t TraceRecorder::PhaseSpanCount(Phase phase) const {
  return phase_counts_[static_cast<size_t>(phase)];
}

double TraceRecorder::TotalMillis() const {
  return static_cast<double>(last_end_nanos_ - min_start_nanos_) / 1e6;
}

std::string TraceRecorder::ToJson() const {
  char buf[128];
  std::string out;
  out.reserve(64 + spans_.size() * 48);
  std::snprintf(buf, sizeof(buf), "{\"query_id\":%lld,\"total_ms\":%.3f",
                static_cast<long long>(query_id_), TotalMillis());
  out += buf;
  out += ",\"phases\":{";
  bool first = true;
  for (size_t p = 0; p < kNumPhases; ++p) {
    if (phase_counts_[p] == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f",
                  PhaseName(static_cast<Phase>(p)),
                  static_cast<double>(phase_nanos_[p]) / 1e6);
    out += buf;
  }
  out += "},\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    if (i > 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"phase\":\"%s\",\"depth\":%d,\"start_us\":%.1f,"
                  "\"dur_us\":%.1f}",
                  PhaseName(s.phase), s.depth,
                  static_cast<double>(s.start_nanos) / 1e3,
                  static_cast<double>(std::max<int64_t>(s.duration_nanos, 0)) /
                      1e3);
    out += buf;
  }
  out += "]";
  if (dropped_spans_ > 0) {
    std::snprintf(buf, sizeof(buf), ",\"dropped_spans\":%llu",
                  static_cast<unsigned long long>(dropped_spans_));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace rtr::obs
