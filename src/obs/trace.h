#ifndef RTR_OBS_TRACE_H_
#define RTR_OBS_TRACE_H_

// Per-query phase tracing (DESIGN.md §9).
//
// A TraceRecorder timestamps the phases one query passes through on its way
// to a top-K answer: admission-queue wait, generation pin, cache lookup,
// Stage I bound expansion, Stage II refinement, and heap/top-K finalize.
// The recorder is threaded through QueryWorkspace as a plain pointer that
// is null by default — every instrumentation site is a single branch on
// that pointer when tracing is off, which keeps the engine's zero-overhead
// and zero-allocation steady-state contracts intact (bench_micro records
// both configurations in BENCH_topk.json).
//
// Spans nest: BeginSpan/EndSpan pairs track an explicit depth so a dump
// shows Stage II sweeps inside the overall query span. Callers that
// already measured a duration themselves (e.g. the engine's geometric
// check boundaries, which deliberately read the clock O(log rounds) times
// instead of once per round) report it with AddSpan.
//
// A recorder belongs to one query on one thread; it is not thread-safe.
// Aggregation across queries happens by feeding PhaseMillis() into
// per-phase LatencyHistograms in the metrics registry.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rtr::obs {

// The phase taxonomy. Keep in sync with PhaseName(); these names are the
// `phase` label values of the `rtr_query_phase_ms` histogram family.
enum class Phase : uint8_t {
  kQueueWait = 0,      // admission: enqueue -> worker pickup
  kGenerationPin = 1,  // pinning a graph generation (incl. restripe)
  kCacheLookup = 2,    // result-cache probe (and insert on miss)
  kStage1Expand = 3,   // Stage I: bound-convergence expansion rounds
  kStage2Refine = 4,   // Stage II: candidate refinement sweeps
  kFinalize = 5,       // candidate assembly, sort, top-K emit
  kSchedWait = 6,      // scheduler admission: enqueue -> batch drain pickup
};
inline constexpr size_t kNumPhases = 7;

// Stable lowercase label value for a phase ("queue_wait", "stage1_expand",
// ...).
const char* PhaseName(Phase phase);

// One recorded span. start_nanos is relative to the recorder's
// BeginQuery() epoch, so dumps are self-contained and diffable.
struct TraceSpan {
  Phase phase = Phase::kQueueWait;
  int32_t depth = 0;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
};

class TraceRecorder {
 public:
  // Spans beyond this are dropped (and counted); a query touching the cap
  // is pathological, not typical — Stage II sweeps are bounded by rounds.
  static constexpr size_t kMaxSpans = 4096;

  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Resets the recorder for a new query and sets the relative-time epoch.
  // `query_id` is echoed into the JSON dump.
  void BeginQuery(int64_t query_id);

  // Opens a span for `phase` now; returns its index for EndSpan, or -1 if
  // the recorder is full (the drop is counted; EndSpan(-1) is a no-op).
  int32_t BeginSpan(Phase phase);

  // Closes the span opened by BeginSpan.
  void EndSpan(int32_t index);

  // Records an externally-timed span: `duration_nanos` of `phase` ending
  // now. Used where the caller batches its own clock reads.
  void AddSpan(Phase phase, int64_t duration_nanos);

  // Same, but the caller supplies the span's end as an absolute
  // steady_clock reading it already holds, so closing a segment costs the
  // engine exactly one clock read (the hot-loop variant; see
  // core/twosbound.cc's close_segment).
  void AddSpanAt(Phase phase, int64_t end_abs_nanos, int64_t duration_nanos);

  // Total time attributed to `phase` across top-level spans, in millis.
  // Nested spans are excluded from the total so phases sum to <= the
  // query's wall time.
  double PhaseMillis(Phase phase) const;

  // Top-level spans recorded for `phase`.
  uint64_t PhaseSpanCount(Phase phase) const;

  const std::vector<TraceSpan>& spans() const { return spans_; }
  uint64_t dropped_spans() const { return dropped_spans_; }
  int64_t query_id() const { return query_id_; }

  // Wall time from the earliest span start (backdated queue-wait spans
  // start before the BeginQuery epoch) to the latest span end, in millis.
  double TotalMillis() const;

  // One-line JSON object: query id, total, per-phase totals, and the span
  // list [{"phase","depth","start_us","dur_us"}].
  std::string ToJson() const;

 private:
  int64_t NowNanos() const;

  int64_t query_id_ = 0;
  int64_t epoch_nanos_ = 0;
  int32_t open_depth_ = 0;
  std::vector<TraceSpan> spans_;
  std::array<int64_t, kNumPhases> phase_nanos_{};
  std::array<uint64_t, kNumPhases> phase_counts_{};
  int64_t last_end_nanos_ = 0;
  int64_t min_start_nanos_ = 0;  // backdated spans can start before the epoch
  uint64_t dropped_spans_ = 0;
};

// RAII wrapper for the common begin/end pattern. Null recorder → no-op;
// the disabled path is one pointer test.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, Phase phase)
      : recorder_(recorder),
        index_(recorder != nullptr ? recorder->BeginSpan(phase) : -1) {}
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->EndSpan(index_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  int32_t index_;
};

}  // namespace rtr::obs

#endif  // RTR_OBS_TRACE_H_
