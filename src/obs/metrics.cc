#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/logging.h"

namespace rtr::obs {
namespace {

// Shortest-ish round-trippable double formatting shared by both renderers.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Escapes a label value for the text exposition / JSON string contexts
// (both use backslash escapes for quote and backslash).
std::string EscapeValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// `{k1="v1",k2="v2"}`, empty string for no labels.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first + "=\"" + EscapeValue(labels[i].second) + "\"";
  }
  out.push_back('}');
  return out;
}

// Same labels with one extra pair appended (for histogram `le` bounds).
std::string RenderLabelsWith(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

}  // namespace

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
  }
  return *this;
}

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Remove(id_);
    registry_ = nullptr;
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: see the class comment — worker threads may still
  // write metrics while static destructors run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Registration MetricsRegistry::Add(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.push_back(std::move(entry));
  return Registration(this, id);
}

void MetricsRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kCounter && e.name == name && e.labels == labels) {
      return const_cast<Counter*>(e.counter);
    }
  }
  owned_counters_.emplace_back();
  Entry entry;
  entry.id = next_id_++;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kCounter;
  entry.counter = &owned_counters_.back();
  entries_.push_back(std::move(entry));
  return &owned_counters_.back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kGauge && e.name == name && e.labels == labels) {
      return const_cast<Gauge*>(e.gauge);
    }
  }
  owned_gauges_.emplace_back();
  Entry entry;
  entry.id = next_id_++;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kGauge;
  entry.gauge = &owned_gauges_.back();
  entries_.push_back(std::move(entry));
  return &owned_gauges_.back();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kHistogram && e.name == name && e.labels == labels) {
      return const_cast<LatencyHistogram*>(e.histogram);
    }
  }
  owned_histograms_.emplace_back();
  Entry entry;
  entry.id = next_id_++;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kHistogram;
  entry.histogram = &owned_histograms_.back();
  entries_.push_back(std::move(entry));
  return &owned_histograms_.back();
}

MetricsRegistry::Registration MetricsRegistry::RegisterCounter(
    const std::string& name, Labels labels, const Counter* metric) {
  CHECK(metric != nullptr);
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kCounter;
  entry.counter = metric;
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterGauge(
    const std::string& name, Labels labels, const Gauge* metric) {
  CHECK(metric != nullptr);
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kGauge;
  entry.gauge = metric;
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterHistogram(
    const std::string& name, Labels labels, const LatencyHistogram* metric) {
  CHECK(metric != nullptr);
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kHistogram;
  entry.histogram = metric;
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterCallbackGauge(
    const std::string& name, Labels labels, std::function<double()> fn) {
  CHECK(fn != nullptr);
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kCallbackGauge;
  entry.gauge_fn = std::move(fn);
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterCallbackCounter(
    const std::string& name, Labels labels, std::function<uint64_t()> fn) {
  CHECK(fn != nullptr);
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = Kind::kCallbackCounter;
  entry.counter_fn = std::move(fn);
  return Add(std::move(entry));
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Collect() const {
  // Sampled and merged under the mutex: borrowed metrics cannot be
  // unregistered mid-render, and duplicate series collapse into one.
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::pair<std::string, Labels>, Sample> merged;
  for (const Entry& e : entries_) {
    Sample& sample = merged[{e.name, e.labels}];
    const bool fresh = sample.name.empty();
    if (fresh) {
      sample.name = e.name;
      sample.labels = e.labels;
      // Callback series render as their plain kind.
      sample.kind = e.kind == Kind::kCallbackGauge    ? Kind::kGauge
                    : e.kind == Kind::kCallbackCounter ? Kind::kCounter
                                                       : e.kind;
    }
    switch (e.kind) {
      case Kind::kCounter:
        sample.counter_value += e.counter->value();
        break;
      case Kind::kCallbackCounter:
        sample.counter_value += e.counter_fn();
        break;
      case Kind::kGauge:
        sample.gauge_value += e.gauge->value();
        break;
      case Kind::kCallbackGauge:
        sample.gauge_value += e.gauge_fn();
        break;
      case Kind::kHistogram:
        sample.histogram_value.Merge(e.histogram->TakeSnapshot());
        break;
    }
  }
  std::vector<Sample> samples;
  samples.reserve(merged.size());
  for (auto& [key, sample] : merged) samples.push_back(std::move(sample));
  return samples;  // std::map iteration order: sorted by (name, labels)
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  std::string last_name;
  for (const Sample& s : Collect()) {
    if (s.name != last_name) {
      const char* type = s.kind == Kind::kCounter   ? "counter"
                         : s.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      out += "# TYPE " + s.name + " " + type + "\n";
      last_name = s.name;
    }
    switch (s.kind) {
      case Kind::kCounter:
      case Kind::kCallbackCounter:
        out += s.name + RenderLabels(s.labels) + " " +
               std::to_string(s.counter_value) + "\n";
        break;
      case Kind::kGauge:
      case Kind::kCallbackGauge:
        out += s.name + RenderLabels(s.labels) + " " +
               FormatDouble(s.gauge_value) + "\n";
        break;
      case Kind::kHistogram: {
        // Sparse cumulative buckets: a line per bucket where the count
        // grows, plus the mandatory +Inf line.
        const LatencyHistogram::Snapshot& h = s.histogram_value;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          cumulative += h.buckets[i];
          out += s.name + "_bucket" +
                 RenderLabelsWith(
                     s.labels, "le",
                     FormatDouble(LatencyHistogram::BucketLowerEdge(i + 1))) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += s.name + "_bucket" + RenderLabelsWith(s.labels, "le", "+Inf") +
               " " + std::to_string(h.count) + "\n";
        out += s.name + "_sum" + RenderLabels(s.labels) + " " +
               FormatDouble(h.sum_millis) + "\n";
        out += s.name + "_count" + RenderLabels(s.labels) + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : Collect()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + EscapeValue(s.name) + "\",\"labels\":{";
    for (size_t i = 0; i < s.labels.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "\"" + EscapeValue(s.labels[i].first) + "\":\"" +
             EscapeValue(s.labels[i].second) + "\"";
    }
    out += "},";
    switch (s.kind) {
      case Kind::kCounter:
      case Kind::kCallbackCounter:
        out += "\"kind\":\"counter\",\"value\":" +
               std::to_string(s.counter_value);
        break;
      case Kind::kGauge:
      case Kind::kCallbackGauge:
        out += "\"kind\":\"gauge\",\"value\":" + FormatDouble(s.gauge_value);
        break;
      case Kind::kHistogram: {
        const LatencyHistogram::Snapshot& h = s.histogram_value;
        out += "\"kind\":\"histogram\",\"count\":" + std::to_string(h.count) +
               ",\"sum_ms\":" + FormatDouble(h.sum_millis) +
               ",\"max_ms\":" + FormatDouble(h.max_millis) +
               ",\"p50_ms\":" + FormatDouble(h.P50()) +
               ",\"p95_ms\":" + FormatDouble(h.P95()) +
               ",\"p99_ms\":" + FormatDouble(h.P99()) + ",\"buckets\":[";
        uint64_t cumulative = 0;
        bool first_bucket = true;
        for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          cumulative += h.buckets[i];
          if (!first_bucket) out.push_back(',');
          first_bucket = false;
          out += "[" +
                 FormatDouble(LatencyHistogram::BucketLowerEdge(i + 1)) +
                 "," + std::to_string(cumulative) + "]";
        }
        out += "]";
        break;
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace rtr::obs
