#include "dist/distributed_topk.h"

#include <algorithm>
#include <string>
#include <utility>

#include "graph/snapshot.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rtr::dist {

GraphProcessor::GraphProcessor(const Graph& g, int id, int num_gps)
    : id_(id), num_gps_(num_gps) {
  CHECK_GE(id, 0);
  CHECK_LT(id, num_gps);
  for (NodeId v = static_cast<NodeId>(id); v < g.num_nodes();
       v += static_cast<NodeId>(num_gps)) {
    owned_nodes_.push_back(v);
  }
  out_offsets_.reserve(owned_nodes_.size() + 1);
  in_offsets_.reserve(owned_nodes_.size() + 1);
  out_offsets_.push_back(0);
  in_offsets_.push_back(0);
  auto append = [](auto* column, auto span) {
    column->insert(column->end(), span.begin(), span.end());
  };
  for (NodeId v : owned_nodes_) {
    append(&out_targets_, g.out_targets(v));
    append(&out_weights_, g.out_arc_weights(v));
    append(&out_probs_, g.out_probs(v));
    out_offsets_.push_back(out_targets_.size());
    append(&in_sources_, g.in_sources(v));
    append(&in_weights_, g.in_arc_weights(v));
    append(&in_probs_, g.in_probs(v));
    in_offsets_.push_back(in_sources_.size());
  }
  stored_bytes_ = owned_nodes_.size() * sizeof(NodeId) +
                  (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t) +
                  (out_targets_.size() + in_sources_.size()) *
                      (sizeof(NodeId) + 2 * sizeof(double));
}

Status GraphProcessor::Fetch(const std::vector<NodeId>& nodes,
                             std::vector<NodeRecord>* out) const {
  fetch_requests_.Add(1);
  out->reserve(out->size() + nodes.size());
  for (NodeId v : nodes) {
    if (!Owns(v)) {
      return Status::InvalidArgument("GP " + std::to_string(id_) +
                                     " does not own node " +
                                     std::to_string(v));
    }
    // Owned nodes are the arithmetic progression id, id+num_gps, ...; the
    // stripe-local index is therefore direct, no search needed.
    size_t i = (v - static_cast<NodeId>(id_)) / static_cast<NodeId>(num_gps_);
    if (i >= owned_nodes_.size()) {
      return Status::OutOfRange("node " + std::to_string(v) +
                                " beyond GP " + std::to_string(id_) +
                                "'s stripe");
    }
    NodeRecord record;
    record.node = v;
    record.out_targets.assign(out_targets_.begin() + out_offsets_[i],
                              out_targets_.begin() + out_offsets_[i + 1]);
    record.out_weights.assign(out_weights_.begin() + out_offsets_[i],
                              out_weights_.begin() + out_offsets_[i + 1]);
    record.out_probs.assign(out_probs_.begin() + out_offsets_[i],
                            out_probs_.begin() + out_offsets_[i + 1]);
    record.in_sources.assign(in_sources_.begin() + in_offsets_[i],
                             in_sources_.begin() + in_offsets_[i + 1]);
    record.in_weights.assign(in_weights_.begin() + in_offsets_[i],
                             in_weights_.begin() + in_offsets_[i + 1]);
    record.in_probs.assign(in_probs_.begin() + in_offsets_[i],
                           in_probs_.begin() + in_offsets_[i + 1]);
    records_served_.Add(1);
    bytes_served_.Add(record.WireBytes());
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Cluster::Cluster(std::shared_ptr<const Graph> graph, int num_gps,
                 uint64_t generation)
    : graph_(std::move(graph)), generation_(generation) {
  CHECK(graph_ != nullptr) << "a cluster needs a graph";
  CHECK_GE(num_gps, 1) << "a cluster needs at least one graph processor";
  gps_.reserve(static_cast<size_t>(num_gps));
  for (int id = 0; id < num_gps; ++id) {
    gps_.emplace_back(*graph_, id, num_gps);
    total_stored_bytes_ += gps_.back().stored_bytes();
  }
}

Cluster::Cluster(std::shared_ptr<const Graph> graph,
                 std::vector<std::unique_ptr<RecordSource>> sources,
                 uint64_t generation)
    : graph_(std::move(graph)),
      generation_(generation),
      sources_(std::move(sources)) {
  CHECK(graph_ != nullptr) << "a cluster needs a graph";
  CHECK_GE(sources_.size(), 1u) << "a remote cluster needs record sources";
  for (const std::unique_ptr<RecordSource>& source : sources_) {
    CHECK(source != nullptr) << "remote cluster sources must be non-null";
  }
}

const RecordSource& Cluster::source(int gp) const {
  CHECK_GE(gp, 0);
  CHECK_LT(gp, num_gps());
  if (remote()) return *sources_[static_cast<size_t>(gp)];
  return gps_[static_cast<size_t>(gp)];
}

uint64_t Cluster::total_fetch_requests() const {
  uint64_t total = 0;
  for (int gp = 0; gp < num_gps(); ++gp) total += fetch_requests(gp);
  return total;
}

uint64_t Cluster::total_records_served() const {
  uint64_t total = 0;
  for (int gp = 0; gp < num_gps(); ++gp) total += records_served(gp);
  return total;
}

uint64_t Cluster::total_bytes_served() const {
  uint64_t total = 0;
  for (int gp = 0; gp < num_gps(); ++gp) total += bytes_served(gp);
  return total;
}

WireTraffic Cluster::total_wire() const {
  WireTraffic total;
  for (int gp = 0; gp < num_gps(); ++gp) total += wire(gp);
  return total;
}

StatusOr<std::unique_ptr<Cluster>> Cluster::FromGraphFile(
    const std::string& path, int num_gps, MapMode map_mode) {
  uint64_t generation = 0;
  StatusOr<Graph> loaded = LoadGraphAuto(path, &generation, map_mode);
  RTR_RETURN_IF_ERROR(loaded.status());
  return std::make_unique<Cluster>(
      std::make_shared<const Graph>(std::move(loaded).value()), num_gps,
      generation);
}

namespace {

// Cross-checks one GP response record against the AP-side graph; any
// divergence means the shard storage or the fetch path is corrupt.
Status ValidateRecord(const Graph& g, const NodeRecord& record) {
  auto equal = [](const auto& got, auto want) {
    return std::equal(got.begin(), got.end(), want.begin(), want.end());
  };
  bool ok = equal(record.out_targets, g.out_targets(record.node)) &&
            equal(record.out_weights, g.out_arc_weights(record.node)) &&
            equal(record.out_probs, g.out_probs(record.node)) &&
            equal(record.in_sources, g.in_sources(record.node)) &&
            equal(record.in_weights, g.in_arc_weights(record.node)) &&
            equal(record.in_probs, g.in_probs(record.node));
  if (!ok) {
    return Status::Internal("GP record for node " +
                            std::to_string(record.node) +
                            " does not match the graph");
  }
  return Status::OK();
}

}  // namespace

StatusOr<DistributedTopKResult> DistributedTopK(
    const Cluster& cluster, const Query& query,
    const core::TopKParams& params, core::QueryWorkspace* workspace) {
  const Graph& g = cluster.graph();
  WallTimer timer;

  if (params.scheme == core::TopKScheme::kNaive) {
    // kNaive touches the whole graph and reports no active_node_ids, so an
    // active-set replay would claim zero traffic for a full-graph scan.
    return Status::InvalidArgument(
        "kNaive has no active-set replay; use a bounded top-K scheme");
  }

  // The AP runs 2SBound; every node id in active_node_ids is a record it had
  // to pull from the owning GP while expanding the two neighborhoods. The
  // caller's workspace (when provided) makes the run allocation-free.
  core::QueryWorkspace local_ws;
  StatusOr<core::TopKResult> local = core::TopKRoundTripRank(
      g, query, params, workspace != nullptr ? *workspace : local_ws);
  if (!local.ok()) return local.status();

  // Replay the active set as batched per-GP fetches.
  std::vector<std::vector<NodeId>> per_gp(
      static_cast<size_t>(cluster.num_gps()));
  for (NodeId v : local->active_node_ids) {
    per_gp[static_cast<size_t>(cluster.OwnerOf(v))].push_back(v);
  }

  DistributedTopKResult result;
  std::vector<NodeRecord> active_records;  // the AP's assembled working set
  active_records.reserve(local->active_node_ids.size());
  std::vector<NodeId> batch;
  for (size_t gp = 0; gp < per_gp.size(); ++gp) {
    const std::vector<NodeId>& wanted = per_gp[gp];
    for (size_t begin = 0; begin < wanted.size();
         begin += kMaxRecordsPerRequest) {
      size_t end = std::min(begin + kMaxRecordsPerRequest, wanted.size());
      batch.assign(wanted.begin() + begin, wanted.begin() + end);
      size_t before = active_records.size();
      RTR_RETURN_IF_ERROR(
          cluster.source(static_cast<int>(gp)).Fetch(batch, &active_records));
      ++result.requests_sent;
      if (active_records.size() - before != batch.size()) {
        return Status::Internal("GP " + std::to_string(gp) + " served " +
                                std::to_string(active_records.size() -
                                               before) +
                                " records for a request of " +
                                std::to_string(batch.size()));
      }
      for (size_t j = 0; j < batch.size(); ++j) {
        const NodeRecord& record = active_records[before + j];
        if (record.node != batch[j]) {
          return Status::Internal("GP " + std::to_string(gp) +
                                  " served node " +
                                  std::to_string(record.node) +
                                  " where node " + std::to_string(batch[j]) +
                                  " was requested");
        }
        ++result.active_nodes;
        result.active_set_bytes += record.WireBytes();
      }
    }
  }

  if (result.active_nodes != local->active_node_ids.size()) {
    return Status::Internal("GP replay served " +
                            std::to_string(result.active_nodes) +
                            " records for an active set of " +
                            std::to_string(local->active_node_ids.size()));
  }
  // End of AP-visible work; the cross-check below exists only to keep the
  // simulation honest and stays outside the timed window.
  result.query_millis = timer.ElapsedMillis();

  for (const NodeRecord& record : active_records) {
    RTR_RETURN_IF_ERROR(ValidateRecord(g, record));
  }

  result.topk = std::move(*local);
  return result;
}

}  // namespace rtr::dist
