#include "dist/distributed_topk.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/timer.h"

namespace rtr::dist {

GraphProcessor::GraphProcessor(const Graph& g, int id, int num_gps)
    : id_(id), num_gps_(num_gps) {
  CHECK_GE(id, 0);
  CHECK_LT(id, num_gps);
  for (NodeId v = static_cast<NodeId>(id); v < g.num_nodes();
       v += static_cast<NodeId>(num_gps)) {
    owned_nodes_.push_back(v);
  }
  out_offsets_.reserve(owned_nodes_.size() + 1);
  in_offsets_.reserve(owned_nodes_.size() + 1);
  out_offsets_.push_back(0);
  in_offsets_.push_back(0);
  for (NodeId v : owned_nodes_) {
    auto out = g.out_arcs(v);
    out_arcs_.insert(out_arcs_.end(), out.begin(), out.end());
    out_offsets_.push_back(out_arcs_.size());
    auto in = g.in_arcs(v);
    in_arcs_.insert(in_arcs_.end(), in.begin(), in.end());
    in_offsets_.push_back(in_arcs_.size());
  }
  stored_bytes_ = owned_nodes_.size() * sizeof(NodeId) +
                  (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t) +
                  out_arcs_.size() * sizeof(OutArc) +
                  in_arcs_.size() * sizeof(InArc);
}

Status GraphProcessor::Fetch(const std::vector<NodeId>& nodes,
                             std::vector<NodeRecord>* out) const {
  out->reserve(out->size() + nodes.size());
  for (NodeId v : nodes) {
    if (!Owns(v)) {
      return Status::InvalidArgument("GP " + std::to_string(id_) +
                                     " does not own node " +
                                     std::to_string(v));
    }
    // Owned nodes are the arithmetic progression id, id+num_gps, ...; the
    // stripe-local index is therefore direct, no search needed.
    size_t i = (v - static_cast<NodeId>(id_)) / static_cast<NodeId>(num_gps_);
    if (i >= owned_nodes_.size()) {
      return Status::OutOfRange("node " + std::to_string(v) +
                                " beyond GP " + std::to_string(id_) +
                                "'s stripe");
    }
    NodeRecord record;
    record.node = v;
    record.out_arcs.assign(out_arcs_.begin() + out_offsets_[i],
                           out_arcs_.begin() + out_offsets_[i + 1]);
    record.in_arcs.assign(in_arcs_.begin() + in_offsets_[i],
                          in_arcs_.begin() + in_offsets_[i + 1]);
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Cluster::Cluster(const Graph& g, int num_gps) : graph_(&g) {
  CHECK_GE(num_gps, 1) << "a cluster needs at least one graph processor";
  gps_.reserve(static_cast<size_t>(num_gps));
  for (int id = 0; id < num_gps; ++id) {
    gps_.emplace_back(g, id, num_gps);
    total_stored_bytes_ += gps_.back().stored_bytes();
  }
}

namespace {

// Cross-checks one GP response record against the AP-side graph; any
// divergence means the shard storage or the fetch path is corrupt.
Status ValidateRecord(const Graph& g, const NodeRecord& record) {
  auto out = g.out_arcs(record.node);
  auto in = g.in_arcs(record.node);
  bool ok = record.out_arcs.size() == out.size() &&
            record.in_arcs.size() == in.size();
  for (size_t i = 0; ok && i < out.size(); ++i) {
    ok = record.out_arcs[i].target == out[i].target &&
         record.out_arcs[i].weight == out[i].weight &&
         record.out_arcs[i].prob == out[i].prob;
  }
  for (size_t i = 0; ok && i < in.size(); ++i) {
    ok = record.in_arcs[i].source == in[i].source &&
         record.in_arcs[i].weight == in[i].weight &&
         record.in_arcs[i].prob == in[i].prob;
  }
  if (!ok) {
    return Status::Internal("GP record for node " +
                            std::to_string(record.node) +
                            " does not match the graph");
  }
  return Status::OK();
}

}  // namespace

StatusOr<DistributedTopKResult> DistributedTopK(
    const Cluster& cluster, const Query& query,
    const core::TopKParams& params) {
  const Graph& g = cluster.graph();
  WallTimer timer;

  if (params.scheme == core::TopKScheme::kNaive) {
    // kNaive touches the whole graph and reports no active_node_ids, so an
    // active-set replay would claim zero traffic for a full-graph scan.
    return Status::InvalidArgument(
        "kNaive has no active-set replay; use a bounded top-K scheme");
  }

  // The AP runs 2SBound; every node id in active_node_ids is a record it had
  // to pull from the owning GP while expanding the two neighborhoods.
  StatusOr<core::TopKResult> local = core::TopKRoundTripRank(g, query, params);
  if (!local.ok()) return local.status();

  // Replay the active set as batched per-GP fetches.
  std::vector<std::vector<NodeId>> per_gp(cluster.gps().size());
  for (NodeId v : local->active_node_ids) {
    per_gp[static_cast<size_t>(cluster.OwnerOf(v))].push_back(v);
  }

  DistributedTopKResult result;
  std::vector<NodeRecord> active_records;  // the AP's assembled working set
  active_records.reserve(local->active_node_ids.size());
  std::vector<NodeId> batch;
  for (size_t gp = 0; gp < per_gp.size(); ++gp) {
    const std::vector<NodeId>& wanted = per_gp[gp];
    for (size_t begin = 0; begin < wanted.size();
         begin += kMaxRecordsPerRequest) {
      size_t end = std::min(begin + kMaxRecordsPerRequest, wanted.size());
      batch.assign(wanted.begin() + begin, wanted.begin() + end);
      size_t before = active_records.size();
      RTR_RETURN_IF_ERROR(cluster.gps()[gp].Fetch(batch, &active_records));
      ++result.requests_sent;
      if (active_records.size() - before != batch.size()) {
        return Status::Internal("GP " + std::to_string(gp) + " served " +
                                std::to_string(active_records.size() -
                                               before) +
                                " records for a request of " +
                                std::to_string(batch.size()));
      }
      for (size_t j = 0; j < batch.size(); ++j) {
        const NodeRecord& record = active_records[before + j];
        if (record.node != batch[j]) {
          return Status::Internal("GP " + std::to_string(gp) +
                                  " served node " +
                                  std::to_string(record.node) +
                                  " where node " + std::to_string(batch[j]) +
                                  " was requested");
        }
        ++result.active_nodes;
        result.active_set_bytes += record.WireBytes();
      }
    }
  }

  if (result.active_nodes != local->active_node_ids.size()) {
    return Status::Internal("GP replay served " +
                            std::to_string(result.active_nodes) +
                            " records for an active set of " +
                            std::to_string(local->active_node_ids.size()));
  }
  // End of AP-visible work; the cross-check below exists only to keep the
  // simulation honest and stays outside the timed window.
  result.query_millis = timer.ElapsedMillis();

  for (const NodeRecord& record : active_records) {
    RTR_RETURN_IF_ERROR(ValidateRecord(g, record));
  }

  result.topk = std::move(*local);
  return result;
}

}  // namespace rtr::dist
