#ifndef RTR_DIST_DISTRIBUTED_TOPK_H_
#define RTR_DIST_DISTRIBUTED_TOPK_H_

// Distributed top-K query processing (Sect. V-B of the paper).
//
// Architecture (Sect. V-B2): the graph is striped across several Graph
// Processors (GPs); an Application Processor (AP) runs 2SBound and fetches
// the per-node records it touches — the query's *active set* — from the
// owning GPs in batched requests. Because the active set stays a tiny
// fraction of the graph (Sect. V-B1, Figs. 12-13), the AP's working set and
// the GP traffic per query are small and nearly independent of graph size.
//
// This in-process simulation keeps the data movement honest: each
// GraphProcessor holds a real copy of its stripe's adjacency, the AP
// assembles the active set exclusively out of GP responses, and the returned
// byte/request counts are measured from those responses, not estimated.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/twosbound.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr::dist {

// One node's shard record as served by a GP: the node id plus copies of its
// incident arc columns (the unit of transfer of Sect. V-B2). Columnar like
// the Graph itself: entries at one index across a direction's vectors
// describe the same arc.
struct NodeRecord {
  NodeId node = kInvalidNode;
  std::vector<NodeId> out_targets;
  std::vector<double> out_weights;
  std::vector<double> out_probs;
  std::vector<NodeId> in_sources;
  std::vector<double> in_weights;
  std::vector<double> in_probs;

  size_t num_out_arcs() const { return out_targets.size(); }
  size_t num_in_arcs() const { return in_sources.size(); }

  // Wire size of this record, in the same units as the local active-set
  // accounting so local and distributed byte counts agree.
  size_t WireBytes() const {
    return core::kActiveNodeRecordBytes +
           (num_out_arcs() + num_in_arcs()) * core::kActiveArcRecordBytes;
  }
};

// Wire-level traffic actually put on (or read off) a socket by a networked
// record source, as opposed to the simulated record-byte accounting of
// NodeRecord::WireBytes. All zero for in-process sources: the loopback
// Cluster moves no wire bytes, which is exactly what the Sect. V-B traffic
// tables should show for it (bench_fig13_growth reports both columns).
struct WireTraffic {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t retries = 0;     // re-sent attempts after timeout/transport loss
  uint64_t reconnects = 0;  // connection (re-)establishments
  uint64_t timeouts = 0;    // attempts abandoned at the per-request timeout
  uint64_t sheds = 0;       // fetches refused by per-peer backpressure

  WireTraffic& operator+=(const WireTraffic& other) {
    frames_sent += other.frames_sent;
    frames_received += other.frames_received;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    retries += other.retries;
    reconnects += other.reconnects;
    timeouts += other.timeouts;
    sheds += other.sheds;
    return *this;
  }
};

// The record-fetch contract an Aggregation Processor consumes: one batched
// request in, one NodeRecord per requested node out, in request order.
// Implemented in-process by GraphProcessor (the loopback tier) and over TCP
// by net::RemoteGraphProcessor (the networked tier) — DistributedTopK only
// ever talks to this interface, so the two tiers are interchangeable under
// the same stripe layout.
//
// Thread safety: implementations must allow concurrent Fetch calls (the
// serving layer issues fetches from several worker threads).
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  // Serves one batched request: appends a record per requested node to
  // `out`, in request order. Every node must be owned by this source's
  // shard.
  virtual Status Fetch(const std::vector<NodeId>& nodes,
                       std::vector<NodeRecord>* out) const = 0;

  // Cumulative record-level traffic served through this source.
  virtual uint64_t fetch_requests() const = 0;
  virtual uint64_t records_served() const = 0;
  virtual uint64_t bytes_served() const = 0;

  // Cumulative wire-level traffic; all-zero for in-process sources.
  virtual WireTraffic wire() const { return WireTraffic{}; }
};

// Relaxed traffic counter that copies/moves by value snapshot, so the
// structs holding one stay MoveInsertable (Cluster builds its GPs inside a
// vector). Safe because GPs only move during single-threaded cluster
// construction, never while Fetch traffic is in flight.
class ShardCounter {
 public:
  ShardCounter() = default;
  ShardCounter(const ShardCounter& other)
      : n_(other.n_.load(std::memory_order_relaxed)) {}
  ShardCounter& operator=(const ShardCounter& other) {
    n_.store(other.n_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t delta) { n_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return n_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> n_{0};
};

// A graph processor owning one stripe of the node set (node v belongs to GP
// v mod num_gps). Stores the owned nodes' full adjacency in CSR form and
// serves batched record fetches.
//
// Thread safety: immutable after construction except the traffic counters;
// Fetch and the accessors are const and may be called concurrently (the
// serving layer issues fetches from several worker threads against one
// cluster).
class GraphProcessor : public RecordSource {
 public:
  // Builds the stripe of `g` owned by processor `id` out of `num_gps`.
  GraphProcessor(const Graph& g, int id, int num_gps);

  int id() const { return id_; }
  size_t num_owned_nodes() const { return owned_nodes_.size(); }
  // Resident size of this stripe's storage, the per-GP series of Fig. 12.
  size_t stored_bytes() const { return stored_bytes_; }
  // Owned node ids, ascending.
  const std::vector<NodeId>& owned_nodes() const { return owned_nodes_; }

  bool Owns(NodeId v) const { return v % num_gps_ == static_cast<NodeId>(id_); }

  // Serves one batched request: appends a record per requested node to
  // `out`. Every node in `nodes` must be owned by this GP.
  Status Fetch(const std::vector<NodeId>& nodes,
               std::vector<NodeRecord>* out) const override;

  // Cumulative traffic served by this GP since construction (the per-shard
  // series net-tier backpressure and the serve metrics read). A serving
  // layer that restripes per generation must accumulate these before
  // dropping the cluster (serve::QueryService does).
  uint64_t fetch_requests() const override { return fetch_requests_.value(); }
  uint64_t records_served() const override { return records_served_.value(); }
  uint64_t bytes_served() const override { return bytes_served_.value(); }

 private:
  int id_ = 0;
  int num_gps_ = 1;
  std::vector<NodeId> owned_nodes_;       // ascending
  // Stripe-local columnar CSR, mirroring the Graph layout (one offsets
  // array + three parallel columns per direction).
  std::vector<size_t> out_offsets_;       // size owned_nodes_.size()+1
  std::vector<NodeId> out_targets_;
  std::vector<double> out_weights_;
  std::vector<double> out_probs_;
  std::vector<size_t> in_offsets_;        // size owned_nodes_.size()+1
  std::vector<NodeId> in_sources_;
  std::vector<double> in_weights_;
  std::vector<double> in_probs_;
  size_t stored_bytes_ = 0;
  // Served-traffic counters; mutable because Fetch is logically const.
  mutable ShardCounter fetch_requests_;
  mutable ShardCounter records_served_;
  mutable ShardCounter bytes_served_;
};

// A set of graph processors jointly storing one generation of one graph,
// nodes striped round-robin. The cluster also keeps the full graph for the
// AP-side algorithm run (in a real deployment the AP holds only the active
// set; the simulation cross-checks that the GP responses reconstruct it
// exactly).
//
// Ownership: the cluster shares ownership of its graph generation via
// shared_ptr — there is no "must outlive" contract, and a live-updating
// service (serve::QueryService over a graph::GraphStore) rebuilds a fresh
// Cluster per published generation while in-flight queries drain on the
// old one.
class Cluster {
 public:
  // Requires a non-null graph and num_gps >= 1 (CHECK-enforced).
  // `generation` tags which graph generation the shards were built from.
  Cluster(std::shared_ptr<const Graph> graph, int num_gps,
          uint64_t generation = 0);

  // Remote cluster: the AP-side graph plus one RecordSource per shard
  // (shard i must serve stripe i of sources.size() — e.g. a
  // net::RemoteGraphProcessor whose handshake verified exactly that).
  // gps() is empty in this mode; everything else (OwnerOf, the traffic
  // accessors, DistributedTopK) works unchanged through source().
  Cluster(std::shared_ptr<const Graph> graph,
          std::vector<std::unique_ptr<RecordSource>> sources,
          uint64_t generation = 0);

  // Shard bring-up from a saved graph: loads `path` (binary snapshot or
  // text, auto-detected by magic — see graph/snapshot.h) and stripes it
  // across num_gps processors; the generation id comes from the snapshot
  // header (0 for text graphs). `map_mode` picks the snapshot loader:
  // kAuto honors RTR_GRAPH_MMAP, kPrefer/kRequire go zero-copy (the shard
  // records reference the shared mapped columns).
  static StatusOr<std::unique_ptr<Cluster>> FromGraphFile(
      const std::string& path, int num_gps,
      MapMode map_mode = MapMode::kAuto);

  int num_gps() const {
    return static_cast<int>(remote() ? sources_.size() : gps_.size());
  }
  // True when the shards are served over the wire (remote-source mode).
  bool remote() const { return !sources_.empty(); }
  // In-process shards; empty for a remote cluster.
  const std::vector<GraphProcessor>& gps() const { return gps_; }
  // The record source for shard `gp`, local or remote.
  const RecordSource& source(int gp) const;
  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& graph_ptr() const { return graph_; }
  // Generation of the striped graph (graph/store.h).
  uint64_t generation() const { return generation_; }

  // GP owning node v.
  int OwnerOf(NodeId v) const {
    return static_cast<int>(v % static_cast<NodeId>(num_gps()));
  }

  // Sum of all GPs' stored bytes — the cluster-wide snapshot size (0 for a
  // remote cluster: the stripes live in the serving processes).
  size_t total_stored_bytes() const { return total_stored_bytes_; }

  // Per-shard and cluster-wide traffic since construction, uniform across
  // local and remote sources (serve::QueryService's rtr_dist_* callbacks
  // read these).
  uint64_t fetch_requests(int gp) const { return source(gp).fetch_requests(); }
  uint64_t records_served(int gp) const { return source(gp).records_served(); }
  uint64_t bytes_served(int gp) const { return source(gp).bytes_served(); }
  WireTraffic wire(int gp) const { return source(gp).wire(); }
  uint64_t total_fetch_requests() const;
  uint64_t total_records_served() const;
  uint64_t total_bytes_served() const;
  WireTraffic total_wire() const;

 private:
  std::shared_ptr<const Graph> graph_;
  uint64_t generation_ = 0;
  std::vector<GraphProcessor> gps_;                     // loopback mode
  std::vector<std::unique_ptr<RecordSource>> sources_;  // remote mode
  size_t total_stored_bytes_ = 0;
};

struct DistributedTopKResult {
  core::TopKResult topk;
  // End-to-end AP wall time for the query, including GP fetches.
  double query_millis = 0.0;
  // Active-set economics (Sect. V-B1), measured from the GP responses.
  size_t active_nodes = 0;
  size_t active_set_bytes = 0;
  // Batched GP fetches issued by the AP for this query.
  size_t requests_sent = 0;
};

// Maximum node records per GP request; the AP splits larger fetches into
// multiple requests (message-size cap of the AP/GP protocol).
inline constexpr size_t kMaxRecordsPerRequest = 256;

// Answers a top-K RoundTripRank query on the clustered graph: runs 2SBound
// on the AP, replays its active set (TopKResult::active_node_ids) through
// batched per-GP fetches, verifies the responses reconstruct the active
// nodes' adjacency exactly, and reports the measured traffic.
//
// Thread safety: the cluster is only read and all per-query state is local,
// so concurrent calls over one Cluster are safe (see core/twosbound.h for
// the underlying engine's guarantee).
//
// `workspace` (optional) is the AP's reusable per-query arena for the
// embedded 2SBound run; null falls back to a call-local workspace. A shared
// workspace must not be used from two threads at once.
StatusOr<DistributedTopKResult> DistributedTopK(
    const Cluster& cluster, const Query& query,
    const core::TopKParams& params,
    core::QueryWorkspace* workspace = nullptr);

}  // namespace rtr::dist

#endif  // RTR_DIST_DISTRIBUTED_TOPK_H_
