#ifndef RTR_NET_TRANSPORT_H_
#define RTR_NET_TRANSPORT_H_

// Byte transport under the frame protocol (net/frame.h).
//
// Transport is the seam the fault-injection harness exploits: every frame
// crosses it as exactly ONE WriteAll call, so a wrapper (net/fault.h) can
// delay, corrupt, truncate, or swallow individual frames without parsing the
// stream. Production code only ever uses SocketTransport — a non-blocking
// TCP socket driven through poll(2) with bounded waits, so no call can hang
// past its timeout and Close() from another thread unblocks a sleeping peer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace rtr::net {

class Transport {
 public:
  virtual ~Transport() = default;

  // Reads at least 1 and at most `n` bytes into `buf`, waiting up to
  // `timeout_ms`. Returns the byte count; 0 means the peer closed cleanly.
  // kDeadlineExceeded: nothing arrived in time. kIoError: connection broken.
  virtual StatusOr<size_t> ReadSome(uint8_t* buf, size_t n,
                                    int timeout_ms) = 0;

  // Writes all of `frame` (one encoded frame per call — the contract the
  // fault harness relies on), waiting up to `timeout_ms` for socket space.
  // kDeadlineExceeded: the peer stopped draining. kIoError: connection
  // broken.
  virtual Status WriteAll(std::span<const uint8_t> frame, int timeout_ms) = 0;

  // Tears down the connection. Safe to call from any thread and
  // idempotent; a ReadSome/WriteAll blocked in poll wakes up and fails.
  virtual void Close() = 0;

  virtual bool closed() const = 0;

  // "host:port" of the peer, for error messages.
  virtual const std::string& peer() const = 0;
};

// Transport over a connected TCP socket. Takes ownership of `fd` (made
// non-blocking on construction; closed on destruction).
class SocketTransport : public Transport {
 public:
  SocketTransport(int fd, std::string peer);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  StatusOr<size_t> ReadSome(uint8_t* buf, size_t n, int timeout_ms) override;
  Status WriteAll(std::span<const uint8_t> frame, int timeout_ms) override;
  void Close() override;
  bool closed() const override { return closed_.load(std::memory_order_acquire); }
  const std::string& peer() const override { return peer_; }

 private:
  int fd_ = -1;
  std::string peer_;
  // Close() only half-closes via shutdown(2); the fd itself is released in
  // the destructor so a concurrent poll never races an fd-number reuse.
  std::atomic<bool> closed_{false};
};

// Splits "host:port". kInvalidArgument on malformed input.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

// Opens a listening socket on `port` (0 picks an ephemeral port) bound to
// all interfaces, SO_REUSEADDR set. Returns the fd.
StatusOr<int> ListenOn(uint16_t port);

// Actual bound port of a listening fd (resolves port 0).
StatusOr<uint16_t> ListenerPort(int listen_fd);

// Accepts one pending connection, waiting up to `timeout_ms`.
// kDeadlineExceeded when none arrives — callers loop on a short slice so a
// stop flag is honored promptly.
StatusOr<std::unique_ptr<Transport>> AcceptConnection(int listen_fd,
                                                      int timeout_ms);

// Connects to host:port with a bounded handshake wait.
// kUnavailable if the peer refuses or the wait expires.
StatusOr<std::unique_ptr<Transport>> ConnectTo(const std::string& host,
                                               uint16_t port, int timeout_ms);

// Reads one whole frame: waits up to `idle_timeout_ms` for the first byte
// (kDeadlineExceeded if none — an idle tick, the connection is still good),
// then requires the rest within `frame_timeout_ms` (a peer dying or stalling
// mid-frame is kIoError — the stream is unrecoverable). A clean peer close
// at a frame boundary is kUnavailable. The payload checksum is verified
// before returning; mismatch is kIoError.
Status ReadFrame(Transport& transport, int idle_timeout_ms,
                 int frame_timeout_ms, FrameHeader* header,
                 std::vector<uint8_t>* payload);

// Encodes and writes one frame in a single Transport::WriteAll call.
// `scratch` holds the encoded bytes (reused across calls); on success
// *wire_bytes (optional) is the frame's size on the wire.
Status WriteFrame(Transport& transport, FrameType type, uint64_t request_id,
                  std::span<const uint8_t> payload, int timeout_ms,
                  std::vector<uint8_t>* scratch,
                  size_t* wire_bytes = nullptr);

}  // namespace rtr::net

#endif  // RTR_NET_TRANSPORT_H_
