#include "net/gp_server.h"

#include <unistd.h>

#include <string>
#include <utility>

#include "util/logging.h"

namespace rtr::net {

namespace {
// Accept/read poll slice: how promptly Stop() is honored.
constexpr int kIdleSliceMs = 100;
}  // namespace

GpServer::GpServer(std::shared_ptr<const Graph> graph, int shard, int num_gps,
                   uint64_t generation, GpServerOptions options)
    : graph_(std::move(graph)),
      shard_(shard),
      num_gps_(num_gps),
      generation_(generation),
      options_(options),
      gp_(*graph_, shard, num_gps) {}

StatusOr<std::unique_ptr<GpServer>> GpServer::Start(
    std::shared_ptr<const Graph> graph, int shard, int num_gps,
    uint64_t generation, GpServerOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("gp server needs a graph");
  }
  if (num_gps < 1 || shard < 0 || shard >= num_gps) {
    return Status::InvalidArgument(
        "invalid shard " + std::to_string(shard) + "/" +
        std::to_string(num_gps));
  }
  std::unique_ptr<GpServer> server(
      new GpServer(std::move(graph), shard, num_gps, generation, options));
  StatusOr<int> fd = ListenOn(options.port);
  RTR_RETURN_IF_ERROR(fd.status());
  server->listen_fd_ = *fd;
  StatusOr<uint16_t> port = ListenerPort(*fd);
  RTR_RETURN_IF_ERROR(port.status());
  server->port_ = *port;
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

GpServer::~GpServer() { Stop(); }

void GpServer::Stop() {
  bool was_stopped = stop_.exchange(true, std::memory_order_acq_rel);
  if (was_stopped) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::weak_ptr<Transport>& weak : live_connections_) {
      if (std::shared_ptr<Transport> t = weak.lock()) t->Close();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void GpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<std::unique_ptr<Transport>> accepted =
        AcceptConnection(listen_fd_, kIdleSliceMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (!stop_.load(std::memory_order_acquire)) {
        LOG(WARNING) << "gp " << shard_
                     << " accept: " << accepted.status().ToString();
      }
      continue;
    }
    connections_.Increment();
    std::unique_ptr<Transport> owned = std::move(*accepted);
    if (options_.fault_injector != nullptr) {
      ConnectionScript script = options_.fault_injector->Next();
      if (options_.fault_injector->dead() || script.refuse) {
        owned->Close();
        continue;
      }
      owned = std::make_unique<FaultyTransport>(std::move(owned),
                                                std::move(script));
    }
    std::shared_ptr<Transport> transport = std::move(owned);
    std::lock_guard<std::mutex> lock(mu_);
    live_connections_.push_back(transport);
    handlers_.emplace_back(
        [this, transport]() mutable { ServeConnection(std::move(transport)); });
  }
}

void GpServer::ServeConnection(std::shared_ptr<Transport> transport) {
  FrameHeader header;
  std::vector<uint8_t> payload;
  std::vector<uint8_t> reply;
  std::vector<uint8_t> scratch;
  std::vector<NodeId> nodes;
  std::vector<dist::NodeRecord> records;
  while (!stop_.load(std::memory_order_acquire)) {
    Status read = ReadFrame(*transport, kIdleSliceMs,
                            options_.frame_timeout_ms, &header, &payload);
    if (!read.ok()) {
      if (read.code() == StatusCode::kDeadlineExceeded) continue;  // idle
      break;  // peer gone or stream poisoned; the client reconnects
    }
    frames_received_.Increment();
    bytes_received_.Add(kFrameHeaderBytes + payload.size());
    FrameType reply_type = FrameType::kErrorReply;
    reply.clear();
    switch (header.type) {
      case FrameType::kHello: {
        // Always ack with the server's actual identity; the client decides
        // whether the shard matches what it expects.
        HelloPayload ignored;
        Status s = DecodeHello(payload, &ignored);
        if (!s.ok()) {
          EncodeErrorReply(s, &reply);
          break;
        }
        HelloPayload mine;
        mine.shard = static_cast<uint32_t>(shard_);
        mine.num_gps = static_cast<uint32_t>(num_gps_);
        mine.num_nodes = graph_->num_nodes();
        mine.generation = generation_;
        EncodeHello(mine, &reply);
        reply_type = FrameType::kHelloAck;
        break;
      }
      case FrameType::kFetch: {
        nodes.clear();
        records.clear();
        Status s = DecodeFetchRequest(payload, &nodes);
        if (s.ok()) s = gp_.Fetch(nodes, &records);
        if (!s.ok()) {
          EncodeErrorReply(s, &reply);
          break;
        }
        EncodeFetchReply(records, &reply);
        reply_type = FrameType::kFetchReply;
        break;
      }
      default:
        EncodeErrorReply(
            Status::InvalidArgument("unexpected frame type on a gp server"),
            &reply);
        break;
    }
    size_t wire_bytes = 0;
    Status written =
        WriteFrame(*transport, reply_type, header.request_id, reply,
                   options_.frame_timeout_ms, &scratch, &wire_bytes);
    if (!written.ok()) break;  // connection cut (possibly by a fault script)
    frames_sent_.Increment();
    bytes_sent_.Add(wire_bytes);
  }
  transport->Close();
}

std::vector<obs::MetricsRegistry::Registration> GpServer::RegisterMetrics(
    obs::MetricsRegistry* registry) const {
  obs::Labels labels{{"shard", std::to_string(shard_)}};
  std::vector<obs::MetricsRegistry::Registration> regs;
  regs.push_back(registry->RegisterCounter("rtr_net_server_connections_total",
                                           labels, &connections_));
  regs.push_back(registry->RegisterCounter(
      "rtr_net_server_frames_received_total", labels, &frames_received_));
  regs.push_back(registry->RegisterCounter("rtr_net_server_frames_sent_total",
                                           labels, &frames_sent_));
  regs.push_back(registry->RegisterCounter(
      "rtr_net_server_bytes_received_total", labels, &bytes_received_));
  regs.push_back(registry->RegisterCounter("rtr_net_server_bytes_sent_total",
                                           labels, &bytes_sent_));
  regs.push_back(registry->RegisterCallbackCounter(
      "rtr_net_server_fetch_requests_total", labels,
      [this] { return gp_.fetch_requests(); }));
  regs.push_back(registry->RegisterCallbackCounter(
      "rtr_net_server_records_served_total", labels,
      [this] { return gp_.records_served(); }));
  regs.push_back(registry->RegisterCallbackCounter(
      "rtr_net_server_record_bytes_served_total", labels,
      [this] { return gp_.bytes_served(); }));
  return regs;
}

}  // namespace rtr::net
