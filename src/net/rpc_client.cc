#include "net/rpc_client.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/logging.h"

namespace rtr::net {

namespace {

// Reader-side poll slice: how promptly a closing client is noticed.
constexpr int kIdleSliceMs = 100;

bool Retryable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

}  // namespace

RpcClient::RpcClient(std::string host, uint16_t port, HelloPayload expected,
                     RpcClientOptions options)
    : host_(std::move(host)),
      port_(port),
      endpoint_(host_ + ":" + std::to_string(port)),
      expected_(expected),
      options_(options) {}

RpcClient::~RpcClient() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ != nullptr) graveyard_.push_back(std::move(conn_));
  }
  ReapGraveyard();
}

void RpcClient::ReapGraveyard() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead.swap(graveyard_);
  }
  for (std::shared_ptr<Connection>& conn : dead) {
    conn->transport->Close();
    if (conn->reader.joinable()) conn->reader.join();
  }
}

Status RpcClient::Connect() {
  StatusOr<std::shared_ptr<Connection>> conn = EnsureConnected();
  return conn.status();
}

StatusOr<std::shared_ptr<RpcClient::Connection>> RpcClient::EnsureConnected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ != nullptr && !conn_->broken.load(std::memory_order_acquire)) {
      return conn_;
    }
  }
  std::lock_guard<std::mutex> connect_lock(connect_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ != nullptr && !conn_->broken.load(std::memory_order_acquire)) {
      return conn_;  // someone else already redialed
    }
    if (conn_ != nullptr) graveyard_.push_back(std::move(conn_));
  }
  ReapGraveyard();
  StatusOr<std::unique_ptr<Transport>> dialed =
      ConnectTo(host_, port_, options_.connect_timeout_ms);
  RTR_RETURN_IF_ERROR(dialed.status());
  auto conn = std::make_shared<Connection>();
  conn->transport = std::move(*dialed);
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  RTR_RETURN_IF_ERROR(Handshake(*conn->transport));
  // The raw pointer is safe: a Connection is destroyed only after its
  // reader is joined (ReapGraveyard / destructor).
  conn->reader = std::thread([this, c = conn.get()] { ReaderLoop(c); });
  std::lock_guard<std::mutex> lock(mu_);
  conn_ = conn;
  return conn;
}

Status RpcClient::Handshake(Transport& transport) {
  std::vector<uint8_t> payload;
  EncodeHello(expected_, &payload);
  std::vector<uint8_t> scratch;
  size_t wire_bytes = 0;
  RTR_RETURN_IF_ERROR(WriteFrame(transport, FrameType::kHello,
                                 /*request_id=*/0, payload,
                                 options_.connect_timeout_ms, &scratch,
                                 &wire_bytes));
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(wire_bytes, std::memory_order_relaxed);
  FrameHeader header;
  std::vector<uint8_t> reply;
  RTR_RETURN_IF_ERROR(ReadFrame(transport, options_.connect_timeout_ms,
                                options_.connect_timeout_ms, &header,
                                &reply));
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  bytes_received_.fetch_add(kFrameHeaderBytes + reply.size(),
                            std::memory_order_relaxed);
  if (header.type == FrameType::kErrorReply) {
    Status remote = Status::OK();
    RTR_RETURN_IF_ERROR(DecodeErrorReply(reply, &remote));
    return remote;
  }
  if (header.type != FrameType::kHelloAck) {
    return Status::IoError(endpoint_ + " answered the handshake with frame "
                                       "type " +
                           std::to_string(static_cast<int>(header.type)));
  }
  HelloPayload actual;
  RTR_RETURN_IF_ERROR(DecodeHello(reply, &actual));
  if (actual.shard != expected_.shard ||
      actual.num_gps != expected_.num_gps ||
      actual.num_nodes != expected_.num_nodes ||
      actual.generation != expected_.generation) {
    return Status::FailedPrecondition(
        endpoint_ + " identifies as shard " + std::to_string(actual.shard) +
        "/" + std::to_string(actual.num_gps) + " over " +
        std::to_string(actual.num_nodes) + " nodes (generation " +
        std::to_string(actual.generation) + "); this AP expects shard " +
        std::to_string(expected_.shard) + "/" +
        std::to_string(expected_.num_gps) + " over " +
        std::to_string(expected_.num_nodes) + " nodes (generation " +
        std::to_string(expected_.generation) + ")");
  }
  return Status::OK();
}

void RpcClient::ReaderLoop(Connection* conn) {
  FrameHeader header;
  std::vector<uint8_t> payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    Status read = ReadFrame(*conn->transport, kIdleSliceMs,
                            options_.call_timeout_ms, &header, &payload);
    if (read.code() == StatusCode::kDeadlineExceeded) continue;  // idle
    if (!read.ok()) {
      // The stream is unusable (peer gone, or a frame failed validation —
      // after a checksum mismatch nothing downstream can be trusted).
      // Poison the connection and fail every waiter with a retryable code.
      Status failure = Status::Unavailable("connection to " + endpoint_ +
                                           " lost: " + read.message());
      std::lock_guard<std::mutex> lock(mu_);
      conn->broken.store(true, std::memory_order_release);
      for (auto& [id, call] : pending_) {
        if (!call->done) {
          call->done = true;
          call->status = failure;
        }
      }
      cv_.notify_all();
      return;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(kFrameHeaderBytes + payload.size(),
                              std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(header.request_id);
    if (it == pending_.end()) continue;  // late reply for a timed-out call
    PendingCall* call = it->second;
    if (!call->done) {
      call->header = header;
      call->payload = std::move(payload);
      call->status = Status::OK();
      call->done = true;
      cv_.notify_all();
    }
  }
}

Status RpcClient::Fetch(const std::vector<NodeId>& nodes,
                        std::vector<dist::NodeRecord>* out) {
  std::vector<uint8_t> request;
  EncodeFetchRequest(nodes, &request);
  const size_t request_wire_bytes = kFrameHeaderBytes + request.size();

  // Backpressure: shed locally when the peer already has a full window of
  // un-replied request bytes. Not retried — the caller sees kUnavailable
  // and can back off at its own level.
  size_t outstanding = outstanding_bytes_.fetch_add(
      request_wire_bytes, std::memory_order_acq_rel);
  if (outstanding + request_wire_bytes > options_.max_outstanding_bytes) {
    outstanding_bytes_.fetch_sub(request_wire_bytes,
                                 std::memory_order_acq_rel);
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "backpressure: " + endpoint_ + " has " + std::to_string(outstanding) +
        " un-replied bytes (cap " +
        std::to_string(options_.max_outstanding_bytes) + ")");
  }

  Status last = Status::OK();
  int backoff_ms = options_.backoff_initial_ms;
  std::vector<dist::NodeRecord> records;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    records.clear();
    last = TryFetch(request, nodes.size(), &records);
    if (last.ok() || !Retryable(last)) break;
  }
  outstanding_bytes_.fetch_sub(request_wire_bytes, std::memory_order_acq_rel);
  if (!last.ok()) {
    if (Retryable(last)) {
      return Status::Unavailable(
          endpoint_ + " unreachable after " +
          std::to_string(std::max(1, options_.max_attempts)) +
          " attempts; last error: " + last.ToString());
    }
    return last;
  }
  out->insert(out->end(), std::make_move_iterator(records.begin()),
              std::make_move_iterator(records.end()));
  return Status::OK();
}

Status RpcClient::TryFetch(const std::vector<uint8_t>& request,
                           size_t num_nodes,
                           std::vector<dist::NodeRecord>* out) {
  StatusOr<std::shared_ptr<Connection>> conn_or = EnsureConnected();
  RTR_RETURN_IF_ERROR(conn_or.status());
  std::shared_ptr<Connection> conn = std::move(*conn_or);

  PendingCall call;
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_[id] = &call;
  }

  Status written = Status::OK();
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    std::vector<uint8_t> scratch;
    size_t wire_bytes = 0;
    written = WriteFrame(*conn->transport, FrameType::kFetch, id, request,
                         options_.call_timeout_ms, &scratch, &wire_bytes);
    if (written.ok()) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(wire_bytes, std::memory_order_relaxed);
    }
  }
  if (!written.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(id);
      conn->broken.store(true, std::memory_order_release);
    }
    conn->transport->Close();
    return written;  // kIoError / kDeadlineExceeded — both retryable
  }

  std::unique_lock<std::mutex> lock(mu_);
  bool done = cv_.wait_for(
      lock, std::chrono::milliseconds(options_.call_timeout_ms),
      [&call] { return call.done; });
  pending_.erase(id);
  if (!done) {
    // Poison the connection: a reply this late must never be matched to a
    // future request, and the frame may still be half-way down the stream.
    conn->broken.store(true, std::memory_order_release);
    lock.unlock();
    conn->transport->Close();
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("no reply from " + endpoint_ +
                                    " within " +
                                    std::to_string(options_.call_timeout_ms) +
                                    "ms");
  }
  lock.unlock();
  RTR_RETURN_IF_ERROR(call.status);

  if (call.header.type == FrameType::kErrorReply) {
    Status remote = Status::OK();
    RTR_RETURN_IF_ERROR(DecodeErrorReply(call.payload, &remote));
    return remote;
  }
  if (call.header.type != FrameType::kFetchReply) {
    return Status::IoError(endpoint_ + " answered a fetch with frame type " +
                           std::to_string(static_cast<int>(call.header.type)));
  }
  RTR_RETURN_IF_ERROR(DecodeFetchReply(call.payload, out));
  if (out->size() != num_nodes) {
    return Status::Internal(endpoint_ + " served " +
                            std::to_string(out->size()) +
                            " records for a request of " +
                            std::to_string(num_nodes));
  }
  return Status::OK();
}

dist::WireTraffic RpcClient::wire() const {
  dist::WireTraffic w;
  w.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  w.frames_received = frames_received_.load(std::memory_order_relaxed);
  w.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  w.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  w.retries = retries_.load(std::memory_order_relaxed);
  // The first dial is counted as a reconnect internally; report
  // re-establishments only.
  uint64_t dials = reconnects_.load(std::memory_order_relaxed);
  w.reconnects = dials > 0 ? dials - 1 : 0;
  w.timeouts = timeouts_.load(std::memory_order_relaxed);
  w.sheds = sheds_.load(std::memory_order_relaxed);
  return w;
}

}  // namespace rtr::net
