#ifndef RTR_NET_FRAME_H_
#define RTR_NET_FRAME_H_

// Wire format of the AP/GP RPC protocol (DESIGN.md §12).
//
// Every message is one frame: a fixed 32-byte header followed by a typed
// payload. The header carries the payload length (so a reader always knows
// how many bytes to expect — no sentinels, no in-band escapes) and an
// FNV-1a checksum over the payload, verified before any payload byte is
// interpreted. A frame that fails magic/version/length/checksum validation
// is a transport-level error: the connection is considered poisoned and the
// client re-sends on a fresh one (net/rpc_client.h).
//
//   offset  size  field
//        0     4  magic "RTRF"
//        4     1  protocol version (kProtocolVersion)
//        5     1  frame type (FrameType)
//        6     2  reserved (zero)
//        8     8  request id — echoed by the reply, multiplexing key
//       16     4  payload length (<= kMaxPayloadBytes)
//       20     4  reserved (zero)
//       24     8  FNV-1a 64 checksum of the payload bytes
//
// Integers are little-endian host order (the project already writes
// snapshots this way; x86-64 and AArch64 both qualify).
//
// Payloads:
//   kHello       HelloPayload — the client's expectation of the shard.
//   kHelloAck    HelloPayload — the server's actual shard identity.
//   kFetch       u32 count, count * u32 node ids.
//   kFetchReply  u32 count, then per record: u32 node, u32 n_out, u32 n_in,
//                u32 out_targets[n_out], f64 out_weights[n_out],
//                f64 out_probs[n_out], u32 in_sources[n_in],
//                f64 in_weights[n_in], f64 in_probs[n_in].
//   kErrorReply  u32 status code, u32 length, message bytes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/distributed_topk.h"
#include "graph/types.h"
#include "util/status.h"

namespace rtr::net {

inline constexpr uint32_t kFrameMagic = 0x46525452;  // "RTRF"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 32;
// Hard cap on a single frame's payload; a header announcing more is treated
// as corrupt (it would otherwise make a reader allocate unboundedly).
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;
// In-frame offset of the checksum field; the fault-injection harness flips
// a byte here to script "corrupted checksum" (net/fault.h).
inline constexpr size_t kChecksumOffset = 24;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kFetch = 3,
  kFetchReply = 4,
  kErrorReply = 5,
};

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kHello;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

// FNV-1a 64 over `n` bytes.
uint64_t Fnv1a64(const void* data, size_t n);

// Encodes header + payload into `out` (replacing its contents): one frame,
// ready for a single Transport::WriteAll call.
void EncodeFrame(FrameType type, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out);

// Parses and validates the fixed header (`buf` holds kFrameHeaderBytes).
// Corrupt magic/version/length => kIoError.
Status DecodeFrameHeader(const uint8_t* buf, FrameHeader* header);

// Verifies the payload against the header's checksum; kIoError on mismatch.
Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload);

// Shard identity exchanged at connection setup. The client sends what it
// expects (its stripe layout + AP graph); the server acks with what it
// actually serves; any mismatch is a configuration error surfaced as
// kFailedPrecondition before a single record crosses the wire.
struct HelloPayload {
  uint32_t shard = 0;
  uint32_t num_gps = 0;
  uint64_t num_nodes = 0;
  uint64_t generation = 0;
};

void EncodeHello(const HelloPayload& hello, std::vector<uint8_t>* out);
Status DecodeHello(std::span<const uint8_t> payload, HelloPayload* hello);

void EncodeFetchRequest(const std::vector<NodeId>& nodes,
                        std::vector<uint8_t>* out);
Status DecodeFetchRequest(std::span<const uint8_t> payload,
                          std::vector<NodeId>* nodes);

void EncodeFetchReply(std::span<const dist::NodeRecord> records,
                      std::vector<uint8_t>* out);
// Appends the decoded records to `out` (matching RecordSource::Fetch).
Status DecodeFetchReply(std::span<const uint8_t> payload,
                        std::vector<dist::NodeRecord>* out);

void EncodeErrorReply(const Status& status, std::vector<uint8_t>* out);
// Decodes the remote status carried by a kErrorReply payload.
Status DecodeErrorReply(std::span<const uint8_t> payload,
                        Status* remote_status);

}  // namespace rtr::net

#endif  // RTR_NET_FRAME_H_
