#ifndef RTR_NET_RPC_CLIENT_H_
#define RTR_NET_RPC_CLIENT_H_

// AP-side RPC endpoint for one GP peer (DESIGN.md §12).
//
// One RpcClient per (host, port) peer. Calls from any number of AP worker
// threads are multiplexed over a single connection: each in-flight request
// carries a unique request id, a dedicated reader thread dispatches reply
// frames to the waiting callers by that id, and a caller only ever blocks
// on its own bounded condition wait — so a slow reply for one query never
// serializes the others, and nothing waits without a deadline.
//
// Failure policy (exercised fault-by-fault in tests/net/fault_test.cc):
//  * per-attempt timeout — a reply not arriving in call_timeout_ms poisons
//    the connection (late replies must not be mis-matched to a retry) and
//    counts a timeout;
//  * bounded retry — transport loss, timeouts, and refused connections
//    (kIoError / kDeadlineExceeded / kUnavailable) are retried up to
//    max_attempts with doubling backoff on a fresh connection; anything
//    else (a remote kInvalidArgument, a handshake kFailedPrecondition) is
//    returned immediately — re-sending cannot fix it;
//  * reconnect — connections are dialed lazily and redialed after poison;
//    the Hello/HelloAck handshake re-verifies the peer's shard identity
//    every time, so a restarted peer serving the wrong stripe is caught
//    before any record is trusted;
//  * backpressure — when the peer already holds max_outstanding_bytes of
//    un-replied request bytes, new fetches are shed locally with
//    kUnavailable (not retried: retrying a shed would defeat its purpose).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/distributed_topk.h"
#include "graph/types.h"
#include "net/frame.h"
#include "net/transport.h"
#include "util/status.h"

namespace rtr::net {

struct RpcClientOptions {
  int connect_timeout_ms = 2000;
  // Per-attempt budget for one request/reply exchange.
  int call_timeout_ms = 5000;
  // Total tries per Fetch (first attempt + retries).
  int max_attempts = 4;
  // Doubling backoff between attempts, capped.
  int backoff_initial_ms = 5;
  int backoff_max_ms = 100;
  // Per-peer backpressure: un-replied request bytes beyond this are shed.
  size_t max_outstanding_bytes = 8u << 20;
};

class RpcClient {
 public:
  // `expected` is the shard identity this peer must prove in its HelloAck.
  // Does not dial; the first call (or an explicit Connect) does.
  RpcClient(std::string host, uint16_t port, HelloPayload expected,
            RpcClientOptions options = {});

  // Requires no Fetch in flight on other threads.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Eagerly dials and verifies the handshake (kFailedPrecondition on a
  // shard-identity mismatch). Fetch does this lazily; cluster bring-up
  // calls it to fail fast on misconfiguration.
  Status Connect();

  // One batched record fetch, with the full retry/reconnect policy above.
  // Appends one record per node to `out` on success; on failure `out` is
  // untouched. Thread-safe.
  Status Fetch(const std::vector<NodeId>& nodes,
               std::vector<dist::NodeRecord>* out);

  // Cumulative wire traffic (frames/bytes both ways, retries, reconnects,
  // timeouts, sheds) since construction.
  dist::WireTraffic wire() const;

  const std::string& endpoint() const { return endpoint_; }

 private:
  struct Connection {
    std::unique_ptr<Transport> transport;
    std::thread reader;
    std::atomic<bool> broken{false};
    std::mutex write_mu;  // frame writes on one connection are atomic
  };

  struct PendingCall {
    bool done = false;
    Status status;
    FrameHeader header;
    std::vector<uint8_t> payload;
  };

  // Returns the healthy current connection, dialing (and handshaking) a
  // fresh one if needed. Serialized so concurrent callers share one dial.
  StatusOr<std::shared_ptr<Connection>> EnsureConnected();
  Status Handshake(Transport& transport);
  // One attempt: write the request, wait for its reply, decode.
  Status TryFetch(const std::vector<uint8_t>& request, size_t num_nodes,
                  std::vector<dist::NodeRecord>* out);
  void ReaderLoop(Connection* conn);
  // Closes and joins retired connections (never called from a reader).
  void ReapGraveyard();

  const std::string host_;
  const uint16_t port_;
  const std::string endpoint_;
  const HelloPayload expected_;
  const RpcClientOptions options_;

  std::mutex mu_;  // pending_, conn_, graveyard_
  std::condition_variable cv_;
  std::unordered_map<uint64_t, PendingCall*> pending_;
  std::shared_ptr<Connection> conn_;
  std::vector<std::shared_ptr<Connection>> graveyard_;
  std::mutex connect_mu_;  // serializes dial attempts
  std::atomic<uint64_t> next_request_id_{1};  // 0 is the handshake
  std::atomic<bool> stopping_{false};

  std::atomic<size_t> outstanding_bytes_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> sheds_{0};
};

}  // namespace rtr::net

#endif  // RTR_NET_RPC_CLIENT_H_
