#ifndef RTR_NET_GP_SERVER_H_
#define RTR_NET_GP_SERVER_H_

// Network listener serving one GraphProcessor shard (DESIGN.md §12).
//
// A GpServer owns the stripe storage (dist::GraphProcessor) for shard
// `shard` of `num_gps` and answers the frame protocol on a TCP port: kHello
// is acked with the server's actual identity (the client compares and
// refuses to proceed on mismatch), kFetch batches are answered with
// kFetchReply or — when the shard-level Fetch fails — a kErrorReply
// carrying the typed Status across the wire. One handler thread per
// accepted connection; requests on a connection are served in order, and
// independent AP connections proceed in parallel.
//
// The options' FaultInjector (tests only) wraps each accepted connection in
// a net::FaultyTransport so tests/net/fault_test.cc can script delays,
// corruption, and disconnects per reply frame; `rtr_cli gp-serve` never
// sets it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/distributed_topk.h"
#include "graph/graph.h"
#include "net/fault.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace rtr::net {

struct GpServerOptions {
  // TCP port to listen on; 0 picks an ephemeral port (read it back via
  // port() — the CLI prints it so scripts can connect).
  uint16_t port = 0;
  // Budget for finishing a frame once its first byte arrived, and for
  // writing one reply.
  int frame_timeout_ms = 5000;
  // Test hook: scripts faults on accepted connections. Not owned; must
  // outlive the server. nullptr (the default) serves faithfully.
  FaultInjector* fault_injector = nullptr;
};

class GpServer {
 public:
  // Builds the shard stripe and starts listening + accepting.
  static StatusOr<std::unique_ptr<GpServer>> Start(
      std::shared_ptr<const Graph> graph, int shard, int num_gps,
      uint64_t generation, GpServerOptions options = {});

  ~GpServer();

  GpServer(const GpServer&) = delete;
  GpServer& operator=(const GpServer&) = delete;

  // Stops accepting, cuts live connections, joins all threads. Idempotent.
  void Stop();

  // Actual listening port (resolves an ephemeral request).
  uint16_t port() const { return port_; }
  int shard() const { return shard_; }
  int num_gps() const { return num_gps_; }
  uint64_t generation() const { return generation_; }
  // The served stripe (record-level traffic counters live here).
  const dist::GraphProcessor& gp() const { return gp_; }

  // Wire-level totals across all connections this server handled.
  uint64_t connections_accepted() const { return connections_.value(); }
  uint64_t frames_received() const { return frames_received_.value(); }
  uint64_t frames_sent() const { return frames_sent_.value(); }
  uint64_t bytes_received() const { return bytes_received_.value(); }
  uint64_t bytes_sent() const { return bytes_sent_.value(); }

  // Registers this server's rtr_net_server_* series (labeled by shard) plus
  // the stripe's record-level counters; the registrations must not outlive
  // the server.
  [[nodiscard]] std::vector<obs::MetricsRegistry::Registration>
  RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  GpServer(std::shared_ptr<const Graph> graph, int shard, int num_gps,
           uint64_t generation, GpServerOptions options);

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Transport> transport);

  std::shared_ptr<const Graph> graph_;
  int shard_ = 0;
  int num_gps_ = 1;
  uint64_t generation_ = 0;
  GpServerOptions options_;
  dist::GraphProcessor gp_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex mu_;  // guards handlers_ and live_connections_
  // Handler threads accumulate until Stop joins them — fine for the
  // bounded connection counts of one AP per shard plus fault-retry churn.
  std::vector<std::thread> handlers_;
  std::vector<std::weak_ptr<Transport>> live_connections_;

  obs::Counter connections_;
  obs::Counter frames_received_;
  obs::Counter frames_sent_;
  obs::Counter bytes_received_;
  obs::Counter bytes_sent_;
};

}  // namespace rtr::net

#endif  // RTR_NET_GP_SERVER_H_
