#include "net/remote_gp.h"

#include <utility>

#include "net/transport.h"

namespace rtr::net {

RemoteGraphProcessor::RemoteGraphProcessor(std::string host, uint16_t port,
                                           HelloPayload expected,
                                           RpcClientOptions options)
    : client_(std::move(host), port, expected, options) {}

Status RemoteGraphProcessor::Fetch(const std::vector<NodeId>& nodes,
                                   std::vector<dist::NodeRecord>* out) const {
  const size_t before = out->size();
  RTR_RETURN_IF_ERROR(client_.Fetch(nodes, out));
  fetch_requests_.Add(1);
  uint64_t record_bytes = 0;
  for (size_t i = before; i < out->size(); ++i) {
    record_bytes += (*out)[i].WireBytes();
  }
  records_served_.Add(out->size() - before);
  bytes_served_.Add(record_bytes);
  return Status::OK();
}

StatusOr<std::unique_ptr<dist::Cluster>> ConnectRemoteCluster(
    std::shared_ptr<const Graph> graph, uint64_t generation,
    const std::vector<std::string>& endpoints, RpcClientOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("remote cluster needs the AP graph");
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("remote cluster needs gp endpoints");
  }
  std::vector<std::unique_ptr<dist::RecordSource>> sources;
  sources.reserve(endpoints.size());
  for (size_t shard = 0; shard < endpoints.size(); ++shard) {
    std::string host;
    uint16_t port = 0;
    RTR_RETURN_IF_ERROR(ParseEndpoint(endpoints[shard], &host, &port));
    HelloPayload expected;
    expected.shard = static_cast<uint32_t>(shard);
    expected.num_gps = static_cast<uint32_t>(endpoints.size());
    expected.num_nodes = graph->num_nodes();
    expected.generation = generation;
    auto remote = std::make_unique<RemoteGraphProcessor>(
        std::move(host), port, expected, options);
    RTR_RETURN_IF_ERROR(remote->Connect());
    sources.push_back(std::move(remote));
  }
  return std::make_unique<dist::Cluster>(std::move(graph),
                                         std::move(sources), generation);
}

}  // namespace rtr::net
