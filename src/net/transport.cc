#include "net/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/logging.h"

namespace rtr::net {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MillisLeft(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now())
      .count();
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl(O_NONBLOCK): ") +
                           strerror(errno));
  }
  return Status::OK();
}

// Waits for `events` on `fd`. Returns 1 when ready, 0 on timeout, kIoError
// on poll failure or socket error/hangup without readable data.
StatusOr<int> PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int rc = poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return 0;  // treat as a timeout slice; callers loop
    return Status::IoError(std::string("poll: ") + strerror(errno));
  }
  if (rc == 0) return 0;
  if ((pfd.revents & POLLNVAL) != 0) {
    return Status::IoError("poll: fd closed under the connection");
  }
  // POLLERR/POLLHUP still allow a final read to drain buffered bytes or
  // observe EOF, so report "ready" and let recv/send surface the error.
  return 1;
}

std::string DescribeSockaddr(const struct sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

SocketTransport::SocketTransport(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {
  CHECK_GE(fd, 0);
  Status s = SetNonBlocking(fd_);
  if (!s.ok()) LOG(WARNING) << "transport to " << peer_ << ": " << s.ToString();
  // Frames are small and latency-sensitive; don't let Nagle batch them.
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketTransport::~SocketTransport() {
  Close();
  ::close(fd_);
}

void SocketTransport::Close() {
  bool was_closed = closed_.exchange(true, std::memory_order_acq_rel);
  if (!was_closed) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<size_t> SocketTransport::ReadSome(uint8_t* buf, size_t n,
                                           int timeout_ms) {
  if (closed()) return Status::IoError("read on closed connection");
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    ssize_t got = recv(fd_, buf, n, 0);
    if (got > 0) return static_cast<size_t>(got);
    if (got == 0) return size_t{0};  // clean peer close
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IoError("read from " + peer_ + ": " + strerror(errno));
    }
    int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      return Status::DeadlineExceeded("no data from " + peer_ + " within " +
                                      std::to_string(timeout_ms) + "ms");
    }
    StatusOr<int> ready = PollFor(fd_, POLLIN, static_cast<int>(left));
    RTR_RETURN_IF_ERROR(ready.status());
    if (closed()) return Status::IoError("connection to " + peer_ + " closed");
  }
}

Status SocketTransport::WriteAll(std::span<const uint8_t> frame,
                                 int timeout_ms) {
  if (closed()) return Status::IoError("write on closed connection");
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer reset must surface as EPIPE, not kill the
    // process with SIGPIPE.
    ssize_t put = send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (put > 0) {
      sent += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return Status::IoError("write to " + peer_ + ": " + strerror(errno));
    }
    int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      return Status::DeadlineExceeded(
          peer_ + " stopped draining; wrote " + std::to_string(sent) + "/" +
          std::to_string(frame.size()) + " bytes in " +
          std::to_string(timeout_ms) + "ms");
    }
    StatusOr<int> ready = PollFor(fd_, POLLOUT, static_cast<int>(left));
    RTR_RETURN_IF_ERROR(ready.status());
    if (closed()) return Status::IoError("connection to " + peer_ + " closed");
  }
  return Status::OK();
}

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not host:port");
  }
  char* end = nullptr;
  long parsed = strtol(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || parsed < 1 || parsed > 65535) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

StatusOr<int> ListenOn(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError("bind port " + std::to_string(port) + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  if (listen(fd, 64) < 0) {
    Status s = Status::IoError(std::string("listen: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

StatusOr<uint16_t> ListenerPort(int listen_fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) < 0) {
    return Status::IoError(std::string("getsockname: ") + strerror(errno));
  }
  return ntohs(addr.sin_port);
}

StatusOr<std::unique_ptr<Transport>> AcceptConnection(int listen_fd,
                                                      int timeout_ms) {
  StatusOr<int> ready = PollFor(listen_fd, POLLIN, timeout_ms);
  RTR_RETURN_IF_ERROR(ready.status());
  if (*ready == 0) {
    return Status::DeadlineExceeded("no pending connection");
  }
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  int fd = accept(listen_fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Status::DeadlineExceeded("connection vanished before accept");
    }
    return Status::IoError(std::string("accept: ") + strerror(errno));
  }
  return std::unique_ptr<Transport>(
      std::make_unique<SocketTransport>(fd, DescribeSockaddr(addr)));
}

StatusOr<std::unique_ptr<Transport>> ConnectTo(const std::string& host,
                                               uint16_t port,
                                               int timeout_ms) {
  struct addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                       &result);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  const std::string peer = host + ":" + std::to_string(port);
  Status last = Status::Unavailable("no address for " + host);
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(std::string("socket: ") + strerror(errno));
      continue;
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      ::close(fd);
      last = nb;
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) < 0 &&
        errno != EINPROGRESS) {
      last = Status::Unavailable("connect " + peer + ": " + strerror(errno));
      ::close(fd);
      continue;
    }
    StatusOr<int> ready = PollFor(fd, POLLOUT, timeout_ms);
    if (!ready.ok() || *ready == 0) {
      last = ready.ok() ? Status::Unavailable("connect " + peer +
                                              " timed out after " +
                                              std::to_string(timeout_ms) +
                                              "ms")
                        : ready.status();
      ::close(fd);
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      last = Status::Unavailable("connect " + peer + ": " +
                                 strerror(err != 0 ? err : errno));
      ::close(fd);
      continue;
    }
    freeaddrinfo(result);
    return std::unique_ptr<Transport>(
        std::make_unique<SocketTransport>(fd, peer));
  }
  freeaddrinfo(result);
  return last;
}

namespace {

// Reads exactly `n` bytes before `deadline`; kIoError if the peer closes or
// stalls mid-way (`n` > 0 bytes already expected).
Status ReadExactly(Transport& transport, uint8_t* buf, size_t n,
                   Clock::time_point deadline) {
  size_t got = 0;
  while (got < n) {
    int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      return Status::IoError(transport.peer() + " stalled mid-frame (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    StatusOr<size_t> chunk =
        transport.ReadSome(buf + got, n - got, static_cast<int>(left));
    if (!chunk.ok()) {
      if (chunk.status().code() == StatusCode::kDeadlineExceeded) {
        return Status::IoError(transport.peer() + " stalled mid-frame (" +
                               std::to_string(got) + "/" + std::to_string(n) +
                               " bytes)");
      }
      return chunk.status();
    }
    if (*chunk == 0) {
      return Status::IoError(transport.peer() + " disconnected mid-frame (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    got += *chunk;
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(Transport& transport, int idle_timeout_ms,
                 int frame_timeout_ms, FrameHeader* header,
                 std::vector<uint8_t>* payload) {
  uint8_t head[kFrameHeaderBytes];
  // First byte: an idle wait, not an error condition.
  StatusOr<size_t> first = transport.ReadSome(head, sizeof(head),
                                              idle_timeout_ms);
  RTR_RETURN_IF_ERROR(first.status());
  if (*first == 0) {
    return Status::Unavailable("connection closed by " + transport.peer());
  }
  // A frame has started: the rest must arrive within the frame budget.
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(frame_timeout_ms);
  RTR_RETURN_IF_ERROR(ReadExactly(transport, head + *first,
                                  sizeof(head) - *first, deadline));
  RTR_RETURN_IF_ERROR(DecodeFrameHeader(head, header));
  payload->resize(header->payload_len);
  RTR_RETURN_IF_ERROR(
      ReadExactly(transport, payload->data(), payload->size(), deadline));
  return VerifyFramePayload(*header, *payload);
}

Status WriteFrame(Transport& transport, FrameType type, uint64_t request_id,
                  std::span<const uint8_t> payload, int timeout_ms,
                  std::vector<uint8_t>* scratch, size_t* wire_bytes) {
  EncodeFrame(type, request_id, payload, scratch);
  RTR_RETURN_IF_ERROR(transport.WriteAll(*scratch, timeout_ms));
  if (wire_bytes != nullptr) *wire_bytes = scratch->size();
  return Status::OK();
}

}  // namespace rtr::net
