#include "net/fault.h"

#include <chrono>
#include <thread>
#include <utility>

namespace rtr::net {

void FaultInjector::Enqueue(ConnectionScript script) {
  std::lock_guard<std::mutex> lock(mu_);
  scripts_.push_back(std::move(script));
}

ConnectionScript FaultInjector::Next() {
  connections_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  if (scripts_.empty()) return ConnectionScript{};
  ConnectionScript script = std::move(scripts_.front());
  scripts_.pop_front();
  return script;
}

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 ConnectionScript script)
    : inner_(std::move(inner)), script_(std::move(script)) {}

StatusOr<size_t> FaultyTransport::ReadSome(uint8_t* buf, size_t n,
                                           int timeout_ms) {
  return inner_->ReadSome(buf, n, timeout_ms);
}

Status FaultyTransport::WriteAll(std::span<const uint8_t> frame,
                                 int timeout_ms) {
  WriteFault fault;
  if (write_index_ < script_.write_faults.size()) {
    fault = script_.write_faults[write_index_];
  }
  ++write_index_;
  switch (fault.op) {
    case FaultOp::kNone:
      return inner_->WriteAll(frame, timeout_ms);
    case FaultOp::kDelayWrite:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
      return inner_->WriteAll(frame, timeout_ms);
    case FaultOp::kCorruptChecksum: {
      std::vector<uint8_t> corrupted(frame.begin(), frame.end());
      if (corrupted.size() > kChecksumOffset) {
        corrupted[kChecksumOffset] ^= 0xFF;
      }
      return inner_->WriteAll(corrupted, timeout_ms);
    }
    case FaultOp::kShortWriteClose: {
      Status s = inner_->WriteAll(frame.subspan(0, frame.size() / 2),
                                  timeout_ms);
      inner_->Close();
      if (!s.ok()) return s;
      return Status::IoError("fault: connection cut mid-frame");
    }
    case FaultOp::kCloseBeforeWrite:
      inner_->Close();
      return Status::IoError("fault: connection cut before reply");
    case FaultOp::kDropWrite:
      // Pretend the write happened; the peer never sees the frame.
      return Status::OK();
  }
  return inner_->WriteAll(frame, timeout_ms);
}

void FaultyTransport::Close() { inner_->Close(); }

}  // namespace rtr::net
