#include "net/frame.h"

#include <cstring>
#include <string>

namespace rtr::net {

namespace {

// Append/read primitives. All integers little-endian host order; the reader
// side is bounds-checked so a truncated or hostile payload yields kIoError,
// never an out-of-bounds read.
template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
void AppendArray(std::vector<uint8_t>* out, const T* data, size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + count * sizeof(T));
  std::memcpy(out->data() + at, data, count * sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - at_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > (bytes_.size() - at_) / sizeof(T)) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + at_, count * sizeof(T));
    at_ += count * sizeof(T);
    return true;
  }

  bool exhausted() const { return at_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t at_ = 0;
};

Status Truncated(const char* what) {
  return Status::IoError(std::string("truncated ") + what + " payload");
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void EncodeFrame(FrameType type, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kFrameHeaderBytes + payload.size());
  Append<uint32_t>(out, kFrameMagic);
  Append<uint8_t>(out, kProtocolVersion);
  Append<uint8_t>(out, static_cast<uint8_t>(type));
  Append<uint16_t>(out, 0);
  Append<uint64_t>(out, request_id);
  Append<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  Append<uint32_t>(out, 0);
  Append<uint64_t>(out, Fnv1a64(payload.data(), payload.size()));
  AppendArray(out, payload.data(), payload.size());
}

Status DecodeFrameHeader(const uint8_t* buf, FrameHeader* header) {
  uint32_t magic = 0;
  std::memcpy(&magic, buf, sizeof(magic));
  if (magic != kFrameMagic) {
    return Status::IoError("bad frame magic (stream desynchronized)");
  }
  header->version = buf[4];
  if (header->version != kProtocolVersion) {
    return Status::IoError("unsupported protocol version " +
                           std::to_string(header->version));
  }
  const uint8_t type = buf[5];
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kErrorReply)) {
    return Status::IoError("unknown frame type " + std::to_string(type));
  }
  header->type = static_cast<FrameType>(type);
  std::memcpy(&header->request_id, buf + 8, sizeof(uint64_t));
  std::memcpy(&header->payload_len, buf + 16, sizeof(uint32_t));
  if (header->payload_len > kMaxPayloadBytes) {
    return Status::IoError("frame payload of " +
                           std::to_string(header->payload_len) +
                           " bytes exceeds the protocol cap");
  }
  std::memcpy(&header->checksum, buf + kChecksumOffset, sizeof(uint64_t));
  return Status::OK();
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload) {
  const uint64_t got = Fnv1a64(payload.data(), payload.size());
  if (got != header.checksum) {
    return Status::IoError("frame payload checksum mismatch");
  }
  return Status::OK();
}

void EncodeHello(const HelloPayload& hello, std::vector<uint8_t>* out) {
  out->clear();
  Append(out, hello.shard);
  Append(out, hello.num_gps);
  Append(out, hello.num_nodes);
  Append(out, hello.generation);
}

Status DecodeHello(std::span<const uint8_t> payload, HelloPayload* hello) {
  Reader reader(payload);
  if (!reader.Read(&hello->shard) || !reader.Read(&hello->num_gps) ||
      !reader.Read(&hello->num_nodes) || !reader.Read(&hello->generation) ||
      !reader.exhausted()) {
    return Truncated("hello");
  }
  return Status::OK();
}

void EncodeFetchRequest(const std::vector<NodeId>& nodes,
                        std::vector<uint8_t>* out) {
  out->clear();
  Append<uint32_t>(out, static_cast<uint32_t>(nodes.size()));
  AppendArray(out, nodes.data(), nodes.size());
}

Status DecodeFetchRequest(std::span<const uint8_t> payload,
                          std::vector<NodeId>* nodes) {
  Reader reader(payload);
  uint32_t count = 0;
  if (!reader.Read(&count) || !reader.ReadArray(nodes, count) ||
      !reader.exhausted()) {
    return Truncated("fetch request");
  }
  return Status::OK();
}

void EncodeFetchReply(std::span<const dist::NodeRecord> records,
                      std::vector<uint8_t>* out) {
  out->clear();
  Append<uint32_t>(out, static_cast<uint32_t>(records.size()));
  for (const dist::NodeRecord& record : records) {
    Append<uint32_t>(out, record.node);
    Append<uint32_t>(out, static_cast<uint32_t>(record.num_out_arcs()));
    Append<uint32_t>(out, static_cast<uint32_t>(record.num_in_arcs()));
    AppendArray(out, record.out_targets.data(), record.out_targets.size());
    AppendArray(out, record.out_weights.data(), record.out_weights.size());
    AppendArray(out, record.out_probs.data(), record.out_probs.size());
    AppendArray(out, record.in_sources.data(), record.in_sources.size());
    AppendArray(out, record.in_weights.data(), record.in_weights.size());
    AppendArray(out, record.in_probs.data(), record.in_probs.size());
  }
}

Status DecodeFetchReply(std::span<const uint8_t> payload,
                        std::vector<dist::NodeRecord>* out) {
  Reader reader(payload);
  uint32_t count = 0;
  if (!reader.Read(&count)) return Truncated("fetch reply");
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    dist::NodeRecord record;
    uint32_t n_out = 0;
    uint32_t n_in = 0;
    if (!reader.Read(&record.node) || !reader.Read(&n_out) ||
        !reader.Read(&n_in) ||
        !reader.ReadArray(&record.out_targets, n_out) ||
        !reader.ReadArray(&record.out_weights, n_out) ||
        !reader.ReadArray(&record.out_probs, n_out) ||
        !reader.ReadArray(&record.in_sources, n_in) ||
        !reader.ReadArray(&record.in_weights, n_in) ||
        !reader.ReadArray(&record.in_probs, n_in)) {
      return Truncated("fetch reply");
    }
    out->push_back(std::move(record));
  }
  if (!reader.exhausted()) {
    return Status::IoError("trailing bytes after fetch reply payload");
  }
  return Status::OK();
}

void EncodeErrorReply(const Status& status, std::vector<uint8_t>* out) {
  out->clear();
  Append<uint32_t>(out, static_cast<uint32_t>(status.code()));
  Append<uint32_t>(out, static_cast<uint32_t>(status.message().size()));
  AppendArray(out, status.message().data(), status.message().size());
}

Status DecodeErrorReply(std::span<const uint8_t> payload,
                        Status* remote_status) {
  Reader reader(payload);
  uint32_t code = 0;
  uint32_t length = 0;
  if (!reader.Read(&code) || !reader.Read(&length)) {
    return Truncated("error reply");
  }
  std::vector<char> message;
  if (!reader.ReadArray(&message, length) || !reader.exhausted()) {
    return Truncated("error reply");
  }
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IoError("error reply carries invalid status code " +
                           std::to_string(code));
  }
  *remote_status = Status(static_cast<StatusCode>(code),
                          std::string(message.begin(), message.end()));
  return Status::OK();
}

}  // namespace rtr::net
