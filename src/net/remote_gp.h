#ifndef RTR_NET_REMOTE_GP_H_
#define RTR_NET_REMOTE_GP_H_

// Networked dist::RecordSource (DESIGN.md §12).
//
// RemoteGraphProcessor is the drop-in the AP plugs into a dist::Cluster in
// place of an in-process GraphProcessor: same Fetch contract, same
// record-level counters, but the records come off a TCP connection to a
// `rtr_cli gp-serve` process and wire() reports the real frames/bytes/
// retries instead of zeros. DistributedTopK validates every remote record
// byte-for-byte against the AP graph, so the two tiers are bit-checkable
// against each other (tests/dist/remote_cluster_test.cc).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/distributed_topk.h"
#include "graph/graph.h"
#include "net/rpc_client.h"
#include "util/status.h"

namespace rtr::net {

class RemoteGraphProcessor : public dist::RecordSource {
 public:
  // A client for shard `expected.shard` served at host:port. Lazy-dials on
  // the first fetch; call Connect() to verify the peer up-front.
  RemoteGraphProcessor(std::string host, uint16_t port, HelloPayload expected,
                       RpcClientOptions options = {});

  // Dials and verifies the shard-identity handshake.
  Status Connect() { return client_.Connect(); }

  Status Fetch(const std::vector<NodeId>& nodes,
               std::vector<dist::NodeRecord>* out) const override;

  uint64_t fetch_requests() const override { return fetch_requests_.value(); }
  uint64_t records_served() const override { return records_served_.value(); }
  uint64_t bytes_served() const override { return bytes_served_.value(); }
  dist::WireTraffic wire() const override { return client_.wire(); }

  const std::string& endpoint() const { return client_.endpoint(); }

 private:
  // Fetch is const (the RecordSource contract); the client's state churn
  // is this source's internal business.
  mutable RpcClient client_;
  mutable dist::ShardCounter fetch_requests_;
  mutable dist::ShardCounter records_served_;
  mutable dist::ShardCounter bytes_served_;
};

// Dials one RemoteGraphProcessor per endpoint (endpoint i serves shard i of
// endpoints.size()), verifies every handshake eagerly, and assembles the
// remote-mode Cluster over `graph`. Typed failures: kUnavailable when a
// peer cannot be reached, kFailedPrecondition when one serves the wrong
// stripe/graph/generation.
StatusOr<std::unique_ptr<dist::Cluster>> ConnectRemoteCluster(
    std::shared_ptr<const Graph> graph, uint64_t generation,
    const std::vector<std::string>& endpoints, RpcClientOptions options = {});

}  // namespace rtr::net

#endif  // RTR_NET_REMOTE_GP_H_
