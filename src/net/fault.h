#ifndef RTR_NET_FAULT_H_
#define RTR_NET_FAULT_H_

// Deterministic fault injection for the RPC layer (tests/net/).
//
// The injection point is the server side of each accepted connection: the
// GpServer wraps every transport it accepts in a FaultyTransport when its
// options carry a FaultInjector, and the injector hands out one
// ConnectionScript per accepted connection, FIFO. Because every frame
// crosses Transport::WriteAll as one call (net/transport.h), a script can
// target individual reply frames — delay them past the client's timeout,
// flip the checksum byte, cut the connection mid-frame, or swallow the
// reply outright — and the tests then assert the CLIENT's recovery
// behavior: retry on a fresh connection with a bit-identical result for
// recoverable faults, a clean typed error for a dead shard, and never a
// hang or a wrong answer.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "net/transport.h"
#include "util/status.h"

namespace rtr::net {

enum class FaultOp : uint8_t {
  kNone = 0,
  // Sleep delay_ms, then write the frame normally (slow GP).
  kDelayWrite,
  // Flip one byte of the frame's checksum field before writing; the client
  // must reject the reply and re-fetch on a fresh connection.
  kCorruptChecksum,
  // Write only the first half of the frame, then cut the connection
  // (mid-frame disconnect as seen by the client).
  kShortWriteClose,
  // Cut the connection instead of writing (death between request and reply).
  kCloseBeforeWrite,
  // Report success without writing anything; the client's per-request
  // timeout is the only thing that can save it.
  kDropWrite,
};

struct WriteFault {
  FaultOp op = FaultOp::kNone;
  int delay_ms = 0;  // used by kDelayWrite
};

// What happens to one accepted connection. Writes are faulted in order:
// the i-th WriteAll on the connection consults write_faults[i] (off-script
// writes behave normally). The handshake ack is write #0.
struct ConnectionScript {
  // Close the connection immediately after accept, before any exchange.
  bool refuse = false;
  std::vector<WriteFault> write_faults;
};

// Thread-safe FIFO of per-connection scripts, consumed by the server's
// accept loop. An empty injector (or one that has run out of scripts)
// yields default scripts — connections behave normally, so a test can
// script fault connection #1 and let the recovery connection #2 run clean.
class FaultInjector {
 public:
  // Script for the next accepted connection.
  void Enqueue(ConnectionScript script);

  // Permanent death: every subsequent accept is refused regardless of
  // queued scripts (the "GP crashed and is not coming back" scenario).
  void set_dead(bool dead) { dead_.store(dead, std::memory_order_release); }
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  // Pops the next script (default if none). Called once per accept.
  ConnectionScript Next();

  // Accepted connections so far (scripted or not).
  uint64_t connections() const {
    return connections_.load(std::memory_order_acquire);
  }

 private:
  std::mutex mu_;
  std::deque<ConnectionScript> scripts_;
  std::atomic<bool> dead_{false};
  std::atomic<uint64_t> connections_{0};
};

// Transport wrapper executing one ConnectionScript. Reads pass through
// untouched; the i-th write consults the script as described above.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, ConnectionScript script);

  StatusOr<size_t> ReadSome(uint8_t* buf, size_t n, int timeout_ms) override;
  Status WriteAll(std::span<const uint8_t> frame, int timeout_ms) override;
  void Close() override;
  bool closed() const override { return inner_->closed(); }
  const std::string& peer() const override { return inner_->peer(); }

 private:
  std::unique_ptr<Transport> inner_;
  ConnectionScript script_;
  size_t write_index_ = 0;
};

}  // namespace rtr::net

#endif  // RTR_NET_FAULT_H_
