// rtr — command-line interface to the RoundTripRank library.
//
//   rtr generate --dataset bibnet|qlog [--seed N] [--out graph.txt]
//   rtr info     --graph graph.txt
//   rtr rank     --graph graph.txt --query 1,2,3 [--measure rtr|rtr+|f|t]
//                [--beta 0.5] [--k 10] [--type venue]
//   rtr topk     --graph graph.txt --query 5 [--k 10] [--eps 0.01]
//                [--scheme 2sbound|gupta|sarkar|g+s|naive]
//
// Graphs use the text format of graph/io.h; `generate` emits the synthetic
// datasets used by the benchmark suite.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/round_trip_rank.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "datasets/qlog.h"
#include "eval/experiment.h"
#include "graph/io.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"
#include "util/timer.h"

namespace {

using rtr::Graph;
using rtr::NodeId;

// Minimal --flag value parser; flags may appear in any order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<NodeId> ParseQuery(const std::string& text) {
  std::vector<NodeId> nodes;
  size_t start = 0;
  while (start < text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    nodes.push_back(static_cast<NodeId>(
        std::strtoul(text.substr(start, comma - start).c_str(), nullptr, 10)));
    start = comma + 1;
  }
  return nodes;
}

Graph LoadGraphOrDie(const Flags& flags) {
  std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "missing --graph\n");
    std::exit(2);
  }
  rtr::StatusOr<Graph> graph = rtr::LoadGraphFromFile(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(graph).value();
}

int CmdGenerate(const Flags& flags) {
  std::string dataset = flags.GetString("dataset", "bibnet");
  std::string out = flags.GetString("out", dataset + ".graph.txt");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  Graph graph;
  if (dataset == "bibnet") {
    rtr::datasets::BibNetConfig config;
    if (seed != 0) config.seed = seed;
    auto net = rtr::datasets::BibNet::Generate(config);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    graph = net->graph();
  } else if (dataset == "qlog") {
    rtr::datasets::QLogConfig config;
    if (seed != 0) config.seed = seed;
    auto log = rtr::datasets::QLog::Generate(config);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
      return 1;
    }
    graph = log->graph();
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (bibnet|qlog)\n",
                 dataset.c_str());
    return 2;
  }
  rtr::Status status = rtr::SaveGraphToFile(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu arcs\n", out.c_str(),
              graph.num_nodes(), graph.num_arcs());
  return 0;
}

int CmdInfo(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  std::printf("nodes: %zu\narcs: %zu\naverage degree: %.2f\nmemory: %.1f MB\n",
              graph.num_nodes(), graph.num_arcs(), graph.AverageDegree(),
              graph.MemoryBytes() / 1e6);
  std::printf("node types:\n");
  for (size_t t = 0; t < graph.type_names().size(); ++t) {
    size_t count = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (graph.node_type(v) == t) ++count;
    }
    if (count > 0) {
      std::printf("  %-12s %zu\n", graph.type_names()[t].c_str(), count);
    }
  }
  return 0;
}

int CmdRank(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  std::vector<NodeId> query = ParseQuery(flags.GetString("query", ""));
  if (query.empty()) {
    std::fprintf(stderr, "missing --query\n");
    return 2;
  }
  for (NodeId q : query) {
    if (q >= graph.num_nodes()) {
      std::fprintf(stderr, "query node %u out of range\n", q);
      return 2;
    }
  }
  std::string measure_name = flags.GetString("measure", "rtr");
  double beta = flags.GetDouble("beta", 0.5);
  int k = flags.GetInt("k", 10);

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  std::unique_ptr<rtr::ranking::ProximityMeasure> measure;
  if (measure_name == "rtr") {
    measure = rtr::core::MakeRoundTripRankMeasure(scorer);
  } else if (measure_name == "rtr+") {
    measure = rtr::core::MakeRoundTripRankPlusMeasure(scorer, beta);
  } else if (measure_name == "f") {
    measure = rtr::ranking::MakeFRankMeasure(scorer);
  } else if (measure_name == "t") {
    measure = rtr::ranking::MakeTRankMeasure(scorer);
  } else {
    std::fprintf(stderr, "unknown measure '%s' (rtr|rtr+|f|t)\n",
                 measure_name.c_str());
    return 2;
  }

  rtr::WallTimer timer;
  std::vector<double> scores = measure->Score(query);
  std::vector<NodeId> ranked;
  if (flags.Has("type")) {
    std::string type_name = flags.GetString("type", "");
    rtr::NodeTypeId type = 0;
    bool found = false;
    for (size_t t = 0; t < graph.type_names().size(); ++t) {
      if (graph.type_names()[t] == type_name) {
        type = static_cast<rtr::NodeTypeId>(t);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown node type '%s'\n", type_name.c_str());
      return 2;
    }
    ranked = rtr::eval::FilteredRanking(graph, scores, query, type,
                                        static_cast<size_t>(k));
  } else {
    ranked = rtr::ranking::TopKNodes(scores, static_cast<size_t>(k), query);
  }
  std::printf("%s results in %.1f ms:\n", measure->name().c_str(),
              timer.ElapsedMillis());
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%3zu. node %-9u (%s)  score %.6g\n", i + 1, ranked[i],
                graph.type_name(graph.node_type(ranked[i])).c_str(),
                scores[ranked[i]]);
  }
  return 0;
}

int CmdTopK(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  std::vector<NodeId> query = ParseQuery(flags.GetString("query", ""));
  if (query.empty()) {
    std::fprintf(stderr, "missing --query\n");
    return 2;
  }
  rtr::core::TopKParams params;
  params.k = flags.GetInt("k", 10);
  params.epsilon = flags.GetDouble("eps", 0.01);
  std::string scheme = flags.GetString("scheme", "2sbound");
  if (scheme == "2sbound") {
    params.scheme = rtr::core::TopKScheme::k2SBound;
  } else if (scheme == "gupta") {
    params.scheme = rtr::core::TopKScheme::kGupta;
  } else if (scheme == "sarkar") {
    params.scheme = rtr::core::TopKScheme::kSarkar;
  } else if (scheme == "g+s") {
    params.scheme = rtr::core::TopKScheme::kGPlusS;
  } else if (scheme == "naive") {
    params.scheme = rtr::core::TopKScheme::kNaive;
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  rtr::WallTimer timer;
  rtr::StatusOr<rtr::core::TopKResult> result =
      rtr::core::TopKRoundTripRank(graph, query, params);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s top-%d in %.1f ms (%d rounds, active set %zu nodes, "
              "%.3f MB)%s:\n",
              rtr::core::TopKSchemeName(params.scheme), params.k,
              timer.ElapsedMillis(), result->rounds, result->active_nodes,
              result->active_set_bytes / 1e6,
              result->converged ? "" : " [NOT CONVERGED]");
  for (size_t i = 0; i < result->entries.size(); ++i) {
    const rtr::core::TopKEntry& entry = result->entries[i];
    std::printf("%3zu. node %-9u (%s)  r in [%.6g, %.6g]\n", i + 1,
                entry.node,
                graph.type_name(graph.node_type(entry.node)).c_str(),
                entry.lower, entry.upper);
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: rtr <generate|info|rank|topk> [--flag value ...]\n"
               "see the header of tools/rtr_cli.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  Flags flags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "rank") return CmdRank(flags);
  if (command == "topk") return CmdTopK(flags);
  PrintUsage();
  return 2;
}
