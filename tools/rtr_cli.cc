// rtr — command-line interface to the RoundTripRank library.
//
//   rtr generate    --dataset bibnet|qlog [--seed N] [--out graph.txt]
//   rtr convert     <in> <out> [--probs=f32]
//   rtr info        <graph-or-delta-file>        (also: --graph graph.txt)
//   rtr diff        <base> <next> <out.rtrdelta>
//   rtr apply-delta <base> <delta> [<delta> ...] <out.rtrsnap>
//   rtr rank        --graph graph.txt --query 1,2,3 [--measure rtr|rtr+|f|t]
//                   [--beta 0.5] [--k 10] [--type venue]
//   rtr topk        --graph graph.txt --query 5 [--k 10] [--eps 0.01]
//                   [--scheme 2sbound|gupta|sarkar|g+s|naive]
//   rtr serve       [--graph graph.txt] [--mmap]
//                   [--delta d1.rtrdelta,d2.rtrdelta]
//                   [--queries 200] [--qps 200] [--workers 4] [--queue 256]
//                   [--cache 1] [--cache-capacity 1024]
//                   [--backend local|dist] [--gps 4] [--k 10] [--eps 0.01]
//                   [--slo-ms 50] [--repeat 0.5] [--seed 7] [--threads N]
//                   [--metrics-out metrics.txt] [--metrics-interval-ms 1000]
//                   [--trace N] [--tracing 0|1]
//                   [--scheduler] [--batch 8] [--deadline-ms D]
//                   [--eps-band MAX] [--replay stream.rtrq]
//
// Every --graph flag accepts either the text format of graph/io.h or the
// binary snapshot format of graph/snapshot.h, auto-detected by magic;
// `convert` translates between the two (a text input becomes a snapshot and
// vice versa; `--probs=f32` writes a v3 snapshot that also carries float32
// probability columns for the vectorized kernels). `serve --mmap` loads a
// snapshot graph zero-copy via mmap (MapMode::kPrefer, with a logged
// bulk-read fallback); without the flag, the RTR_GRAPH_MMAP env var decides. `generate` emits the synthetic datasets used by the
// benchmark suite. `info` on a binary snapshot or delta file prints the
// header (format version, generation, counts, checksum) without loading the
// payload. `diff` computes the delta between two append-only graph
// versions; `apply-delta` replays delta files onto a base through a
// graph::GraphStore and writes the resulting generation as a v2 snapshot.
// `serve` replays a synthetic QLog query stream (or random queries on a
// loaded graph) at a target QPS through the concurrent serve::QueryService
// and reports throughput, tail latency, and cache behavior; with --delta, a
// writer thread applies the listed delta files mid-replay, exercising the
// live generation-swap path while queries are in flight.
//
// `serve --threads N` (or the RTR_NUM_THREADS env var) sizes the
// util::ParallelFor kernel pool; results are bit-identical at any setting.
//
// Scheduling (DESIGN.md §11): `serve --scheduler` turns on cost-model
// admission — shortest-predicted-job-first with batched worker drains of up
// to --batch requests, deadline shedding (--deadline-ms gives every request
// a completion budget; 0 = none), and adaptive epsilon up to --eps-band
// under queue pressure. `--replay file` replaces the synthetic stream with
// a recorded one: one record per line, `node [deadline_ms]`, `#` comments
// and blank lines skipped. The deadline column is optional per record —
// old node-only logs parse unchanged (records without it fall back to
// --deadline-ms).
//
// Observability (DESIGN.md §9): `serve` ends by printing the process-wide
// metrics registry in the Prometheus-style text exposition — the SAME
// rendered string is appended to --metrics-out, so the human summary and
// the machine dump agree field-for-field. --metrics-interval-ms appends
// periodic dumps during the replay (each prefixed with `# dump N`, counters
// monotone across dumps). --trace N enables per-query phase tracing and
// prints the N slowest queries' trace JSON; --tracing 1 enables tracing
// without the dump. LOG verbosity follows the RTR_LOG_LEVEL env var
// (info|warn|error|off; default warn).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/round_trip_rank.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "datasets/qlog.h"
#include "dist/distributed_topk.h"
#include "eval/experiment.h"
#include "graph/delta.h"
#include "graph/io.h"
#include "graph/snapshot.h"
#include "graph/store.h"
#include "net/gp_server.h"
#include "net/remote_gp.h"
#include "obs/metrics.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"
#include "serve/query_service.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using rtr::Graph;
using rtr::NodeId;

// Minimal --flag value parser; flags may appear in any order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      // Known boolean flags may stand alone (`serve --mmap`); an explicit
      // value (`--mmap 0`) still works.
      if (IsBooleanFlag(argv[i] + 2) &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_[argv[i] + 2] = "1";
        i += 1;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' is missing a value\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
      i += 2;
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  bool GetBool(const std::string& key) const {
    auto it = values_.find(key);
    return it != values_.end() && it->second != "0" && it->second != "off" &&
           it->second != "false";
  }

 private:
  static bool IsBooleanFlag(const char* name) {
    return std::strcmp(name, "mmap") == 0 ||
           std::strcmp(name, "scheduler") == 0;
  }

  std::map<std::string, std::string> values_;
};

std::vector<NodeId> ParseQuery(const std::string& text) {
  std::vector<NodeId> nodes;
  size_t start = 0;
  while (start < text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    nodes.push_back(static_cast<NodeId>(
        std::strtoul(text.substr(start, comma - start).c_str(), nullptr, 10)));
    start = comma + 1;
  }
  return nodes;
}

Graph LoadGraphOrDie(const Flags& flags) {
  std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "missing --graph\n");
    std::exit(2);
  }
  rtr::StatusOr<Graph> graph = rtr::LoadGraphAuto(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(graph).value();
}

int CmdGenerate(const Flags& flags) {
  std::string dataset = flags.GetString("dataset", "bibnet");
  std::string out = flags.GetString("out", dataset + ".graph.txt");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  Graph graph;
  if (dataset == "bibnet") {
    rtr::datasets::BibNetConfig config;
    if (seed != 0) config.seed = seed;
    auto net = rtr::datasets::BibNet::Generate(config);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    graph = net->graph();
  } else if (dataset == "qlog") {
    rtr::datasets::QLogConfig config;
    if (seed != 0) config.seed = seed;
    auto log = rtr::datasets::QLog::Generate(config);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
      return 1;
    }
    graph = log->graph();
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (bibnet|qlog)\n",
                 dataset.c_str());
    return 2;
  }
  rtr::Status status = rtr::SaveGraphToFile(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu arcs\n", out.c_str(),
              graph.num_nodes(), graph.num_arcs());
  return 0;
}

// `rtr convert <in> <out> [--probs=f32]`: translates between the text and
// binary snapshot graph formats. The input format is auto-detected by magic;
// the output is written in the other format. `--probs=f32` asks for a v3
// snapshot carrying the derived float32 probability columns alongside the
// exact f64 ones (see graph/snapshot.h); it only applies when the output is
// a snapshot.
int CmdConvert(int argc, char** argv) {
  bool f32_probs = false;
  int positional = argc;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probs=f32") {
      f32_probs = true;
    } else if (arg == "--probs" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "f32") {
        f32_probs = true;
      } else if (value != "f64") {
        std::fprintf(stderr, "unknown --probs value '%s' (want f32 or f64)\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--probs=f64") {
      f32_probs = false;
    } else {
      positional = i;
      break;
    }
  }
  if (argc != 4 && (positional != argc || argc < 4)) {
    std::fprintf(stderr, "usage: rtr convert <in> <out> [--probs=f32]\n");
    return 2;
  }
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  rtr::StatusOr<bool> is_snapshot = rtr::IsSnapshotFile(in_path);
  if (!is_snapshot.ok()) {
    std::fprintf(stderr, "cannot read input: %s\n",
                 is_snapshot.status().ToString().c_str());
    return 1;
  }
  if (*is_snapshot && f32_probs) {
    std::fprintf(stderr,
                 "--probs=f32 needs a snapshot output (input %s is already a "
                 "snapshot, so the output is text)\n",
                 in_path.c_str());
    return 2;
  }
  rtr::StatusOr<Graph> graph = *is_snapshot
                                   ? rtr::LoadGraphSnapshotFromFile(in_path)
                                   : rtr::LoadGraphFromFile(in_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  rtr::SnapshotWriteOptions options;
  options.f32_probs = f32_probs;
  rtr::Status status =
      *is_snapshot ? rtr::SaveGraphToFile(*graph, out_path)
                   : rtr::SaveGraphSnapshotToFile(*graph, out_path, options);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write graph: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s -> %s: %zu nodes, %zu arcs (%s -> %s)\n", in_path.c_str(),
              out_path.c_str(), graph->num_nodes(), graph->num_arcs(),
              *is_snapshot ? "snapshot" : "text",
              *is_snapshot ? "text" : f32_probs ? "snapshot v3 (f64+f32 probs)"
                                                : "snapshot");
  return 0;
}

// Full in-memory summary of a loaded graph (the historical `info` output).
void PrintGraphSummary(const Graph& graph) {
  std::printf("nodes: %zu\narcs: %zu\naverage degree: %.2f\nmemory: %.1f MB\n",
              graph.num_nodes(), graph.num_arcs(), graph.AverageDegree(),
              graph.MemoryBytes() / 1e6);
  std::printf("node types:\n");
  for (size_t t = 0; t < graph.type_names().size(); ++t) {
    size_t count = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (graph.node_type(v) == t) ++count;
    }
    if (count > 0) {
      std::printf("  %-12s %zu\n", graph.type_names()[t].c_str(), count);
    }
  }
}

// `rtr info <path>`: header-only inspection of binary snapshot and delta
// files (no payload load), full summary for text graphs.
int CmdInfoPath(const std::string& path) {
  rtr::StatusOr<bool> is_delta = rtr::IsDeltaFile(path);
  if (!is_delta.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 is_delta.status().ToString().c_str());
    return 1;
  }
  if (*is_delta) {
    rtr::StatusOr<rtr::DeltaFileInfo> info = rtr::ReadDeltaFileInfo(path);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("format: delta (rtr-delt v%u)\n", info->version);
    std::printf("base generation: %llu\n",
                static_cast<unsigned long long>(info->base_generation));
    std::printf("added types: %llu\nadded nodes: %llu\n",
                static_cast<unsigned long long>(info->num_added_types),
                static_cast<unsigned long long>(info->num_added_nodes));
    std::printf("removed arcs: %llu\nadded arcs: %llu\n",
                static_cast<unsigned long long>(info->num_removed_arcs),
                static_cast<unsigned long long>(info->num_added_arcs));
    std::printf("payload checksum: %016llx\n",
                static_cast<unsigned long long>(info->payload_checksum));
    return 0;
  }
  rtr::StatusOr<bool> is_snapshot = rtr::IsSnapshotFile(path);
  if (!is_snapshot.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 is_snapshot.status().ToString().c_str());
    return 1;
  }
  if (*is_snapshot) {
    rtr::StatusOr<rtr::SnapshotFileInfo> info =
        rtr::ReadSnapshotFileInfo(path);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("format: snapshot (rtr-snap v%u)\n", info->version);
    std::printf("generation: %llu\n",
                static_cast<unsigned long long>(info->generation));
    std::printf("node types: %llu\nnodes: %llu\narcs: %llu\n",
                static_cast<unsigned long long>(info->num_types),
                static_cast<unsigned long long>(info->num_nodes),
                static_cast<unsigned long long>(info->num_arcs));
    std::printf("probs: %s\n", info->has_f32_probs ? "f64 + f32" : "f64");
    std::printf("payload checksum: %016llx\n",
                static_cast<unsigned long long>(info->payload_checksum));
    return 0;
  }
  rtr::StatusOr<Graph> graph = rtr::LoadGraphFromFile(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("format: text\n");
  PrintGraphSummary(*graph);
  return 0;
}

int CmdInfo(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  PrintGraphSummary(graph);
  return 0;
}

// `rtr diff <base> <next> <out.rtrdelta>`: structural diff between two
// append-only graph versions, written as a checksummed delta file whose
// base_generation comes from the base snapshot's header (0 for text).
int CmdDiff(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr, "usage: rtr diff <base> <next> <out.rtrdelta>\n");
    return 2;
  }
  uint64_t base_generation = 0;
  rtr::StatusOr<Graph> base = rtr::LoadGraphAuto(argv[2], &base_generation);
  if (!base.ok()) {
    std::fprintf(stderr, "cannot load base: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  rtr::StatusOr<Graph> next = rtr::LoadGraphAuto(argv[3]);
  if (!next.ok()) {
    std::fprintf(stderr, "cannot load next: %s\n",
                 next.status().ToString().c_str());
    return 1;
  }
  rtr::StatusOr<rtr::GraphDelta> delta = rtr::DiffGraphs(*base, *next);
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    return 1;
  }
  delta->base_generation = base_generation;
  rtr::Status saved = rtr::SaveGraphDeltaToFile(*delta, argv[4]);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: base generation %llu, +%zu nodes, -%zu/+%zu arcs\n",
              argv[4], static_cast<unsigned long long>(base_generation),
              delta->added_node_types.size(), delta->removed_arcs.size(),
              delta->added_arcs.size());
  return 0;
}

// `rtr apply-delta <base> <delta> [<delta> ...] <out.rtrsnap>`: replays
// delta files in order onto the base through a GraphStore (so the
// generation handshake is enforced) and writes the final generation as a
// v2 binary snapshot.
int CmdApplyDelta(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: rtr apply-delta <base> <delta> [<delta> ...] "
                 "<out.rtrsnap>\n");
    return 2;
  }
  rtr::StatusOr<std::unique_ptr<rtr::GraphStore>> store =
      rtr::GraphStore::Open(argv[2]);
  if (!store.ok()) {
    std::fprintf(stderr, "cannot open base: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  for (int i = 3; i < argc - 1; ++i) {
    rtr::StatusOr<uint64_t> generation = (*store)->CatchUp(argv[i]);
    if (!generation.ok()) {
      std::fprintf(stderr, "applying %s: %s\n", argv[i],
                   generation.status().ToString().c_str());
      return 1;
    }
    std::printf("applied %s -> generation %llu\n", argv[i],
                static_cast<unsigned long long>(*generation));
  }
  rtr::PinnedGraph current = (*store)->Pin();
  rtr::Status saved = rtr::SaveGraphSnapshotToFile(
      *current.graph, argv[argc - 1], current.generation);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: generation %llu, %zu nodes, %zu arcs\n",
              argv[argc - 1],
              static_cast<unsigned long long>(current.generation),
              current.graph->num_nodes(), current.graph->num_arcs());
  return 0;
}

int CmdRank(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  std::vector<NodeId> query = ParseQuery(flags.GetString("query", ""));
  if (query.empty()) {
    std::fprintf(stderr, "missing --query\n");
    return 2;
  }
  for (NodeId q : query) {
    if (q >= graph.num_nodes()) {
      std::fprintf(stderr, "query node %u out of range\n", q);
      return 2;
    }
  }
  std::string measure_name = flags.GetString("measure", "rtr");
  double beta = flags.GetDouble("beta", 0.5);
  int k = flags.GetInt("k", 10);

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  std::unique_ptr<rtr::ranking::ProximityMeasure> measure;
  if (measure_name == "rtr") {
    measure = rtr::core::MakeRoundTripRankMeasure(scorer);
  } else if (measure_name == "rtr+") {
    measure = rtr::core::MakeRoundTripRankPlusMeasure(scorer, beta);
  } else if (measure_name == "f") {
    measure = rtr::ranking::MakeFRankMeasure(scorer);
  } else if (measure_name == "t") {
    measure = rtr::ranking::MakeTRankMeasure(scorer);
  } else {
    std::fprintf(stderr, "unknown measure '%s' (rtr|rtr+|f|t)\n",
                 measure_name.c_str());
    return 2;
  }

  rtr::WallTimer timer;
  std::vector<double> scores = measure->Score(query);
  std::vector<NodeId> ranked;
  if (flags.Has("type")) {
    std::string type_name = flags.GetString("type", "");
    rtr::NodeTypeId type = 0;
    bool found = false;
    for (size_t t = 0; t < graph.type_names().size(); ++t) {
      if (graph.type_names()[t] == type_name) {
        type = static_cast<rtr::NodeTypeId>(t);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown node type '%s'\n", type_name.c_str());
      return 2;
    }
    ranked = rtr::eval::FilteredRanking(graph, scores, query, type,
                                        static_cast<size_t>(k));
  } else {
    ranked = rtr::ranking::TopKNodes(scores, static_cast<size_t>(k), query);
  }
  std::printf("%s results in %.1f ms:\n", measure->name().c_str(),
              timer.ElapsedMillis());
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%3zu. node %-9u (%s)  score %.6g\n", i + 1, ranked[i],
                graph.type_name(graph.node_type(ranked[i])).c_str(),
                scores[ranked[i]]);
  }
  return 0;
}

int CmdTopK(const Flags& flags) {
  Graph graph = LoadGraphOrDie(flags);
  std::vector<NodeId> query = ParseQuery(flags.GetString("query", ""));
  if (query.empty()) {
    std::fprintf(stderr, "missing --query\n");
    return 2;
  }
  rtr::core::TopKParams params;
  params.k = flags.GetInt("k", 10);
  params.epsilon = flags.GetDouble("eps", 0.01);
  std::string scheme = flags.GetString("scheme", "2sbound");
  if (scheme == "2sbound") {
    params.scheme = rtr::core::TopKScheme::k2SBound;
  } else if (scheme == "gupta") {
    params.scheme = rtr::core::TopKScheme::kGupta;
  } else if (scheme == "sarkar") {
    params.scheme = rtr::core::TopKScheme::kSarkar;
  } else if (scheme == "g+s") {
    params.scheme = rtr::core::TopKScheme::kGPlusS;
  } else if (scheme == "naive") {
    params.scheme = rtr::core::TopKScheme::kNaive;
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  rtr::WallTimer timer;
  rtr::StatusOr<rtr::core::TopKResult> result =
      rtr::core::TopKRoundTripRank(graph, query, params);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s top-%d in %.1f ms (%d rounds, active set %zu nodes, "
              "%.3f MB)%s:\n",
              rtr::core::TopKSchemeName(params.scheme), params.k,
              timer.ElapsedMillis(), result->rounds, result->active_nodes,
              result->active_set_bytes / 1e6,
              result->converged ? "" : " [NOT CONVERGED]");
  for (size_t i = 0; i < result->entries.size(); ++i) {
    const rtr::core::TopKEntry& entry = result->entries[i];
    std::printf("%3zu. node %-9u (%s)  r in [%.6g, %.6g]\n", i + 1,
                entry.node,
                graph.type_name(graph.node_type(entry.node)).c_str(),
                entry.lower, entry.upper);
  }
  return 0;
}

// Replays a synthetic query stream at a target QPS through the concurrent
// serve::QueryService and prints throughput / tail-latency / cache figures.
int CmdServe(const Flags& flags) {
  // The served graph: an explicit --graph file, or the synthetic QLog
  // (whose phrase nodes make a natural query stream). The QLog stays alive
  // so its graph is referenced, not copied.
  std::shared_ptr<const Graph> graph_sp;
  uint64_t generation = 0;
  std::unique_ptr<rtr::datasets::QLog> qlog;
  std::vector<NodeId> query_pool_source;  // candidate query nodes
  // --mmap asks for the zero-copy snapshot loader (with bulk-read
  // fallback); the default kAuto honors RTR_GRAPH_MMAP instead.
  const rtr::MapMode map_mode =
      flags.GetBool("mmap") ? rtr::MapMode::kPrefer : rtr::MapMode::kAuto;
  if (flags.Has("graph")) {
    rtr::StatusOr<Graph> loaded = rtr::LoadGraphAuto(
        flags.GetString("graph", ""), &generation, map_mode);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (flags.GetBool("mmap") && !loaded->is_mapped()) {
      std::fprintf(stderr,
                   "note: --mmap fell back to a bulk read (see warning "
                   "above)\n");
    }
    graph_sp = std::make_shared<const Graph>(std::move(loaded).value());
  } else {
    if (flags.GetBool("mmap")) {
      std::fprintf(stderr, "--mmap needs --graph <snapshot file>\n");
      return 2;
    }
    rtr::datasets::QLogConfig config;
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
    if (seed != 0) config.seed = seed;
    auto generated = rtr::datasets::QLog::Generate(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    qlog = std::make_unique<rtr::datasets::QLog>(
        std::move(generated).value());
    // Aliasing shared_ptr: the QLog owns its graph for the whole run.
    graph_sp = {std::shared_ptr<const Graph>{}, &qlog->graph()};
    query_pool_source = graph_sp->NodesOfType(qlog->phrase_type());
  }
  const Graph* graph = graph_sp.get();

  int num_queries = flags.GetInt("queries", 200);
  double target_qps = flags.GetDouble("qps", 200.0);
  if (num_queries <= 0 || target_qps <= 0.0) {
    std::fprintf(stderr, "--queries and --qps must be positive\n");
    return 2;
  }
  double repeat = flags.GetDouble("repeat", 0.5);
  if (!(repeat >= 0.0 && repeat <= 1.0)) {
    std::fprintf(stderr, "--repeat must be a fraction in [0, 1]\n");
    return 2;
  }

  rtr::serve::ServiceOptions options;
  options.num_workers = flags.GetInt("workers", 4);
  int queue_capacity = flags.GetInt("queue", 256);
  // --gps is dual-purpose: an integer stripes the graph across in-process
  // GPs (backend dist); a host:port,... list fronts remote gp-serve shards
  // (backend remote).
  std::vector<std::string> gp_endpoints;
  const std::string gps_flag = flags.GetString("gps", "");
  if (gps_flag.find(':') != std::string::npos) {
    size_t begin = 0;
    while (begin < gps_flag.size()) {
      size_t comma = gps_flag.find(',', begin);
      if (comma == std::string::npos) comma = gps_flag.size();
      if (comma > begin) {
        gp_endpoints.push_back(gps_flag.substr(begin, comma - begin));
      }
      begin = comma + 1;
    }
  }
  int num_gps = gp_endpoints.empty()
                    ? flags.GetInt("gps", 4)
                    : static_cast<int>(gp_endpoints.size());
  int cache_capacity = flags.GetInt("cache-capacity", 1024);
  if (options.num_workers < 1 || queue_capacity < 1 || num_gps < 1 ||
      cache_capacity < 1) {
    std::fprintf(stderr,
                 "--workers, --queue, --gps and --cache-capacity must be "
                 ">= 1\n");
    return 2;
  }
  options.queue_capacity = static_cast<size_t>(queue_capacity);
  options.enable_cache = flags.GetInt("cache", 1) != 0;
  options.cache_capacity = static_cast<size_t>(cache_capacity);
  options.slo_millis = flags.GetDouble("slo-ms", 50.0);

  // Cost-model admission scheduling (serve/scheduler.h).
  options.scheduler.enabled = flags.GetBool("scheduler");
  int batch_size = flags.GetInt("batch", 8);
  if (batch_size < 1) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return 2;
  }
  options.scheduler.batch_size = static_cast<size_t>(batch_size);
  options.scheduler.eps_max = flags.GetDouble("eps-band", 0.0);
  // Per-request completion budget; replay records may override it.
  double default_deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (default_deadline_ms < 0.0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0\n");
    return 2;
  }

  // Tracing: --trace N prints the N slowest queries' phase traces (and
  // implies tracing on); --tracing 1 turns tracing on without the dump.
  int trace_n = flags.GetInt("trace", 0);
  if (trace_n < 0) {
    std::fprintf(stderr, "--trace must be >= 0\n");
    return 2;
  }
  options.enable_tracing = trace_n > 0 || flags.GetInt("tracing", 0) != 0;
  if (trace_n > 0) options.trace_keep = static_cast<size_t>(trace_n);

  // Metrics exposition dump: appended to --metrics-out periodically during
  // the replay and once at the end.
  std::string metrics_out = flags.GetString("metrics-out", "");
  int metrics_interval_ms = flags.GetInt("metrics-interval-ms", 1000);
  if (metrics_interval_ms < 1) {
    std::fprintf(stderr, "--metrics-interval-ms must be >= 1\n");
    return 2;
  }

  // Kernel-pool width: --threads beats the RTR_NUM_THREADS env default.
  if (flags.Has("threads")) {
    int threads = flags.GetInt("threads", 0);
    if (threads < 1) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    rtr::util::SetNumThreads(threads);
  }

  rtr::core::TopKParams params;
  params.k = flags.GetInt("k", 10);
  params.epsilon = flags.GetDouble("eps", 0.01);

  // Recorded query stream: one record per line, `node [deadline_ms]`.
  // The deadline column is optional per record (old node-only logs parse
  // unchanged); records without it use --deadline-ms. A replay file
  // defines the stream, so it overrides --queries.
  struct ReplayRecord {
    NodeId node;
    double deadline_millis;
  };
  std::vector<ReplayRecord> replay;
  if (flags.Has("replay")) {
    const std::string replay_path = flags.GetString("replay", "");
    std::FILE* f = std::fopen(replay_path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read --replay %s\n", replay_path.c_str());
      return 2;
    }
    char line[256];
    int lineno = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      ++lineno;
      char* s = line;
      while (*s == ' ' || *s == '\t') ++s;
      if (*s == '\0' || *s == '\n' || *s == '\r' || *s == '#') continue;
      char* end = nullptr;
      unsigned long long node = std::strtoull(s, &end, 10);
      if (end == s) {
        std::fprintf(stderr, "%s:%d: expected a node id\n",
                     replay_path.c_str(), lineno);
        std::fclose(f);
        return 2;
      }
      double deadline = default_deadline_ms;
      char* rest = end;
      while (*rest == ' ' || *rest == '\t') ++rest;
      if (*rest != '\0' && *rest != '\n' && *rest != '\r' && *rest != '#') {
        char* dead_end = nullptr;
        deadline = std::strtod(rest, &dead_end);
        if (dead_end == rest || deadline < 0.0) {
          std::fprintf(stderr, "%s:%d: bad deadline column\n",
                       replay_path.c_str(), lineno);
          std::fclose(f);
          return 2;
        }
      }
      replay.push_back({static_cast<NodeId>(node), deadline});
    }
    std::fclose(f);
    if (replay.empty()) {
      std::fprintf(stderr, "--replay %s holds no records\n",
                   replay_path.c_str());
      return 2;
    }
    num_queries = static_cast<int>(replay.size());
  }

  // Unique query pool: ~ (1 - repeat) of the stream; uniform draws from the
  // pool then yield roughly the requested repeat fraction. A replay file
  // supplies its own nodes instead.
  rtr::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  std::vector<NodeId> pool;
  if (replay.empty()) {
    int pool_size = std::max(1, static_cast<int>(num_queries *
                                                 (1.0 - repeat)));
    for (int i = 0; i < pool_size; ++i) {
      NodeId q = query_pool_source.empty()
                     ? rtr::bench::SampleQueryNode(*graph, rng)
                     : rtr::bench::SampleQueryNode(*graph, query_pool_source,
                                                   rng);
      if (q == rtr::kInvalidNode) {
        std::fprintf(stderr, "could not sample query nodes with out-arcs\n");
        return 1;
      }
      pool.push_back(q);
    }
  }

  // Delta files a writer thread applies mid-replay (comma-separated, in
  // generation order). Every backend serves through a GraphStore, so the
  // swap path is identical with and without deltas.
  std::vector<std::string> delta_paths;
  if (flags.Has("delta")) {
    std::string list = flags.GetString("delta", "");
    size_t begin = 0;
    while (begin < list.size()) {
      size_t comma = list.find(',', begin);
      if (comma == std::string::npos) comma = list.size();
      if (comma > begin) delta_paths.push_back(list.substr(begin, comma - begin));
      begin = comma + 1;
    }
  }

  std::string backend = flags.GetString(
      "backend", gp_endpoints.empty() ? "local" : "remote");
  auto store = std::make_shared<rtr::GraphStore>(graph_sp, generation);
  std::unique_ptr<rtr::serve::QueryService> service;
  // Kept past service construction so the end-of-run wire summary can read
  // the remote sources' traffic.
  std::shared_ptr<const rtr::dist::Cluster> remote_cluster;
  if (backend == "local") {
    service = std::make_unique<rtr::serve::QueryService>(store, options);
  } else if (backend == "dist") {
    service =
        std::make_unique<rtr::serve::QueryService>(store, num_gps, options);
  } else if (backend == "remote") {
    if (gp_endpoints.empty()) {
      std::fprintf(stderr,
                   "backend remote needs --gps host:port[,host:port...]\n");
      return 2;
    }
    if (!delta_paths.empty()) {
      std::fprintf(stderr,
                   "--delta needs an in-process backend; remote gp-serve "
                   "shards are pinned to one generation\n");
      return 2;
    }
    rtr::StatusOr<std::unique_ptr<rtr::dist::Cluster>> connected =
        rtr::net::ConnectRemoteCluster(graph_sp, generation, gp_endpoints);
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot front remote cluster: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    remote_cluster = std::move(*connected);
    for (const std::string& endpoint : gp_endpoints) {
      std::printf("  [gp] connected to %s\n", endpoint.c_str());
    }
    service = std::make_unique<rtr::serve::QueryService>(remote_cluster,
                                                         options);
  } else {
    std::fprintf(stderr, "unknown backend '%s' (local|dist|remote)\n",
                 backend.c_str());
    return 2;
  }

  std::printf("serving %zu-node graph (generation %llu): %d queries at "
              "%.0f QPS, %d workers, queue %zu, cache %s, backend %s, "
              "kernel threads %d, %zu pending deltas\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(generation), num_queries,
              target_qps, options.num_workers, options.queue_capacity,
              options.enable_cache ? "on" : "off", backend.c_str(),
              rtr::util::NumThreads(), delta_paths.size());
  if (options.scheduler.enabled) {
    std::printf("scheduler on: batch %zu, deadline %.1fms, eps band "
                "[%.4f, %.4f]%s\n",
                options.scheduler.batch_size, default_deadline_ms,
                params.epsilon,
                std::max(options.scheduler.eps_max, params.epsilon),
                replay.empty() ? "" : ", replayed stream");
  }

  rtr::Status status = service->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::atomic<int> done_count{0};
  auto interval = std::chrono::duration<double>(1.0 / target_qps);
  auto start = std::chrono::steady_clock::now();

  // Periodic metrics dumps, one exposition block per tick prefixed with a
  // `# dump N` comment. Counters are monotone across blocks — the CLI test
  // checks exactly that.
  std::atomic<bool> metrics_stop{false};
  std::atomic<int> metrics_dumps{0};
  std::thread metrics_writer;
  if (!metrics_out.empty()) {
    std::FILE* probe = std::fopen(metrics_out.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "cannot write --metrics-out %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fclose(probe);
    metrics_writer = std::thread([&metrics_out, &metrics_stop,
                                  &metrics_dumps, metrics_interval_ms] {
      auto dump = [&metrics_out, &metrics_dumps] {
        std::FILE* f = std::fopen(metrics_out.c_str(), "a");
        if (f == nullptr) return;
        std::string text = rtr::obs::MetricsRegistry::Default().RenderText();
        std::fprintf(f, "# dump %d\n", metrics_dumps.fetch_add(1));
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      };
      while (!metrics_stop.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(metrics_interval_ms));
        dump();
      }
    });
  }

  // The ingestion writer: spaces the delta applications evenly across the
  // replay window so swaps land while queries are in flight. Readers are
  // never blocked — CatchUp builds the next generation off the reader lock
  // and publishes it with a pointer swap.
  std::atomic<bool> delta_failed{false};
  std::thread delta_writer;
  if (!delta_paths.empty()) {
    double window_seconds = num_queries / target_qps;
    delta_writer = std::thread([&store, &delta_paths, &delta_failed,
                                window_seconds, start] {
      for (size_t i = 0; i < delta_paths.size(); ++i) {
        std::this_thread::sleep_until(
            start +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    window_seconds * static_cast<double>(i + 1) /
                    static_cast<double>(delta_paths.size() + 1))));
        rtr::StatusOr<uint64_t> next = store->CatchUp(delta_paths[i]);
        if (!next.ok()) {
          std::fprintf(stderr, "delta %s: %s\n", delta_paths[i].c_str(),
                       next.status().ToString().c_str());
          delta_failed.store(true);
          return;
        }
        std::printf("  [swap] %s -> generation %llu\n",
                    delta_paths[i].c_str(),
                    static_cast<unsigned long long>(*next));
      }
    });
  }

  int accepted = 0;
  for (int i = 0; i < num_queries; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * i));
    rtr::serve::ServeRequest request;
    request.params = params;
    if (replay.empty()) {
      request.query = {pool[static_cast<size_t>(
          rng.NextUint64(pool.size()))]};
      request.deadline_millis = default_deadline_ms;
    } else {
      request.query = {replay[static_cast<size_t>(i)].node};
      request.deadline_millis = replay[static_cast<size_t>(i)].deadline_millis;
    }
    rtr::Status submitted = service->SubmitAsync(
        std::move(request),
        [&done_count](const rtr::serve::ServeResponse&) {
          done_count.fetch_add(1);
        });
    if (submitted.ok()) ++accepted;
  }
  if (delta_writer.joinable()) delta_writer.join();
  service->Shutdown();  // drains everything admitted

  // One rendered exposition serves both consumers: printed as the human
  // summary and appended verbatim as the final --metrics-out dump, so the
  // two agree field-for-field by construction.
  std::string rendered = rtr::obs::MetricsRegistry::Default().RenderText();
  if (metrics_writer.joinable()) {
    metrics_stop.store(true);
    metrics_writer.join();
  }
  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f, "# dump %d\n", metrics_dumps.fetch_add(1));
      std::fwrite(rendered.data(), 1, rendered.size(), f);
      std::fclose(f);
    }
  }
  rtr::serve::ServiceStats stats = service->stats();
  // Rejection reasons split out (not inferred from the aggregate), plus
  // queue wait per predicted-cost class.
  std::printf("\nadmission: accepted %llu, rejected %llu (queue overflow "
              "%llu, predicted-deadline shed %llu, stopping %llu)\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.shed_overflow),
              static_cast<unsigned long long>(stats.shed_predicted),
              static_cast<unsigned long long>(stats.rejected -
                                              stats.shed_overflow -
                                              stats.shed_predicted));
  for (size_t c = 0; c < rtr::serve::kNumCostClasses; ++c) {
    const auto& wait = stats.queue_wait[c];
    if (wait.count == 0) continue;
    std::printf("queue wait [%s]: %llu queries, mean %.3fms, p99 %.3fms\n",
                rtr::serve::CostClassName(
                    static_cast<rtr::serve::CostClass>(c)),
                static_cast<unsigned long long>(wait.count),
                wait.mean_millis, wait.p99_millis);
  }
  if (options.scheduler.enabled && stats.batches > 0) {
    std::printf("scheduler: %llu batches, %llu batched queries "
                "(occupancy %.2f), %llu widened-epsilon queries\n",
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.batched_queries),
                static_cast<double>(stats.batched_queries) /
                    static_cast<double>(stats.batches),
                static_cast<unsigned long long>(stats.eps_widened));
  }
  if (remote_cluster != nullptr) {
    const rtr::dist::WireTraffic w = remote_cluster->total_wire();
    std::printf("net: sent %llu frames / %llu bytes, received %llu frames / "
                "%llu bytes, %llu retries, %llu reconnects, %llu timeouts, "
                "%llu sheds\n",
                static_cast<unsigned long long>(w.frames_sent),
                static_cast<unsigned long long>(w.bytes_sent),
                static_cast<unsigned long long>(w.frames_received),
                static_cast<unsigned long long>(w.bytes_received),
                static_cast<unsigned long long>(w.retries),
                static_cast<unsigned long long>(w.reconnects),
                static_cast<unsigned long long>(w.timeouts),
                static_cast<unsigned long long>(w.sheds));
  }
  std::printf("\nmetrics (exposition; field-for-field the final "
              "--metrics-out dump):\n");
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  if (trace_n > 0) {
    std::printf("\nslowest traces (of %llu completed):\n",
                static_cast<unsigned long long>(stats.completed));
    for (const std::string& json : service->SlowestTraces()) {
      std::printf("%s\n", json.c_str());
    }
  }
  if (delta_failed.load()) return 1;
  return done_count.load() == accepted ? 0 : 1;
}

// gp-serve shutdown flag, set by SIGTERM/SIGINT so the shard can stop its
// listener, join its connection handlers, and exit 0 (the CLI net test
// asserts exactly this).
volatile std::sig_atomic_t g_gp_serve_signal = 0;

void GpServeSignalHandler(int signum) { g_gp_serve_signal = signum; }

// Hosts one GraphProcessor shard over TCP: `rtr gp-serve --graph g.rtrsnap
// --shard k/N [--port P]`. Prints the bound port (supports --port 0) and
// serves until SIGTERM/SIGINT.
int CmdGpServe(const Flags& flags) {
  const std::string shard_spec = flags.GetString("shard", "");
  int shard = -1;
  int num_gps = 0;
  if (std::sscanf(shard_spec.c_str(), "%d/%d", &shard, &num_gps) != 2 ||
      shard < 0 || num_gps < 1 || shard >= num_gps) {
    std::fprintf(stderr, "--shard must be k/N with 0 <= k < N, got '%s'\n",
                 shard_spec.c_str());
    return 2;
  }
  int port = flags.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535]\n");
    return 2;
  }
  uint64_t generation = 0;
  const rtr::MapMode map_mode =
      flags.GetBool("mmap") ? rtr::MapMode::kPrefer : rtr::MapMode::kAuto;
  rtr::StatusOr<Graph> loaded = rtr::LoadGraphAuto(
      flags.GetString("graph", ""), &generation, map_mode);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto graph = std::make_shared<const Graph>(std::move(loaded).value());

  rtr::net::GpServerOptions options;
  options.port = static_cast<uint16_t>(port);
  rtr::StatusOr<std::unique_ptr<rtr::net::GpServer>> server =
      rtr::net::GpServer::Start(graph, shard, num_gps, generation, options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start gp server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  auto registrations =
      (*server)->RegisterMetrics(&rtr::obs::MetricsRegistry::Default());

  std::signal(SIGTERM, GpServeSignalHandler);
  std::signal(SIGINT, GpServeSignalHandler);
  std::printf("gp-serve shard %d/%d listening on port %u (%zu/%zu nodes, "
              "generation %llu)\n",
              shard, num_gps, (*server)->port(),
              (*server)->gp().num_owned_nodes(), graph->num_nodes(),
              static_cast<unsigned long long>(generation));
  std::fflush(stdout);  // scripts grep the port line before connecting

  while (g_gp_serve_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  std::printf("gp-serve shard %d/%d: clean shutdown (signal %d; served "
              "%llu fetches / %llu records over %llu connections)\n",
              shard, num_gps, static_cast<int>(g_gp_serve_signal),
              static_cast<unsigned long long>((*server)->gp().fetch_requests()),
              static_cast<unsigned long long>((*server)->gp().records_served()),
              static_cast<unsigned long long>(
                  (*server)->connections_accepted()));
  return 0;
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: rtr <generate|convert|info|diff|apply-delta|rank|"
               "topk|serve|gp-serve> [--flag value ...]\n"
               "       rtr convert <in> <out> [--probs=f32]\n"
               "                                (text <-> binary snapshot, "
               "auto-detected;\n"
               "                                 --probs=f32 writes a v3 "
               "snapshot with f32 columns)\n"
               "       rtr info <file>          (snapshot/delta header, or "
               "text graph summary)\n"
               "       rtr diff <base> <next> <out.rtrdelta>\n"
               "       rtr apply-delta <base> <delta> [<delta> ...] "
               "<out.rtrsnap>\n"
               "       rtr serve --graph <snapshot> [--mmap]  (zero-copy "
               "mapped load)\n"
               "       rtr serve --scheduler [--batch 8] [--deadline-ms D]\n"
               "                 [--eps-band MAX] [--replay stream.rtrq]\n"
               "                                (cost-model admission: "
               "batching, deadline\n"
               "                                 shedding, adaptive "
               "epsilon)\n"
               "       rtr gp-serve --graph <snapshot> --shard k/N "
               "[--port P]\n"
               "                                (host one graph-processor "
               "shard over TCP;\n"
               "                                 --port 0 picks a free port, "
               "printed on stdout)\n"
               "       rtr serve --graph <snapshot> --gps "
               "host:port[,host:port...]\n"
               "                                (front remote gp-serve "
               "shards instead of\n"
               "                                 in-process GPs)\n"
               "see the header of tools/rtr_cli.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  // --help anywhere (including `rtr <command> --help`) wins before the
  // strict --flag/value parser sees it.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  if (argc < 2 || std::strcmp(argv[1], "help") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  std::string command = argv[1];
  // convert/diff/apply-delta take positionals, so they dispatch before the
  // strict --flag/value parser runs; info accepts both forms.
  if (command == "convert") return CmdConvert(argc, argv);
  if (command == "diff") return CmdDiff(argc, argv);
  if (command == "apply-delta") return CmdApplyDelta(argc, argv);
  if (command == "info" && argc == 3 &&
      std::strncmp(argv[2], "--", 2) != 0) {
    return CmdInfoPath(argv[2]);
  }
  Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "rank") return CmdRank(flags);
  if (command == "topk") return CmdTopK(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "gp-serve") return CmdGpServe(flags);
  PrintUsage(stderr);
  return 2;
}
