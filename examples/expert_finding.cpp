// Expert finding (the paper's Task A): given a paper, rank candidate
// reviewers. Balanced trade-offs are preferred — an important-but-broad
// researcher may be stale on specifics, while a very specific junior
// researcher may lack authority. This example contrasts the reviewer lists
// produced by three trade-offs and reports how often the paper's true
// authors (hidden from the graph) are re-discovered.
//
//   $ ./examples/expert_finding
#include <cstdio>
#include <memory>
#include <vector>

#include "core/round_trip_rank.h"
#include "datasets/bibnet.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/pagerank.h"

int main() {
  rtr::datasets::BibNetConfig config;
  config.num_papers = 6000;
  config.num_authors = 1500;
  rtr::datasets::BibNet bibnet =
      rtr::datasets::BibNet::Generate(config).value();

  // Hide the authorship of 30 papers, then try to re-discover the authors —
  // exactly the paper's Task 1 benchmark methodology.
  rtr::datasets::EvalTaskSet task = bibnet.MakeAuthorTask(30, 0, 7).value();
  const rtr::Graph& graph = task.graph;
  std::printf("bibliographic network: %zu nodes, %zu arcs; 30 papers with "
              "hidden authors\n\n",
              graph.num_nodes(), graph.num_arcs());

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  struct Profile {
    const char* label;
    double beta;
  };
  const Profile profiles[] = {
      {"importance only (beta = 0)   ", 0.0},
      {"balanced       (beta = 0.5) ", 0.5},
      {"specificity only (beta = 1)  ", 1.0},
  };
  std::printf("reviewer re-discovery quality (mean NDCG@5 over 30 papers):\n");
  double quality[3];
  for (int p = 0; p < 3; ++p) {
    auto measure =
        rtr::core::MakeRoundTripRankPlusMeasure(scorer, profiles[p].beta);
    double total = 0.0;
    for (const rtr::datasets::EvalQuery& query : task.test_queries) {
      total += rtr::eval::QueryNdcg(graph, *measure, query, task.target_type,
                                    5);
    }
    quality[p] = total / task.test_queries.size();
    std::printf("  %s NDCG@5 = %.4f\n", profiles[p].label, quality[p]);
  }

  // Show one concrete reviewer list.
  const rtr::datasets::EvalQuery& query = task.test_queries[0];
  auto balanced = rtr::core::MakeRoundTripRankPlusMeasure(scorer, 0.5);
  std::vector<double> scores = balanced->Score(query.query_nodes);
  std::vector<rtr::NodeId> ranked = rtr::eval::FilteredRanking(
      graph, scores, query.query_nodes, task.target_type, 5);
  std::printf("\nsuggested reviewers for paper %u (true authors:",
              query.query_nodes[0]);
  for (rtr::NodeId a : query.ground_truth) std::printf(" %u", a);
  std::printf("):\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    bool is_author = false;
    for (rtr::NodeId a : query.ground_truth) is_author |= (a == ranked[i]);
    std::printf("  %zu. author %u%s\n", i + 1, ranked[i],
                is_author ? "   <- true author recovered" : "");
  }
  if (quality[1] > quality[0] && quality[1] > quality[2]) {
    std::printf("\nThe balanced profile dominates both extremes — the "
                "paper's Task A claim.\n");
  } else {
    std::printf("\nOn this (small) instance the best trade-off sits between "
                "the extremes;\nthe paper tunes beta per task on "
                "development queries (Sect. VI-A2).\n");
  }
  return 0;
}
