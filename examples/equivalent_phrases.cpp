// Equivalent-search discovery (the paper's Task D / Task 4): given a search
// phrase on a query-log click graph, find the phrases expressing the same
// concept. Equivalence is inherently a specificity-leaning task (Fig. 8:
// beta* > 0.5), which this example demonstrates by comparing trade-offs.
//
//   $ ./examples/equivalent_phrases
#include <cstdio>
#include <memory>
#include <vector>

#include "core/round_trip_rank.h"
#include "datasets/qlog.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ranking/pagerank.h"

int main() {
  rtr::datasets::QLogConfig config;
  config.num_concepts = 1500;
  rtr::datasets::QLog qlog = rtr::datasets::QLog::Generate(config).value();
  const rtr::Graph& graph = qlog.graph();
  std::printf("synthetic query log: %zu nodes, %zu arcs\n\n",
              graph.num_nodes(), graph.num_arcs());

  // Pick a few concepts with at least three phrase variants.
  std::vector<int> demo_concepts;
  for (size_t c = 0; c < qlog.concepts().size() && demo_concepts.size() < 3;
       ++c) {
    if (qlog.concepts()[c].phrases.size() >= 3) {
      demo_concepts.push_back(static_cast<int>(c));
    }
  }

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  const double betas[] = {0.1, 0.5, 0.9};
  for (int c : demo_concepts) {
    const rtr::datasets::QLog::Concept& cls = qlog.concepts()[c];
    rtr::NodeId query = cls.phrases[0];
    std::vector<rtr::NodeId> truth(cls.phrases.begin() + 1,
                                   cls.phrases.end());
    std::printf("concept %d: query phrase %u, %zu equivalent variants\n", c,
                query, truth.size());
    for (double beta : betas) {
      auto measure = rtr::core::MakeRoundTripRankPlusMeasure(scorer, beta);
      std::vector<double> scores = measure->Score({query});
      std::vector<rtr::NodeId> ranked = rtr::eval::FilteredRanking(
          graph, scores, {query}, qlog.phrase_type(), 5);
      double ndcg = rtr::eval::NdcgAtK(ranked, truth, 5);
      std::printf("  beta = %.1f  top-5:", beta);
      for (rtr::NodeId v : ranked) {
        bool hit = false;
        for (rtr::NodeId t : truth) hit |= (t == v);
        std::printf(" %u%s", v, hit ? "*" : "");
      }
      std::printf("   NDCG@5 = %.3f\n", ndcg);
    }
    std::printf("  (* = true equivalent phrase)\n\n");
  }
  std::printf("Specificity-biased trade-offs tend to surface the true "
              "variants;\nimportance bias drifts to popular but unrelated "
              "phrases.\n");
  return 0;
}
