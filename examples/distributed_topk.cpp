// Distributed query processing (Sect. V-B): stripe a graph across several
// graph processors, answer top-K RoundTripRank queries through the active
// processor, and inspect the active-set economics that make the
// architecture scale.
//
//   $ ./examples/distributed_topk [num_gps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "dist/distributed_topk.h"
#include "util/random.h"

int main(int argc, char** argv) {
  int num_gps = argc > 1 ? std::atoi(argv[1]) : 4;
  if (num_gps < 1) {
    std::fprintf(stderr, "num_gps must be >= 1\n");
    return 1;
  }

  rtr::datasets::BibNetConfig config;
  config.num_papers = 10000;
  config.num_authors = 2500;
  rtr::datasets::BibNet bibnet =
      rtr::datasets::BibNet::Generate(config).value();
  const rtr::Graph& graph = bibnet.graph();

  // Aliasing shared_ptr: the BibNet owns the graph for the whole run.
  rtr::dist::Cluster cluster({std::shared_ptr<const rtr::Graph>{}, &graph},
                             num_gps);
  std::printf("graph: %zu nodes, %zu arcs (%.1f MB) striped over %d GPs\n",
              graph.num_nodes(), graph.num_arcs(),
              cluster.total_stored_bytes() / 1e6, num_gps);
  for (const rtr::dist::GraphProcessor& gp : cluster.gps()) {
    std::printf("  GP %d stores %zu nodes (%.1f MB)\n", gp.id(),
                gp.num_owned_nodes(), gp.stored_bytes() / 1e6);
  }

  rtr::core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;
  rtr::Rng rng(99);
  std::printf("\nrunning 5 queries:\n");
  for (int i = 0; i < 5; ++i) {
    rtr::NodeId query = rtr::bench::SampleQueryNode(graph, rng);
    if (query == rtr::kInvalidNode) {
      std::fprintf(stderr, "could not sample a node with outgoing arcs\n");
      return 1;
    }
    rtr::dist::DistributedTopKResult result =
        rtr::dist::DistributedTopK(cluster, {query}, params).value();
    std::printf(
        "  query %-7u %.1f ms, active set %zu nodes (%.3f MB = %.2f%% of "
        "the graph), %zu GP requests\n",
        query, result.query_millis, result.active_nodes,
        result.active_set_bytes / 1e6,
        100.0 * result.active_set_bytes / cluster.total_stored_bytes(),
        result.requests_sent);
    std::printf("    top-3:");
    for (size_t r = 0; r < 3 && r < result.topk.entries.size(); ++r) {
      const rtr::core::TopKEntry& entry = result.topk.entries[r];
      std::printf(" %u(%s)", entry.node,
                  graph.type_name(graph.node_type(entry.node)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nThe active set stays a tiny fraction of the graph — the\n"
              "property behind the paper's Figs. 12-13 scalability claim.\n");
  return 0;
}
