// Quickstart: build a small graph, compute RoundTripRank exactly, then get
// the same top results with the online 2SBound engine.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/round_trip_rank.h"
#include "core/twosbound.h"
#include "graph/builder.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"

int main() {
  // 1. Build a graph. This is the paper's Fig. 2 toy: terms, papers, and
  //    three venues of different importance/specificity profiles.
  rtr::GraphBuilder builder;
  rtr::NodeTypeId term = builder.AddNodeType("term");
  rtr::NodeTypeId paper = builder.AddNodeType("paper");
  rtr::NodeTypeId venue = builder.AddNodeType("venue");

  rtr::NodeId t1 = builder.AddNode(term);
  rtr::NodeId t2 = builder.AddNode(term);
  rtr::NodeId p[7];
  for (auto& node : p) node = builder.AddNode(paper);
  rtr::NodeId v1 = builder.AddNode(venue);  // important, not specific
  rtr::NodeId v2 = builder.AddNode(venue);  // both
  rtr::NodeId v3 = builder.AddNode(venue);  // specific, not important

  for (int i = 0; i < 5; ++i) builder.AddUndirectedEdge(t1, p[i], 1.0);
  builder.AddUndirectedEdge(t2, p[5], 1.0);
  builder.AddUndirectedEdge(t2, p[6], 1.0);
  for (int i : {0, 1, 5, 6}) builder.AddUndirectedEdge(p[i], v1, 1.0);
  for (int i : {2, 3}) builder.AddUndirectedEdge(p[i], v2, 1.0);
  builder.AddUndirectedEdge(p[4], v3, 1.0);

  rtr::Graph graph = builder.Build().value();
  std::printf("graph: %zu nodes, %zu arcs\n\n", graph.num_nodes(),
              graph.num_arcs());

  // 2. Exact RoundTripRank via the decomposition r = f * t. The FTScorer is
  //    shared by every measure you build on it.
  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  auto rtr_measure = rtr::core::MakeRoundTripRankMeasure(scorer);
  std::vector<double> scores = rtr_measure->Score({t1});
  std::printf("RoundTripRank for query t1: v1 = %.5f, v2 = %.5f, v3 = %.5f\n",
              scores[v1], scores[v2], scores[v3]);
  std::printf("=> v2 wins: it is both important and specific to t1.\n\n");

  // 3. Trade-off control: RoundTripRank+ with a specificity bias.
  auto importance_biased =
      rtr::core::MakeRoundTripRankPlusMeasure(scorer, 0.1);
  auto specificity_biased =
      rtr::core::MakeRoundTripRankPlusMeasure(scorer, 0.9);
  std::printf("beta = 0.1 prefers v1 over v3: %s\n",
              importance_biased->Score({t1})[v1] >
                      importance_biased->Score({t1})[v3]
                  ? "yes"
                  : "no");
  std::printf("beta = 0.9 prefers v3 over v1: %s\n\n",
              specificity_biased->Score({t1})[v3] >
                      specificity_biased->Score({t1})[v1]
                  ? "yes"
                  : "no");

  // 4. Online top-K without touching most of the graph: 2SBound.
  rtr::core::TopKParams params;
  params.k = 3;
  params.epsilon = 1e-4;
  rtr::core::TopKResult topk =
      rtr::core::TopKRoundTripRank(graph, {t1}, params).value();
  std::printf("2SBound top-%d (eps = %g):\n", params.k, params.epsilon);
  for (const rtr::core::TopKEntry& entry : topk.entries) {
    std::printf("  node %u (%s)  r in [%.5f, %.5f]\n", entry.node,
                graph.type_name(graph.node_type(entry.node)).c_str(),
                entry.lower, entry.upper);
  }
  std::printf("converged in %d rounds touching %zu of %zu nodes\n",
              topk.rounds, topk.active_nodes, graph.num_nodes());
  return 0;
}
