// Venue search (the paper's Task B / Fig. 6 scenario): given a topic as a
// multi-term query on a bibliographic network, rank the matching venues
// under different importance/specificity trade-offs.
//
//   $ ./examples/venue_search [topic-index]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/round_trip_rank.h"
#include "datasets/bibnet.h"
#include "eval/experiment.h"
#include "ranking/combinators.h"
#include "ranking/pagerank.h"

int main(int argc, char** argv) {
  rtr::datasets::BibNetConfig config;
  config.num_papers = 6000;
  config.num_authors = 1500;
  rtr::datasets::BibNet bibnet =
      rtr::datasets::BibNet::Generate(config).value();
  const rtr::Graph& graph = bibnet.graph();
  std::printf("synthetic bibliographic network: %zu nodes, %zu arcs\n",
              graph.num_nodes(), graph.num_arcs());

  int topic = argc > 1 ? std::atoi(argv[1]) : 3;
  int num_topics = config.num_areas * config.topics_per_area;
  if (topic < 0 || topic >= num_topics) {
    std::fprintf(stderr, "topic must be in [0, %d)\n", num_topics);
    return 1;
  }

  // The query: the topic's three most-used terms (the "spatio temporal
  // data" pattern — a multi-node query).
  std::vector<rtr::NodeId> query = bibnet.TopicQueryTerms(topic, 3);
  std::printf("query: top-3 terms of topic %d\n\n", topic);

  std::vector<std::string> venue_label(graph.num_nodes());
  for (const rtr::datasets::BibNet::Venue& venue : bibnet.venues()) {
    venue_label[venue.node] =
        venue.name + (venue.major ? " [major]" : " [specialized]");
  }

  auto scorer = std::make_shared<rtr::ranking::FTScorer>(graph);
  struct Scenario {
    const char* description;
    double beta;
  };
  // The paper's motivating venue scenarios: submitting one's best work
  // wants importance; building background wants specificity; reviewing
  // wants a balance.
  const Scenario scenarios[] = {
      {"submit your best work (importance, beta = 0.15)", 0.15},
      {"balanced view (RoundTripRank, beta = 0.5)", 0.5},
      {"build background reading (specificity, beta = 0.85)", 0.85},
  };
  for (const Scenario& scenario : scenarios) {
    auto measure =
        rtr::core::MakeRoundTripRankPlusMeasure(scorer, scenario.beta);
    std::vector<double> scores = measure->Score(query);
    std::vector<rtr::NodeId> ranked = rtr::eval::FilteredRanking(
        graph, scores, query, bibnet.venue_type(), 5);
    std::printf("%s\n", scenario.description);
    for (size_t i = 0; i < ranked.size(); ++i) {
      std::printf("  %zu. %s\n", i + 1, venue_label[ranked[i]].c_str());
    }
    std::printf("\n");
  }
  return 0;
}
