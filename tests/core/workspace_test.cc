#include "core/workspace.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/bca.h"
#include "core/twosbound.h"
#include "graph/builder.h"
#include "util/random.h"

namespace rtr::core {
namespace {

Graph RandomGraph(uint64_t seed, size_t n = 60) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (int extra = 0; extra < 60; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

// ---------------------------------------------------------------------------
// StampedFlags
// ---------------------------------------------------------------------------

TEST(StampedFlagsTest, SetAndTestWithinEpoch) {
  StampedFlags flags;
  flags.Reset(8);
  EXPECT_FALSE(flags.Test(3));
  flags.Set(3);
  EXPECT_TRUE(flags.Test(3));
  EXPECT_FALSE(flags.Test(4));
}

TEST(StampedFlagsTest, NewEpochInvalidatesEverything) {
  StampedFlags flags;
  flags.Reset(4);
  flags.Set(0);
  flags.Set(3);
  flags.NewEpoch();
  for (size_t i = 0; i < 4; ++i) EXPECT_FALSE(flags.Test(i));
  flags.Set(1);
  EXPECT_TRUE(flags.Test(1));
}

TEST(StampedFlagsTest, ResizeHardClears) {
  StampedFlags flags;
  flags.Reset(4);
  flags.Set(2);
  flags.Reset(8);  // growth: stamps rebuilt
  for (size_t i = 0; i < 8; ++i) EXPECT_FALSE(flags.Test(i));
}

TEST(StampedFlagsTest, EpochRolloverAtU32Wrap) {
  // A stamp written at the pre-wrap epoch must not read as set after the
  // wrap (stamp 0 / epoch 1 must keep meaning "never set").
  StampedFlags flags;
  flags.Reset(16);
  flags.ForceEpochForTest(0xffffffffu);
  flags.Set(5);
  EXPECT_TRUE(flags.Test(5));
  flags.NewEpoch();  // wraps: epoch must become 1 with all stamps cleared
  EXPECT_EQ(flags.epoch(), 1u);
  for (size_t i = 0; i < 16; ++i) EXPECT_FALSE(flags.Test(i)) << i;
  // Entries stamped with the old epoch value 0xffffffff must stay unset
  // through the next ~4 billion epochs' worth of reuse; spot-check a few.
  flags.Set(7);
  EXPECT_TRUE(flags.Test(7));
  EXPECT_FALSE(flags.Test(5));
  flags.NewEpoch();
  EXPECT_EQ(flags.epoch(), 2u);
  EXPECT_FALSE(flags.Test(7));
}

TEST(StampedFlagsTest, ResetAtWrapBoundaryAlsoClears) {
  StampedFlags flags;
  flags.Reset(4);
  flags.ForceEpochForTest(0xffffffffu);
  flags.Set(1);
  flags.Reset(4);  // same size: takes the NewEpoch path, which wraps
  EXPECT_EQ(flags.epoch(), 1u);
  EXPECT_FALSE(flags.Test(1));
}

// ---------------------------------------------------------------------------
// NodeHeap
// ---------------------------------------------------------------------------

TEST(NodeHeapTest, MaxHeapProperty) {
  NodeHeap heap;
  heap.Reset(64);
  Rng rng(11);
  std::vector<double> prio(64, 0.0);
  for (NodeId v = 0; v < 64; ++v) {
    prio[v] = rng.NextDouble();
    heap.Update(v, prio[v]);
  }
  std::vector<double> popped;
  while (!heap.empty()) {
    EXPECT_DOUBLE_EQ(heap.top_priority(), prio[heap.top()]);
    popped.push_back(heap.top_priority());
    heap.Pop();
  }
  EXPECT_EQ(popped.size(), 64u);
  EXPECT_TRUE(std::is_sorted(popped.rbegin(), popped.rend()));
}

TEST(NodeHeapTest, UpdateReKeysInPlace) {
  NodeHeap heap;
  heap.Reset(8);
  for (NodeId v = 0; v < 8; ++v) heap.Update(v, static_cast<double>(v));
  EXPECT_EQ(heap.size(), 8u);
  EXPECT_EQ(heap.top(), 7u);
  // Increase-key: node 2 overtakes everything; size must not grow
  // (one entry per node, unlike a lazy duplicate-push heap).
  heap.Update(2, 100.0);
  EXPECT_EQ(heap.size(), 8u);
  EXPECT_EQ(heap.top(), 2u);
  EXPECT_DOUBLE_EQ(heap.Priority(2), 100.0);
  // Decrease-key: node 2 drops to the bottom.
  heap.Update(2, -1.0);
  EXPECT_EQ(heap.size(), 8u);
  EXPECT_EQ(heap.top(), 7u);
  EXPECT_DOUBLE_EQ(heap.Priority(2), -1.0);
}

TEST(NodeHeapTest, RemoveArbitraryNode) {
  NodeHeap heap;
  heap.Reset(16);
  for (NodeId v = 0; v < 16; ++v) heap.Update(v, static_cast<double>(v % 7));
  EXPECT_TRUE(heap.Contains(9));
  heap.Remove(9);
  EXPECT_FALSE(heap.Contains(9));
  EXPECT_EQ(heap.size(), 15u);
  heap.Remove(9);  // no-op
  EXPECT_EQ(heap.size(), 15u);
  // Remaining pops stay sorted.
  std::vector<double> popped;
  while (!heap.empty()) {
    popped.push_back(heap.top_priority());
    heap.Pop();
  }
  EXPECT_TRUE(std::is_sorted(popped.rbegin(), popped.rend()));
}

TEST(NodeHeapTest, RandomizedAgainstReference) {
  // Drive Update/Remove/Pop randomly and cross-check the full pop order
  // against a recomputed sort of the surviving (priority, node) pairs.
  NodeHeap heap;
  const size_t n = 128;
  heap.Reset(n);
  Rng rng(23);
  std::vector<double> current(n, -1.0);  // -1 = absent
  for (int op = 0; op < 3000; ++op) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    double r = rng.NextDouble();
    if (r < 0.7) {
      double p = rng.NextDouble() * 10.0;
      heap.Update(v, p);
      current[v] = p;
    } else if (r < 0.85) {
      heap.Remove(v);
      current[v] = -1.0;
    } else if (!heap.empty()) {
      current[heap.top()] = -1.0;
      heap.Pop();
    }
  }
  std::vector<double> expected;
  for (NodeId v = 0; v < n; ++v) {
    if (current[v] >= 0.0) expected.push_back(current[v]);
  }
  std::sort(expected.rbegin(), expected.rend());
  std::vector<double> popped;
  while (!heap.empty()) {
    popped.push_back(heap.top_priority());
    heap.Pop();
  }
  ASSERT_EQ(popped.size(), expected.size());
  for (size_t i = 0; i < popped.size(); ++i) {
    EXPECT_DOUBLE_EQ(popped[i], expected[i]) << "pop " << i;
  }
}

TEST(NodeHeapTest, ResetClearsLiveEntries) {
  NodeHeap heap;
  heap.Reset(8);
  heap.Update(3, 1.0);
  heap.Update(5, 2.0);
  heap.Reset(8);  // same size: must still drop the live entries
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(3));
  EXPECT_FALSE(heap.Contains(5));
}

// ---------------------------------------------------------------------------
// QueryWorkspace reuse
// ---------------------------------------------------------------------------

TopKParams DefaultParams(TopKScheme scheme = TopKScheme::k2SBound) {
  TopKParams params;
  params.k = 5;
  params.epsilon = 0.01;
  params.scheme = scheme;
  return params;
}

void ExpectSameResult(const TopKResult& a, const TopKResult& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].node, b.entries[i].node) << i;
    // Bit-identical, not approximately equal: workspace reuse must not
    // perturb a single operation.
    EXPECT_EQ(a.entries[i].lower, b.entries[i].lower) << i;
    EXPECT_EQ(a.entries[i].upper, b.entries[i].upper) << i;
  }
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.active_nodes, b.active_nodes);
  EXPECT_EQ(a.active_arcs, b.active_arcs);
  EXPECT_EQ(a.active_node_ids, b.active_node_ids);
}

TEST(QueryWorkspaceTest, ReuseIsBitIdenticalToFreshWorkspace) {
  Graph g = RandomGraph(7);
  QueryWorkspace reused;
  TopKParams params = DefaultParams();
  for (NodeId q = 0; q < 20; ++q) {
    TopKResult warm = TopKRoundTripRank(g, {q}, params, reused).value();
    QueryWorkspace fresh;
    TopKResult cold = TopKRoundTripRank(g, {q}, params, fresh).value();
    ExpectSameResult(warm, cold);
  }
}

TEST(QueryWorkspaceTest, ReuseAcrossSchemesAndMultiNodeQueries) {
  Graph g = RandomGraph(9);
  QueryWorkspace reused;
  for (TopKScheme scheme : {TopKScheme::k2SBound, TopKScheme::kGupta,
                            TopKScheme::kSarkar, TopKScheme::kGPlusS}) {
    TopKParams params = DefaultParams(scheme);
    TopKResult warm = TopKRoundTripRank(g, {3, 11}, params, reused).value();
    TopKResult cold = TopKRoundTripRank(g, {3, 11}, params).value();
    ExpectSameResult(warm, cold);
  }
}

TEST(QueryWorkspaceTest, ReuseAcrossGraphSizes) {
  // Shrinking and growing the graph between queries must re-size cleanly.
  Graph small = RandomGraph(3, 30);
  Graph large = RandomGraph(4, 90);
  QueryWorkspace ws;
  TopKParams params = DefaultParams();
  for (int round = 0; round < 3; ++round) {
    TopKResult a = TopKRoundTripRank(small, {1}, params, ws).value();
    ExpectSameResult(a, TopKRoundTripRank(small, {1}, params).value());
    TopKResult b = TopKRoundTripRank(large, {1}, params, ws).value();
    ExpectSameResult(b, TopKRoundTripRank(large, {1}, params).value());
  }
}

TEST(QueryWorkspaceTest, ResultBufferReuseMatchesValueApi) {
  Graph g = RandomGraph(5);
  QueryWorkspace ws;
  TopKResult reused_result;
  TopKParams params = DefaultParams();
  for (NodeId q = 0; q < 12; ++q) {
    ASSERT_TRUE(TopKRoundTripRank(g, {q}, params, ws, &reused_result).ok());
    TopKResult fresh = TopKRoundTripRank(g, {q}, params).value();
    ExpectSameResult(reused_result, fresh);
  }
}

TEST(QueryWorkspaceTest, NaiveSchemeThroughWorkspace) {
  Graph g = RandomGraph(6);
  QueryWorkspace ws;
  TopKParams params = DefaultParams(TopKScheme::kNaive);
  // Twice through the same workspace: the exact buffers must reset fully.
  TopKResult first = TopKRoundTripRank(g, {2}, params, ws).value();
  TopKResult second = TopKRoundTripRank(g, {2}, params, ws).value();
  ExpectSameResult(first, second);
  ExpectSameResult(first, TopKRoundTripRank(g, {2}, params).value());
}

TEST(QueryWorkspaceTest, TeleportCarryIsBitIdenticalOnRepeatedQuery) {
  // Back-to-back runs of the same (query, alpha) take the carry path (the
  // teleport vector survives the reset); scores must not move by one bit.
  Graph g = RandomGraph(11);
  QueryWorkspace reused;
  TopKParams params = DefaultParams();
  TopKResult first = TopKRoundTripRank(g, {7}, params, reused).value();
  for (int repeat = 0; repeat < 4; ++repeat) {
    TopKResult again = TopKRoundTripRank(g, {7}, params, reused).value();
    ExpectSameResult(first, again);
  }
  QueryWorkspace fresh;
  ExpectSameResult(first, TopKRoundTripRank(g, {7}, params, fresh).value());
}

TEST(QueryWorkspaceTest, TeleportCarryInvalidatedOnQueryOrAlphaChange) {
  Graph g = RandomGraph(12);
  QueryWorkspace ws;
  TopKParams params = DefaultParams();
  TopKResult a = TopKRoundTripRank(g, {3}, params, ws).value();
  // Different query node: node 3's teleport mass must be gone.
  TopKResult b = TopKRoundTripRank(g, {4}, params, ws).value();
  ExpectSameResult(b, TopKRoundTripRank(g, {4}, params).value());
  // Different alpha on the original node.
  TopKParams other_alpha = params;
  other_alpha.alpha = 0.5;
  TopKResult c = TopKRoundTripRank(g, {3}, other_alpha, ws).value();
  ExpectSameResult(c, TopKRoundTripRank(g, {3}, other_alpha).value());
  // Back to the original (query, alpha): still matches a fresh run.
  ExpectSameResult(a, TopKRoundTripRank(g, {3}, params, ws).value());
}

TEST(QueryWorkspaceTest, CarryKeepsAndClearsTeleportEntries) {
  QueryWorkspace ws;
  Query query = {2, 5};
  ws.BeginQuery(10, query, 0.25);
  ws.Teleport(query, 0.25);
  EXPECT_DOUBLE_EQ(ws.teleport[2], 0.125);
  EXPECT_DOUBLE_EQ(ws.teleport[5], 0.125);
  // Carry: the vector survives, and Teleport() must NOT rebuild on top of
  // it (the entries would double).
  ws.BeginQuery(10, query, 0.25);
  EXPECT_DOUBLE_EQ(ws.teleport[2], 0.125);
  ws.Teleport(query, 0.25);
  EXPECT_DOUBLE_EQ(ws.teleport[2], 0.125);
  EXPECT_DOUBLE_EQ(ws.teleport[5], 0.125);
  // Non-carry (different query): kept entries are cleared by the reset.
  Query other = {3};
  ws.BeginQuery(10, other, 0.25);
  EXPECT_DOUBLE_EQ(ws.teleport[2], 0.0);
  EXPECT_DOUBLE_EQ(ws.teleport[5], 0.0);
  // The query-blind overload also drops carry state: a subsequent
  // carry-aware reset of {3} must rebuild rather than trust stale entries.
  ws.Teleport(other, 0.25);
  ws.BeginQuery(10);
  EXPECT_DOUBLE_EQ(ws.teleport[3], 0.0);
  ws.BeginQuery(10, other, 0.25);
  ws.Teleport(other, 0.25);
  EXPECT_DOUBLE_EQ(ws.teleport[3], 0.25);
}

TEST(QueryWorkspaceTest, BcaReuseMatchesFreshWorkspace) {
  Graph g = RandomGraph(8);
  QueryWorkspace ws;
  for (NodeId q : {0u, 5u, 9u, 5u}) {  // includes a repeated query
    ws.BeginQuery(g.num_nodes());
    Bca warm(g, {q}, 0.25, &ws);
    Bca cold(g, {q}, 0.25);
    for (int round = 0; round < 30; ++round) {
      int a = warm.ProcessBest(4);
      int b = cold.ProcessBest(4);
      ASSERT_EQ(a, b);
      if (a == 0) break;
    }
    ASSERT_EQ(warm.seen().size(), cold.seen().size());
    for (size_t i = 0; i < warm.seen().size(); ++i) {
      EXPECT_EQ(warm.seen()[i], cold.seen()[i]);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(warm.rho()[v], cold.rho()[v]) << "node " << v;
      EXPECT_EQ(warm.mu()[v], cold.mu()[v]) << "node " << v;
    }
    EXPECT_EQ(warm.MaxResidual(), cold.MaxResidual());
  }
}

}  // namespace
}  // namespace rtr::core
