#include "core/twosbound.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "util/random.h"

namespace rtr::core {
namespace {

Graph RandomGraph(uint64_t seed, size_t n = 60) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (int extra = 0; extra < 80; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

TEST(ExactRoundTripRankScoresTest, ProductOfFAndT) {
  Graph g = RandomGraph(1);
  std::vector<double> scores = ExactRoundTripRankScores(g, {0});
  // Query has the highest self-proximity in this connected graph.
  NodeId best = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (scores[v] > scores[best]) best = v;
  }
  EXPECT_EQ(best, 0u);
}

TEST(TopKRoundTripRankTest, RejectsBadArguments) {
  Graph g = RandomGraph(2);
  TopKParams params;
  params.k = 0;
  EXPECT_FALSE(TopKRoundTripRank(g, {0}, params).ok());
  params = {};
  params.epsilon = -1.0;
  EXPECT_FALSE(TopKRoundTripRank(g, {0}, params).ok());
  params = {};
  EXPECT_FALSE(TopKRoundTripRank(g, {}, params).ok());
  EXPECT_FALSE(TopKRoundTripRank(g, {999999}, params).ok());
  params.alpha = 1.5;
  EXPECT_FALSE(TopKRoundTripRank(g, {0}, params).ok());
}

TEST(TopKRoundTripRankTest, NaiveMatchesExactScores) {
  Graph g = RandomGraph(3);
  TopKParams params;
  params.k = 5;
  params.scheme = TopKScheme::kNaive;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  ASSERT_EQ(result.entries.size(), 5u);
  std::vector<double> exact = ExactRoundTripRankScores(g, {0});
  // Entries are the exact top-5, in order.
  for (size_t i = 0; i < result.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.entries[i].lower, exact[result.entries[i].node]);
  }
  for (size_t i = 0; i + 1 < result.entries.size(); ++i) {
    EXPECT_GE(result.entries[i].lower, result.entries[i + 1].lower);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool in_result = false;
    for (const TopKEntry& e : result.entries) in_result |= (e.node == v);
    if (!in_result) {
      EXPECT_LE(exact[v], result.entries.back().lower + 1e-15);
    }
  }
}

// Epsilon-approximation contract (Sect. V-A1), checked across schemes and
// seeds: no returned node's true score may be beaten by an omitted node by
// more than epsilon, and adjacent returned nodes may only be swapped if
// their true scores differ by less than epsilon.
struct SchemeCase {
  TopKScheme scheme;
  uint64_t seed;
};

class TopKApproximation : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(TopKApproximation, EpsilonContractHolds) {
  const SchemeCase test_case = GetParam();
  Graph g = RandomGraph(test_case.seed);
  TopKParams params;
  params.k = 8;
  params.epsilon = 0.002;
  params.m_f = 10;
  params.m_t = 2;
  params.scheme = test_case.scheme;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.entries.size(), 8u);

  std::vector<double> exact = ExactRoundTripRankScores(g, {0});
  std::set<NodeId> returned;
  for (const TopKEntry& e : result.entries) returned.insert(e.node);
  // (a) No omitted node beats the K-th returned node by >= epsilon.
  double kth = exact[result.entries.back().node];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!returned.count(v)) {
      EXPECT_LT(exact[v], kth + params.epsilon) << "node " << v;
    }
  }
  // (b) Adjacent pairs are not badly swapped.
  for (size_t i = 0; i + 1 < result.entries.size(); ++i) {
    EXPECT_GT(exact[result.entries[i].node],
              exact[result.entries[i + 1].node] - params.epsilon);
  }
  // (c) Bounds returned must bracket the exact values.
  for (const TopKEntry& e : result.entries) {
    EXPECT_LE(e.lower, exact[e.node] + 1e-9);
    EXPECT_GE(e.upper, exact[e.node] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, TopKApproximation,
    ::testing::Values(SchemeCase{TopKScheme::k2SBound, 101},
                      SchemeCase{TopKScheme::k2SBound, 102},
                      SchemeCase{TopKScheme::k2SBound, 103},
                      SchemeCase{TopKScheme::kGupta, 104},
                      SchemeCase{TopKScheme::kGupta, 105},
                      SchemeCase{TopKScheme::kSarkar, 106},
                      SchemeCase{TopKScheme::kSarkar, 107},
                      SchemeCase{TopKScheme::kGPlusS, 108},
                      SchemeCase{TopKScheme::kGPlusS, 109}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string name = TopKSchemeName(info.param.scheme);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name + "_" + std::to_string(info.param.seed);
    });

TEST(TopKRoundTripRankTest, TinyEpsilonRecoversExactTopK) {
  Graph g = RandomGraph(7, 30);
  TopKParams params;
  params.k = 5;
  params.epsilon = 1e-4;
  params.m_f = 8;
  params.m_t = 2;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  std::vector<double> exact = ExactRoundTripRankScores(g, {0});
  std::vector<NodeId> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (exact[a] != exact[b]) return exact[a] > exact[b];
    return a < b;
  });
  ASSERT_EQ(result.entries.size(), 5u);
  // With well-separated scores the approximate top-K set equals the exact
  // one (ordering within epsilon-ties may differ).
  std::set<NodeId> expected(ids.begin(), ids.begin() + 5);
  for (const TopKEntry& e : result.entries) {
    EXPECT_TRUE(expected.count(e.node)) << "unexpected node " << e.node;
  }
}

TEST(TopKRoundTripRankTest, QueryRanksFirst) {
  Graph g = RandomGraph(8);
  TopKParams params;
  params.k = 3;
  TopKResult result = TopKRoundTripRank(g, {5}, params).value();
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries[0].node, 5u);
}

TEST(TopKRoundTripRankTest, ActiveSetSmallerThanGraph) {
  Graph g = RandomGraph(9, 400);
  TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  EXPECT_GT(result.active_nodes, 0u);
  EXPECT_LE(result.active_nodes, g.num_nodes());
  EXPECT_GT(result.active_set_bytes, 0u);
  // The naive scheme's active set is the whole graph — strictly bigger.
  params.scheme = TopKScheme::kNaive;
  TopKResult naive = TopKRoundTripRank(g, {0}, params).value();
  EXPECT_EQ(naive.active_nodes, g.num_nodes());
  EXPECT_LE(result.active_set_bytes, naive.active_set_bytes);
}

TEST(TopKRoundTripRankTest, LargerEpsilonConvergesNoSlower) {
  Graph g = RandomGraph(10, 200);
  TopKParams tight;
  tight.k = 10;
  tight.epsilon = 1e-4;
  tight.m_f = 10;
  tight.m_t = 2;
  TopKParams loose = tight;
  loose.epsilon = 0.02;
  TopKResult tight_result = TopKRoundTripRank(g, {0}, tight).value();
  TopKResult loose_result = TopKRoundTripRank(g, {0}, loose).value();
  EXPECT_LE(loose_result.rounds, tight_result.rounds);
}

TEST(TopKRoundTripRankTest, DisconnectedTargetNeverReturnedAboveZero) {
  GraphBuilder b;
  b.AddNodes(6);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  b.AddUndirectedEdge(3, 4, 1.0);  // separate component
  b.AddUndirectedEdge(4, 5, 1.0);
  Graph g = b.Build().value();
  TopKParams params;
  params.k = 6;
  params.epsilon = 1e-6;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  for (const TopKEntry& e : result.entries) {
    if (e.node >= 3) {
      EXPECT_EQ(e.lower, 0.0);
    }
  }
}

TEST(TopKRoundTripRankTest, MultiNodeQuerySupported) {
  Graph g = RandomGraph(11);
  TopKParams params;
  params.k = 5;
  params.epsilon = 1e-3;
  TopKResult result = TopKRoundTripRank(g, {0, 1}, params).value();
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.entries.size(), 5u);
  std::vector<double> exact = ExactRoundTripRankScores(g, {0, 1});
  for (const TopKEntry& e : result.entries) {
    EXPECT_LE(e.lower, exact[e.node] + 1e-9);
    EXPECT_GE(e.upper, exact[e.node] - 1e-9);
  }
}

TEST(TopKSchemeNameTest, AllNamed) {
  EXPECT_STREQ(TopKSchemeName(TopKScheme::k2SBound), "2SBound");
  EXPECT_STREQ(TopKSchemeName(TopKScheme::kGupta), "Gupta");
  EXPECT_STREQ(TopKSchemeName(TopKScheme::kSarkar), "Sarkar");
  EXPECT_STREQ(TopKSchemeName(TopKScheme::kGPlusS), "G+S");
  EXPECT_STREQ(TopKSchemeName(TopKScheme::kNaive), "Naive");
}

}  // namespace
}  // namespace rtr::core
