#include "core/round_trip_rank.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/scc.h"
#include "ranking/combinators.h"
#include "util/random.h"

namespace rtr::core {
namespace {

using ranking::FTScorer;
using ranking::FTVectors;

// The toy bibliographic graph of Fig. 2.
struct ToyGraph {
  Graph graph;
  NodeId t1, t2;
  NodeId p[7];
  NodeId v1, v2, v3;
};

ToyGraph MakeToyGraph() {
  GraphBuilder b;
  ToyGraph toy;
  toy.t1 = b.AddNode();
  toy.t2 = b.AddNode();
  for (auto& pid : toy.p) pid = b.AddNode();
  toy.v1 = b.AddNode();
  toy.v2 = b.AddNode();
  toy.v3 = b.AddNode();
  for (int i = 0; i < 5; ++i) b.AddUndirectedEdge(toy.t1, toy.p[i], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[5], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[6], 1.0);
  b.AddUndirectedEdge(toy.p[0], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[1], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[5], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[6], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[2], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[3], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[4], toy.v3, 1.0);
  toy.graph = b.Build().value();
  return toy;
}

std::vector<NodeId> Ordering(const std::vector<double>& scores) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return ids;
}

// ------------------------------------------------------------------
// Fig. 4: the paper's fully worked example with constant L = L' = 2.
// ------------------------------------------------------------------

TEST(ConstantLengthRoundTripTest, ReproducesFig4Exactly) {
  ToyGraph toy = MakeToyGraph();
  std::vector<double> scores =
      ConstantLengthRoundTripScores(toy.graph, toy.t1, 2, 2);
  EXPECT_NEAR(scores[toy.v1], 0.05, 1e-12);  // 4 trips x 0.0125
  EXPECT_NEAR(scores[toy.v2], 0.10, 1e-12);  // 4 trips x 0.025
  EXPECT_NEAR(scores[toy.v3], 0.05, 1e-12);  // 1 trip  x 0.05
  EXPECT_NEAR(scores[toy.t1], 0.25, 1e-12);  // 25 trips x 0.01
  // Every other node has no length-2 round trip through it.
  for (NodeId pid : toy.p) EXPECT_EQ(scores[pid], 0.0);
  EXPECT_EQ(scores[toy.t2], 0.0);
}

TEST(ConstantLengthRoundTripTest, Fig4RankingFavorsBalancedVenue) {
  // v2 (important AND specific) beats v1 (important only) and v3
  // (specific only) — the paper's headline intuition.
  ToyGraph toy = MakeToyGraph();
  std::vector<double> scores =
      ConstantLengthRoundTripScores(toy.graph, toy.t1, 2, 2);
  EXPECT_GT(scores[toy.v2], scores[toy.v1]);
  EXPECT_GT(scores[toy.v2], scores[toy.v3]);
}

TEST(ConstantLengthRoundTripTest, ZeroStepsDegenerate) {
  ToyGraph toy = MakeToyGraph();
  std::vector<double> scores =
      ConstantLengthRoundTripScores(toy.graph, toy.t1, 0, 0);
  EXPECT_DOUBLE_EQ(scores[toy.t1], 1.0);
  for (NodeId v = 0; v < toy.graph.num_nodes(); ++v) {
    if (v != toy.t1) EXPECT_EQ(scores[v], 0.0);
  }
}

// ------------------------------------------------------------------
// Proposition 2: r(q, v) ∝ f(q, v) t(q, v), validated against direct
// Monte-Carlo simulation of Definition 2.
// ------------------------------------------------------------------

TEST(RoundTripRankTest, DecompositionMatchesSimulation) {
  ToyGraph toy = MakeToyGraph();
  RoundTripSimParams sim;
  sim.alpha = 0.25;
  sim.num_trips = 400000;
  std::vector<double> simulated =
      SimulateRoundTripRank(toy.graph, toy.t1, sim);

  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(toy.graph, {toy.t1}, params);
  std::vector<double> t = ranking::TRank(toy.graph, {toy.t1}, params);
  double total = 0.0;
  for (size_t v = 0; v < f.size(); ++v) total += f[v] * t[v];
  ASSERT_GT(total, 0.0);
  for (NodeId v = 0; v < toy.graph.num_nodes(); ++v) {
    EXPECT_NEAR(simulated[v], f[v] * t[v] / total, 0.01)
        << "node " << v;
  }
}

TEST(RoundTripRankTest, MeasureEqualsFTimesT) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto rtr = MakeRoundTripRankMeasure(scorer);
  EXPECT_EQ(rtr->name(), "RoundTripRank");
  std::vector<double> scores = rtr->Score({toy.t1});
  const FTVectors& ft = scorer->Compute({toy.t1});
  for (size_t v = 0; v < scores.size(); ++v) {
    EXPECT_DOUBLE_EQ(scores[v], ft.f[v] * ft.t[v]);
  }
}

TEST(RoundTripRankTest, ToyGraphVenueOrdering) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto rtr = MakeRoundTripRankMeasure(scorer);
  std::vector<double> scores = rtr->Score({toy.t1});
  EXPECT_GT(scores[toy.v2], scores[toy.v1]);
  EXPECT_GT(scores[toy.v2], scores[toy.v3]);
}

TEST(RoundTripRankTest, SelfProximityIsHighest) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto rtr = MakeRoundTripRankMeasure(scorer);
  std::vector<double> scores = rtr->Score({toy.t1});
  EXPECT_EQ(Ordering(scores)[0], toy.t1);
}

TEST(RoundTripRankTest, ZeroWithoutReturnPath) {
  // The Sect. III-B caveat, and its resolution via MakeIrreducible.
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  Graph chain = b.Build().value();
  auto scorer = std::make_shared<FTScorer>(chain);
  auto rtr = MakeRoundTripRankMeasure(scorer);
  std::vector<double> scores = rtr->Score({0});
  EXPECT_EQ(scores[2], 0.0);

  Graph fixed = MakeIrreducible(chain, 1e-3).value();
  auto fixed_scorer = std::make_shared<FTScorer>(fixed);
  auto fixed_rtr = MakeRoundTripRankMeasure(fixed_scorer);
  std::vector<double> fixed_scores = fixed_rtr->Score({0});
  EXPECT_GT(fixed_scores[2], 0.0);
}

// ------------------------------------------------------------------
// RoundTripRank+ (Definition 3 / Eq. 12).
// ------------------------------------------------------------------

TEST(RoundTripRankPlusTest, BetaZeroIsFRankRanking) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto plus = MakeRoundTripRankPlusMeasure(scorer, 0.0);
  auto f = ranking::MakeFRankMeasure(scorer);
  EXPECT_EQ(Ordering(plus->Score({toy.t1})), Ordering(f->Score({toy.t1})));
}

TEST(RoundTripRankPlusTest, BetaOneIsTRankRanking) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto plus = MakeRoundTripRankPlusMeasure(scorer, 1.0);
  auto t = ranking::MakeTRankMeasure(scorer);
  EXPECT_EQ(Ordering(plus->Score({toy.t1})), Ordering(t->Score({toy.t1})));
}

TEST(RoundTripRankPlusTest, BetaHalfMatchesRoundTripRankRanking) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  auto plus = MakeRoundTripRankPlusMeasure(scorer, 0.5);
  auto rtr = MakeRoundTripRankMeasure(scorer);
  EXPECT_EQ(Ordering(plus->Score({toy.t1})), Ordering(rtr->Score({toy.t1})));
}

// Property over the beta grid: if node a dominates node b in both senses,
// every trade-off ranks a above b.
class RtrPlusBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(RtrPlusBetaSweep, DominancePreservedForAnyBeta) {
  double beta = GetParam();
  Rng rng(977 + static_cast<uint64_t>(beta * 100));
  // Random connected-ish undirected graph.
  GraphBuilder b;
  const size_t n = 30;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        1.0 + rng.NextDouble());
  }
  for (int extra = 0; extra < 25; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddUndirectedEdge(u, v, 1.0 + rng.NextDouble());
  }
  Graph g = b.Build().value();
  auto scorer = std::make_shared<FTScorer>(g);
  NodeId q = 0;
  const FTVectors& ft = scorer->Compute({q});
  auto plus = MakeRoundTripRankPlusMeasure(scorer, beta);
  std::vector<double> scores = plus->Score({q});
  int dominated_pairs = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId v = 0; v < n; ++v) {
      if (ft.f[a] > ft.f[v] && ft.t[a] > ft.t[v] && ft.f[v] > 0 &&
          ft.t[v] > 0) {
        ++dominated_pairs;
        EXPECT_GT(scores[a], scores[v])
            << "beta=" << beta << " a=" << a << " v=" << v;
      }
    }
  }
  EXPECT_GT(dominated_pairs, 0);
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, RtrPlusBetaSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9, 1.0));

// The specificity bias does what its name says: increasing beta can only
// improve the rank of the more specific of two nodes.
TEST(RoundTripRankPlusTest, LargerBetaFavorsSpecificNode) {
  ToyGraph toy = MakeToyGraph();
  auto scorer = std::make_shared<FTScorer>(toy.graph);
  // v3 is more specific than v1 (t higher), v1 more important (f higher).
  const FTVectors& ft = scorer->Compute({toy.t1});
  ASSERT_GT(ft.f[toy.v1], ft.f[toy.v3]);
  ASSERT_GT(ft.t[toy.v3], ft.t[toy.v1]);
  auto low = MakeRoundTripRankPlusMeasure(scorer, 0.1);
  auto high = MakeRoundTripRankPlusMeasure(scorer, 0.9);
  std::vector<double> lo = low->Score({toy.t1});
  std::vector<double> hi = high->Score({toy.t1});
  EXPECT_GT(lo[toy.v1], lo[toy.v3]);  // importance bias prefers v1
  EXPECT_GT(hi[toy.v3], hi[toy.v1]);  // specificity bias prefers v3
}

TEST(SimulateRoundTripRankTest, DistributionSumsToOne) {
  ToyGraph toy = MakeToyGraph();
  RoundTripSimParams sim;
  sim.num_trips = 20000;
  std::vector<double> dist = SimulateRoundTripRank(toy.graph, toy.t1, sim);
  double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimulateRoundTripRankTest, DeterministicUnderSeed) {
  ToyGraph toy = MakeToyGraph();
  RoundTripSimParams sim;
  sim.num_trips = 5000;
  EXPECT_EQ(SimulateRoundTripRank(toy.graph, toy.t1, sim),
            SimulateRoundTripRank(toy.graph, toy.t1, sim));
}

}  // namespace
}  // namespace rtr::core
