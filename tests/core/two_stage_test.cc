#include "core/two_stage.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "ranking/pagerank.h"
#include "util/random.h"

namespace rtr::core {
namespace {

Graph RandomGraph(uint64_t seed, size_t n = 50) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (int extra = 0; extra < 60; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

// Parameterized over random seeds: the sandwich property must hold at every
// expansion stage on arbitrary graphs.
class BounderSandwich : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BounderSandwich, FRankBoundsSandwichTruth) {
  Graph g = RandomGraph(GetParam());
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {0}, params);

  FBounderOptions options;
  options.pick_per_expansion = 3;
  FRankBounder bounder(g, {0}, options);
  for (int round = 0; round < 40; ++round) {
    if (!bounder.ExpandAndRefine()) break;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(bounder.Lower(v), f[v] + 1e-10)
          << "round " << round << " node " << v;
      EXPECT_GE(bounder.Upper(v), f[v] - 1e-10)
          << "round " << round << " node " << v;
    }
  }
}

TEST_P(BounderSandwich, TRankBoundsSandwichTruth) {
  Graph g = RandomGraph(GetParam() + 1000);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> t = ranking::TRank(g, {0}, params);

  TBounderOptions options;
  options.pick_per_expansion = 2;
  TRankBounder bounder(g, {0}, options);
  for (int round = 0; round < 60; ++round) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(bounder.Lower(v), t[v] + 1e-10)
          << "round " << round << " node " << v;
      EXPECT_GE(bounder.Upper(v), t[v] - 1e-10)
          << "round " << round << " node " << v;
    }
    if (!bounder.ExpandAndRefine()) break;
  }
}

TEST_P(BounderSandwich, GuptaSchemeBoundsAlsoValid) {
  Graph g = RandomGraph(GetParam() + 2000);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {1}, params);

  FBounderOptions options;
  options.pick_per_expansion = 3;
  options.paper_unseen_bound = false;
  options.stage2 = false;
  FRankBounder bounder(g, {1}, options);
  for (int round = 0; round < 40; ++round) {
    if (!bounder.ExpandAndRefine()) break;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(bounder.Lower(v), f[v] + 1e-10);
      EXPECT_GE(bounder.Upper(v), f[v] - 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BounderSandwich,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(FRankBounderTest, BoundsTightenMonotonically) {
  Graph g = RandomGraph(7);
  FBounderOptions options;
  options.pick_per_expansion = 4;
  FRankBounder bounder(g, {0}, options);
  std::vector<double> prev_lower(g.num_nodes(), 0.0);
  std::vector<double> prev_upper(g.num_nodes(), 1.0);
  for (int round = 0; round < 30; ++round) {
    if (!bounder.ExpandAndRefine()) break;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_GE(bounder.Lower(v), prev_lower[v] - 1e-14);
      EXPECT_LE(bounder.Upper(v), prev_upper[v] + 1e-14);
      prev_lower[v] = bounder.Lower(v);
      prev_upper[v] = bounder.Upper(v);
    }
  }
}

TEST(FRankBounderTest, ExhaustionMakesBoundsExact) {
  Graph g = RandomGraph(8, 20);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {0}, params);
  FBounderOptions options;
  options.pick_per_expansion = 50;
  FRankBounder bounder(g, {0}, options);
  for (int round = 0; round < 5000 && bounder.ExpandAndRefine(); ++round) {
  }
  EXPECT_TRUE(bounder.exhausted());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(bounder.Lower(v), f[v], 1e-8);
    EXPECT_NEAR(bounder.Upper(v), f[v], 1e-8);
  }
}

TEST(FRankBounderTest, Stage2TightensBounds) {
  // With identical expansion counts, Stage II bounds must be at least as
  // tight as Stage-I-only bounds.
  Graph g = RandomGraph(9);
  FBounderOptions with_stage2;
  with_stage2.pick_per_expansion = 3;
  FBounderOptions without_stage2 = with_stage2;
  without_stage2.stage2 = false;
  FRankBounder refined(g, {0}, with_stage2);
  FRankBounder unrefined(g, {0}, without_stage2);
  for (int round = 0; round < 10; ++round) {
    bool a = refined.ExpandAndRefine();
    bool b = unrefined.ExpandAndRefine();
    ASSERT_EQ(a, b);
    if (!a) break;
  }
  double refined_gap = 0.0, unrefined_gap = 0.0;
  for (NodeId v : refined.seen()) {
    refined_gap += refined.Upper(v) - refined.Lower(v);
    unrefined_gap += unrefined.Upper(v) - unrefined.Lower(v);
  }
  EXPECT_LE(refined_gap, unrefined_gap + 1e-12);
  EXPECT_LT(refined_gap, unrefined_gap);
}

TEST(TRankBounderTest, InitialStateMatchesPaper) {
  Graph g = RandomGraph(10);
  TBounderOptions options;
  TRankBounder bounder(g, {0}, options);
  // t-lower(q) = alpha, t-upper(q) = 1, unseen <= 1 - alpha (Eq. 22 may
  // already refine it further in construction).
  EXPECT_DOUBLE_EQ(bounder.Lower(0), 0.25);
  EXPECT_LE(bounder.UnseenUpper(), 0.75 + 1e-15);
  EXPECT_EQ(bounder.seen().size(), 1u);
}

TEST(TRankBounderTest, ClosesOnReachableSet) {
  // Directed chain 0 <- 1 <- 2: from 2 and 1 the walk reaches 0; expanding
  // S_t from q=0 pulls in 1, then 2, then closes.
  GraphBuilder b;
  b.AddNodes(4);
  b.AddDirectedEdge(1, 0, 1.0);
  b.AddDirectedEdge(2, 1, 1.0);
  // node 3 cannot reach 0.
  b.AddDirectedEdge(0, 3, 1.0);
  Graph g = b.Build().value();
  TBounderOptions options;
  TRankBounder bounder(g, {0}, options);
  int rounds = 0;
  while (bounder.ExpandAndRefine() && rounds < 100) ++rounds;
  EXPECT_TRUE(bounder.closed());
  EXPECT_EQ(bounder.UnseenUpper(), 0.0);
  EXPECT_TRUE(bounder.IsSeen(1));
  EXPECT_TRUE(bounder.IsSeen(2));
  EXPECT_FALSE(bounder.IsSeen(3));
  // Exact values: t(0,0)=0.25; t(0,1)=0.75*0.25; t(0,2)=0.75^2*0.25.
  EXPECT_NEAR(bounder.Lower(1), 0.75 * 0.25, 1e-9);
  EXPECT_NEAR(bounder.Upper(1), 0.75 * 0.25, 1e-9);
  EXPECT_NEAR(bounder.Lower(2), 0.75 * 0.75 * 0.25, 1e-9);
}

TEST(TRankBounderTest, UnseenUpperNonIncreasing) {
  Graph g = RandomGraph(12);
  TBounderOptions options;
  TRankBounder bounder(g, {0}, options);
  double prev = bounder.UnseenUpper();
  for (int round = 0; round < 50; ++round) {
    if (!bounder.ExpandAndRefine()) break;
    EXPECT_LE(bounder.UnseenUpper(), prev + 1e-15);
    prev = bounder.UnseenUpper();
  }
}

TEST(TRankBounderTest, FixpointTighterThanSingleSweep) {
  Graph g = RandomGraph(13);
  TBounderOptions fixpoint;
  TBounderOptions single = fixpoint;
  single.stage2_fixpoint = false;
  TRankBounder a(g, {0}, fixpoint);
  TRankBounder b(g, {0}, single);
  for (int round = 0; round < 8; ++round) {
    bool pa = a.ExpandAndRefine();
    bool pb = b.ExpandAndRefine();
    if (!pa || !pb) break;
  }
  double gap_fix = 0.0, gap_single = 0.0;
  for (NodeId v : a.seen()) gap_fix += a.Upper(v) - a.Lower(v);
  for (NodeId v : b.seen()) gap_single += b.Upper(v) - b.Lower(v);
  EXPECT_LT(gap_fix, gap_single);
}

TEST(TRankBounderTest, BorderFlagConsistent) {
  Graph g = RandomGraph(14);
  TBounderOptions options;
  TRankBounder bounder(g, {0}, options);
  for (int round = 0; round < 10; ++round) {
    if (!bounder.ExpandAndRefine()) break;
    for (NodeId v : bounder.seen()) {
      bool has_outside_in = false;
      for (NodeId source : g.in_sources(v)) {
        if (!bounder.IsSeen(source)) has_outside_in = true;
      }
      EXPECT_EQ(bounder.IsBorder(v), has_outside_in) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace rtr::core
