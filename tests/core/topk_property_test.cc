// Property tests of the 2SBound engine across parameter configurations:
// the epsilon contract must hold regardless of expansion granularity, alpha
// or query multiplicity, and the returned bounds must always bracket the
// exact values.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "graph/builder.h"
#include "util/random.h"

namespace rtr::core {
namespace {

Graph RandomGraph(uint64_t seed, size_t n = 80) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (int extra = 0; extra < 120; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

struct Config {
  int m_f;
  int m_t;
  double alpha;
  int query_size;
  std::string label;
};

class TopKConfigSweep : public ::testing::TestWithParam<Config> {};

TEST_P(TopKConfigSweep, EpsilonContractAndBracketing) {
  const Config& config = GetParam();
  Graph g = RandomGraph(314);
  Query query;
  for (int i = 0; i < config.query_size; ++i) {
    query.push_back(static_cast<NodeId>(i * 7));
  }
  TopKParams params;
  params.k = 6;
  params.epsilon = 0.003;
  params.m_f = config.m_f;
  params.m_t = config.m_t;
  params.alpha = config.alpha;
  TopKResult result = TopKRoundTripRank(g, query, params).value();
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.entries.size(), 6u);

  std::vector<double> exact =
      ExactRoundTripRankScores(g, query, config.alpha);
  std::set<NodeId> returned;
  for (const TopKEntry& entry : result.entries) {
    returned.insert(entry.node);
    EXPECT_LE(entry.lower, exact[entry.node] + 1e-9);
    EXPECT_GE(entry.upper, exact[entry.node] - 1e-9);
  }
  double kth = exact[result.entries.back().node];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!returned.count(v)) {
      EXPECT_LT(exact[v], kth + params.epsilon) << "node " << v;
    }
  }
  for (size_t i = 0; i + 1 < result.entries.size(); ++i) {
    EXPECT_GT(exact[result.entries[i].node],
              exact[result.entries[i + 1].node] - params.epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TopKConfigSweep,
    ::testing::Values(Config{1, 1, 0.25, 1, "tiny_granularity"},
                      Config{100, 5, 0.25, 1, "paper_defaults"},
                      Config{500, 50, 0.25, 1, "coarse_granularity"},
                      Config{20, 3, 0.1, 1, "low_alpha"},
                      Config{20, 3, 0.5, 1, "high_alpha"},
                      Config{50, 5, 0.25, 2, "two_node_query"},
                      Config{50, 5, 0.25, 4, "four_node_query"}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.label;
    });

TEST(TopKStressTest, ManyQueriesOnOneGraphAllSatisfyContract) {
  Graph g = RandomGraph(2718, 150);
  TopKParams params;
  params.k = 5;
  params.epsilon = 0.005;
  for (NodeId q = 0; q < 30; ++q) {
    TopKResult result = TopKRoundTripRank(g, {q}, params).value();
    ASSERT_TRUE(result.converged) << "query " << q;
    std::vector<double> exact = ExactRoundTripRankScores(g, {q});
    std::set<NodeId> returned;
    for (const TopKEntry& entry : result.entries) returned.insert(entry.node);
    double kth = exact[result.entries.back().node];
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!returned.count(v)) {
        ASSERT_LT(exact[v], kth + params.epsilon)
            << "query " << q << " node " << v;
      }
    }
  }
}

TEST(TopKStressTest, DirectedAcyclicFragmentHandled) {
  // Mostly one-way structure: many nodes cannot complete round trips; the
  // engine must converge and only return nodes with r > 0 at the top.
  GraphBuilder b;
  b.AddNodes(40);
  for (NodeId v = 0; v + 1 < 40; ++v) b.AddDirectedEdge(v, v + 1, 1.0);
  b.AddDirectedEdge(5, 0, 1.0);  // small cycle at the head
  Graph g = b.Build().value();
  TopKParams params;
  params.k = 8;
  params.epsilon = 1e-5;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  ASSERT_TRUE(result.converged);
  std::vector<double> exact = ExactRoundTripRankScores(g, {0});
  // The cycle nodes 0..5 are the only ones with positive RoundTripRank.
  for (size_t i = 0; i < result.entries.size() && i < 6; ++i) {
    EXPECT_GT(exact[result.entries[i].node], 0.0);
    EXPECT_LE(result.entries[i].node, 5u);
  }
}

TEST(TopKStressTest, KLargerThanPositiveSupport) {
  GraphBuilder b;
  b.AddNodes(6);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 0, 1.0);
  // nodes 2..5 disconnected
  Graph g = b.Build().value();
  TopKParams params;
  params.k = 5;
  params.epsilon = 1e-6;
  TopKResult result = TopKRoundTripRank(g, {0}, params).value();
  ASSERT_GE(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].node, 0u);
  EXPECT_EQ(result.entries[1].node, 1u);
}

}  // namespace
}  // namespace rtr::core
