#include "core/bca.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "ranking/pagerank.h"
#include "util/random.h"

namespace rtr::core {
namespace {

Graph ToyGraph() {
  // The Fig. 2 toy graph (t1=0, t2=1, p=2..8, v1..v3=9..11).
  GraphBuilder b;
  b.AddNodes(12);
  for (int i = 2; i <= 6; ++i) b.AddUndirectedEdge(0, i, 1.0);
  b.AddUndirectedEdge(1, 7, 1.0);
  b.AddUndirectedEdge(1, 8, 1.0);
  b.AddUndirectedEdge(2, 9, 1.0);
  b.AddUndirectedEdge(3, 9, 1.0);
  b.AddUndirectedEdge(7, 9, 1.0);
  b.AddUndirectedEdge(8, 9, 1.0);
  b.AddUndirectedEdge(4, 10, 1.0);
  b.AddUndirectedEdge(5, 10, 1.0);
  b.AddUndirectedEdge(6, 11, 1.0);
  return b.Build().value();
}

Graph RandomGraph(uint64_t seed, size_t n = 40) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddUndirectedEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                        0.5 + rng.NextDouble());
  }
  for (int extra = 0; extra < 40; ++extra) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u != v) b.AddDirectedEdge(u, v, 0.5 + rng.NextDouble());
  }
  return b.Build().value();
}

void RunToExhaustion(Bca& bca, int max_rounds = 20000) {
  for (int i = 0; i < max_rounds && bca.total_residual() > 1e-14; ++i) {
    if (bca.ProcessBest(16) == 0) break;
  }
}

TEST(BcaTest, InitialResidualOnQuery) {
  Graph g = ToyGraph();
  Bca bca(g, {0}, 0.25);
  EXPECT_DOUBLE_EQ(bca.total_residual(), 1.0);
  EXPECT_DOUBLE_EQ(bca.mu()[0], 1.0);
  EXPECT_TRUE(bca.seen().empty());
}

TEST(BcaTest, MultiNodeQuerySplitsResidual) {
  Graph g = ToyGraph();
  Bca bca(g, {0, 1}, 0.25);
  EXPECT_DOUBLE_EQ(bca.mu()[0], 0.5);
  EXPECT_DOUBLE_EQ(bca.mu()[1], 0.5);
}

TEST(BcaTest, ProcessMovesAlphaFractionToRho) {
  Graph g = ToyGraph();
  Bca bca(g, {0}, 0.25);
  bca.Process(0);
  EXPECT_DOUBLE_EQ(bca.rho()[0], 0.25);
  EXPECT_NEAR(bca.total_residual(), 0.75, 1e-15);
  // Residual spread uniformly to the five papers of t1.
  for (int p = 2; p <= 6; ++p) EXPECT_NEAR(bca.mu()[p], 0.15, 1e-15);
}

TEST(BcaTest, ResidualDecreasesMonotonically) {
  Graph g = RandomGraph(1);
  Bca bca(g, {0}, 0.25);
  double prev = bca.total_residual();
  for (int i = 0; i < 50; ++i) {
    if (bca.ProcessBest(4) == 0) break;
    EXPECT_LE(bca.total_residual(), prev + 1e-15);
    prev = bca.total_residual();
  }
}

TEST(BcaTest, RhoIsAlwaysALowerBound) {
  Graph g = RandomGraph(2);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {3}, params);
  Bca bca(g, {3}, 0.25);
  for (int i = 0; i < 40; ++i) {
    bca.ProcessBest(3);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(bca.rho()[v], f[v] + 1e-12) << "node " << v;
    }
  }
}

TEST(BcaTest, ConvergesToExactFRank) {
  Graph g = ToyGraph();
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {0}, params);
  Bca bca(g, {0}, 0.25);
  RunToExhaustion(bca);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(bca.rho()[v], f[v], 1e-9) << "node " << v;
  }
}

TEST(BcaTest, UnseenUpperBoundIsValid) {
  // f(q, v) <= rho(v) + unseen-upper at every stage (Prop. 4).
  Graph g = RandomGraph(3);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {0}, params);
  Bca bca(g, {0}, 0.25);
  for (int i = 0; i < 60; ++i) {
    double ub = bca.UnseenUpperBound();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(f[v], bca.rho()[v] + ub + 1e-12) << "node " << v;
    }
    if (bca.ProcessBest(2) == 0) break;
  }
}

TEST(BcaTest, PaperBoundTighterThanGupta) {
  Graph g = RandomGraph(4);
  Bca bca(g, {0}, 0.25);
  for (int i = 0; i < 30; ++i) {
    if (bca.ProcessBest(2) == 0) break;
    EXPECT_LE(bca.UnseenUpperBound(), bca.GuptaUnseenUpperBound() + 1e-15);
  }
}

TEST(BcaTest, GuptaBoundIsValidToo) {
  Graph g = RandomGraph(5);
  ranking::WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = ranking::FRank(g, {7}, params);
  Bca bca(g, {7}, 0.25);
  for (int i = 0; i < 40; ++i) {
    double ub = bca.GuptaUnseenUpperBound();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(f[v], bca.rho()[v] + ub + 1e-12);
    }
    if (bca.ProcessBest(3) == 0) break;
  }
}

TEST(BcaTest, DanglingNodeDropsMass) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  Graph g = b.Build().value();
  Bca bca(g, {0}, 0.25);
  bca.Process(0);
  bca.Process(1);
  EXPECT_DOUBLE_EQ(bca.rho()[0], 0.25);
  EXPECT_DOUBLE_EQ(bca.rho()[1], 0.75 * 0.25);
  EXPECT_NEAR(bca.total_residual(), 0.0, 1e-15);
}

TEST(BcaTest, ProcessBestPrefersHighBenefit) {
  // Node 1 has huge residual but huge degree; node 2 small residual, degree
  // 1. Arrange so 2's benefit wins.
  GraphBuilder b;
  b.AddNodes(12);
  b.AddDirectedEdge(0, 1, 10.0);  // mu(1) = 10/11
  b.AddDirectedEdge(0, 2, 1.0);   // mu(2) = 1/11
  for (NodeId t = 3; t < 12; ++t) b.AddDirectedEdge(1, t, 1.0);  // degree 9
  b.AddDirectedEdge(2, 0, 1.0);  // degree 1
  Graph g = b.Build().value();
  Bca bca(g, {0}, 0.25);
  bca.Process(0);
  // benefit(1) = (0.75 * 10/11) / 9 ≈ 0.0758; benefit(2) = (0.75/11) / 1
  // ≈ 0.0682 — node 1 first, then 2; with m=1 only node 1 processed.
  bca.ProcessBest(1);
  EXPECT_GT(bca.rho()[1], 0.0);
  EXPECT_EQ(bca.rho()[2], 0.0);
}

TEST(BcaTest, SeenListMatchesPositiveRho) {
  Graph g = RandomGraph(6);
  Bca bca(g, {0}, 0.25);
  bca.ProcessBest(5);
  bca.ProcessBest(5);
  std::vector<bool> in_seen(g.num_nodes(), false);
  for (NodeId v : bca.seen()) in_seen[v] = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(in_seen[v], bca.rho()[v] > 0.0) << "node " << v;
  }
}

}  // namespace
}  // namespace rtr::core
