// Binary snapshot round-trips (bit-identical columns) and corruption
// handling: truncation, trailing garbage, checksum flips, header lies.
#include "graph/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/io.h"
#include "util/random.h"

namespace rtr {
namespace {

// Exercises every structural wrinkle at once: multiple node types, dangling
// nodes (2 and 5 have no out-arcs), parallel edges that must accumulate,
// and a self-loop.
Graph TrickyGraph() {
  GraphBuilder b;
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId author = b.AddNodeType("author");
  b.AddNode(paper);           // 0
  b.AddNode(author);          // 1
  b.AddNode(paper);           // 2: dangling
  b.AddNode(kUntypedNode);    // 3
  b.AddNode(author);          // 4
  b.AddNode(paper);           // 5: dangling, never referenced at all
  b.AddDirectedEdge(0, 1, 1.25);
  b.AddDirectedEdge(0, 1, 0.75);  // parallel: merges to 2.0
  b.AddDirectedEdge(0, 2, 3.0);
  b.AddUndirectedEdge(1, 3, 0.5);
  b.AddDirectedEdge(3, 3, 1.0);   // self-loop
  b.AddDirectedEdge(4, 0, 7.0);
  b.AddDirectedEdge(4, 2, 0.125);
  return b.Build().value();
}

Graph RandomGraph(uint64_t seed, size_t n = 60) {
  Rng rng(seed);
  GraphBuilder b;
  NodeTypeId t1 = b.AddNodeType("x");
  for (size_t i = 0; i < n; ++i) {
    b.AddNode(rng.NextBernoulli(0.5) ? t1 : kUntypedNode);
  }
  for (size_t e = 0; e < 4 * n; ++e) {
    b.AddDirectedEdge(static_cast<NodeId>(rng.NextUint64(n)),
                      static_cast<NodeId>(rng.NextUint64(n)),
                      0.1 + rng.NextDouble());
  }
  return b.Build().value();
}

template <typename T>
void ExpectColumnsEq(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal: the snapshot stores the
    // column bytes verbatim.
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(T)), 0) << "index " << i;
  }
}

void ExpectGraphsIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.type_names(), b.type_names());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node_type(v), b.node_type(v));
    EXPECT_EQ(a.out_weight(v), b.out_weight(v));
  }
  ExpectColumnsEq(a.out_offsets(), b.out_offsets());
  ExpectColumnsEq(a.out_targets(), b.out_targets());
  ExpectColumnsEq(a.out_arc_weights(), b.out_arc_weights());
  ExpectColumnsEq(a.out_probs(), b.out_probs());
  ExpectColumnsEq(a.in_offsets(), b.in_offsets());
  ExpectColumnsEq(a.in_sources(), b.in_sources());
  ExpectColumnsEq(a.in_arc_weights(), b.in_arc_weights());
  ExpectColumnsEq(a.in_probs(), b.in_probs());
}

std::string Snapshot(const Graph& g) {
  std::ostringstream out;
  EXPECT_TRUE(SaveGraphSnapshot(g, out).ok());
  return out.str();
}

StatusOr<Graph> Load(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadGraphSnapshot(in);
}

TEST(SnapshotTest, RoundTripTrickyGraphBitIdentical) {
  Graph g = TrickyGraph();
  StatusOr<Graph> loaded = Load(Snapshot(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsIdentical(g, *loaded);
}

TEST(SnapshotTest, RoundTripRandomGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = RandomGraph(seed);
    StatusOr<Graph> loaded = Load(Snapshot(g));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectGraphsIdentical(g, *loaded);
  }
}

TEST(SnapshotTest, RoundTripEmptyGraph) {
  Graph g = GraphBuilder().Build().value();
  StatusOr<Graph> loaded = Load(Snapshot(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 0u);
  EXPECT_EQ(loaded->num_arcs(), 0u);
  EXPECT_EQ(loaded->type_names(), g.type_names());
}

// The probs column must survive save->load exactly, even after
// parallel-edge accumulation produced values a text round-trip could only
// approximately reconstruct.
TEST(SnapshotTest, ProbColumnBitIdenticalUnderParallelEdgeAccumulation) {
  GraphBuilder b;
  b.AddNodes(3);
  for (int i = 0; i < 10; ++i) {
    b.AddDirectedEdge(0, 1, 0.1);   // accumulates fp round-off
    b.AddDirectedEdge(0, 2, 0.3);
  }
  Graph g = b.Build().value();
  StatusOr<Graph> loaded = Load(Snapshot(g));
  ASSERT_TRUE(loaded.ok());
  ExpectColumnsEq(g.out_probs(), loaded->out_probs());
  ExpectColumnsEq(g.in_probs(), loaded->in_probs());
}

TEST(SnapshotTest, TruncationRejectedAtEveryLength) {
  Graph g = TrickyGraph();
  const std::string bytes = Snapshot(g);
  // Chop at a spread of lengths including mid-header and mid-column.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{63}, size_t{64},
                      bytes.size() / 2, bytes.size() - 8, bytes.size() - 1}) {
    StatusOr<Graph> loaded = Load(bytes.substr(0, keep));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  Graph g = TrickyGraph();
  StatusOr<Graph> loaded = Load(Snapshot(g) + "extra");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, PayloadCorruptionCaughtByChecksum) {
  Graph g = TrickyGraph();
  std::string bytes = Snapshot(g);
  bytes[bytes.size() - 3] ^= 0x40;  // flip one payload bit
  StatusOr<Graph> loaded = Load(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, BadMagicRejected) {
  std::string bytes = Snapshot(TrickyGraph());
  bytes[0] = 'X';
  EXPECT_FALSE(Load(bytes).ok());
}

TEST(SnapshotTest, BadVersionRejected) {
  std::string bytes = Snapshot(TrickyGraph());
  bytes[8] = 99;  // version field
  EXPECT_FALSE(Load(bytes).ok());
}

TEST(SnapshotTest, LyingArcCountRejected) {
  // Inflate the header's arc count: the exact-size check must fire before
  // any allocation based on it.
  std::string bytes = Snapshot(TrickyGraph());
  uint64_t huge = uint64_t{1} << 40;
  std::memcpy(&bytes[32], &huge, sizeof(huge));  // num_arcs field
  StatusOr<Graph> loaded = Load(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, LyingNodeCountRejected) {
  // A node count past the u32 NodeId range must be rejected outright.
  std::string bytes = Snapshot(TrickyGraph());
  uint64_t huge = uint64_t{1} << 32;
  std::memcpy(&bytes[24], &huge, sizeof(huge));  // num_nodes field
  StatusOr<Graph> loaded = Load(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, FileRoundTripAndAutoDetect) {
  Graph g = TrickyGraph();
  const std::string dir = testing::TempDir();
  const std::string snap_path = dir + "/rtr_snapshot_test.rtrsnap";
  const std::string text_path = dir + "/rtr_snapshot_test.txt";
  ASSERT_TRUE(SaveGraphSnapshotToFile(g, snap_path).ok());
  ASSERT_TRUE(SaveGraphToFile(g, text_path).ok());

  EXPECT_TRUE(IsSnapshotFile(snap_path).value());
  EXPECT_FALSE(IsSnapshotFile(text_path).value());

  // Auto-detection routes both formats to a working loader.
  StatusOr<Graph> from_snap = LoadGraphAuto(snap_path);
  ASSERT_TRUE(from_snap.ok());
  ExpectGraphsIdentical(g, *from_snap);
  StatusOr<Graph> from_text = LoadGraphAuto(text_path);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(from_text->num_arcs(), g.num_arcs());
}

TEST(SnapshotTest, MissingFileRejected) {
  EXPECT_FALSE(LoadGraphSnapshotFromFile("/nonexistent/x.rtrsnap").ok());
  EXPECT_FALSE(IsSnapshotFile("/nonexistent/x.rtrsnap").ok());
  EXPECT_FALSE(LoadGraphAuto("/nonexistent/x.rtrsnap").ok());
}

// Loading a snapshot must behave exactly like the builder output in the
// algorithms: spot-check a transition probability and a walk sample.
TEST(SnapshotTest, LoadedGraphBehavesIdentically) {
  Graph g = RandomGraph(11);
  Graph loaded = Load(Snapshot(g)).value();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.out_degree(v), loaded.out_degree(v));
    EXPECT_EQ(g.in_degree(v), loaded.in_degree(v));
    EXPECT_EQ(g.SampleOutNeighbor(v, 0.37), loaded.SampleOutNeighbor(v, 0.37));
  }
  EXPECT_EQ(g.TransitionProb(3, 5), loaded.TransitionProb(3, 5));
  EXPECT_EQ(g.MemoryBytes(), loaded.MemoryBytes());
}

// ---------------------------------------------------------------------------
// v2 generation field (graph/store.h) and v1 compatibility.

TEST(SnapshotTest, GenerationRoundTrip) {
  Graph g = TrickyGraph();
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphSnapshot(g, out, 42).ok());
  std::istringstream in(out.str());
  uint64_t generation = 0;
  StatusOr<Graph> loaded = LoadGraphSnapshot(in, &generation);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(generation, 42u);
  ExpectGraphsIdentical(g, *loaded);
}

TEST(SnapshotTest, DefaultGenerationIsZero) {
  std::istringstream in(Snapshot(TrickyGraph()));
  uint64_t generation = 99;
  ASSERT_TRUE(LoadGraphSnapshot(in, &generation).ok());
  EXPECT_EQ(generation, 0u);
}

TEST(SnapshotTest, V1SnapshotLoadsAsGenerationZero) {
  // A v1 file is byte-identical to a v2 file at generation 0 except for the
  // version word; rewriting it exercises the legacy-load path.
  std::string bytes = Snapshot(TrickyGraph());
  const uint32_t v1 = 1;
  std::memcpy(&bytes[8], &v1, sizeof(v1));
  std::istringstream in(bytes);
  uint64_t generation = 99;
  StatusOr<Graph> loaded = LoadGraphSnapshot(in, &generation);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(generation, 0u);
  ExpectGraphsIdentical(TrickyGraph(), *loaded);
}

TEST(SnapshotTest, V1SnapshotWithNonzeroReservedFieldRejected) {
  // v1 wrote a zeroed reserved word where v2 keeps the generation; a v1
  // header with that word set is corrupt, not "a generation".
  std::ostringstream out;
  ASSERT_TRUE(SaveGraphSnapshot(TrickyGraph(), out, 7).ok());
  std::string bytes = out.str();
  const uint32_t v1 = 1;
  std::memcpy(&bytes[8], &v1, sizeof(v1));
  StatusOr<Graph> loaded = Load(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, ReadSnapshotFileInfoReportsHeader) {
  Graph g = TrickyGraph();
  const std::string path = testing::TempDir() + "/rtr_snapshot_info.rtrsnap";
  ASSERT_TRUE(SaveGraphSnapshotToFile(g, path, 7).ok());
  StatusOr<SnapshotFileInfo> info = ReadSnapshotFileInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->generation, 7u);
  EXPECT_EQ(info->num_types, g.type_names().size());
  EXPECT_EQ(info->num_nodes, g.num_nodes());
  EXPECT_EQ(info->num_arcs, g.num_arcs());
  EXPECT_NE(info->payload_checksum, 0u);
}

TEST(SnapshotTest, ReadSnapshotFileInfoRejectsMissingAndCorrupt) {
  EXPECT_FALSE(ReadSnapshotFileInfo("/nonexistent/x.rtrsnap").ok());
  const std::string path =
      testing::TempDir() + "/rtr_snapshot_badheader.rtrsnap";
  std::string bytes = Snapshot(TrickyGraph());
  bytes[0] = 'X';  // break the magic
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_FALSE(ReadSnapshotFileInfo(path).ok());
}

TEST(SnapshotTest, LoadGraphAutoReportsGeneration) {
  Graph g = TrickyGraph();
  const std::string dir = testing::TempDir();
  const std::string snap_path = dir + "/rtr_snapshot_gen.rtrsnap";
  const std::string text_path = dir + "/rtr_snapshot_gen.txt";
  ASSERT_TRUE(SaveGraphSnapshotToFile(g, snap_path, 5).ok());
  ASSERT_TRUE(SaveGraphToFile(g, text_path).ok());
  uint64_t generation = 99;
  ASSERT_TRUE(LoadGraphAuto(snap_path, &generation).ok());
  EXPECT_EQ(generation, 5u);
  generation = 99;
  ASSERT_TRUE(LoadGraphAuto(text_path, &generation).ok());
  EXPECT_EQ(generation, 0u);  // text graphs carry no generation
}

}  // namespace
}  // namespace rtr
