#include "graph/subgraph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr {
namespace {

Graph LineWithTypes() {
  GraphBuilder b;
  NodeTypeId a = b.AddNodeType("a");
  NodeTypeId c = b.AddNodeType("c");
  b.AddNode(a);  // 0
  b.AddNode(c);  // 1
  b.AddNode(a);  // 2
  b.AddNode(c);  // 3
  b.AddNode(a);  // 4
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 2.0);
  b.AddDirectedEdge(2, 3, 3.0);
  b.AddDirectedEdge(3, 4, 4.0);
  return b.Build().value();
}

TEST(InducedSubgraphTest, KeepsInternalArcsOnly) {
  Graph g = LineWithTypes();
  Subgraph sub = InducedSubgraph(g, {1, 2, 3}).value();
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_arcs(), 2u);  // 1->2 and 2->3 survive
  // Mapping round-trips.
  for (NodeId new_id = 0; new_id < sub.graph.num_nodes(); ++new_id) {
    EXPECT_EQ(sub.from_parent[sub.to_parent[new_id]], new_id);
  }
  EXPECT_EQ(sub.from_parent[0], kInvalidNode);
  EXPECT_EQ(sub.from_parent[4], kInvalidNode);
}

TEST(InducedSubgraphTest, PreservesTypesAndWeights) {
  Graph g = LineWithTypes();
  Subgraph sub = InducedSubgraph(g, {2, 3}).value();
  NodeId new2 = sub.from_parent[2];
  NodeId new3 = sub.from_parent[3];
  EXPECT_EQ(sub.graph.node_type(new2), g.node_type(2));
  EXPECT_EQ(sub.graph.node_type(new3), g.node_type(3));
  ASSERT_EQ(sub.graph.out_degree(new2), 1u);
  EXPECT_DOUBLE_EQ(sub.graph.out_arc_weights(new2)[0], 3.0);
  // Re-normalization: 2's only surviving arc gets probability 1.
  EXPECT_DOUBLE_EQ(sub.graph.out_probs(new2)[0], 1.0);
}

TEST(InducedSubgraphTest, DuplicateSelectionIgnored) {
  Graph g = LineWithTypes();
  Subgraph sub = InducedSubgraph(g, {1, 1, 2, 2}).value();
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

TEST(InducedSubgraphTest, OutOfRangeRejected) {
  Graph g = LineWithTypes();
  EXPECT_FALSE(InducedSubgraph(g, {99}).ok());
}

TEST(InducedSubgraphTest, EmptySelection) {
  Graph g = LineWithTypes();
  Subgraph sub = InducedSubgraph(g, {}).value();
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
}

TEST(KHopNeighborhoodTest, ZeroHopsIsSeedsOnly) {
  Graph g = LineWithTypes();
  auto nodes = KHopNeighborhood(g, {2}, 0);
  EXPECT_EQ(nodes, std::vector<NodeId>({2}));
}

TEST(KHopNeighborhoodTest, ExpandsBothDirections) {
  Graph g = LineWithTypes();
  // One hop from node 2 reaches 1 (in-arc) and 3 (out-arc).
  auto nodes = KHopNeighborhood(g, {2}, 1);
  EXPECT_EQ(nodes, std::vector<NodeId>({1, 2, 3}));
}

TEST(KHopNeighborhoodTest, SaturatesOnWholeGraph) {
  Graph g = LineWithTypes();
  auto nodes = KHopNeighborhood(g, {0}, 10);
  EXPECT_EQ(nodes.size(), g.num_nodes());
}

TEST(KHopNeighborhoodTest, MultipleSeedsDeduplicated) {
  Graph g = LineWithTypes();
  auto nodes = KHopNeighborhood(g, {1, 3, 1}, 0);
  EXPECT_EQ(nodes, std::vector<NodeId>({1, 3}));
}

TEST(KHopNeighborhoodTest, ThreeHopsMatchesPaperStyleExpansion) {
  Graph g = LineWithTypes();
  auto nodes = KHopNeighborhood(g, {0}, 3);
  EXPECT_EQ(nodes, std::vector<NodeId>({0, 1, 2, 3}));
}

}  // namespace
}  // namespace rtr
