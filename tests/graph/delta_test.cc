// Incremental delta application (graph/delta.h): the bit-identity contract
// against from-scratch GraphBuilder rebuilds, edge-case semantics
// (remove-then-readd, parallel inserts, appended nodes/types), structural
// diffing, malformed-delta rejection, and the on-disk delta format's
// corruption handling.
#include "graph/delta.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "graph/builder.h"
#include "util/random.h"

namespace rtr {
namespace {

// Base generation with the usual structural wrinkles: two named types,
// a dangling node, a parallel edge that merged at build time, a self-loop.
Graph BaseGraph() {
  GraphBuilder b;
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId author = b.AddNodeType("author");
  b.AddNode(paper);           // 0
  b.AddNode(author);          // 1
  b.AddNode(paper);           // 2: dangling
  b.AddNode(kUntypedNode);    // 3
  b.AddNode(author);          // 4
  b.AddDirectedEdge(0, 1, 1.25);
  b.AddDirectedEdge(0, 1, 0.75);  // parallel: merges to 2.0
  b.AddDirectedEdge(0, 2, 3.0);
  b.AddDirectedEdge(1, 3, 0.5);
  b.AddDirectedEdge(3, 3, 1.0);   // self-loop
  b.AddDirectedEdge(4, 0, 7.0);
  return b.Build().value();
}

struct Edge {
  NodeId source;
  NodeId target;
  double weight;
};

// From-scratch reference build: the graph ApplyDelta must match bitwise.
Graph BuildReference(const std::vector<std::string>& extra_types,
                     const std::vector<NodeTypeId>& node_types,
                     const std::vector<Edge>& edges) {
  GraphBuilder b;
  for (const std::string& name : extra_types) b.AddNodeType(name);
  for (NodeTypeId t : node_types) b.AddNode(t);
  for (const Edge& e : edges) b.AddDirectedEdge(e.source, e.target, e.weight);
  return b.Build().value();
}

template <typename T>
void ExpectColumnsEq(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // The contract is bit-identity, not approximate equality.
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(T)), 0) << "index " << i;
  }
}

void ExpectGraphsIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.type_names(), b.type_names());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node_type(v), b.node_type(v));
    EXPECT_EQ(a.out_weight(v), b.out_weight(v));
  }
  ExpectColumnsEq(a.out_offsets(), b.out_offsets());
  ExpectColumnsEq(a.out_targets(), b.out_targets());
  ExpectColumnsEq(a.out_arc_weights(), b.out_arc_weights());
  ExpectColumnsEq(a.out_probs(), b.out_probs());
  ExpectColumnsEq(a.in_offsets(), b.in_offsets());
  ExpectColumnsEq(a.in_sources(), b.in_sources());
  ExpectColumnsEq(a.in_arc_weights(), b.in_arc_weights());
  ExpectColumnsEq(a.in_probs(), b.in_probs());
}

// The base graph's edges in GraphBuilder staging order, for composing
// from-scratch references that extend it.
std::vector<Edge> BaseEdges() {
  return {{0, 1, 1.25}, {0, 1, 0.75}, {0, 2, 3.0},
          {1, 3, 0.5},  {3, 3, 1.0},  {4, 0, 7.0}};
}
std::vector<NodeTypeId> BaseNodeTypes() { return {1, 2, 1, 0, 2}; }

// ---------------------------------------------------------------------------
// Semantics against from-scratch rebuilds.

TEST(DeltaTest, EmptyDeltaReproducesBaseBitIdentically) {
  Graph base = BaseGraph();
  GraphDelta delta;
  EXPECT_TRUE(delta.Empty());
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ExpectGraphsIdentical(base, *next);
}

TEST(DeltaTest, InsertArcsMatchesFromScratchRebuild) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.added_arcs = {{2, 4, 1.5}, {0, 3, 0.25}};
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();

  std::vector<Edge> edges = BaseEdges();
  edges.push_back({2, 4, 1.5});
  edges.push_back({0, 3, 0.25});
  Graph reference =
      BuildReference({"paper", "author"}, BaseNodeTypes(), edges);
  ExpectGraphsIdentical(reference, *next);
}

TEST(DeltaTest, InsertOnExistingArcSumsWeights) {
  // GraphBuilder's parallel-arc merge semantics: inserting over an arc adds
  // to its weight, bit-identically to staging the extra parallel edge in a
  // from-scratch build.
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.added_arcs = {{0, 2, 0.125}};
  Graph next = ApplyDelta(base, delta).value();

  std::vector<Edge> edges = BaseEdges();
  edges.push_back({0, 2, 0.125});
  Graph reference =
      BuildReference({"paper", "author"}, BaseNodeTypes(), edges);
  ExpectGraphsIdentical(reference, next);
  EXPECT_EQ(next.num_arcs(), base.num_arcs());  // merged, not appended
}

TEST(DeltaTest, RemoveArcRenormalizesTouchedRow) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.removed_arcs = {{0, 2}};
  Graph next = ApplyDelta(base, delta).value();

  std::vector<Edge> edges = {{0, 1, 1.25}, {0, 1, 0.75}, {1, 3, 0.5},
                             {3, 3, 1.0},  {4, 0, 7.0}};
  Graph reference =
      BuildReference({"paper", "author"}, BaseNodeTypes(), edges);
  ExpectGraphsIdentical(reference, next);
  EXPECT_EQ(next.TransitionProb(0, 1), 1.0);  // row renormalized
}

TEST(DeltaTest, RemoveThenReaddReplacesWeight) {
  // Removals apply before inserts, so remove+insert on one arc REPLACES the
  // weight instead of accumulating into it.
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.removed_arcs = {{0, 1}};
  delta.added_arcs = {{0, 1, 9.0}};
  Graph next = ApplyDelta(base, delta).value();

  std::vector<Edge> edges = {{0, 1, 9.0}, {0, 2, 3.0}, {1, 3, 0.5},
                             {3, 3, 1.0}, {4, 0, 7.0}};
  Graph reference =
      BuildReference({"paper", "author"}, BaseNodeTypes(), edges);
  ExpectGraphsIdentical(reference, next);
  EXPECT_EQ(next.num_arcs(), base.num_arcs());
}

TEST(DeltaTest, AppendsNodesAndTypes) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.added_type_names = {"venue"};
  delta.added_node_types = {3, 1};  // a venue (new type) and a paper
  delta.added_arcs = {{5, 0, 1.0}, {6, 5, 2.0}, {1, 6, 0.5}};
  Graph next = ApplyDelta(base, delta).value();

  ASSERT_EQ(next.num_nodes(), 7u);
  EXPECT_EQ(next.type_name(next.node_type(5)), "venue");
  EXPECT_EQ(next.type_name(next.node_type(6)), "paper");

  std::vector<NodeTypeId> node_types = BaseNodeTypes();
  node_types.push_back(3);
  node_types.push_back(1);
  std::vector<Edge> edges = BaseEdges();
  edges.push_back({5, 0, 1.0});
  edges.push_back({6, 5, 2.0});
  edges.push_back({1, 6, 0.5});
  Graph reference =
      BuildReference({"paper", "author", "venue"}, node_types, edges);
  ExpectGraphsIdentical(reference, next);
}

// The acceptance property behind the whole subsystem: a chain of random
// deltas produces, at every generation, columns AND rankings bit-identical
// to a from-scratch rebuild of the same logical graph.
TEST(DeltaTest, RandomDeltaChainsStayBitIdenticalToRebuilds) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const size_t n0 = 30;
    std::vector<NodeTypeId> node_types;
    std::vector<Edge> edges;
    for (size_t i = 0; i < n0; ++i) {
      node_types.push_back(rng.NextBernoulli(0.5) ? 1 : 0);
    }
    for (size_t e = 0; e < 3 * n0; ++e) {
      edges.push_back({static_cast<NodeId>(rng.NextUint64(n0)),
                       static_cast<NodeId>(rng.NextUint64(n0)),
                       0.1 + rng.NextDouble()});
    }
    Graph current = BuildReference({"x"}, node_types, edges);

    for (int step = 0; step < 4; ++step) {
      // Grow: a couple of nodes plus a batch of arcs over the new range.
      GraphDelta delta;
      size_t n = current.num_nodes();
      for (int a = 0; a < 2; ++a) {
        NodeTypeId t = rng.NextBernoulli(0.5) ? 1 : 0;
        delta.added_node_types.push_back(t);
        node_types.push_back(t);
      }
      n += 2;
      for (int e = 0; e < 12; ++e) {
        Edge edge{static_cast<NodeId>(rng.NextUint64(n)),
                  static_cast<NodeId>(rng.NextUint64(n)),
                  0.1 + rng.NextDouble()};
        delta.added_arcs.push_back({edge.source, edge.target, edge.weight});
        edges.push_back(edge);
      }
      Graph next = ApplyDelta(current, delta).value();
      Graph rebuilt = BuildReference({"x"}, node_types, edges);
      ExpectGraphsIdentical(rebuilt, next);

      // Rankings on the incremental build equal the rebuild's exactly.
      NodeId q = 0;
      while (next.out_degree(q) == 0) ++q;
      std::vector<double> inc = core::ExactRoundTripRankScores(next, {q});
      std::vector<double> ref = core::ExactRoundTripRankScores(rebuilt, {q});
      ASSERT_EQ(inc.size(), ref.size());
      for (size_t v = 0; v < inc.size(); ++v) {
        ASSERT_EQ(inc[v], ref[v]) << "seed " << seed << " step " << step
                                  << " node " << v;
      }
      current = std::move(next);
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed deltas: all-or-nothing rejection with InvalidArgument.

TEST(DeltaTest, DanglingInsertEndpointRejected) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.added_arcs = {{0, 99, 1.0}};  // target beyond the post-append range
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);

  delta.added_arcs = {{99, 0, 1.0}};  // dangling source
  EXPECT_EQ(ApplyDelta(base, delta).status().code(),
            StatusCode::kInvalidArgument);

  // ...but an endpoint in the appended range is fine.
  delta.added_node_types = {0};
  delta.added_arcs = {{0, 5, 1.0}};
  EXPECT_TRUE(ApplyDelta(base, delta).ok());
}

TEST(DeltaTest, RemovingAbsentArcRejected) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.removed_arcs = {{1, 0}};  // base has 1->3, not 1->0
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaTest, DuplicateRemovalRejected) {
  Graph base = BaseGraph();
  GraphDelta delta;
  delta.removed_arcs = {{0, 2}, {0, 2}};
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaTest, NonPositiveInsertWeightRejected) {
  Graph base = BaseGraph();
  for (double w : {0.0, -1.0}) {
    GraphDelta delta;
    delta.added_arcs = {{0, 3, w}};
    StatusOr<Graph> next = ApplyDelta(base, delta);
    ASSERT_FALSE(next.ok()) << "weight " << w;
    EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(DeltaTest, AddedNodeTypeOutOfRangeRejected) {
  Graph base = BaseGraph();  // 3 types; one added below makes 4 (ids 0..3)
  GraphDelta delta;
  delta.added_type_names = {"venue"};
  delta.added_node_types = {4};
  StatusOr<Graph> next = ApplyDelta(base, delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// DiffGraphs: structural diff of append-only evolution.

TEST(DeltaTest, DiffThenApplyReproducesNextBitIdentically) {
  Graph base = BaseGraph();
  std::vector<NodeTypeId> node_types = BaseNodeTypes();
  node_types.push_back(2);
  std::vector<Edge> edges = BaseEdges();
  edges.push_back({5, 1, 4.0});
  edges.push_back({2, 5, 0.5});
  Graph next = BuildReference({"paper", "author"}, node_types, edges);

  StatusOr<GraphDelta> delta = DiffGraphs(base, next);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->added_node_types.size(), 1u);
  EXPECT_TRUE(delta->added_type_names.empty());
  Graph applied = ApplyDelta(base, *delta).value();
  ExpectGraphsIdentical(next, applied);
}

TEST(DeltaTest, DiffSurfacesWeightChangeAsRemovePlusInsert) {
  Graph base = BaseGraph();
  std::vector<Edge> edges = BaseEdges();
  edges.push_back({4, 0, 1.0});  // parallel: 4->0 becomes 8.0 in next
  Graph next = BuildReference({"paper", "author"}, BaseNodeTypes(), edges);

  GraphDelta delta = DiffGraphs(base, next).value();
  ASSERT_EQ(delta.removed_arcs.size(), 1u);
  EXPECT_EQ(delta.removed_arcs[0], (ArcRemove{4, 0}));
  ASSERT_EQ(delta.added_arcs.size(), 1u);
  EXPECT_EQ(delta.added_arcs[0].weight, 8.0);
  ExpectGraphsIdentical(next, ApplyDelta(base, delta).value());
}

TEST(DeltaTest, DiffRejectsNonAppendOnlyEvolution) {
  Graph base = BaseGraph();
  // Fewer nodes than base: nodes are never deleted.
  Graph shrunk = BuildReference({"paper", "author"}, {1, 2}, {{0, 1, 1.0}});
  EXPECT_EQ(DiffGraphs(base, shrunk).status().code(),
            StatusCode::kInvalidArgument);
  // Same size but a node changed type.
  std::vector<NodeTypeId> retyped = BaseNodeTypes();
  retyped[0] = 2;
  Graph changed = BuildReference({"paper", "author"}, retyped, BaseEdges());
  EXPECT_EQ(DiffGraphs(base, changed).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// On-disk delta files: round-trip and corruption handling.

GraphDelta SampleDelta() {
  GraphDelta delta;
  delta.base_generation = 3;
  delta.added_type_names = {"venue", "term"};
  delta.added_node_types = {3, 4, 1};
  delta.removed_arcs = {{0, 2}};
  delta.added_arcs = {{5, 0, 1.5}, {6, 7, 0.25}};
  return delta;
}

void ExpectDeltasEqual(const GraphDelta& a, const GraphDelta& b) {
  EXPECT_EQ(a.base_generation, b.base_generation);
  EXPECT_EQ(a.added_type_names, b.added_type_names);
  EXPECT_EQ(a.added_node_types, b.added_node_types);
  EXPECT_EQ(a.removed_arcs, b.removed_arcs);
  ASSERT_EQ(a.added_arcs.size(), b.added_arcs.size());
  for (size_t i = 0; i < a.added_arcs.size(); ++i) {
    EXPECT_EQ(a.added_arcs[i].source, b.added_arcs[i].source);
    EXPECT_EQ(a.added_arcs[i].target, b.added_arcs[i].target);
    // Bit-exact weights, so re-application stays deterministic.
    EXPECT_EQ(std::memcmp(&a.added_arcs[i].weight, &b.added_arcs[i].weight,
                          sizeof(double)),
              0);
  }
}

std::string DeltaBytes(const GraphDelta& delta) {
  std::ostringstream out;
  EXPECT_TRUE(SaveGraphDelta(delta, out).ok());
  return out.str();
}

StatusOr<GraphDelta> LoadDeltaBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadGraphDelta(in);
}

TEST(DeltaFileTest, RoundTripPreservesEveryField) {
  GraphDelta delta = SampleDelta();
  StatusOr<GraphDelta> loaded = LoadDeltaBytes(DeltaBytes(delta));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDeltasEqual(delta, *loaded);

  // Empty deltas round-trip too (a quiet ingestion tick).
  StatusOr<GraphDelta> empty = LoadDeltaBytes(DeltaBytes(GraphDelta{}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->Empty());
}

TEST(DeltaFileTest, FileRoundTripAndKindDetection) {
  const std::string dir = testing::TempDir();
  const std::string path = dir + "/rtr_delta_test.rtrdelta";
  GraphDelta delta = SampleDelta();
  ASSERT_TRUE(SaveGraphDeltaToFile(delta, path).ok());
  StatusOr<GraphDelta> loaded = LoadGraphDeltaFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDeltasEqual(delta, *loaded);

  EXPECT_TRUE(IsDeltaFile(path).value());
  EXPECT_FALSE(IsDeltaFile("/nonexistent/x.rtrdelta").ok());
  const std::string not_delta = dir + "/rtr_delta_test.txt";
  std::ofstream(not_delta) << "rtr-graph 1\n";
  EXPECT_FALSE(IsDeltaFile(not_delta).value());
}

TEST(DeltaFileTest, ReadDeltaFileInfoReportsHeader) {
  const std::string path = testing::TempDir() + "/rtr_delta_info.rtrdelta";
  ASSERT_TRUE(SaveGraphDeltaToFile(SampleDelta(), path).ok());
  StatusOr<DeltaFileInfo> info = ReadDeltaFileInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kDeltaVersion);
  EXPECT_EQ(info->base_generation, 3u);
  EXPECT_EQ(info->num_added_types, 2u);
  EXPECT_EQ(info->num_added_nodes, 3u);
  EXPECT_EQ(info->num_removed_arcs, 1u);
  EXPECT_EQ(info->num_added_arcs, 2u);
  EXPECT_FALSE(ReadDeltaFileInfo("/nonexistent/x.rtrdelta").ok());
}

TEST(DeltaFileTest, TruncationRejectedAtEveryLength) {
  const std::string bytes = DeltaBytes(SampleDelta());
  for (size_t keep : {size_t{0}, size_t{7}, size_t{63}, size_t{64},
                      bytes.size() / 2, bytes.size() - 8, bytes.size() - 1}) {
    StatusOr<GraphDelta> loaded = LoadDeltaBytes(bytes.substr(0, keep));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

TEST(DeltaFileTest, CorruptHeaderAndPayloadRejected) {
  {
    std::string bytes = DeltaBytes(SampleDelta());
    bytes[0] = 'X';  // magic
    EXPECT_FALSE(LoadDeltaBytes(bytes).ok());
  }
  {
    std::string bytes = DeltaBytes(SampleDelta());
    bytes[8] = 99;  // version
    EXPECT_FALSE(LoadDeltaBytes(bytes).ok());
  }
  {
    std::string bytes = DeltaBytes(SampleDelta());
    bytes[bytes.size() - 2] ^= 0x10;  // payload bit flip -> checksum
    StatusOr<GraphDelta> loaded = LoadDeltaBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  {
    std::string bytes = DeltaBytes(SampleDelta()) + "12345678";
    StatusOr<GraphDelta> loaded = LoadDeltaBytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

TEST(DeltaFileTest, LyingOpCountRejected) {
  // Inflate the added-arc count: the size checks must fire before any
  // allocation trusts it.
  std::string bytes = DeltaBytes(SampleDelta());
  uint64_t huge = uint64_t{1} << 40;
  std::memcpy(&bytes[48], &huge, sizeof(huge));  // num_added_arcs field
  StatusOr<GraphDelta> loaded = LoadDeltaBytes(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rtr
