// Zero-copy mapped snapshot loading: bit-identity against the owning
// loader, MapMode resolution, bulk-read fallback (with its counter), the
// v3 f32 columns, and the copy-on-write contract of delta application on
// a mapped base generation.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/store.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace rtr {
namespace {

// Structural wrinkles the span accessors must survive: multiple node
// types, dangling nodes (empty per-node spans), parallel edges (merged by
// the builder), and a self-loop.
Graph TrickyGraph() {
  GraphBuilder b;
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId author = b.AddNodeType("author");
  b.AddNode(paper);           // 0
  b.AddNode(author);          // 1
  b.AddNode(paper);           // 2: dangling (no out-arcs)
  b.AddNode(kUntypedNode);    // 3
  b.AddNode(author);          // 4
  b.AddNode(paper);           // 5: fully isolated
  b.AddDirectedEdge(0, 1, 1.25);
  b.AddDirectedEdge(0, 1, 0.75);  // parallel: merges to 2.0
  b.AddDirectedEdge(0, 2, 3.0);
  b.AddUndirectedEdge(1, 3, 0.5);
  b.AddDirectedEdge(3, 3, 1.0);   // self-loop
  b.AddDirectedEdge(4, 0, 7.0);
  b.AddDirectedEdge(4, 2, 0.125);
  return b.Build().value();
}

Graph RandomGraph(uint64_t seed, size_t n = 200) {
  Rng rng(seed);
  GraphBuilder b;
  NodeTypeId t1 = b.AddNodeType("x");
  for (size_t i = 0; i < n; ++i) {
    b.AddNode(rng.NextBernoulli(0.5) ? t1 : kUntypedNode);
  }
  for (size_t e = 0; e < 5 * n; ++e) {
    b.AddDirectedEdge(static_cast<NodeId>(rng.NextUint64(n)),
                      static_cast<NodeId>(rng.NextUint64(n)),
                      0.1 + rng.NextDouble());
  }
  return b.Build().value();
}

template <typename T>
void ExpectColumnsEq(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  // Bit-identical, not approximately equal: the mapped loader exposes the
  // file bytes verbatim.
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0);
}

void ExpectGraphsIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.type_names(), b.type_names());
  ExpectColumnsEq(a.node_types(), b.node_types());
  ExpectColumnsEq(a.out_weights(), b.out_weights());
  ExpectColumnsEq(a.out_offsets(), b.out_offsets());
  ExpectColumnsEq(a.out_targets(), b.out_targets());
  ExpectColumnsEq(a.out_arc_weights(), b.out_arc_weights());
  ExpectColumnsEq(a.out_probs(), b.out_probs());
  ExpectColumnsEq(a.in_offsets(), b.in_offsets());
  ExpectColumnsEq(a.in_sources(), b.in_sources());
  ExpectColumnsEq(a.in_arc_weights(), b.in_arc_weights());
  ExpectColumnsEq(a.in_probs(), b.in_probs());
  ASSERT_EQ(a.has_f32_probs(), b.has_f32_probs());
  if (a.has_f32_probs()) {
    ExpectColumnsEq(a.out_probs_f32(), b.out_probs_f32());
    ExpectColumnsEq(a.in_probs_f32(), b.in_probs_f32());
  }
}

std::string WriteSnapshot(const Graph& g, const std::string& name,
                          const SnapshotWriteOptions& options = {}) {
  const std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(SaveGraphSnapshotToFile(g, path, options).ok());
  return path;
}

uint64_t FallbackCount() {
  return obs::MetricsRegistry::Default()
      .GetCounter("rtr_store_mmap_fallbacks")
      ->value();
}

TEST(MmapTest, MappedLoadIsBitIdenticalToOwningLoad) {
  const Graph g = TrickyGraph();
  const std::string path = WriteSnapshot(g, "mmap_tricky.rtrsnap");

  StatusOr<Graph> owning = LoadGraphSnapshotFromFile(path);
  ASSERT_TRUE(owning.ok()) << owning.status().ToString();
  StatusOr<Graph> mapped = LoadGraphMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  EXPECT_FALSE(owning->is_mapped());
  EXPECT_TRUE(mapped->is_mapped());
  ExpectGraphsIdentical(*owning, *mapped);
  ExpectGraphsIdentical(g, *mapped);
}

TEST(MmapTest, PerNodeSpansMatchOnDanglingAndParallelNodes) {
  const Graph g = TrickyGraph();
  const std::string path = WriteSnapshot(g, "mmap_spans.rtrsnap");
  StatusOr<Graph> mapped = LoadGraphMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ExpectColumnsEq(g.out_targets(v), mapped->out_targets(v));
    ExpectColumnsEq(g.out_arc_weights(v), mapped->out_arc_weights(v));
    ExpectColumnsEq(g.out_probs(v), mapped->out_probs(v));
    ExpectColumnsEq(g.in_sources(v), mapped->in_sources(v));
    ExpectColumnsEq(g.in_arc_weights(v), mapped->in_arc_weights(v));
    ExpectColumnsEq(g.in_probs(v), mapped->in_probs(v));
  }
  // The dangling nodes really are dangling in both.
  EXPECT_TRUE(mapped->out_targets(2).empty());
  EXPECT_TRUE(mapped->out_targets(5).empty());
  EXPECT_TRUE(mapped->in_sources(5).empty());
  // The parallel edge merged to one arc of weight 2.0 in the mapped view.
  ASSERT_EQ(mapped->out_targets(0).size(), 2u);
  EXPECT_EQ(mapped->out_arc_weights(0)[0], 2.0);
}

TEST(MmapTest, GenerationComesFromTheHeader) {
  SnapshotWriteOptions options;
  options.generation = 41;
  const std::string path =
      WriteSnapshot(TrickyGraph(), "mmap_gen.rtrsnap", options);
  uint64_t generation = 0;
  StatusOr<Graph> mapped = LoadGraphMapped(path, &generation);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(generation, 41u);
}

TEST(MmapTest, TopKIsExactlyEqualOnMappedGraph) {
  const Graph owning = RandomGraph(77);
  const std::string path = WriteSnapshot(owning, "mmap_topk.rtrsnap");
  StatusOr<Graph> mapped = LoadGraphMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  core::TopKParams params;
  params.k = 10;
  for (NodeId q : {NodeId{0}, NodeId{17}, NodeId{123}}) {
    StatusOr<core::TopKResult> a =
        core::TopKRoundTripRank(owning, {q}, params);
    StatusOr<core::TopKResult> b =
        core::TopKRoundTripRank(*mapped, {q}, params);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->entries.size(), b->entries.size());
    for (size_t i = 0; i < a->entries.size(); ++i) {
      EXPECT_EQ(a->entries[i].node, b->entries[i].node);
      // Same storage bytes + same kernels => the exact same doubles.
      EXPECT_EQ(a->entries[i].lower, b->entries[i].lower);
      EXPECT_EQ(a->entries[i].upper, b->entries[i].upper);
    }
  }
}

TEST(MmapTest, MapModeNeverLoadsOwning) {
  const std::string path = WriteSnapshot(TrickyGraph(), "mmap_never.rtrsnap");
  StatusOr<Graph> g = LoadGraphAuto(path, nullptr, MapMode::kNever);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->is_mapped());
}

TEST(MmapTest, MapModePreferMapsWhenPossible) {
  const std::string path = WriteSnapshot(TrickyGraph(), "mmap_prefer.rtrsnap");
  StatusOr<Graph> g = LoadGraphAuto(path, nullptr, MapMode::kPrefer);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_mapped());
}

TEST(MmapTest, MapModeAutoHonorsEnv) {
  const std::string path = WriteSnapshot(TrickyGraph(), "mmap_env.rtrsnap");
  // The test owns the variable for its duration (the CI matrix also runs
  // the whole suite under RTR_GRAPH_MMAP=1); restore the inherited value
  // at the end.
  const char* inherited = ::getenv("RTR_GRAPH_MMAP");
  const std::string saved = inherited != nullptr ? inherited : "";

  ::unsetenv("RTR_GRAPH_MMAP");
  StatusOr<Graph> off = LoadGraphAuto(path);
  ::setenv("RTR_GRAPH_MMAP", "1", /*overwrite=*/1);
  StatusOr<Graph> on = LoadGraphAuto(path);
  if (inherited != nullptr) {
    ::setenv("RTR_GRAPH_MMAP", saved.c_str(), /*overwrite=*/1);
  } else {
    ::unsetenv("RTR_GRAPH_MMAP");
  }

  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->is_mapped());
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on->is_mapped());
  ExpectGraphsIdentical(*off, *on);
}

TEST(MmapTest, PreferFallsBackToBulkReadAndCounts) {
  const std::string path =
      WriteSnapshot(TrickyGraph(), "mmap_fallback.rtrsnap");
  const uint64_t before = FallbackCount();
  SetMmapFailForTesting(true);
  StatusOr<Graph> g = LoadGraphAuto(path, nullptr, MapMode::kPrefer);
  SetMmapFailForTesting(false);
  // The load still succeeds -- through the owning loader -- and the
  // fallback is visible in the metrics registry.
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_FALSE(g->is_mapped());
  EXPECT_EQ(FallbackCount(), before + 1);
  ExpectGraphsIdentical(TrickyGraph(), *g);
}

TEST(MmapTest, RequireDoesNotFallBack) {
  const std::string path =
      WriteSnapshot(TrickyGraph(), "mmap_require.rtrsnap");
  SetMmapFailForTesting(true);
  StatusOr<Graph> g = LoadGraphAuto(path, nullptr, MapMode::kRequire);
  SetMmapFailForTesting(false);
  EXPECT_FALSE(g.ok());
}

TEST(MmapTest, MappedLoadRejectsTextGraphs) {
  const std::string path = testing::TempDir() + "/mmap_not_snap.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadGraphMapped(path).ok());
}

TEST(MmapTest, MaterializeOwningDetachesFromTheMapping) {
  const Graph g = RandomGraph(5, 80);
  const std::string path = WriteSnapshot(g, "mmap_materialize.rtrsnap");
  StatusOr<Graph> mapped = LoadGraphMapped(path);
  ASSERT_TRUE(mapped.ok());
  Graph owned = mapped->MaterializeOwning();
  EXPECT_FALSE(owned.is_mapped());
  ExpectGraphsIdentical(*mapped, owned);
  // The materialized copy survives the mapped original going away.
  *mapped = Graph();
  ExpectGraphsIdentical(g, owned);
}

TEST(MmapTest, CopyOfMappedGraphSharesTheMapping) {
  const std::string path = WriteSnapshot(TrickyGraph(), "mmap_copy.rtrsnap");
  StatusOr<Graph> mapped = LoadGraphMapped(path);
  ASSERT_TRUE(mapped.ok());
  Graph copy = *mapped;  // borrowed columns stay borrowed
  EXPECT_TRUE(copy.is_mapped());
  ExpectGraphsIdentical(*mapped, copy);
  // The copy keeps the mapping alive on its own.
  *mapped = Graph();
  ExpectGraphsIdentical(TrickyGraph(), copy);
}

TEST(MmapTest, V3SnapshotRoundTripsTheF32Columns) {
  Graph g = RandomGraph(9, 64);
  SnapshotWriteOptions options;
  options.f32_probs = true;
  const std::string path = WriteSnapshot(g, "mmap_v3.rtrsnap", options);

  StatusOr<SnapshotFileInfo> info = ReadSnapshotFileInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, kSnapshotF32Version);
  EXPECT_TRUE(info->has_f32_probs);

  for (Graph loaded : {LoadGraphSnapshotFromFile(path).value(),
                       LoadGraphMapped(path).value()}) {
    ASSERT_TRUE(loaded.has_f32_probs());
    ASSERT_EQ(loaded.out_probs_f32().size(), g.out_probs().size());
    ASSERT_EQ(loaded.in_probs_f32().size(), g.in_probs().size());
    for (size_t i = 0; i < g.out_probs().size(); ++i) {
      // Element-exact cast of the f64 column, per the v3 contract.
      EXPECT_EQ(loaded.out_probs_f32()[i],
                static_cast<float>(g.out_probs()[i]));
    }
    for (size_t i = 0; i < g.in_probs().size(); ++i) {
      EXPECT_EQ(loaded.in_probs_f32()[i],
                static_cast<float>(g.in_probs()[i]));
    }
  }
}

TEST(MmapTest, PopulateF32ProbsMatchesTheV3Columns) {
  Graph g = RandomGraph(11, 64);
  SnapshotWriteOptions options;
  options.f32_probs = true;
  const std::string path = WriteSnapshot(g, "mmap_populate.rtrsnap", options);
  Graph from_file = LoadGraphSnapshotFromFile(path).value();

  EXPECT_FALSE(g.has_f32_probs());
  g.PopulateF32Probs();
  ASSERT_TRUE(g.has_f32_probs());
  ExpectColumnsEq(g.out_probs_f32(), from_file.out_probs_f32());
  ExpectColumnsEq(g.in_probs_f32(), from_file.in_probs_f32());
}

// The copy-on-write regression of the satellite list: applying a delta to
// a mapped base generation must build the next generation in owning
// storage, leave the mapped base untouched, and match a from-scratch
// rebuild byte for byte.
TEST(MmapTest, StoreApplyOnMappedBaseCopiesOnWrite) {
  const Graph base = RandomGraph(21, 100);
  SnapshotWriteOptions options;
  options.generation = 7;
  const std::string path = WriteSnapshot(base, "mmap_cow.rtrsnap", options);

  StatusOr<std::unique_ptr<GraphStore>> store =
      GraphStore::Open(path, MapMode::kRequire);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PinnedGraph pinned = (*store)->Pin();
  ASSERT_TRUE(pinned.graph->is_mapped());
  EXPECT_EQ(pinned.generation, 7u);

  GraphDelta delta;
  delta.base_generation = 7;
  delta.added_node_types = {kUntypedNode};
  NodeId with_arc = kInvalidNode;
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    if (!base.out_targets(v).empty()) {
      with_arc = v;
      break;
    }
  }
  ASSERT_NE(with_arc, kInvalidNode);
  delta.removed_arcs.push_back({with_arc, base.out_targets(with_arc)[0]});
  delta.added_arcs.push_back({static_cast<NodeId>(base.num_nodes()), 3, 2.5});
  delta.added_arcs.push_back({5, static_cast<NodeId>(base.num_nodes()), 1.5});

  StatusOr<uint64_t> next = (*store)->Apply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, 8u);

  // The published generation owns its columns; the retired mapped base is
  // intact under the still-held pin.
  std::shared_ptr<const Graph> current = (*store)->Current();
  EXPECT_FALSE(current->is_mapped());
  EXPECT_TRUE(pinned.graph->is_mapped());
  ExpectGraphsIdentical(base, *pinned.graph);

  // The mapped-base application matches the owning-base application.
  Graph owning_base = LoadGraphSnapshotFromFile(path).value();
  StatusOr<Graph> from_scratch = ApplyDelta(owning_base, delta);
  ASSERT_TRUE(from_scratch.ok()) << from_scratch.status().ToString();
  ExpectGraphsIdentical(*from_scratch, *current);
}

// A v3 mapped base hands the f32 capability down through delta catch-up.
TEST(MmapTest, ApplyOnMappedV3BaseKeepsF32Probs) {
  const Graph base = RandomGraph(31, 60);
  SnapshotWriteOptions options;
  options.generation = 1;
  options.f32_probs = true;
  const std::string path = WriteSnapshot(base, "mmap_cow_f32.rtrsnap",
                                         options);
  StatusOr<std::unique_ptr<GraphStore>> store =
      GraphStore::Open(path, MapMode::kRequire);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Current()->has_f32_probs());

  GraphDelta delta;
  delta.base_generation = 1;
  delta.added_arcs.push_back({2, 9, 4.0});
  ASSERT_TRUE((*store)->Apply(delta).ok());

  std::shared_ptr<const Graph> next = (*store)->Current();
  ASSERT_TRUE(next->has_f32_probs());
  EXPECT_FALSE(next->is_mapped());
  for (size_t i = 0; i < next->out_probs().size(); ++i) {
    EXPECT_EQ(next->out_probs_f32()[i],
              static_cast<float>(next->out_probs()[i]));
  }
}

}  // namespace
}  // namespace rtr
