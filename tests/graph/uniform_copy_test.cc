#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"

namespace rtr {
namespace {

Graph WeightedGraph() {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("x");
  b.AddNodes(4, t);
  b.AddDirectedEdge(0, 1, 10.0);
  b.AddDirectedEdge(0, 2, 1.0);
  b.AddDirectedEdge(0, 3, 1.0);
  b.AddDirectedEdge(1, 0, 5.0);
  b.AddUndirectedEdge(2, 3, 7.0);
  return b.Build().value();
}

TEST(UniformWeightCopyTest, StructurePreserved) {
  Graph g = WeightedGraph();
  Graph u = UniformWeightCopy(g);
  ASSERT_EQ(u.num_nodes(), g.num_nodes());
  ASSERT_EQ(u.num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(u.node_type(v), g.node_type(v));
    auto a = g.out_targets(v);
    auto b = u.out_targets(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
    }
  }
  EXPECT_EQ(u.type_names(), g.type_names());
}

TEST(UniformWeightCopyTest, TransitionsBecomeUniform) {
  Graph g = WeightedGraph();
  Graph u = UniformWeightCopy(g);
  // Original: heavily skewed toward node 1.
  EXPECT_GT(g.TransitionProb(0, 1), 0.8);
  // Copy: uniform over the three out-arcs.
  EXPECT_NEAR(u.TransitionProb(0, 1), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(u.TransitionProb(0, 2), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(u.TransitionProb(0, 3), 1.0 / 3.0, 1e-15);
  for (NodeId v = 0; v < u.num_nodes(); ++v) {
    for (double w : u.out_arc_weights(v)) {
      EXPECT_DOUBLE_EQ(w, 1.0);
    }
  }
}

TEST(UniformWeightCopyTest, InArcsMirrorUniformProbabilities) {
  Graph g = WeightedGraph();
  Graph u = UniformWeightCopy(g);
  for (NodeId v = 0; v < u.num_nodes(); ++v) {
    auto sources = u.in_sources(v);
    auto probs = u.in_probs(v);
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_DOUBLE_EQ(probs[i], u.TransitionProb(sources[i], v));
    }
  }
}

TEST(UniformWeightCopyTest, IdempotentOnUnweightedGraph) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  Graph g = b.Build().value();
  Graph u = UniformWeightCopy(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = g.out_probs(v);
    auto c = u.out_probs(v);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i], c[i]);
    }
  }
}

TEST(UniformWeightCopyTest, EmptyGraph) {
  Graph g = GraphBuilder().Build().value();
  Graph u = UniformWeightCopy(g);
  EXPECT_EQ(u.num_nodes(), 0u);
}

}  // namespace
}  // namespace rtr
