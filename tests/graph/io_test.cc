#include "graph/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr {
namespace {

Graph SampleGraph() {
  GraphBuilder b;
  NodeTypeId phrase = b.AddNodeType("phrase");
  NodeTypeId url = b.AddNodeType("url");
  b.AddNode(phrase);
  b.AddNode(url);
  b.AddNode(url);
  b.AddUndirectedEdge(0, 1, 2.5);
  b.AddDirectedEdge(1, 2, 0.75);
  return b.Build().value();
}

TEST(GraphIoTest, RoundTripPreservesStructure) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_type(v), g.node_type(v));
    auto orig = g.out_arcs(v);
    auto got = loaded.out_arcs(v);
    ASSERT_EQ(orig.size(), got.size());
    for (size_t i = 0; i < orig.size(); ++i) {
      EXPECT_EQ(got[i].target, orig[i].target);
      EXPECT_DOUBLE_EQ(got[i].weight, orig[i].weight);
      EXPECT_DOUBLE_EQ(got[i].prob, orig[i].prob);
    }
  }
}

TEST(GraphIoTest, RoundTripPreservesTypeNames) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  EXPECT_EQ(loaded.type_names(), g.type_names());
}

TEST(GraphIoTest, BadHeaderRejected) {
  std::stringstream ss("not-a-graph 1\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, BadVersionRejected) {
  std::stringstream ss("rtr-graph 99\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, TruncatedStreamRejected) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_FALSE(LoadGraphText(truncated).ok());
}

TEST(GraphIoTest, InvalidArcEndpointRejected) {
  std::stringstream ss(
      "rtr-graph 1\n1\nuntyped\n2\n0\n0\n1\n0 7 1.0\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = SampleGraph();
  std::string path = testing::TempDir() + "/rtr_io_test_graph.txt";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  Graph loaded = LoadGraphFromFile(path).value();
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_arcs(), g.num_arcs());
}

TEST(GraphIoTest, MissingFileRejected) {
  EXPECT_FALSE(LoadGraphFromFile("/nonexistent/path/graph.txt").ok());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  Graph g = GraphBuilder().Build().value();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_EQ(loaded.num_arcs(), 0u);
}

}  // namespace
}  // namespace rtr
