#include "graph/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr {
namespace {

Graph SampleGraph() {
  GraphBuilder b;
  NodeTypeId phrase = b.AddNodeType("phrase");
  NodeTypeId url = b.AddNodeType("url");
  b.AddNode(phrase);
  b.AddNode(url);
  b.AddNode(url);
  b.AddUndirectedEdge(0, 1, 2.5);
  b.AddDirectedEdge(1, 2, 0.75);
  return b.Build().value();
}

TEST(GraphIoTest, RoundTripPreservesStructure) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_type(v), g.node_type(v));
    ASSERT_EQ(loaded.out_degree(v), g.out_degree(v));
    auto orig_targets = g.out_targets(v);
    auto got_targets = loaded.out_targets(v);
    auto orig_weights = g.out_arc_weights(v);
    auto got_weights = loaded.out_arc_weights(v);
    auto orig_probs = g.out_probs(v);
    auto got_probs = loaded.out_probs(v);
    for (size_t i = 0; i < orig_targets.size(); ++i) {
      EXPECT_EQ(got_targets[i], orig_targets[i]);
      EXPECT_DOUBLE_EQ(got_weights[i], orig_weights[i]);
      EXPECT_DOUBLE_EQ(got_probs[i], orig_probs[i]);
    }
  }
}

TEST(GraphIoTest, RoundTripPreservesTypeNames) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  EXPECT_EQ(loaded.type_names(), g.type_names());
}

TEST(GraphIoTest, BadHeaderRejected) {
  std::stringstream ss("not-a-graph 1\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, BadVersionRejected) {
  std::stringstream ss("rtr-graph 99\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, TruncatedStreamRejected) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_FALSE(LoadGraphText(truncated).ok());
}

TEST(GraphIoTest, InvalidArcEndpointRejected) {
  std::stringstream ss(
      "rtr-graph 1\n1\nuntyped\n2\n0\n0\n1\n0 7 1.0\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

// Text round-trip on a graph with dangling nodes, several node types and
// merged parallel edges: the 17-significant-digit weights reconstruct the
// prob columns bit-identically.
TEST(GraphIoTest, ProbColumnsBitIdenticalAfterTextRoundTrip) {
  GraphBuilder b;
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId author = b.AddNodeType("author");
  b.AddNode(paper);
  b.AddNode(author);
  b.AddNode(paper);  // dangling
  b.AddNode(kUntypedNode);
  b.AddDirectedEdge(0, 1, 0.1);
  b.AddDirectedEdge(0, 1, 0.2);  // parallel, accumulates with fp round-off
  b.AddDirectedEdge(0, 3, 1.0 / 3.0);
  b.AddDirectedEdge(1, 2, 0.7);
  b.AddUndirectedEdge(1, 3, 0.25);
  Graph g = b.Build().value();

  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  auto expect_bits_eq = [](std::span<const double> a,
                           std::span<const double> b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "index " << i;
    }
  };
  expect_bits_eq(g.out_probs(), loaded.out_probs());
  expect_bits_eq(g.in_probs(), loaded.in_probs());
  expect_bits_eq(g.out_arc_weights(), loaded.out_arc_weights());
}

TEST(GraphIoTest, TrailingGarbageRejected) {
  Graph g = SampleGraph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  ss << "0 1 1.0\n";  // an extra arc beyond the declared count
  StatusOr<Graph> loaded = LoadGraphText(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, ArcCountMismatchRejected) {
  // Header declares 2 arcs but only 1 follows (truncated input).
  std::stringstream ss("rtr-graph 1\n1\nuntyped\n2\n0\n0\n2\n0 1 1.0\n");
  StatusOr<Graph> loaded = LoadGraphText(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, NodeCountOverflowRejected) {
  // 2^32 nodes cannot be indexed by the u32 NodeId.
  std::stringstream ss("rtr-graph 1\n1\nuntyped\n4294967296\n");
  StatusOr<Graph> loaded = LoadGraphText(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, TypeCountOverflowRejected) {
  std::stringstream ss("rtr-graph 1\n70000\nuntyped\n");
  EXPECT_FALSE(LoadGraphText(ss).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = SampleGraph();
  std::string path = testing::TempDir() + "/rtr_io_test_graph.txt";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  Graph loaded = LoadGraphFromFile(path).value();
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_arcs(), g.num_arcs());
}

TEST(GraphIoTest, MissingFileRejected) {
  EXPECT_FALSE(LoadGraphFromFile("/nonexistent/path/graph.txt").ok());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  Graph g = GraphBuilder().Build().value();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_EQ(loaded.num_arcs(), 0u);
}

}  // namespace
}  // namespace rtr
