// Property tests over randomly generated graphs: structural invariants of
// the CSR representation, serialization, subgraphs and irreducibility
// repair, parameterized over seeds.
#include <cmath>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/io.h"
#include "graph/scc.h"
#include "graph/subgraph.h"
#include "util/random.h"

namespace rtr {
namespace {

Graph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  NodeTypeId types[3] = {b.AddNodeType("a"), b.AddNodeType("b"),
                         b.AddNodeType("c")};
  size_t n = 20 + rng.NextUint64(80);
  for (size_t i = 0; i < n; ++i) b.AddNode(types[rng.NextUint64(3)]);
  size_t arcs = n + rng.NextUint64(4 * n);
  for (size_t e = 0; e < arcs; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (rng.NextBernoulli(0.5)) {
      b.AddUndirectedEdge(u, v, 0.1 + rng.NextDouble());
    } else {
      b.AddDirectedEdge(u, v, 0.1 + rng.NextDouble());
    }
  }
  return b.Build().value();
}

class GraphProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphProperties, TransitionProbabilitiesRowStochastic) {
  Graph g = RandomGraph(GetParam());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double total = 0.0;
    auto probs = g.out_probs(v);
    auto weights = g.out_arc_weights(v);
    for (size_t i = 0; i < probs.size(); ++i) {
      EXPECT_GT(probs[i], 0.0);
      EXPECT_GT(weights[i], 0.0);
      total += probs[i];
    }
    if (g.out_degree(v) > 0) {
      EXPECT_NEAR(total, 1.0, 1e-12) << "node " << v;
    }
  }
}

TEST_P(GraphProperties, InArcsExactlyMirrorOutArcs) {
  Graph g = RandomGraph(GetParam() + 100);
  std::map<std::pair<NodeId, NodeId>, double> out_probs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto targets = g.out_targets(v);
    auto probs = g.out_probs(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      // No duplicate arcs after builder merging.
      auto inserted = out_probs.emplace(std::make_pair(v, targets[i]),
                                        probs[i]);
      EXPECT_TRUE(inserted.second);
    }
  }
  size_t in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto sources = g.in_sources(v);
    auto probs = g.in_probs(v);
    for (size_t i = 0; i < sources.size(); ++i) {
      ++in_total;
      auto it = out_probs.find({sources[i], v});
      ASSERT_NE(it, out_probs.end());
      EXPECT_DOUBLE_EQ(probs[i], it->second);
    }
  }
  EXPECT_EQ(in_total, out_probs.size());
  EXPECT_EQ(in_total, g.num_arcs());
}

TEST_P(GraphProperties, SerializationRoundTripsExactly) {
  Graph g = RandomGraph(GetParam() + 200);
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphText(g, ss).ok());
  Graph loaded = LoadGraphText(ss).value();
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_type(v), g.node_type(v));
    auto a_targets = g.out_targets(v);
    auto b_targets = loaded.out_targets(v);
    auto a_weights = g.out_arc_weights(v);
    auto b_weights = loaded.out_arc_weights(v);
    ASSERT_EQ(a_targets.size(), b_targets.size());
    for (size_t i = 0; i < a_targets.size(); ++i) {
      EXPECT_EQ(a_targets[i], b_targets[i]);
      EXPECT_DOUBLE_EQ(a_weights[i], b_weights[i]);
    }
  }
}

TEST_P(GraphProperties, MakeIrreducibleIsIdempotentInStructure) {
  Graph g = RandomGraph(GetParam() + 300);
  Graph fixed = MakeIrreducible(g).value();
  EXPECT_TRUE(IsStronglyConnected(fixed));
  // A second application must be a no-op.
  Graph twice = MakeIrreducible(fixed).value();
  EXPECT_EQ(twice.num_arcs(), fixed.num_arcs());
}

TEST_P(GraphProperties, InducedSubgraphOfAllNodesIsIdentity) {
  Graph g = RandomGraph(GetParam() + 400);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
  Subgraph sub = InducedSubgraph(g, all).value();
  EXPECT_EQ(sub.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(sub.graph.num_arcs(), g.num_arcs());
}

TEST_P(GraphProperties, SubgraphArcsSubsetOfParent) {
  Graph g = RandomGraph(GetParam() + 500);
  Rng rng(GetParam() + 501);
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(g.num_nodes(), g.num_nodes() / 2);
  std::vector<NodeId> nodes(picks.begin(), picks.end());
  Subgraph sub = InducedSubgraph(g, nodes).value();
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    auto sub_targets = sub.graph.out_targets(v);
    auto sub_weights = sub.graph.out_arc_weights(v);
    for (size_t i = 0; i < sub_targets.size(); ++i) {
      NodeId pu = sub.to_parent[v];
      NodeId pv = sub.to_parent[sub_targets[i]];
      bool found = false;
      auto parent_targets = g.out_targets(pu);
      auto parent_weights = g.out_arc_weights(pu);
      for (size_t j = 0; j < parent_targets.size(); ++j) {
        if (parent_targets[j] == pv) {
          EXPECT_DOUBLE_EQ(parent_weights[j], sub_weights[i]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(GraphProperties, SccPartitionIsConsistent) {
  Graph g = RandomGraph(GetParam() + 600);
  SccResult scc = ComputeScc(g);
  EXPECT_GT(scc.num_components, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_GE(scc.component[v], 0);
    ASSERT_LT(scc.component[v], scc.num_components);
    // Arcs never point from a lower to a higher Tarjan component index
    // (reverse topological numbering).
    for (NodeId target : g.out_targets(v)) {
      EXPECT_GE(scc.component[v], scc.component[target]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rtr
