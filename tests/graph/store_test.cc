// GraphStore (graph/store.h): pin/publish/retire semantics of the RCU-style
// generation swap, the stale-delta handshake, disk bring-up + catch-up, and
// a swap-under-load stress run (the TSan target for the serving path's
// live-update story).
#include "graph/store.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/io.h"
#include "graph/snapshot.h"

namespace rtr {
namespace {

Graph ChainGraph(size_t n) {
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    b.AddDirectedEdge(v, v + 1, 1.0);
    b.AddDirectedEdge(v + 1, v, 0.5);
  }
  return b.Build().value();
}

// The delta that appends one node to an n-node chain graph.
GraphDelta GrowChain(uint64_t base_generation, size_t n) {
  GraphDelta delta;
  delta.base_generation = base_generation;
  delta.added_node_types = {kUntypedNode};
  delta.added_arcs = {
      {static_cast<NodeId>(n - 1), static_cast<NodeId>(n), 1.0},
      {static_cast<NodeId>(n), static_cast<NodeId>(n - 1), 0.5}};
  return delta;
}

TEST(GraphStoreTest, InitialStateAndPin) {
  GraphStore store(ChainGraph(4), 7);
  EXPECT_EQ(store.generation(), 7u);
  EXPECT_EQ(store.swap_count(), 0u);
  EXPECT_EQ(store.live_generations(), 1u);

  PinnedGraph pinned = store.Pin();
  EXPECT_EQ(pinned.generation, 7u);
  ASSERT_NE(pinned.graph, nullptr);
  EXPECT_EQ(pinned.graph->num_nodes(), 4u);
  EXPECT_EQ(store.Current().get(), pinned.graph.get());
}

TEST(GraphStoreTest, ApplyAdvancesGenerationWithoutDisturbingReaders) {
  GraphStore store(ChainGraph(4));
  PinnedGraph before = store.Pin();

  StatusOr<uint64_t> gen = store.Apply(GrowChain(0, 4));
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_EQ(*gen, 1u);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.swap_count(), 1u);

  // The pre-swap reader still holds an intact generation 0.
  EXPECT_EQ(before.generation, 0u);
  EXPECT_EQ(before.graph->num_nodes(), 4u);
  PinnedGraph after = store.Pin();
  EXPECT_EQ(after.generation, 1u);
  EXPECT_EQ(after.graph->num_nodes(), 5u);
  EXPECT_NE(after.graph.get(), before.graph.get());
}

TEST(GraphStoreTest, RetiredGenerationLivesUntilItsLastReaderDrains) {
  GraphStore store(ChainGraph(4));
  auto pin = std::make_unique<PinnedGraph>(store.Pin());
  ASSERT_TRUE(store.Apply(GrowChain(0, 4)).ok());
  // Current generation plus the retired-but-pinned one.
  EXPECT_EQ(store.live_generations(), 2u);
  pin.reset();  // last reader of generation 0 drains
  EXPECT_EQ(store.live_generations(), 1u);
}

TEST(GraphStoreTest, StaleDeltaRejected) {
  GraphStore store(ChainGraph(4), 3);
  GraphDelta stale = GrowChain(2, 4);  // names generation 2, store is at 3
  StatusOr<uint64_t> gen = store.Apply(stale);
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_EQ(store.swap_count(), 0u);
}

TEST(GraphStoreTest, MalformedDeltaLeavesStoreUnchanged) {
  GraphStore store(ChainGraph(4));
  GraphDelta bad;
  bad.added_arcs = {{0, 99, 1.0}};  // dangling target
  StatusOr<uint64_t> gen = store.Apply(bad);
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.generation(), 0u);
  EXPECT_EQ(store.Pin().graph->num_nodes(), 4u);
}

TEST(GraphStoreTest, PublishEnforcesDenseGenerationIds) {
  GraphStore store(ChainGraph(4), 5);
  Status skip = store.Publish(ChainGraph(6), 7);  // 5 -> 7 skips 6
  ASSERT_FALSE(skip.ok());
  EXPECT_EQ(skip.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(store.Publish(ChainGraph(6), 6).ok());
  EXPECT_EQ(store.generation(), 6u);
  EXPECT_EQ(store.Pin().graph->num_nodes(), 6u);
}

TEST(GraphStoreTest, OpenSnapshotAndCatchUpFromDeltaFiles) {
  const std::string dir = testing::TempDir();
  const std::string base_path = dir + "/rtr_store_base.rtrsnap";
  const std::string d1_path = dir + "/rtr_store_d1.rtrdelta";
  const std::string d2_path = dir + "/rtr_store_d2.rtrdelta";
  ASSERT_TRUE(SaveGraphSnapshotToFile(ChainGraph(4), base_path, 5).ok());
  ASSERT_TRUE(SaveGraphDeltaToFile(GrowChain(5, 4), d1_path).ok());
  ASSERT_TRUE(SaveGraphDeltaToFile(GrowChain(6, 5), d2_path).ok());

  StatusOr<std::unique_ptr<GraphStore>> store = GraphStore::Open(base_path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->generation(), 5u);

  // Replaying out of order is a FailedPrecondition, not a rebase.
  StatusOr<uint64_t> wrong = (*store)->CatchUp(d2_path);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_EQ((*store)->CatchUp(d1_path).value(), 6u);
  ASSERT_EQ((*store)->CatchUp(d2_path).value(), 7u);
  EXPECT_EQ((*store)->Pin().graph->num_nodes(), 6u);

  // The caught-up store matches an in-memory application chain.
  GraphStore reference(ChainGraph(4), 5);
  ASSERT_TRUE(reference.Apply(GrowChain(5, 4)).ok());
  ASSERT_TRUE(reference.Apply(GrowChain(6, 5)).ok());
  EXPECT_EQ((*store)->Pin().graph->num_arcs(),
            reference.Pin().graph->num_arcs());
}

TEST(GraphStoreTest, OpenTextGraphStartsAtGenerationZero) {
  const std::string path = testing::TempDir() + "/rtr_store_text.txt";
  ASSERT_TRUE(SaveGraphToFile(ChainGraph(3), path).ok());
  StatusOr<std::unique_ptr<GraphStore>> store = GraphStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->generation(), 0u);
  EXPECT_EQ((*store)->Pin().graph->num_nodes(), 3u);
}

TEST(GraphStoreTest, CatchUpRejectsCorruptDeltaFile) {
  const std::string path = testing::TempDir() + "/rtr_store_corrupt.rtrdelta";
  std::ostringstream bytes;
  ASSERT_TRUE(SaveGraphDelta(GrowChain(0, 4), bytes).ok());
  std::string buf = bytes.str();
  buf[buf.size() - 1] ^= 0x01;  // checksum mismatch
  std::ofstream(path, std::ios::binary | std::ios::trunc) << buf;

  GraphStore store(ChainGraph(4));
  StatusOr<uint64_t> gen = store.CatchUp(path);
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.generation(), 0u);
}

// The RCU claim under load: readers pin and traverse generations while a
// writer publishes a stream of them; every pinned graph must stay
// internally consistent for the whole pin. Run under TSan in CI.
TEST(GraphStoreTest, SwapUnderLoadKeepsPinnedGenerationsConsistent) {
  constexpr size_t kInitialNodes = 16;
  constexpr int kSwaps = 24;
  constexpr int kReaders = 3;
  GraphStore store(ChainGraph(kInitialNodes));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> traversals{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        PinnedGraph pinned = store.Pin();
        // Generations are published in order; a reader can never observe
        // them going backwards.
        ASSERT_GE(pinned.generation, last_seen);
        last_seen = pinned.generation;
        // Each generation appends one node to the chain, so the node count
        // identifies the generation — a torn read would break this.
        ASSERT_EQ(pinned.graph->num_nodes(),
                  kInitialNodes + pinned.generation);
        // Full forward chain walk (targets are sorted, so the forward edge
        // is each row's last entry): every offset/target read races with
        // the writer unless the swap is properly synchronized.
        size_t hops = 0;
        for (NodeId v = 0; v + 1 < pinned.graph->num_nodes(); ++v) {
          std::span<const NodeId> targets = pinned.graph->out_targets(v);
          ASSERT_FALSE(targets.empty());
          ASSERT_EQ(targets.back(), v + 1);
          ++hops;
        }
        ASSERT_EQ(hops + 1, pinned.graph->num_nodes());
        traversals.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    StatusOr<uint64_t> gen = store.Apply(
        GrowChain(static_cast<uint64_t>(i), kInitialNodes + i));
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  }
  // Keep serving until every reader has demonstrably walked a pin, so the
  // test cannot pass vacuously when the writer outruns the scheduler.
  while (traversals.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(kReaders)) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(store.generation(), static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(store.swap_count(), static_cast<uint64_t>(kSwaps));
  EXPECT_GE(traversals.load(), static_cast<uint64_t>(kReaders));
  // All readers drained: only the current generation is live.
  EXPECT_EQ(store.live_generations(), 1u);
}

}  // namespace
}  // namespace rtr
