#include "graph/scc.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr {
namespace {

Graph Cycle(size_t n) {
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 0; v < n; ++v) {
    b.AddDirectedEdge(v, static_cast<NodeId>((v + 1) % n), 1.0);
  }
  return b.Build().value();
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g = Cycle(5);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(SccTest, ChainIsAllSingletons) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  b.AddDirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 4);
  EXPECT_FALSE(IsStronglyConnected(g));
  // Tarjan order: downstream components get smaller indices.
  EXPECT_GT(scc.component[0], scc.component[1]);
  EXPECT_GT(scc.component[1], scc.component[2]);
  EXPECT_GT(scc.component[2], scc.component[3]);
}

TEST(SccTest, TwoCyclesLinked) {
  GraphBuilder b;
  b.AddNodes(6);
  // cycle A: 0->1->2->0; cycle B: 3->4->5->3; bridge 2->3.
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  b.AddDirectedEdge(2, 0, 1.0);
  b.AddDirectedEdge(3, 4, 1.0);
  b.AddDirectedEdge(4, 5, 1.0);
  b.AddDirectedEdge(5, 3, 1.0);
  b.AddDirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  // Arc from component of node 0 to component of node 3 implies the former
  // has a larger Tarjan index.
  EXPECT_GT(scc.component[0], scc.component[3]);
}

TEST(SccTest, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_EQ(ComputeScc(g).num_components, 0);
}

TEST(SccTest, IsolatedNodes) {
  GraphBuilder b;
  b.AddNodes(3);
  Graph g = b.Build().value();
  EXPECT_EQ(ComputeScc(g).num_components, 3);
}

TEST(SccTest, DeepChainNoStackOverflow) {
  // 200k-node chain would blow a recursive Tarjan; the iterative version
  // must handle it.
  const size_t kN = 200000;
  GraphBuilder b;
  b.AddNodes(kN);
  for (NodeId v = 0; v + 1 < kN; ++v) b.AddDirectedEdge(v, v + 1, 1.0);
  Graph g = b.Build().value();
  EXPECT_EQ(ComputeScc(g).num_components, static_cast<int>(kN));
}

TEST(MakeIrreducibleTest, AlreadyIrreducibleUnchanged) {
  Graph g = Cycle(4);
  Graph fixed = MakeIrreducible(g).value();
  EXPECT_EQ(fixed.num_arcs(), g.num_arcs());
}

TEST(MakeIrreducibleTest, ChainBecomesStronglyConnected) {
  GraphBuilder b;
  b.AddNodes(5);
  for (NodeId v = 0; v + 1 < 5; ++v) b.AddDirectedEdge(v, v + 1, 1.0);
  Graph g = b.Build().value();
  ASSERT_FALSE(IsStronglyConnected(g));
  Graph fixed = MakeIrreducible(g, 1e-3).value();
  EXPECT_TRUE(IsStronglyConnected(fixed));
  // One dummy arc per component.
  EXPECT_EQ(fixed.num_arcs(), g.num_arcs() + 5);
}

TEST(MakeIrreducibleTest, IsolatedNodesConnected) {
  GraphBuilder b;
  b.AddNodes(4);
  Graph g = b.Build().value();
  Graph fixed = MakeIrreducible(g).value();
  EXPECT_TRUE(IsStronglyConnected(fixed));
}

TEST(MakeIrreducibleTest, DummyWeightIsSmall) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 100.0);
  Graph g = b.Build().value();
  Graph fixed = MakeIrreducible(g, 1e-3).value();
  ASSERT_TRUE(IsStronglyConnected(fixed));
  // Node 0's real arc keeps essentially all the probability mass.
  EXPECT_GT(fixed.TransitionProb(0, 1), 0.9999);
}

TEST(MakeIrreducibleTest, RejectsBadEpsilon) {
  Graph g = Cycle(3);
  EXPECT_FALSE(MakeIrreducible(g, 0.0).ok());
  EXPECT_FALSE(MakeIrreducible(g, -1.0).ok());
}

TEST(MakeIrreducibleTest, PreservesNodeTypes) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("phrase");
  b.AddNode(t);
  b.AddNode(t);
  Graph g = b.Build().value();
  Graph fixed = MakeIrreducible(g).value();
  EXPECT_EQ(fixed.node_type(0), t);
  EXPECT_EQ(fixed.type_name(t), "phrase");
}

}  // namespace
}  // namespace rtr
