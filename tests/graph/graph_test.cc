#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr {
namespace {

// Builds the toy bibliographic graph of Fig. 2 in the paper:
// terms t1, t2; papers p1..p7; venues v1, v2, v3. All edges undirected with
// unit weight.
//   t1 - p1, p2 (v1); t1 - p3, p4 (v2); t1 - p5 (v3); t2 - p6, p7 (v1).
struct ToyGraph {
  Graph graph;
  NodeId t1, t2;
  NodeId p[7];
  NodeId v1, v2, v3;
};

ToyGraph MakeToyGraph() {
  GraphBuilder b;
  NodeTypeId term = b.AddNodeType("term");
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId venue = b.AddNodeType("venue");
  ToyGraph toy;
  toy.t1 = b.AddNode(term);
  toy.t2 = b.AddNode(term);
  for (auto& pid : toy.p) pid = b.AddNode(paper);
  toy.v1 = b.AddNode(venue);
  toy.v2 = b.AddNode(venue);
  toy.v3 = b.AddNode(venue);
  // term-paper edges
  b.AddUndirectedEdge(toy.t1, toy.p[0], 1.0);
  b.AddUndirectedEdge(toy.t1, toy.p[1], 1.0);
  b.AddUndirectedEdge(toy.t1, toy.p[2], 1.0);
  b.AddUndirectedEdge(toy.t1, toy.p[3], 1.0);
  b.AddUndirectedEdge(toy.t1, toy.p[4], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[5], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[6], 1.0);
  // paper-venue edges
  b.AddUndirectedEdge(toy.p[0], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[1], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[5], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[6], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[2], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[3], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[4], toy.v3, 1.0);
  toy.graph = b.Build().value();
  return toy;
}

TEST(GraphTest, ToyGraphShape) {
  ToyGraph toy = MakeToyGraph();
  EXPECT_EQ(toy.graph.num_nodes(), 12u);
  EXPECT_EQ(toy.graph.num_arcs(), 28u);  // 14 undirected edges
  // t1 links five papers; v1 accepts four papers.
  EXPECT_EQ(toy.graph.out_degree(toy.t1), 5u);
  EXPECT_EQ(toy.graph.out_degree(toy.v1), 4u);
  EXPECT_EQ(toy.graph.out_degree(toy.v3), 1u);
}

TEST(GraphTest, ToyGraphTransitionProbsMatchPaperExample) {
  // p(t1 -> p1) = 1/5, p(p1 -> v1) = 1/2, p(v1 -> p1) = 1/4: the paper's
  // round trip t1->p1->v1->p1->t1 has probability 1/5 * 1/2 * 1/4 * 1/2.
  ToyGraph toy = MakeToyGraph();
  const Graph& g = toy.graph;
  EXPECT_DOUBLE_EQ(g.TransitionProb(toy.t1, toy.p[0]), 0.2);
  EXPECT_DOUBLE_EQ(g.TransitionProb(toy.p[0], toy.v1), 0.5);
  EXPECT_DOUBLE_EQ(g.TransitionProb(toy.v1, toy.p[0]), 0.25);
  EXPECT_DOUBLE_EQ(g.TransitionProb(toy.p[0], toy.t1), 0.5);
  double trip = 0.2 * 0.5 * 0.25 * 0.5;
  EXPECT_NEAR(trip, 0.0125, 1e-15);
}

TEST(GraphTest, NodesOfType) {
  ToyGraph toy = MakeToyGraph();
  const Graph& g = toy.graph;
  NodeTypeId venue = 3;  // untyped=0, term=1, paper=2, venue=3
  std::vector<NodeId> venues = g.NodesOfType(venue);
  ASSERT_EQ(venues.size(), 3u);
  EXPECT_EQ(venues[0], toy.v1);
  EXPECT_EQ(venues[2], toy.v3);
}

TEST(GraphTest, TransitionProbMissingArcIsZero) {
  ToyGraph toy = MakeToyGraph();
  EXPECT_DOUBLE_EQ(toy.graph.TransitionProb(toy.t1, toy.v1), 0.0);
  EXPECT_DOUBLE_EQ(toy.graph.TransitionProb(toy.t1, toy.t2), 0.0);
}

TEST(GraphTest, MemoryBytesPositiveAndGrows) {
  ToyGraph toy = MakeToyGraph();
  size_t small = toy.graph.MemoryBytes();
  EXPECT_GT(small, 0u);
  GraphBuilder b;
  b.AddNodes(1000);
  for (NodeId v = 0; v + 1 < 1000; ++v) b.AddDirectedEdge(v, v + 1, 1.0);
  Graph big = b.Build().value();
  EXPECT_GT(big.MemoryBytes(), small);
}

TEST(GraphTest, AverageDegree) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  Graph g = b.Build().value();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.5);
  EXPECT_DOUBLE_EQ(Graph().AverageDegree(), 0.0);
}

TEST(GraphTest, InArcSpanContents) {
  ToyGraph toy = MakeToyGraph();
  const Graph& g = toy.graph;
  // v2's in-arcs come from p3 and p4 (papers with prob 1/2 each).
  auto sources = g.in_sources(toy.v2);
  auto probs = g.in_probs(toy.v2);
  ASSERT_EQ(sources.size(), 2u);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_TRUE(sources[i] == toy.p[2] || sources[i] == toy.p[3]);
    EXPECT_DOUBLE_EQ(probs[i], 0.5);
  }
}

}  // namespace
}  // namespace rtr
