#include "graph/builder.h"

#include <gtest/gtest.h>

namespace rtr {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  StatusOr<Graph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0u);
  EXPECT_EQ(g->num_arcs(), 0u);
}

TEST(GraphBuilderTest, NodeTypesRegisteredAndDeduplicated) {
  GraphBuilder b;
  NodeTypeId paper = b.AddNodeType("paper");
  NodeTypeId venue = b.AddNodeType("venue");
  EXPECT_NE(paper, venue);
  EXPECT_EQ(b.AddNodeType("paper"), paper);
  NodeId p = b.AddNode(paper);
  NodeId v = b.AddNode(venue);
  Graph g = b.Build().value();
  EXPECT_EQ(g.node_type(p), paper);
  EXPECT_EQ(g.node_type(v), venue);
  EXPECT_EQ(g.type_name(paper), "paper");
  EXPECT_EQ(g.type_names()[0], "untyped");
}

TEST(GraphBuilderTest, AddNodesBulk) {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("term");
  NodeId first = b.AddNodes(5, t);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(b.num_nodes(), 5u);
  Graph g = b.Build().value();
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.node_type(v), t);
}

TEST(GraphBuilderTest, DirectedEdgeAppearsOnce) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 2.0);
  Graph g = b.Build().value();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_DOUBLE_EQ(g.out_arc_weights(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(g.out_probs(0)[0], 1.0);
  EXPECT_EQ(g.out_targets(0)[0], 1u);
}

TEST(GraphBuilderTest, UndirectedEdgeMakesTwoArcs) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddUndirectedEdge(0, 1, 3.0);
  Graph g = b.Build().value();
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(GraphBuilderTest, ParallelArcsMergeWeights) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(0, 1, 2.5);
  Graph g = b.Build().value();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.out_arc_weights(0)[0], 3.5);
}

TEST(GraphBuilderTest, TransitionProbabilitiesRowStochastic) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(0, 2, 2.0);
  b.AddDirectedEdge(0, 3, 1.0);
  Graph g = b.Build().value();
  double total = 0.0;
  for (double prob : g.out_probs(0)) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(g.TransitionProb(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.TransitionProb(0, 1), 0.25);
}

TEST(GraphBuilderTest, InArcsMirrorOutProbabilities) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 2, 1.0);
  b.AddDirectedEdge(0, 1, 3.0);
  b.AddDirectedEdge(1, 2, 5.0);
  Graph g = b.Build().value();
  ASSERT_EQ(g.in_degree(2), 2u);
  auto sources = g.in_sources(2);
  auto probs = g.in_probs(2);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_DOUBLE_EQ(probs[i], g.TransitionProb(sources[i], 2));
  }
}

TEST(GraphBuilderTest, SelfLoopAllowed) {
  GraphBuilder b;
  b.AddNodes(1);
  b.AddDirectedEdge(0, 0, 1.0);
  Graph g = b.Build().value();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.TransitionProb(0, 0), 1.0);
}

TEST(GraphBuilderTest, OutWeightAccumulates) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.5);
  b.AddDirectedEdge(0, 2, 2.5);
  Graph g = b.Build().value();
  EXPECT_DOUBLE_EQ(g.out_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(g.out_weight(1), 0.0);
}

TEST(GraphBuilderTest, BuildIsRepeatable) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  Graph g1 = b.Build().value();
  Graph g2 = b.Build().value();
  EXPECT_EQ(g1.num_arcs(), g2.num_arcs());
  EXPECT_EQ(g1.num_nodes(), g2.num_nodes());
}

}  // namespace
}  // namespace rtr
