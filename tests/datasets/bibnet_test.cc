#include "datasets/bibnet.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/scc.h"

namespace rtr::datasets {
namespace {

BibNetConfig SmallConfig() {
  BibNetConfig config;
  config.num_areas = 2;
  config.topics_per_area = 3;
  config.major_venues_per_area = 2;
  config.num_authors = 200;
  config.num_papers = 800;
  config.terms_per_topic = 15;
  config.shared_terms = 40;
  return config;
}

const BibNet& SmallNet() {
  static const BibNet* net =
      new BibNet(BibNet::Generate(SmallConfig()).value());
  return *net;
}

TEST(BibNetTest, NodeCountsMatchConfig) {
  const BibNet& net = SmallNet();
  const BibNetConfig& c = net.config();
  int num_topics = c.num_areas * c.topics_per_area;
  size_t expected_venues =
      static_cast<size_t>(c.num_areas * c.major_venues_per_area + num_topics);
  EXPECT_EQ(net.venues().size(), expected_venues);
}

TEST(BibNetTest, DeterministicForSameSeed) {
  BibNet a = BibNet::Generate(SmallConfig()).value();
  BibNet b = BibNet::Generate(SmallConfig()).value();
  EXPECT_EQ(a.graph().num_nodes(), b.graph().num_nodes());
  EXPECT_EQ(a.graph().num_arcs(), b.graph().num_arcs());
  for (size_t i = 0; i < a.papers().size(); ++i) {
    EXPECT_EQ(a.papers()[i].venue, b.papers()[i].venue);
    EXPECT_EQ(a.papers()[i].authors, b.papers()[i].authors);
  }
}

TEST(BibNetTest, DifferentSeedsDiffer) {
  BibNetConfig other = SmallConfig();
  other.seed += 1;
  BibNet a = BibNet::Generate(SmallConfig()).value();
  BibNet b = BibNet::Generate(other).value();
  bool any_diff = a.graph().num_arcs() != b.graph().num_arcs();
  for (size_t i = 0; !any_diff && i < a.papers().size(); ++i) {
    any_diff = a.papers()[i].venue != b.papers()[i].venue;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BibNetTest, EveryPaperHasVenueAuthorsTerms) {
  const BibNet& net = SmallNet();
  for (const BibNet::Paper& paper : net.papers()) {
    EXPECT_NE(paper.venue, kInvalidNode);
    EXPECT_GE(paper.authors.size(), 1u);
    EXPECT_LE(paper.authors.size(),
              static_cast<size_t>(net.config().max_authors_per_paper));
    EXPECT_GE(paper.terms.size(), 1u);
    EXPECT_EQ(net.graph().node_type(paper.node), net.paper_type());
    EXPECT_EQ(net.graph().node_type(paper.venue), net.venue_type());
  }
}

TEST(BibNetTest, CitationsPointToEarlierPapers) {
  const BibNet& net = SmallNet();
  // Paper nodes are created in chronological order, so a citation target
  // must have a smaller node id than the citing paper.
  for (const BibNet::Paper& paper : net.papers()) {
    for (NodeId cited : paper.citations) {
      EXPECT_LT(cited, paper.node);
      EXPECT_EQ(net.graph().node_type(cited), net.paper_type());
    }
  }
}

TEST(BibNetTest, YearsNondecreasingAndInRange) {
  const BibNet& net = SmallNet();
  int prev = net.config().first_year;
  for (const BibNet::Paper& paper : net.papers()) {
    EXPECT_GE(paper.year, prev);
    EXPECT_LE(paper.year, net.config().last_year);
    prev = paper.year;
  }
}

TEST(BibNetTest, GraphEdgesMatchMetadata) {
  const BibNet& net = SmallNet();
  const Graph& g = net.graph();
  const BibNet::Paper& paper = net.papers()[10];
  // Venue, authors, terms are mutual neighbors of the paper.
  EXPECT_GT(g.TransitionProb(paper.node, paper.venue), 0.0);
  EXPECT_GT(g.TransitionProb(paper.venue, paper.node), 0.0);
  for (NodeId a : paper.authors) {
    EXPECT_GT(g.TransitionProb(paper.node, a), 0.0);
    EXPECT_GT(g.TransitionProb(a, paper.node), 0.0);
  }
  for (NodeId t : paper.terms) {
    EXPECT_GT(g.TransitionProb(paper.node, t), 0.0);
  }
  for (NodeId cited : paper.citations) {
    EXPECT_GT(g.TransitionProb(paper.node, cited), 0.0);
  }
}

TEST(BibNetTest, MajorVenuesDrawMorePapersThanSpecialized) {
  const BibNet& net = SmallNet();
  const Graph& g = net.graph();
  double major_total = 0.0, spec_total = 0.0;
  int majors = 0, specs = 0;
  for (const BibNet::Venue& venue : net.venues()) {
    if (venue.major) {
      major_total += static_cast<double>(g.out_degree(venue.node));
      ++majors;
    } else {
      spec_total += static_cast<double>(g.out_degree(venue.node));
      ++specs;
    }
  }
  ASSERT_GT(majors, 0);
  ASSERT_GT(specs, 0);
  EXPECT_GT(major_total / majors, 1.5 * spec_total / specs);
}

TEST(BibNetTest, AuthorTaskRemovesGroundTruthEdges) {
  const BibNet& net = SmallNet();
  EvalTaskSet task = net.MakeAuthorTask(20, 10, 7).value();
  EXPECT_EQ(task.test_queries.size(), 20u);
  EXPECT_EQ(task.dev_queries.size(), 10u);
  EXPECT_EQ(task.target_type, net.author_type());
  for (const EvalQuery& q : task.test_queries) {
    ASSERT_EQ(q.query_nodes.size(), 1u);
    ASSERT_GE(q.ground_truth.size(), 1u);
    for (NodeId gt : q.ground_truth) {
      // Edge removed in the eval graph but present in the original.
      EXPECT_EQ(task.graph.TransitionProb(q.query_nodes[0], gt), 0.0);
      EXPECT_GT(net.graph().TransitionProb(q.query_nodes[0], gt), 0.0);
      EXPECT_EQ(task.graph.node_type(gt), net.author_type());
    }
  }
}

TEST(BibNetTest, VenueTaskGroundTruthSingleVenue) {
  const BibNet& net = SmallNet();
  EvalTaskSet task = net.MakeVenueTask(15, 5, 11).value();
  EXPECT_EQ(task.target_type, net.venue_type());
  for (const EvalQuery& q : task.test_queries) {
    ASSERT_EQ(q.ground_truth.size(), 1u);
    EXPECT_EQ(task.graph.TransitionProb(q.query_nodes[0], q.ground_truth[0]),
              0.0);
    EXPECT_EQ(task.graph.node_type(q.ground_truth[0]), net.venue_type());
  }
}

TEST(BibNetTest, TaskQueriesAreDistinct) {
  const BibNet& net = SmallNet();
  EvalTaskSet task = net.MakeVenueTask(30, 10, 13).value();
  std::set<NodeId> seen;
  for (const EvalQuery& q : task.test_queries) seen.insert(q.query_nodes[0]);
  for (const EvalQuery& q : task.dev_queries) seen.insert(q.query_nodes[0]);
  EXPECT_EQ(seen.size(), 40u);
}

TEST(BibNetTest, TaskGraphKeepsNonGroundTruthEdges) {
  const BibNet& net = SmallNet();
  EvalTaskSet task = net.MakeVenueTask(10, 0, 17).value();
  const EvalQuery& q = task.test_queries[0];
  // The query paper keeps its term and author edges.
  const BibNet::Paper* paper = nullptr;
  for (const BibNet::Paper& p : net.papers()) {
    if (p.node == q.query_nodes[0]) paper = &p;
  }
  ASSERT_NE(paper, nullptr);
  for (NodeId t : paper->terms) {
    EXPECT_GT(task.graph.TransitionProb(paper->node, t), 0.0);
  }
}

TEST(BibNetTest, TopicQueryTermsAreTopRankedTopicTerms) {
  const BibNet& net = SmallNet();
  std::vector<NodeId> query = net.TopicQueryTerms(2, 3);
  ASSERT_EQ(query.size(), 3u);
  EXPECT_EQ(query[0], net.topic_terms()[2][0]);
  EXPECT_EQ(query[2], net.topic_terms()[2][2]);
  for (NodeId t : query) {
    EXPECT_EQ(net.graph().node_type(t), net.term_type());
  }
}

TEST(BibNetTest, SnapshotsAreCumulative) {
  const BibNet& net = SmallNet();
  int first = net.config().first_year;
  int last = net.config().last_year;
  Subgraph early = net.Snapshot(first + 2).value();
  Subgraph late = net.Snapshot(last).value();
  EXPECT_LT(early.graph.num_nodes(), late.graph.num_nodes());
  EXPECT_LT(early.graph.num_arcs(), late.graph.num_arcs());
  EXPECT_LT(early.graph.MemoryBytes(), late.graph.MemoryBytes());
}

TEST(BibNetTest, FinalSnapshotContainsAllPapers) {
  const BibNet& net = SmallNet();
  Subgraph snap = net.Snapshot(net.config().last_year).value();
  size_t paper_count = 0;
  for (NodeId v = 0; v < snap.graph.num_nodes(); ++v) {
    if (snap.graph.node_type(v) == net.paper_type()) ++paper_count;
  }
  EXPECT_EQ(paper_count, net.papers().size());
}

TEST(BibNetTest, GraphMostlyConnected) {
  // The giant weakly-connected component should dominate: check via SCC on
  // the undirected view... here we simply verify that few nodes are isolated.
  const BibNet& net = SmallNet();
  size_t isolated = 0;
  for (NodeId v = 0; v < net.graph().num_nodes(); ++v) {
    if (net.graph().out_degree(v) == 0 && net.graph().in_degree(v) == 0) {
      ++isolated;
    }
  }
  // Entities that never got used by any paper stay isolated (real datasets
  // prune these); with time-growing pools a few percent are expected.
  EXPECT_LT(isolated, net.graph().num_nodes() / 10);
}

TEST(BibNetTest, RejectsBadConfig) {
  BibNetConfig config = SmallConfig();
  config.num_papers = 0;
  EXPECT_FALSE(BibNet::Generate(config).ok());
  config = SmallConfig();
  config.min_authors_per_paper = 3;
  config.max_authors_per_paper = 2;
  EXPECT_FALSE(BibNet::Generate(config).ok());
  config = SmallConfig();
  config.last_year = config.first_year - 1;
  EXPECT_FALSE(BibNet::Generate(config).ok());
}

TEST(BibNetTest, RejectsOversizedQueryRequest) {
  const BibNet& net = SmallNet();
  EXPECT_FALSE(net.MakeVenueTask(100000, 0, 1).ok());
}

}  // namespace
}  // namespace rtr::datasets
