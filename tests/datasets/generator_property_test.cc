// Pins the structural properties of the synthetic datasets that the
// paper-shape experiments rely on (DESIGN.md §1). If a generator change
// breaks one of these, the benches will drift from the paper's shape.
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datasets/bibnet.h"
#include "datasets/qlog.h"

namespace rtr::datasets {
namespace {

const BibNet& Net() {
  static const BibNet* net = [] {
    BibNetConfig config;
    config.num_papers = 3000;
    config.num_authors = 800;
    return new BibNet(BibNet::Generate(config).value());
  }();
  return *net;
}

const QLog& Log() {
  static const QLog* log = [] {
    QLogConfig config;
    config.num_concepts = 1200;
    return new QLog(QLog::Generate(config).value());
  }();
  return *log;
}

TEST(BibNetPropertyTest, AuthorContinuityViaCitations) {
  // Task 1 is solvable because papers tend to cite their own authors'
  // earlier work: for papers with citations, a large fraction must have at
  // least one author among the cited papers' authors.
  const BibNet& net = Net();
  int with_citations = 0, with_continuity = 0;
  for (const BibNet::Paper& paper : net.papers()) {
    if (paper.citations.empty()) continue;
    ++with_citations;
    std::unordered_set<NodeId> cited_authors;
    for (NodeId cited : paper.citations) {
      const BibNet::Paper& cited_paper =
          net.papers()[cited - net.papers().front().node];
      cited_authors.insert(cited_paper.authors.begin(),
                           cited_paper.authors.end());
    }
    for (NodeId author : paper.authors) {
      if (cited_authors.count(author)) {
        ++with_continuity;
        break;
      }
    }
  }
  ASSERT_GT(with_citations, 100);
  EXPECT_GT(static_cast<double>(with_continuity) / with_citations, 0.5);
}

TEST(BibNetPropertyTest, MajorVenuesDominatePerTopicVolume) {
  // The Fig. 1/6/7 contrast requires a major venue's *per-topic* paper
  // count to exceed the specialized venue's on average.
  const BibNet& net = Net();
  const BibNetConfig& config = net.config();
  int num_topics = config.num_areas * config.topics_per_area;
  // papers_in[venue_index][topic]
  std::vector<std::vector<int>> per_topic(net.venues().size(),
                                          std::vector<int>(num_topics, 0));
  std::vector<int> venue_of_node(net.graph().num_nodes(), -1);
  for (size_t i = 0; i < net.venues().size(); ++i) {
    venue_of_node[net.venues()[i].node] = static_cast<int>(i);
  }
  for (const BibNet::Paper& paper : net.papers()) {
    per_topic[venue_of_node[paper.venue]][paper.topic]++;
  }
  double major_per_topic = 0.0, spec_own_topic = 0.0;
  int major_cells = 0, spec_count = 0;
  for (size_t i = 0; i < net.venues().size(); ++i) {
    const BibNet::Venue& venue = net.venues()[i];
    if (venue.major) {
      int first = venue.area * config.topics_per_area;
      for (int t = first; t < first + config.topics_per_area; ++t) {
        major_per_topic += per_topic[i][t];
        ++major_cells;
      }
    } else {
      spec_own_topic += per_topic[i][venue.topic];
      ++spec_count;
    }
  }
  major_per_topic /= major_cells;
  spec_own_topic /= spec_count;
  EXPECT_GT(major_per_topic, spec_own_topic);
}

TEST(BibNetPropertyTest, SpecializedVenuesArePure) {
  // A specialized venue accepts only papers of its own topic — the
  // specificity archetype.
  const BibNet& net = Net();
  std::vector<int> venue_topic(net.graph().num_nodes(), -2);
  for (const BibNet::Venue& venue : net.venues()) {
    venue_topic[venue.node] = venue.major ? -1 : venue.topic;
  }
  for (const BibNet::Paper& paper : net.papers()) {
    int topic = venue_topic[paper.venue];
    if (topic >= 0) EXPECT_EQ(topic, paper.topic);
  }
}

TEST(QLogPropertyTest, CrossConceptClicksOnPopularUrls) {
  // Task 3's importance lean requires popular concept URLs to attract
  // clicks from *other* concepts of the topic.
  const QLog& log = Log();
  std::unordered_set<NodeId> top_urls;
  for (const QLog::Concept& cls : log.concepts()) {
    top_urls.insert(cls.urls[0]);
  }
  std::vector<int> concept_of_url(log.graph().num_nodes(), -1);
  for (size_t c = 0; c < log.concepts().size(); ++c) {
    for (NodeId url : log.concepts()[c].urls) {
      concept_of_url[url] = static_cast<int>(c);
    }
  }
  int cross = 0;
  for (const QLog::Click& click : log.clicks()) {
    int url_concept = concept_of_url[click.url];
    if (url_concept < 0) continue;  // portal or topic URL
    if (log.ConceptOfPhrase(click.phrase) != url_concept) {
      EXPECT_TRUE(top_urls.count(click.url))
          << "cross-concept click on a non-top URL";
      ++cross;
    }
  }
  EXPECT_GT(cross, static_cast<int>(log.concepts().size()) / 4);
}

TEST(QLogPropertyTest, TopicUrlsSharedAcrossConcepts) {
  // Task 4's distractors: topic URLs must be clicked by phrases of several
  // different concepts.
  const QLog& log = Log();
  std::unordered_set<NodeId> topic_url_set;
  for (const auto& urls : log.topic_urls()) {
    topic_url_set.insert(urls.begin(), urls.end());
  }
  std::unordered_map<NodeId, std::set<int>> concepts_per_url;
  for (const QLog::Click& click : log.clicks()) {
    if (topic_url_set.count(click.url)) {
      concepts_per_url[click.url].insert(
          log.ConceptOfPhrase(click.phrase));
    }
  }
  int shared = 0;
  for (const auto& [url, concepts] : concepts_per_url) {
    if (concepts.size() >= 2) ++shared;
  }
  EXPECT_GT(shared, static_cast<int>(concepts_per_url.size()) / 2);
}

TEST(QLogPropertyTest, EquivalentPhrasesOverlapMoreThanTopicSiblings) {
  // The Task 4 signal: phrases of the same concept share more URL
  // neighbors (Jaccard) than phrases of sibling concepts.
  const QLog& log = Log();
  const Graph& g = log.graph();
  auto neighbor_set = [&g](NodeId v) {
    std::set<NodeId> out;
    for (NodeId target : g.out_targets(v)) out.insert(target);
    return out;
  };
  auto jaccard = [](const std::set<NodeId>& a, const std::set<NodeId>& b) {
    if (a.empty() && b.empty()) return 0.0;
    int common = 0;
    for (NodeId x : a) common += b.count(x);
    return static_cast<double>(common) /
           static_cast<double>(a.size() + b.size() - common);
  };
  double same_total = 0.0, sibling_total = 0.0;
  int same_count = 0, sibling_count = 0;
  int per_topic = log.config().concepts_per_topic;
  for (size_t c = 0; c + 1 < log.concepts().size() && same_count < 300;
       ++c) {
    const auto& phrases = log.concepts()[c].phrases;
    if (phrases.size() >= 2) {
      same_total += jaccard(neighbor_set(phrases[0]),
                            neighbor_set(phrases[1]));
      ++same_count;
    }
    size_t sibling = c + 1;
    if (static_cast<int>(c) / per_topic ==
        static_cast<int>(sibling) / per_topic) {
      sibling_total += jaccard(neighbor_set(phrases[0]),
                               neighbor_set(log.concepts()[sibling].phrases[0]));
      ++sibling_count;
    }
  }
  ASSERT_GT(same_count, 50);
  ASSERT_GT(sibling_count, 50);
  EXPECT_GT(same_total / same_count, 2.0 * sibling_total / sibling_count);
}

}  // namespace
}  // namespace rtr::datasets
