#include "datasets/qlog.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace rtr::datasets {
namespace {

QLogConfig SmallConfig() {
  QLogConfig config;
  config.num_concepts = 400;
  config.num_portal_urls = 10;
  return config;
}

const QLog& SmallLog() {
  static const QLog* log = new QLog(QLog::Generate(SmallConfig()).value());
  return *log;
}

TEST(QLogTest, DeterministicForSameSeed) {
  QLog a = QLog::Generate(SmallConfig()).value();
  QLog b = QLog::Generate(SmallConfig()).value();
  EXPECT_EQ(a.graph().num_nodes(), b.graph().num_nodes());
  EXPECT_EQ(a.graph().num_arcs(), b.graph().num_arcs());
  ASSERT_EQ(a.clicks().size(), b.clicks().size());
  for (size_t i = 0; i < a.clicks().size(); ++i) {
    EXPECT_EQ(a.clicks()[i].phrase, b.clicks()[i].phrase);
    EXPECT_EQ(a.clicks()[i].url, b.clicks()[i].url);
    EXPECT_DOUBLE_EQ(a.clicks()[i].weight, b.clicks()[i].weight);
  }
}

TEST(QLogTest, ConceptSizesWithinCaps) {
  const QLog& log = SmallLog();
  for (const QLog::Concept& cls : log.concepts()) {
    EXPECT_GE(cls.phrases.size(), 1u);
    EXPECT_LE(cls.phrases.size(),
              static_cast<size_t>(log.config().max_phrases_per_concept));
    EXPECT_GE(cls.urls.size(), 1u);
    EXPECT_LE(cls.urls.size(),
              static_cast<size_t>(log.config().max_urls_per_concept));
  }
}

TEST(QLogTest, EveryPhraseClicksItsTopUrl) {
  const QLog& log = SmallLog();
  for (const QLog::Concept& cls : log.concepts()) {
    for (NodeId phrase : cls.phrases) {
      EXPECT_GT(log.graph().TransitionProb(phrase, cls.urls[0]), 0.0);
    }
  }
}

TEST(QLogTest, NodeTypesAssigned) {
  const QLog& log = SmallLog();
  for (const QLog::Concept& cls : log.concepts()) {
    for (NodeId phrase : cls.phrases) {
      EXPECT_EQ(log.graph().node_type(phrase), log.phrase_type());
    }
    for (NodeId url : cls.urls) {
      EXPECT_EQ(log.graph().node_type(url), log.url_type());
    }
  }
  for (NodeId portal : log.portal_urls()) {
    EXPECT_EQ(log.graph().node_type(portal), log.url_type());
  }
}

TEST(QLogTest, PortalUrlsAreHubs) {
  const QLog& log = SmallLog();
  // Portals accumulate clicks from many concepts; their average degree must
  // far exceed a concept URL's.
  double portal_deg = 0.0;
  for (NodeId portal : log.portal_urls()) {
    portal_deg += static_cast<double>(log.graph().out_degree(portal));
  }
  portal_deg /= static_cast<double>(log.portal_urls().size());
  double concept_deg = 0.0;
  size_t concept_urls = 0;
  for (const QLog::Concept& cls : log.concepts()) {
    for (NodeId url : cls.urls) {
      concept_deg += static_cast<double>(log.graph().out_degree(url));
      ++concept_urls;
    }
  }
  concept_deg /= static_cast<double>(concept_urls);
  EXPECT_GT(portal_deg, 5.0 * concept_deg);
}

TEST(QLogTest, ConceptOfPhraseConsistent) {
  const QLog& log = SmallLog();
  for (size_t c = 0; c < log.concepts().size(); ++c) {
    for (NodeId phrase : log.concepts()[c].phrases) {
      EXPECT_EQ(log.ConceptOfPhrase(phrase), static_cast<int>(c));
    }
  }
}

TEST(QLogTest, ClickDaysInRange) {
  const QLog& log = SmallLog();
  for (const QLog::Click& click : log.clicks()) {
    EXPECT_GE(click.day, 1);
    EXPECT_LE(click.day, log.config().num_days);
    EXPECT_GE(click.weight, 1.0);
  }
}

TEST(QLogTest, RelevantUrlTaskRemovesEdge) {
  const QLog& log = SmallLog();
  EvalTaskSet task = log.MakeRelevantUrlTask(20, 10, 3).value();
  EXPECT_EQ(task.test_queries.size(), 20u);
  EXPECT_EQ(task.dev_queries.size(), 10u);
  EXPECT_EQ(task.target_type, log.url_type());
  for (const EvalQuery& q : task.test_queries) {
    ASSERT_EQ(q.ground_truth.size(), 1u);
    EXPECT_EQ(task.graph.TransitionProb(q.query_nodes[0], q.ground_truth[0]),
              0.0);
    EXPECT_GT(log.graph().TransitionProb(q.query_nodes[0], q.ground_truth[0]),
              0.0);
    // The phrase keeps at least one other URL edge.
    EXPECT_GT(task.graph.out_degree(q.query_nodes[0]), 0u);
  }
}

TEST(QLogTest, EquivalentPhraseTaskGroundTruthSharesConcept) {
  const QLog& log = SmallLog();
  EvalTaskSet task = log.MakeEquivalentPhraseTask(25, 5, 5).value();
  EXPECT_EQ(task.target_type, log.phrase_type());
  for (const EvalQuery& q : task.test_queries) {
    ASSERT_GE(q.ground_truth.size(), 1u);
    int concept_index = log.ConceptOfPhrase(q.query_nodes[0]);
    for (NodeId gt : q.ground_truth) {
      EXPECT_EQ(log.ConceptOfPhrase(gt), concept_index);
      EXPECT_NE(gt, q.query_nodes[0]);
      // Equivalent phrases are never directly linked.
      EXPECT_EQ(task.graph.TransitionProb(q.query_nodes[0], gt), 0.0);
    }
  }
}

TEST(QLogTest, SnapshotsAreCumulative) {
  const QLog& log = SmallLog();
  Subgraph d6 = log.Snapshot(6).value();
  Subgraph d18 = log.Snapshot(18).value();
  Subgraph d30 = log.Snapshot(30).value();
  EXPECT_LT(d6.graph.num_nodes(), d18.graph.num_nodes());
  EXPECT_LT(d18.graph.num_nodes(), d30.graph.num_nodes());
  EXPECT_LT(d6.graph.num_arcs(), d18.graph.num_arcs());
  // The final snapshot holds every click.
  EXPECT_EQ(d30.graph.num_arcs(), log.graph().num_arcs());
}

TEST(QLogTest, SnapshotMappingRoundTrips) {
  const QLog& log = SmallLog();
  Subgraph snap = log.Snapshot(10).value();
  for (NodeId new_id = 0; new_id < snap.graph.num_nodes(); ++new_id) {
    NodeId old_id = snap.to_parent[new_id];
    EXPECT_EQ(snap.from_parent[old_id], new_id);
    EXPECT_EQ(snap.graph.node_type(new_id), log.graph().node_type(old_id));
  }
}

TEST(QLogTest, RejectsBadConfig) {
  QLogConfig config = SmallConfig();
  config.num_concepts = 0;
  EXPECT_FALSE(QLog::Generate(config).ok());
  config = SmallConfig();
  config.num_days = 0;
  EXPECT_FALSE(QLog::Generate(config).ok());
}

TEST(QLogTest, RejectsOversizedQueryRequest) {
  const QLog& log = SmallLog();
  EXPECT_FALSE(log.MakeRelevantUrlTask(1000000, 0, 1).ok());
  EXPECT_FALSE(log.MakeEquivalentPhraseTask(1000000, 0, 1).ok());
}

}  // namespace
}  // namespace rtr::datasets
