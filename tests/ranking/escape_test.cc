#include "ranking/escape.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr::ranking {
namespace {

TEST(EscapeProbabilityTest, SelfEscapeIsOne) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddUndirectedEdge(0, 1, 1.0);
  Graph g = b.Build().value();
  auto esc = MakeEscapeProbabilityMeasure(g);
  EXPECT_DOUBLE_EQ(esc->Score({0})[0], 1.0);
}

TEST(EscapeProbabilityTest, TwoCycleAlwaysEscapes) {
  // From 0 the first step always reaches 1 before any return.
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 0, 1.0);
  Graph g = b.Build().value();
  auto esc = MakeEscapeProbabilityMeasure(g);
  EXPECT_DOUBLE_EQ(esc->Score({0})[1], 1.0);
}

TEST(EscapeProbabilityTest, StarLeavesSplitEvenly) {
  // Undirected star with 4 leaves: the first step picks one leaf; the walk
  // then returns to the center. esc(center, leaf) = 1/4 for each leaf.
  GraphBuilder b;
  b.AddNodes(5);
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    b.AddUndirectedEdge(0, leaf, 1.0);
  }
  Graph g = b.Build().value();
  EscapeParams params;
  params.num_walks = 20000;
  auto esc = MakeEscapeProbabilityMeasure(g, params);
  std::vector<double> scores = esc->Score({0});
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_NEAR(scores[leaf], 0.25, 0.02);
  }
}

TEST(EscapeProbabilityTest, UnreachableNodeZero) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddUndirectedEdge(0, 1, 1.0);  // node 2 isolated
  Graph g = b.Build().value();
  auto esc = MakeEscapeProbabilityMeasure(g);
  EXPECT_DOUBLE_EQ(esc->Score({0})[2], 0.0);
}

TEST(EscapeProbabilityTest, CloserNodeEscapesMoreOften) {
  // Path 0 - 1 - 2 - 3: reaching 1 before returning to 0 is easier than
  // reaching 3 before returning.
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  b.AddUndirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  EscapeParams params;
  params.num_walks = 8000;
  auto esc = MakeEscapeProbabilityMeasure(g, params);
  std::vector<double> scores = esc->Score({0});
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[2], scores[3]);
  EXPECT_GT(scores[3], 0.0);
}

TEST(EscapeProbabilityTest, DeterministicAndOrderIndependent) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  b.AddUndirectedEdge(2, 3, 2.0);
  Graph g = b.Build().value();
  auto a = MakeEscapeProbabilityMeasure(g);
  auto c = MakeEscapeProbabilityMeasure(g);
  (void)c->Score({2});  // different first query must not perturb results
  EXPECT_EQ(a->Score({0}), c->Score({0}));
}

TEST(EscapeProbabilityTest, MultiNodeQueryAverages) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 2, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  b.AddUndirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  auto esc = MakeEscapeProbabilityMeasure(g);
  std::vector<double> s0 = esc->Score({0});
  std::vector<double> s1 = esc->Score({1});
  std::vector<double> s01 = esc->Score({0, 1});
  for (size_t v = 0; v < s01.size(); ++v) {
    EXPECT_NEAR(s01[v], 0.5 * (s0[v] + s1[v]), 1e-12);
  }
}

}  // namespace
}  // namespace rtr::ranking
