#include "ranking/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace rtr::ranking {
namespace {

Graph TwoCycle() {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 0, 1.0);
  return b.Build().value();
}

Graph Cycle(size_t n) {
  GraphBuilder b;
  b.AddNodes(n);
  for (NodeId v = 0; v < n; ++v) {
    b.AddDirectedEdge(v, static_cast<NodeId>((v + 1) % n), 1.0);
  }
  return b.Build().value();
}

// The toy graph of Fig. 2 (see graph_test.cc for the layout).
struct ToyGraph {
  Graph graph;
  NodeId t1, t2;
  NodeId p[7];
  NodeId v1, v2, v3;
};

ToyGraph MakeToyGraph() {
  GraphBuilder b;
  ToyGraph toy;
  toy.t1 = b.AddNode();
  toy.t2 = b.AddNode();
  for (auto& pid : toy.p) pid = b.AddNode();
  toy.v1 = b.AddNode();
  toy.v2 = b.AddNode();
  toy.v3 = b.AddNode();
  for (int i = 0; i < 5; ++i) b.AddUndirectedEdge(toy.t1, toy.p[i], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[5], 1.0);
  b.AddUndirectedEdge(toy.t2, toy.p[6], 1.0);
  b.AddUndirectedEdge(toy.p[0], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[1], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[5], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[6], toy.v1, 1.0);
  b.AddUndirectedEdge(toy.p[2], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[3], toy.v2, 1.0);
  b.AddUndirectedEdge(toy.p[4], toy.v3, 1.0);
  toy.graph = b.Build().value();
  return toy;
}

TEST(FRankTest, TwoCycleAnalytic) {
  // f0 = alpha / (1 - (1-alpha)^2), f1 = (1-alpha) * f0.
  Graph g = TwoCycle();
  WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = FRank(g, {0}, params);
  double f0 = 0.25 / (1.0 - 0.75 * 0.75);
  EXPECT_NEAR(f[0], f0, 1e-10);
  EXPECT_NEAR(f[1], 0.75 * f0, 1e-10);
}

TEST(FRankTest, SumsToOneWithoutDanglingNodes) {
  ToyGraph toy = MakeToyGraph();
  std::vector<double> f = FRank(toy.graph, {toy.t1});
  double total = std::accumulate(f.begin(), f.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FRankTest, QueryHasAtLeastAlphaMass) {
  ToyGraph toy = MakeToyGraph();
  WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = FRank(toy.graph, {toy.t1}, params);
  EXPECT_GE(f[toy.t1], 0.25);
}

TEST(FRankTest, ToyGraphImportanceOrdering) {
  // From t1, v1 and v2 (two on-topic papers each) are easier to reach than
  // v3 (one paper). v1 and v2 are close but not identical: long walks also
  // reach v1 through the off-topic t2 side, so they differ by a few percent.
  ToyGraph toy = MakeToyGraph();
  std::vector<double> f = FRank(toy.graph, {toy.t1});
  EXPECT_GT(f[toy.v1], f[toy.v3]);
  EXPECT_GT(f[toy.v2], f[toy.v3]);
  EXPECT_NEAR(f[toy.v1], f[toy.v2], 0.15 * f[toy.v1]);
}

TEST(TRankTest, ToyGraphSpecificityOrdering) {
  // Returning to t1 is easier from v2/v3 (no off-topic papers) than from v1:
  // t(v2) = 2 * t(v3)-ish > t(v1). At minimum strict ordering holds.
  ToyGraph toy = MakeToyGraph();
  std::vector<double> t = TRank(toy.graph, {toy.t1});
  EXPECT_GT(t[toy.v2], t[toy.v1]);
  EXPECT_GT(t[toy.v3], t[toy.v1]);
}

TEST(TRankTest, TwoCycleMatchesFRankBySymmetry) {
  Graph g = TwoCycle();
  std::vector<double> f = FRank(g, {0});
  std::vector<double> t = TRank(g, {0});
  EXPECT_NEAR(f[0], t[0], 1e-10);
  EXPECT_NEAR(f[1], t[1], 1e-10);
}

TEST(TRankTest, DirectedChainCaveat) {
  // Sect. III-B caveat: a path q->v without a return path gives f > 0 but
  // t = 0.
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  Graph g = b.Build().value();
  std::vector<double> f = FRank(g, {0});
  std::vector<double> t = TRank(g, {0});
  EXPECT_GT(f[2], 0.0);
  EXPECT_EQ(t[2], 0.0);
}

TEST(PagerankTest, MultiNodeQueryLinearity) {
  // The Linearity Theorem: scores for {a, b} equal the average of the
  // single-node scores.
  ToyGraph toy = MakeToyGraph();
  std::vector<double> fa = FRank(toy.graph, {toy.t1});
  std::vector<double> fb = FRank(toy.graph, {toy.t2});
  std::vector<double> fab = FRank(toy.graph, {toy.t1, toy.t2});
  for (size_t v = 0; v < fab.size(); ++v) {
    EXPECT_NEAR(fab[v], 0.5 * (fa[v] + fb[v]), 1e-9);
  }
  std::vector<double> ta = TRank(toy.graph, {toy.t1});
  std::vector<double> tb = TRank(toy.graph, {toy.t2});
  std::vector<double> tab = TRank(toy.graph, {toy.t1, toy.t2});
  for (size_t v = 0; v < tab.size(); ++v) {
    EXPECT_NEAR(tab[v], 0.5 * (ta[v] + tb[v]), 1e-9);
  }
}

TEST(PagerankTest, HigherAlphaConcentratesMassOnQuery) {
  ToyGraph toy = MakeToyGraph();
  WalkParams lo, hi;
  lo.alpha = 0.1;
  hi.alpha = 0.6;
  std::vector<double> f_lo = FRank(toy.graph, {toy.t1}, lo);
  std::vector<double> f_hi = FRank(toy.graph, {toy.t1}, hi);
  EXPECT_GT(f_hi[toy.t1], f_lo[toy.t1]);
}

TEST(PagerankTest, CycleUniformStationarySlice) {
  // On an n-cycle, f(q, v) = alpha * (1-alpha)^d / (1 - (1-alpha)^n) where
  // d is the forward distance from q to v.
  Graph g = Cycle(4);
  WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = FRank(g, {0}, params);
  double denom = 1.0 - std::pow(0.75, 4);
  for (int d = 0; d < 4; ++d) {
    EXPECT_NEAR(f[d], 0.25 * std::pow(0.75, d) / denom, 1e-10);
  }
}

TEST(PagerankTest, DanglingNodeAbsorbsNothing) {
  // 0 -> 1 (dangling). Mass that walks to 1 and does not teleport dies.
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  Graph g = b.Build().value();
  WalkParams params;
  params.alpha = 0.25;
  std::vector<double> f = FRank(g, {0}, params);
  EXPECT_NEAR(f[0], 0.25, 1e-10);
  EXPECT_NEAR(f[1], 0.75 * 0.25, 1e-10);
  double total = f[0] + f[1];
  EXPECT_LT(total, 1.0);
}

TEST(FTScorerTest, CachesRepeatedQuery) {
  ToyGraph toy = MakeToyGraph();
  FTScorer scorer(toy.graph);
  const FTVectors& first = scorer.Compute({toy.t1});
  const FTVectors* first_ptr = &first;
  const FTVectors& second = scorer.Compute({toy.t1});
  EXPECT_EQ(first_ptr, &second);
}

TEST(FTScorerTest, RecomputesOnNewQuery) {
  ToyGraph toy = MakeToyGraph();
  FTScorer scorer(toy.graph);
  std::vector<double> f1 = scorer.Compute({toy.t1}).f;
  std::vector<double> f2 = scorer.Compute({toy.t2}).f;
  EXPECT_NE(f1, f2);
  // Switching back recomputes correctly.
  std::vector<double> f1_again = scorer.Compute({toy.t1}).f;
  for (size_t v = 0; v < f1.size(); ++v) {
    EXPECT_NEAR(f1_again[v], f1[v], 1e-12);
  }
}

}  // namespace
}  // namespace rtr::ranking
