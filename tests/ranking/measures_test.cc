// Tests for the baseline proximity measures: combinators (F/T/arithmetic/
// harmonic), AdamicAdar, SimRank, TCommute, ObjSqrtInv, and TopKNodes.
#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "ranking/adamic_adar.h"
#include "ranking/combinators.h"
#include "ranking/measure.h"
#include "ranking/objectrank.h"
#include "ranking/pagerank.h"
#include "ranking/simrank.h"
#include "ranking/tcommute.h"

namespace rtr::ranking {
namespace {

Graph Diamond() {
  // 0 -> {1, 2} -> 3, all undirected for walkability.
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(0, 2, 1.0);
  b.AddUndirectedEdge(1, 3, 1.0);
  b.AddUndirectedEdge(2, 3, 1.0);
  return b.Build().value();
}

std::vector<NodeId> Ordering(const std::vector<double>& scores) {
  std::vector<NodeId> ids(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) ids[v] = v;
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return ids;
}

TEST(TopKNodesTest, OrdersByScoreThenId) {
  std::vector<double> scores = {0.1, 0.5, 0.5, 0.9, 0.0};
  auto top = TopKNodes(scores, 3);
  EXPECT_EQ(top, std::vector<NodeId>({3, 1, 2}));
}

TEST(TopKNodesTest, ExcludesRequestedNodes) {
  std::vector<double> scores = {0.1, 0.5, 0.5, 0.9, 0.0};
  auto top = TopKNodes(scores, 3, {3, 1});
  EXPECT_EQ(top, std::vector<NodeId>({2, 0, 4}));
}

TEST(TopKNodesTest, KLargerThanN) {
  std::vector<double> scores = {0.3, 0.1};
  auto top = TopKNodes(scores, 10);
  EXPECT_EQ(top, std::vector<NodeId>({0, 1}));
}

TEST(CombinatorsTest, FRankMeasureMatchesRawFRank) {
  Graph g = Diamond();
  auto scorer = std::make_shared<FTScorer>(g);
  auto measure = MakeFRankMeasure(scorer);
  EXPECT_EQ(measure->name(), "F-Rank/PPR");
  std::vector<double> via_measure = measure->Score({0});
  std::vector<double> direct = FRank(g, {0});
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_DOUBLE_EQ(via_measure[v], direct[v]);
  }
}

TEST(CombinatorsTest, TRankMeasureMatchesRawTRank) {
  Graph g = Diamond();
  auto scorer = std::make_shared<FTScorer>(g);
  auto measure = MakeTRankMeasure(scorer);
  std::vector<double> via_measure = measure->Score({0});
  std::vector<double> direct = TRank(g, {0});
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_DOUBLE_EQ(via_measure[v], direct[v]);
  }
}

TEST(CombinatorsTest, ArithmeticExtremesReduceToMonoSensed) {
  Graph g = Diamond();
  auto scorer = std::make_shared<FTScorer>(g);
  auto arith0 = MakeArithmeticMeasure(scorer, 0.0);
  auto arith1 = MakeArithmeticMeasure(scorer, 1.0);
  auto f = MakeFRankMeasure(scorer)->Score({1});
  auto t = MakeTRankMeasure(scorer)->Score({1});
  EXPECT_EQ(arith0->Score({1}), f);
  EXPECT_EQ(arith1->Score({1}), t);
}

TEST(CombinatorsTest, HarmonicIsZeroWhenEitherSenseIsZero) {
  // Directed chain: t = 0 beyond the query, so harmonic must vanish there.
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 2, 1.0);
  Graph g = b.Build().value();
  auto scorer = std::make_shared<FTScorer>(g);
  auto harmonic = MakeHarmonicMeasure(scorer);
  std::vector<double> scores = harmonic->Score({0});
  EXPECT_GT(scores[0], 0.0);
  EXPECT_EQ(scores[1], 0.0);
  EXPECT_EQ(scores[2], 0.0);
}

TEST(CombinatorsTest, HarmonicBetaHalfIsClassicHarmonicMean) {
  Graph g = Diamond();
  auto scorer = std::make_shared<FTScorer>(g);
  auto harmonic = MakeHarmonicMeasure(scorer, 0.5);
  const FTVectors& ft = scorer->Compute({0});
  std::vector<double> scores = harmonic->Score({0});
  for (size_t v = 0; v < scores.size(); ++v) {
    double expected = 2.0 * ft.f[v] * ft.t[v] / (ft.f[v] + ft.t[v]);
    EXPECT_NEAR(scores[v], expected, 1e-12);
  }
}

TEST(AdamicAdarTest, CommonNeighborContributions) {
  // 0 and 3 share neighbors 1 and 2, each of undirected degree 2:
  // score = 2 / log(2).
  Graph g = Diamond();
  auto aa = MakeAdamicAdarMeasure(g);
  std::vector<double> scores = aa->Score({0});
  EXPECT_NEAR(scores[3], 2.0 / std::log(2.0), 1e-12);
}

TEST(AdamicAdarTest, NoCommonNeighborsZero) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  auto aa = MakeAdamicAdarMeasure(g);
  std::vector<double> scores = aa->Score({0});
  EXPECT_EQ(scores[2], 0.0);
  EXPECT_EQ(scores[3], 0.0);
}

TEST(AdamicAdarTest, DegreeOneNeighborContributesNothing) {
  // Path 0 - 1 - 2 where 1 has degree 2: score(0, 2) = 1/log(2).
  // Then 2 - 3: node 3 reachable only through 2 (degree 2).
  GraphBuilder b;
  b.AddNodes(3);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  Graph g = b.Build().value();
  auto aa = MakeAdamicAdarMeasure(g);
  std::vector<double> scores = aa->Score({0});
  EXPECT_NEAR(scores[2], 1.0 / std::log(2.0), 1e-12);
}

TEST(AdamicAdarTest, MultiNodeQueryAverages) {
  Graph g = Diamond();
  auto aa = MakeAdamicAdarMeasure(g);
  std::vector<double> s0 = aa->Score({0});
  std::vector<double> s3 = aa->Score({3});
  std::vector<double> s03 = aa->Score({0, 3});
  for (size_t v = 0; v < s03.size(); ++v) {
    EXPECT_NEAR(s03[v], 0.5 * (s0[v] + s3[v]), 1e-12);
  }
}

TEST(SimRankTest, SelfSimilarityIsOne) {
  Graph g = Diamond();
  auto simrank = MakeSimRankMeasure(g);
  std::vector<double> scores = simrank->Score({0});
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
}

TEST(SimRankTest, SharedOnlyInNeighborMeetsImmediately) {
  // c -> a, c -> b: backward walks from a and b both reach c at step 1,
  // so s(a, b) = C exactly.
  GraphBuilder b;
  b.AddNodes(3);  // 0=c, 1=a, 2=b
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(0, 2, 1.0);
  Graph g = b.Build().value();
  SimRankParams params;
  params.decay = 0.85;
  auto simrank = MakeSimRankMeasure(g, params);
  std::vector<double> scores = simrank->Score({1});
  EXPECT_NEAR(scores[2], 0.85, 1e-12);
}

TEST(SimRankTest, CoupledFingerprintsAreSymmetric) {
  Graph g = Diamond();
  auto simrank = MakeSimRankMeasure(g);
  std::vector<double> from1 = simrank->Score({1});
  std::vector<double> from2 = simrank->Score({2});
  EXPECT_DOUBLE_EQ(from1[2], from2[1]);
}

TEST(SimRankTest, NoInEdgesNoSimilarity) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.0);  // 2 has no in-edges; 0 has none either
  Graph g = b.Build().value();
  auto simrank = MakeSimRankMeasure(g);
  std::vector<double> scores = simrank->Score({0});
  EXPECT_EQ(scores[2], 0.0);
}

TEST(SimRankTest, DeterministicAcrossInstances) {
  Graph g = Diamond();
  auto a = MakeSimRankMeasure(g);
  auto b = MakeSimRankMeasure(g);
  EXPECT_EQ(a->Score({0}), b->Score({0}));
}

TEST(TCommuteTest, TwoCycleCommuteIsTwo) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 0, 1.0);
  Graph g = b.Build().value();
  auto tc = MakeTCommuteMeasure(g);
  std::vector<double> scores = tc->Score({0});
  // h(0->1) = h(1->0) = 1 exactly; score = -(1 + 1).
  EXPECT_NEAR(scores[1], -2.0, 1e-9);
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
}

TEST(TCommuteTest, UnreachableSaturatesAtHorizon) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 0, 1.0);
  Graph g = b.Build().value();  // node 2 isolated
  TCommuteParams params;
  params.horizon = 10;
  auto tc = MakeTCommuteMeasure(g, params);
  std::vector<double> scores = tc->Score({0});
  EXPECT_NEAR(scores[2], -20.0, 1e-9);
}

TEST(TCommuteTest, CloserNodeRanksHigher) {
  // Undirected path 0 - 1 - 2 - 3: commute(0,1) < commute(0,2) < ...
  GraphBuilder b;
  b.AddNodes(4);
  b.AddUndirectedEdge(0, 1, 1.0);
  b.AddUndirectedEdge(1, 2, 1.0);
  b.AddUndirectedEdge(2, 3, 1.0);
  Graph g = b.Build().value();
  auto tc = MakeTCommuteMeasure(g);
  std::vector<double> scores = tc->Score({0});
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[2], scores[3]);
}

TEST(TCommuteTest, BetaWeightsDirections) {
  // Directed: 0 -> 1 fast; 1 -> 0 impossible. A specificity-heavy beta must
  // penalize node 1 more than an importance-heavy beta.
  GraphBuilder b;
  b.AddNodes(2);
  b.AddDirectedEdge(0, 1, 1.0);
  b.AddDirectedEdge(1, 1, 1.0);  // self-loop so walks have somewhere to go
  Graph g = b.Build().value();
  TCommuteParams importance;
  importance.beta = 0.1;
  TCommuteParams specificity;
  specificity.beta = 0.9;
  auto imp = MakeTCommuteMeasure(g, importance);
  auto spec = MakeTCommuteMeasure(g, specificity);
  EXPECT_GT(imp->Score({0})[1], spec->Score({0})[1]);
}

TEST(TCommuteTest, DeterministicAcrossInstancesAndOrder) {
  Graph g = Diamond();
  auto a = MakeTCommuteMeasure(g);
  auto b = MakeTCommuteMeasure(g);
  (void)b->Score({3});  // different first query must not change results
  EXPECT_EQ(a->Score({0}), b->Score({0}));
}

TEST(ObjSqrtInvTest, CombinesImportanceWithSqrtSpecificity) {
  Graph g = Diamond();
  ObjSqrtInvParams params;
  auto measure = MakeObjSqrtInvMeasure(g, params);
  WalkParams walk;
  walk.alpha = params.damping;
  std::vector<double> f = FRank(g, {0}, walk);
  std::vector<double> t = TRank(g, {0}, walk);
  std::vector<double> scores = measure->Score({0});
  for (size_t v = 0; v < scores.size(); ++v) {
    EXPECT_NEAR(scores[v], f[v] * std::sqrt(t[v]), 1e-12);
  }
}

TEST(ObjSqrtInvTest, PlusWithThirdBetaIsRankEquivalent) {
  // OR * sqrt(IOR) and OR^(2/3) * IOR^(1/3) order nodes identically.
  Graph g = Diamond();
  auto original = MakeObjSqrtInvMeasure(g);
  auto plus = MakeObjSqrtInvPlusMeasure(g, 1.0 / 3.0);
  EXPECT_EQ(Ordering(original->Score({1})), Ordering(plus->Score({1})));
}

TEST(ObjSqrtInvTest, PlusExtremesAreMonoSensed) {
  Graph g = Diamond();
  WalkParams walk;
  walk.alpha = 0.25;
  auto beta0 = MakeObjSqrtInvPlusMeasure(g, 0.0);
  auto beta1 = MakeObjSqrtInvPlusMeasure(g, 1.0);
  std::vector<double> f = FRank(g, {2}, walk);
  std::vector<double> t = TRank(g, {2}, walk);
  EXPECT_EQ(Ordering(beta0->Score({2})), Ordering(f));
  EXPECT_EQ(Ordering(beta1->Score({2})), Ordering(t));
}

}  // namespace
}  // namespace rtr::ranking
