// Scripted fault-injection suite for the RPC layer (the headline harness of
// the networked tier). Each test scripts a precise per-connection,
// per-frame fault on the server side (net/fault.h) and asserts the CLIENT's
// deterministic recovery: recoverable faults end in a retry with
// bit-identical records, a dead shard ends in a clean typed error, and
// nothing ever hangs — every wait in the client is bounded, so the whole
// suite runs under tight timeouts. Suite names match the CI TSan filter
// (Rpc|Transport|RemoteGraphProcessor).

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "dist/distributed_topk.h"
#include "graph/builder.h"
#include "net/fault.h"
#include "net/gp_server.h"
#include "net/remote_gp.h"
#include "net/rpc_client.h"
#include "util/timer.h"

namespace rtr {
namespace {

Graph SmallRandomishGraph() {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n");
  const NodeId n = 60;
  b.AddNodes(n, t);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= 3; ++j) {
      NodeId v = (u * 7 + static_cast<NodeId>(j) * 11) % n;
      if (v != u) b.AddUndirectedEdge(u, v, 1.0 + (u + j) % 5);
    }
  }
  return b.Build().value();
}

net::HelloPayload IdentityFor(const Graph& g, int shard, int num_gps,
                              uint64_t generation) {
  net::HelloPayload hello;
  hello.shard = static_cast<uint32_t>(shard);
  hello.num_gps = static_cast<uint32_t>(num_gps);
  hello.num_nodes = g.num_nodes();
  hello.generation = generation;
  return hello;
}

// Tight budgets so fault paths resolve in milliseconds, not the production
// defaults' seconds; every test asserts its own wall-clock ceiling.
net::RpcClientOptions FastOptions() {
  net::RpcClientOptions options;
  options.connect_timeout_ms = 1000;
  options.call_timeout_ms = 400;
  options.max_attempts = 3;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 5;
  return options;
}

// One-shard fixture: a GpServer over the whole graph with a FaultInjector
// the test scripts, plus local ground truth for bit-identity checks.
class RpcFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<const Graph>(SmallRandomishGraph());
    net::GpServerOptions options;
    options.fault_injector = &injector_;
    auto server = net::GpServer::Start(graph_, /*shard=*/0, /*num_gps=*/1,
                                       /*generation=*/0, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  // Fetches `wanted` through a fresh client and requires records
  // bit-identical to the loopback GraphProcessor's.
  void ExpectFetchMatchesLocal(net::RpcClient& client,
                               const std::vector<NodeId>& wanted) {
    std::vector<dist::NodeRecord> got;
    ASSERT_TRUE(client.Fetch(wanted, &got).ok());
    dist::GraphProcessor local(*graph_, 0, 1);
    std::vector<dist::NodeRecord> want;
    ASSERT_TRUE(local.Fetch(wanted, &want).ok());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].out_targets, want[i].out_targets);
      EXPECT_EQ(got[i].out_weights, want[i].out_weights);
      EXPECT_EQ(got[i].out_probs, want[i].out_probs);
      EXPECT_EQ(got[i].in_sources, want[i].in_sources);
      EXPECT_EQ(got[i].in_weights, want[i].in_weights);
      EXPECT_EQ(got[i].in_probs, want[i].in_probs);
    }
  }

  std::shared_ptr<const Graph> graph_;
  net::FaultInjector injector_;
  std::unique_ptr<net::GpServer> server_;
  const std::vector<NodeId> wanted_ = {0, 5, 10, 15};
};

TEST_F(RpcFaultTest, SlowGpUnderTimeoutSucceedsWithoutRetry) {
  // Reply #1 (after the hello ack) delayed, but well under the 400ms call
  // budget: the client just waits it out.
  net::ConnectionScript script;
  script.write_faults = {{net::FaultOp::kNone, 0},
                         {net::FaultOp::kDelayWrite, 50}};
  injector_.Enqueue(std::move(script));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  ExpectFetchMatchesLocal(client, wanted_);
  dist::WireTraffic w = client.wire();
  EXPECT_EQ(w.retries, 0u);
  EXPECT_EQ(w.timeouts, 0u);
  EXPECT_EQ(w.reconnects, 0u);
}

TEST_F(RpcFaultTest, SlowGpOverTimeoutRetriesOnFreshConnection) {
  // The first fetch reply is swallowed outright — from the client's side a
  // GP that stopped answering. The per-call deadline must fire, poison the
  // connection, and the retry on a fresh connection must succeed.
  net::ConnectionScript script;
  script.write_faults = {{net::FaultOp::kNone, 0},
                         {net::FaultOp::kDropWrite, 0}};
  injector_.Enqueue(std::move(script));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  WallTimer timer;
  ExpectFetchMatchesLocal(client, wanted_);
  EXPECT_LT(timer.ElapsedMillis(), 5000.0);
  dist::WireTraffic w = client.wire();
  EXPECT_EQ(w.timeouts, 1u);
  EXPECT_EQ(w.retries, 1u);
  EXPECT_EQ(w.reconnects, 1u);
}

TEST_F(RpcFaultTest, CorruptChecksumRetriesAndStaysBitIdentical) {
  // The first fetch reply arrives with a flipped checksum byte. The client
  // must reject the frame (poisoned stream — nothing after it can be
  // trusted), reconnect, and serve the records bit-identically.
  net::ConnectionScript script;
  script.write_faults = {{net::FaultOp::kNone, 0},
                         {net::FaultOp::kCorruptChecksum, 0}};
  injector_.Enqueue(std::move(script));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  ExpectFetchMatchesLocal(client, wanted_);
  dist::WireTraffic w = client.wire();
  EXPECT_EQ(w.retries, 1u);
  EXPECT_EQ(w.reconnects, 1u);
  EXPECT_EQ(w.timeouts, 0u);  // detected by checksum, not by deadline
}

TEST_F(RpcFaultTest, MidFrameDisconnectRetries) {
  // The connection dies half-way through the reply frame.
  net::ConnectionScript script;
  script.write_faults = {{net::FaultOp::kNone, 0},
                         {net::FaultOp::kShortWriteClose, 0}};
  injector_.Enqueue(std::move(script));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  ExpectFetchMatchesLocal(client, wanted_);
  EXPECT_EQ(client.wire().retries, 1u);
}

TEST_F(RpcFaultTest, DisconnectBeforeReplyRetries) {
  // The connection dies between request and reply (no partial frame).
  net::ConnectionScript script;
  script.write_faults = {{net::FaultOp::kNone, 0},
                         {net::FaultOp::kCloseBeforeWrite, 0}};
  injector_.Enqueue(std::move(script));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  ExpectFetchMatchesLocal(client, wanted_);
  EXPECT_EQ(client.wire().retries, 1u);
}

TEST_F(RpcFaultTest, RefusedConnectionReconnects) {
  // The first connection is cut at accept (handshake never answered); the
  // client must fail that dial with a retryable error and succeed on the
  // second connection.
  net::ConnectionScript refused;
  refused.refuse = true;
  injector_.Enqueue(std::move(refused));

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  ExpectFetchMatchesLocal(client, wanted_);
  EXPECT_GE(client.wire().retries, 1u);
}

TEST_F(RpcFaultTest, DeadGpIsACleanTypedErrorNotAHang) {
  injector_.set_dead(true);

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  std::vector<dist::NodeRecord> out;
  WallTimer timer;
  Status status = client.Fetch(wanted_, &out);
  // Typed, bounded, and empty-handed — never a hang, never partial data.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_LT(timer.ElapsedMillis(), 10000.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(client.wire().retries, 2u);  // max_attempts - 1

  // The shard comes back: the same client recovers on its own.
  injector_.set_dead(false);
  ExpectFetchMatchesLocal(client, wanted_);
}

TEST_F(RpcFaultTest, BackpressureShedsWithUnavailable) {
  net::RpcClientOptions options = FastOptions();
  // A cap below one request frame: admission must shed locally without
  // touching the wire and without retrying (retrying a shed is pointless).
  options.max_outstanding_bytes = 8;
  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), options);
  std::vector<dist::NodeRecord> out;
  Status status = client.Fetch(wanted_, &out);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("backpressure"), std::string::npos);
  dist::WireTraffic w = client.wire();
  EXPECT_EQ(w.sheds, 1u);
  EXPECT_EQ(w.retries, 0u);
  EXPECT_EQ(w.frames_sent, 0u);  // shed before any wire traffic
}

TEST_F(RpcFaultTest, FaultsExhaustOnlyAfterMaxAttempts) {
  // Every connection kills the first fetch reply: attempt 1, 2, and 3 all
  // fail, so the call must surface kUnavailable after exactly
  // max_attempts tries — bounded, not infinite, retrying.
  for (int i = 0; i < 3; ++i) {
    net::ConnectionScript script;
    script.write_faults = {{net::FaultOp::kNone, 0},
                           {net::FaultOp::kCloseBeforeWrite, 0}};
    injector_.Enqueue(std::move(script));
  }

  net::RpcClient client("127.0.0.1", server_->port(),
                        IdentityFor(*graph_, 0, 1, 0), FastOptions());
  std::vector<dist::NodeRecord> out;
  Status status = client.Fetch(wanted_, &out);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.wire().retries, 2u);
  EXPECT_TRUE(out.empty());
}

// Whole-stack check: DistributedTopK over a remote cluster whose shards
// misbehave per script must return rankings bit-identical to the loopback
// cluster (recoverable faults), or a clean typed error once a shard is
// truly dead — never a hang, never a wrong ranking.
TEST(RemoteGraphProcessorClusterTest, DegradedClusterStaysBitIdentical) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  constexpr int kNumGps = 3;

  std::vector<net::FaultInjector> injectors(kNumGps);
  std::vector<std::unique_ptr<net::GpServer>> servers;
  std::vector<std::string> endpoints;
  for (int shard = 0; shard < kNumGps; ++shard) {
    net::GpServerOptions options;
    options.fault_injector = &injectors[static_cast<size_t>(shard)];
    auto server = net::GpServer::Start(graph, shard, kNumGps, 0, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    endpoints.push_back("127.0.0.1:" + std::to_string((*server)->port()));
    servers.push_back(std::move(*server));
  }
  // Shard 0 corrupts its first post-handshake reply; shard 2 cuts its
  // connection before the first reply. Shard 1 behaves.
  {
    net::ConnectionScript corrupt;
    corrupt.write_faults = {{net::FaultOp::kNone, 0},
                            {net::FaultOp::kCorruptChecksum, 0}};
    injectors[0].Enqueue(std::move(corrupt));
    net::ConnectionScript cut;
    cut.write_faults = {{net::FaultOp::kNone, 0},
                        {net::FaultOp::kCloseBeforeWrite, 0}};
    injectors[2].Enqueue(std::move(cut));
  }

  auto remote =
      net::ConnectRemoteCluster(graph, 0, endpoints, FastOptions());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  dist::Cluster loopback(graph, kNumGps);

  core::TopKParams params;
  params.k = 5;
  const Query query = {3};
  auto remote_result = dist::DistributedTopK(**remote, query, params);
  auto loopback_result = dist::DistributedTopK(loopback, query, params);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
  ASSERT_TRUE(loopback_result.ok()) << loopback_result.status().ToString();

  ASSERT_EQ(remote_result->topk.entries.size(),
            loopback_result->topk.entries.size());
  for (size_t i = 0; i < loopback_result->topk.entries.size(); ++i) {
    EXPECT_EQ(remote_result->topk.entries[i].node,
              loopback_result->topk.entries[i].node);
    EXPECT_DOUBLE_EQ(remote_result->topk.entries[i].lower,
                     loopback_result->topk.entries[i].lower);
    EXPECT_DOUBLE_EQ(remote_result->topk.entries[i].upper,
                     loopback_result->topk.entries[i].upper);
  }
  // Same record-level traffic as the simulation; real wire traffic and the
  // scripted recoveries on top.
  EXPECT_EQ(remote_result->active_set_bytes,
            loopback_result->active_set_bytes);
  dist::WireTraffic w = (*remote)->total_wire();
  EXPECT_GT(w.bytes_received, 0u);
  EXPECT_GE(w.retries, 2u);  // one per faulted shard

  // Now shard 1 dies for good: the same query must become a clean typed
  // error (assuming its stripe is touched), not a hang or a wrong answer.
  injectors[1].set_dead(true);
  for (std::unique_ptr<net::GpServer>& s : servers) {
    if (s->shard() == 1) s->Stop();
  }
  auto dead_result = dist::DistributedTopK(**remote, query, params);
  ASSERT_FALSE(dead_result.ok());
  EXPECT_EQ(dead_result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace rtr
