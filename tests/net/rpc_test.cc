// RPC layer happy paths: frame codec, listener + client round-trips,
// shard-identity handshake, and multiplexed concurrent fetches. Every suite
// name matches the CI TSan filter (Rpc|Transport|RemoteGraphProcessor) so
// the concurrency in here runs under TSan too. The scripted failure paths
// live in tests/net/fault_test.cc.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distributed_topk.h"
#include "graph/builder.h"
#include "net/frame.h"
#include "net/gp_server.h"
#include "net/remote_gp.h"
#include "net/rpc_client.h"
#include "net/transport.h"

namespace rtr {
namespace {

Graph SmallRandomishGraph() {
  GraphBuilder b;
  NodeTypeId t = b.AddNodeType("n");
  const NodeId n = 60;
  b.AddNodes(n, t);
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= 3; ++j) {
      NodeId v = (u * 7 + static_cast<NodeId>(j) * 11) % n;
      if (v != u) b.AddUndirectedEdge(u, v, 1.0 + (u + j) % 5);
    }
  }
  return b.Build().value();
}

net::HelloPayload IdentityFor(const Graph& g, int shard, int num_gps,
                              uint64_t generation) {
  net::HelloPayload hello;
  hello.shard = static_cast<uint32_t>(shard);
  hello.num_gps = static_cast<uint32_t>(num_gps);
  hello.num_nodes = g.num_nodes();
  hello.generation = generation;
  return hello;
}

TEST(TransportFrameTest, HeaderRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame;
  net::EncodeFrame(net::FrameType::kFetch, 42, payload, &frame);
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());

  net::FrameHeader header;
  ASSERT_TRUE(net::DecodeFrameHeader(frame.data(), &header).ok());
  EXPECT_EQ(header.type, net::FrameType::kFetch);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_TRUE(net::VerifyFramePayload(
                  header, std::span<const uint8_t>(frame.data() +
                                                       net::kFrameHeaderBytes,
                                                   payload.size()))
                  .ok());
}

TEST(TransportFrameTest, CorruptionIsDetected) {
  std::vector<uint8_t> payload = {9, 8, 7};
  std::vector<uint8_t> frame;
  net::EncodeFrame(net::FrameType::kFetchReply, 7, payload, &frame);

  // Bad magic.
  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xFF;
  net::FrameHeader header;
  EXPECT_EQ(net::DecodeFrameHeader(bad.data(), &header).code(),
            StatusCode::kIoError);

  // Flipped checksum byte (exactly what FaultOp::kCorruptChecksum does).
  bad = frame;
  bad[net::kChecksumOffset] ^= 0xFF;
  ASSERT_TRUE(net::DecodeFrameHeader(bad.data(), &header).ok());
  EXPECT_EQ(net::VerifyFramePayload(
                    header,
                    std::span<const uint8_t>(bad.data() +
                                                 net::kFrameHeaderBytes,
                                             payload.size()))
                .code(),
            StatusCode::kIoError);

  // Flipped payload byte.
  bad = frame;
  bad[net::kFrameHeaderBytes] ^= 0x01;
  ASSERT_TRUE(net::DecodeFrameHeader(bad.data(), &header).ok());
  EXPECT_FALSE(net::VerifyFramePayload(
                   header,
                   std::span<const uint8_t>(bad.data() +
                                                net::kFrameHeaderBytes,
                                            payload.size()))
                   .ok());
}

TEST(TransportFrameTest, FetchReplyCodecRoundTrip) {
  Graph g = SmallRandomishGraph();
  dist::GraphProcessor gp(g, 0, 1);
  std::vector<dist::NodeRecord> records;
  ASSERT_TRUE(gp.Fetch({0, 1, 2, 3}, &records).ok());

  std::vector<uint8_t> payload;
  net::EncodeFetchReply(records, &payload);
  std::vector<dist::NodeRecord> decoded;
  ASSERT_TRUE(net::DecodeFetchReply(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].node, records[i].node);
    EXPECT_EQ(decoded[i].out_targets, records[i].out_targets);
    EXPECT_EQ(decoded[i].out_weights, records[i].out_weights);
    EXPECT_EQ(decoded[i].out_probs, records[i].out_probs);
    EXPECT_EQ(decoded[i].in_sources, records[i].in_sources);
    EXPECT_EQ(decoded[i].in_weights, records[i].in_weights);
    EXPECT_EQ(decoded[i].in_probs, records[i].in_probs);
  }

  // A truncated payload must fail cleanly, never read out of bounds.
  std::span<const uint8_t> truncated(payload.data(), payload.size() - 3);
  decoded.clear();
  EXPECT_EQ(net::DecodeFetchReply(truncated, &decoded).code(),
            StatusCode::kIoError);
}

TEST(TransportFrameTest, ErrorReplyCarriesStatus) {
  std::vector<uint8_t> payload;
  net::EncodeErrorReply(Status::InvalidArgument("no such node"), &payload);
  Status remote = Status::OK();
  ASSERT_TRUE(net::DecodeErrorReply(payload, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(remote.message(), "no such node");
}

TEST(TransportFrameTest, ParseEndpoint) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(net::ParseEndpoint("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(net::ParseEndpoint("no-port", &host, &port).ok());
  EXPECT_FALSE(net::ParseEndpoint(":1234", &host, &port).ok());
  EXPECT_FALSE(net::ParseEndpoint("host:99999", &host, &port).ok());
  EXPECT_FALSE(net::ParseEndpoint("host:", &host, &port).ok());
}

TEST(RemoteGraphProcessorTest, FetchMatchesLocalBitForBit) {
  Graph g = SmallRandomishGraph();
  auto graph = std::make_shared<const Graph>(std::move(g));
  auto server = net::GpServer::Start(graph, /*shard=*/1, /*num_gps=*/3,
                                     /*generation=*/9);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  net::RemoteGraphProcessor remote(
      "127.0.0.1", (*server)->port(), IdentityFor(*graph, 1, 3, 9));
  ASSERT_TRUE(remote.Connect().ok());

  dist::GraphProcessor local(*graph, 1, 3);
  std::vector<NodeId> wanted;
  for (NodeId v = 1; v < graph->num_nodes(); v += 3) wanted.push_back(v);

  std::vector<dist::NodeRecord> remote_records;
  std::vector<dist::NodeRecord> local_records;
  ASSERT_TRUE(remote.Fetch(wanted, &remote_records).ok());
  ASSERT_TRUE(local.Fetch(wanted, &local_records).ok());
  ASSERT_EQ(remote_records.size(), local_records.size());
  for (size_t i = 0; i < local_records.size(); ++i) {
    EXPECT_EQ(remote_records[i].node, local_records[i].node);
    EXPECT_EQ(remote_records[i].out_targets, local_records[i].out_targets);
    EXPECT_EQ(remote_records[i].out_weights, local_records[i].out_weights);
    EXPECT_EQ(remote_records[i].out_probs, local_records[i].out_probs);
    EXPECT_EQ(remote_records[i].in_sources, local_records[i].in_sources);
    EXPECT_EQ(remote_records[i].in_weights, local_records[i].in_weights);
    EXPECT_EQ(remote_records[i].in_probs, local_records[i].in_probs);
  }
  // Record-level accounting matches the loopback tier; wire-level traffic
  // is real (and nonzero) on the remote side only.
  EXPECT_EQ(remote.records_served(), local.records_served());
  EXPECT_EQ(remote.bytes_served(), local.bytes_served());
  EXPECT_GT(remote.wire().bytes_received, 0u);
  EXPECT_EQ(local.wire().bytes_received, 0u);
}

TEST(RemoteGraphProcessorTest, WrongNodeIsATypedRemoteError) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  auto server = net::GpServer::Start(graph, 0, 2, 0);
  ASSERT_TRUE(server.ok());

  net::RemoteGraphProcessor remote("127.0.0.1", (*server)->port(),
                                   IdentityFor(*graph, 0, 2, 0));
  // Node 1 is owned by shard 1, not shard 0: the shard's own typed error
  // must cross the wire unchanged (and must not be retried).
  std::vector<dist::NodeRecord> out;
  Status status = remote.Fetch({1}, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(remote.wire().retries, 0u);
}

TEST(RemoteGraphProcessorTest, HandshakeRejectsWrongShardIdentity) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  auto server = net::GpServer::Start(graph, /*shard=*/0, /*num_gps=*/3,
                                     /*generation=*/5);
  ASSERT_TRUE(server.ok());

  // Wrong stripe arity: an AP expecting 4 GPs must not fetch from a shard
  // striped 3 ways — the records would be silently wrong.
  net::RemoteGraphProcessor wrong_arity("127.0.0.1", (*server)->port(),
                                        IdentityFor(*graph, 0, 4, 5));
  EXPECT_EQ(wrong_arity.Connect().code(), StatusCode::kFailedPrecondition);

  // Wrong generation: a restriped AP must not trust a stale shard.
  net::RemoteGraphProcessor wrong_gen("127.0.0.1", (*server)->port(),
                                      IdentityFor(*graph, 0, 3, 6));
  EXPECT_EQ(wrong_gen.Connect().code(), StatusCode::kFailedPrecondition);

  // The matching identity connects fine.
  net::RemoteGraphProcessor right("127.0.0.1", (*server)->port(),
                                  IdentityFor(*graph, 0, 3, 5));
  EXPECT_TRUE(right.Connect().ok());
}

TEST(RpcClientTest, ConcurrentFetchesMultiplexOneConnection) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  auto server = net::GpServer::Start(graph, 0, 1, 0);
  ASSERT_TRUE(server.ok());

  net::RpcClient client("127.0.0.1", (*server)->port(),
                        IdentityFor(*graph, 0, 1, 0));
  dist::GraphProcessor local(*graph, 0, 1);

  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        std::vector<NodeId> wanted = {
            static_cast<NodeId>((t * 13 + i * 7) % graph->num_nodes()),
            static_cast<NodeId>((t * 29 + i * 3) % graph->num_nodes())};
        std::vector<dist::NodeRecord> got;
        std::vector<dist::NodeRecord> want;
        if (!client.Fetch(wanted, &got).ok() ||
            !local.Fetch(wanted, &want).ok() || got.size() != want.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < want.size(); ++j) {
          if (got[j].node != want[j].node ||
              got[j].out_targets != want[j].out_targets ||
              got[j].in_sources != want[j].in_sources) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All of it multiplexed over the one connection: no retries, no
  // reconnects, and the server accepted exactly one peer.
  dist::WireTraffic w = client.wire();
  EXPECT_EQ(w.retries, 0u);
  EXPECT_EQ(w.reconnects, 0u);
  EXPECT_EQ((*server)->connections_accepted(), 1u);
  EXPECT_EQ(w.frames_sent, 1u + kThreads * kFetchesPerThread);  // + hello
}

TEST(RemoteGraphProcessorTest, ConnectRemoteClusterRejectsBadEndpoints) {
  auto graph = std::make_shared<const Graph>(SmallRandomishGraph());
  StatusOr<std::unique_ptr<dist::Cluster>> bad =
      net::ConnectRemoteCluster(graph, 0, {"not-an-endpoint"});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(net::ConnectRemoteCluster(graph, 0, {}).ok());
}

}  // namespace
}  // namespace rtr
