#include "serve/query_service.h"

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "dist/distributed_topk.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/store.h"
#include "util/random.h"

namespace rtr::serve {
namespace {

// One small BibNet shared by every test in this binary (generation is the
// slow part, each top-K query is sub-millisecond at this scale).
const datasets::BibNet& SharedNet() {
  static const datasets::BibNet* net = [] {
    datasets::BibNetConfig config;
    config.num_papers = 800;
    config.num_authors = 200;
    return new datasets::BibNet(
        datasets::BibNet::Generate(config).value());
  }();
  return *net;
}

// Non-owning handle to the shared BibNet's graph for the service/cluster
// shared_ptr constructors: the fixture above lives for the whole process,
// so an aliasing shared_ptr with no control block is safe and avoids
// copying the graph per test.
std::shared_ptr<const Graph> SharedGraphPtr() {
  return {std::shared_ptr<const Graph>{}, &SharedNet().graph()};
}

core::TopKParams DefaultParams() {
  core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;
  return params;
}

// A stream of `total` queries drawn from `unique` distinct non-dangling
// nodes — repeats are what exercises the cache-hit path.
std::vector<NodeId> MixedQueryStream(const Graph& g, int unique, int total,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pool;
  while (static_cast<int>(pool.size()) < unique) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (g.out_degree(v) > 0) pool.push_back(v);
  }
  std::vector<NodeId> stream;
  for (int i = 0; i < total; ++i) {
    stream.push_back(pool[static_cast<size_t>(rng.NextUint64(pool.size()))]);
  }
  return stream;
}

void ExpectBitIdentical(const core::TopKResult& actual,
                        const core::TopKResult& expected, NodeId query) {
  ASSERT_EQ(actual.entries.size(), expected.entries.size())
      << "query " << query;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(actual.entries[i].node, expected.entries[i].node)
        << "query " << query << " rank " << i;
    // Bit-identical, not approximately equal: concurrency and caching must
    // not perturb the arithmetic in any way.
    EXPECT_EQ(actual.entries[i].lower, expected.entries[i].lower)
        << "query " << query << " rank " << i;
    EXPECT_EQ(actual.entries[i].upper, expected.entries[i].upper)
        << "query " << query << " rank " << i;
  }
}

// Acceptance-criterion test: >= 4 workers, >= 100 mixed cached/uncached
// queries, responses bit-identical to serial TopKRoundTripRank.
void RunBitIdenticalStream(Backend backend) {
  const Graph& graph = SharedNet().graph();
  core::TopKParams params = DefaultParams();
  std::vector<NodeId> stream = MixedQueryStream(graph, 40, 120, 42);

  // Serial references, computed once per distinct query.
  std::vector<core::TopKResult> reference(graph.num_nodes());
  std::vector<bool> have_reference(graph.num_nodes(), false);
  for (NodeId q : stream) {
    if (have_reference[q]) continue;
    reference[q] = core::TopKRoundTripRank(graph, {q}, params).value();
    have_reference[q] = true;
  }

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = stream.size();
  options.enable_cache = true;
  options.cache_capacity = 64;

  std::unique_ptr<QueryService> service_holder;
  if (backend == Backend::kLocal) {
    service_holder =
        std::make_unique<QueryService>(SharedGraphPtr(), options);
  } else {
    service_holder = std::make_unique<QueryService>(
        std::make_shared<const dist::Cluster>(SharedGraphPtr(), 3), options);
  }
  QueryService& service = *service_holder;
  ASSERT_TRUE(service.Start().ok());

  // Callbacks write disjoint slots, so no lock is needed.
  std::vector<ServeResponse> responses(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(service
                    .SubmitAsync({{stream[i]}, params},
                                 [&responses, i](const ServeResponse& r) {
                                   responses[i] = r;
                                 })
                    .ok());
  }
  service.Shutdown();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stream.size());
  EXPECT_EQ(stats.completed, stream.size());
  EXPECT_EQ(stats.failed, 0u);
  // 40 unique nodes in 120 requests: both cache paths must have been taken.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_EQ(service.latencies().Count(), stream.size());

  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.ToString();
    ExpectBitIdentical(responses[i].topk, reference[stream[i]], stream[i]);
  }
}

TEST(QueryServiceTest, BitIdenticalToSerialLocalBackend) {
  RunBitIdenticalStream(Backend::kLocal);
}

TEST(QueryServiceTest, BitIdenticalToSerialDistributedBackend) {
  RunBitIdenticalStream(Backend::kDistributed);
}

TEST(QueryServiceTest, AdmissionQueueOverflowShedsLoad) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> stream = MixedQueryStream(graph, 6, 6, 7);

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 5;
  QueryService service(SharedGraphPtr(), options);

  // Submissions queue up before Start, so the overflow is deterministic.
  std::atomic<int> done{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service
                    .SubmitAsync({{stream[static_cast<size_t>(i)]},
                                  DefaultParams()},
                                 [&done](const ServeResponse&) { ++done; })
                    .ok());
  }
  Status overflow = service.SubmitAsync({{stream[5]}, DefaultParams()},
                                        [&done](const ServeResponse&) {
                                          ++done;
                                        });
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);

  ASSERT_TRUE(service.Start().ok());
  service.Shutdown();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(done.load(), 5);  // the rejected callback never fires
}

TEST(QueryServiceTest, SubmitAfterShutdownIsUnavailable) {
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());
  service.Shutdown();
  Status status = service.SubmitAsync({{0}, DefaultParams()}, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(QueryServiceTest, CallRequiresStartedService) {
  QueryService service(SharedGraphPtr(), ServiceOptions{});
  StatusOr<ServeResponse> response =
      service.Call({{0}, DefaultParams()});
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, StartTwiceFails) {
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  service.Shutdown();
}

TEST(QueryServiceTest, RepeatQueryHitsCacheThenEvicts) {
  const Graph& graph = SharedNet().graph();
  // Two *distinct* non-dangling nodes (MixedQueryStream's pool may repeat).
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < graph.num_nodes() && nodes.size() < 2; ++v) {
    if (graph.out_degree(v) > 0) nodes.push_back(v);
  }
  ASSERT_EQ(nodes.size(), 2u);
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());

  ServeRequest first{{nodes[0]}, DefaultParams()};
  ServeRequest second{{nodes[1]}, DefaultParams()};
  StatusOr<ServeResponse> miss = service.Call(first);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->cache_hit);

  StatusOr<ServeResponse> hit = service.Call(first);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  ExpectBitIdentical(hit->topk, miss->topk, nodes[0]);

  // A different query evicts the single-entry cache...
  ASSERT_TRUE(service.Call(second).ok());
  // ...so the first query misses again.
  StatusOr<ServeResponse> again = service.Call(first);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
  EXPECT_GE(service.stats().cache_evictions, 1u);
  service.Shutdown();
}

TEST(QueryServiceTest, ChangedParamsBypassTheCache) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> nodes = MixedQueryStream(graph, 1, 1, 13);
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());

  core::TopKParams params = DefaultParams();
  ASSERT_TRUE(service.Call({{nodes[0]}, params}).ok());
  params.k = 5;  // any parameter change is a different cache key
  StatusOr<ServeResponse> other = service.Call({{nodes[0]}, params});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->cache_hit);
  EXPECT_EQ(other->topk.entries.size(), 5u);
  service.Shutdown();
}

TEST(QueryServiceTest, EngineErrorsPropagatePerQuery) {
  const Graph& graph = SharedNet().graph();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());

  NodeId out_of_range = static_cast<NodeId>(graph.num_nodes());
  StatusOr<ServeResponse> bad = service.Call({{out_of_range},
                                              DefaultParams()});
  ASSERT_TRUE(bad.ok());  // the transport succeeded; the engine failed
  EXPECT_EQ(bad->status.code(), StatusCode::kInvalidArgument);

  // The service keeps serving after a failed query.
  std::vector<NodeId> nodes = MixedQueryStream(graph, 1, 1, 17);
  StatusOr<ServeResponse> good = service.Call({{nodes[0]}, DefaultParams()});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
  service.Shutdown();
}

TEST(QueryServiceTest, NaiveSchemeRejectedByDistributedBackend) {
  const Graph& graph = SharedNet().graph();
  auto cluster = std::make_shared<const dist::Cluster>(SharedGraphPtr(), 2);
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(cluster, options);
  ASSERT_TRUE(service.Start().ok());

  std::vector<NodeId> nodes = MixedQueryStream(graph, 1, 1, 19);
  core::TopKParams params = DefaultParams();
  params.scheme = core::TopKScheme::kNaive;
  StatusOr<ServeResponse> response = service.Call({{nodes[0]}, params});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  service.Shutdown();
}

TEST(QueryServiceTest, SloViolationAccounting) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> stream = MixedQueryStream(graph, 4, 8, 23);

  // An impossible 0 ms SLO: every completed query violates it.
  ServiceOptions options;
  options.num_workers = 2;
  options.slo_millis = 0.0;
  {
    QueryService service(SharedGraphPtr(), options);
    ASSERT_TRUE(service.Start().ok());
    for (NodeId q : stream) {
      ASSERT_TRUE(service.SubmitAsync({{q}, DefaultParams()}, nullptr).ok());
    }
    service.Shutdown();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.slo_violations, stats.completed);
    EXPECT_GT(stats.qps, 0.0);
    EXPECT_GT(stats.p99_millis, 0.0);
  }

  // An unmissable SLO: zero violations.
  options.slo_millis = 1e9;
  {
    QueryService service(SharedGraphPtr(), options);
    ASSERT_TRUE(service.Start().ok());
    for (NodeId q : stream) {
      ASSERT_TRUE(service.SubmitAsync({{q}, DefaultParams()}, nullptr).ok());
    }
    service.Shutdown();
    EXPECT_EQ(service.stats().slo_violations, 0u);
  }
}

TEST(QueryServiceTest, ShutdownWithoutStartCompletesQueuedAsUnavailable) {
  ServiceOptions options;
  QueryService service(SharedGraphPtr(), options);
  std::atomic<int> unavailable{0};
  ASSERT_TRUE(service
                  .SubmitAsync({{0}, DefaultParams()},
                               [&unavailable](const ServeResponse& r) {
                                 if (r.status.code() ==
                                     StatusCode::kUnavailable) {
                                   ++unavailable;
                                 }
                               })
                  .ok());
  service.Shutdown();
  EXPECT_EQ(unavailable.load(), 1);  // the accepted callback fired once
}

// Snapshot-based bring-up: FromGraphFile must serve a snapshot-loaded graph
// with results identical to a service over the in-memory original.
TEST(QueryServiceTest, FromGraphFileServesSnapshot) {
  const Graph& g = SharedNet().graph();
  const std::string path =
      testing::TempDir() + "/rtr_query_service_test.rtrsnap";
  ASSERT_TRUE(SaveGraphSnapshotToFile(g, path).ok());

  ServiceOptions options;
  options.num_workers = 2;
  StatusOr<std::unique_ptr<QueryService>> service =
      QueryService::FromGraphFile(path, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->Start().ok());

  NodeId query = MixedQueryStream(g, 1, 1, 17)[0];
  StatusOr<ServeResponse> response =
      (*service)->Call({{query}, DefaultParams()});
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  core::TopKResult expected =
      core::TopKRoundTripRank(g, {query}, DefaultParams()).value();
  ExpectBitIdentical(response->topk, expected, query);
  (*service)->Shutdown();
}

TEST(QueryServiceTest, FromGraphFileRejectsMissingAndCorruptFiles) {
  ServiceOptions options;
  EXPECT_FALSE(
      QueryService::FromGraphFile("/nonexistent/g.rtrsnap", options).ok());

  const std::string path = testing::TempDir() + "/rtr_query_service_bad.txt";
  std::ofstream(path) << "not a graph at all\n";
  EXPECT_FALSE(QueryService::FromGraphFile(path, options).ok());
}

// ---------------------------------------------------------------------------
// Live updates (DESIGN.md §8): serving over a GraphStore while a writer
// publishes new generations.

Graph LiveBaseGraph(size_t n = 50) {
  Rng rng(99);
  GraphBuilder b;
  b.AddNodes(n);
  for (size_t e = 0; e < 4 * n; ++e) {
    b.AddDirectedEdge(static_cast<NodeId>(rng.NextUint64(n)),
                      static_cast<NodeId>(rng.NextUint64(n)),
                      0.1 + rng.NextDouble());
  }
  return b.Build().value();
}

// Appends two nodes and a batch of arcs over the grown range.
GraphDelta GrowthDelta(uint64_t base_generation, size_t base_nodes,
                       uint64_t seed) {
  Rng rng(seed);
  GraphDelta delta;
  delta.base_generation = base_generation;
  delta.added_node_types = {kUntypedNode, kUntypedNode};
  const size_t n = base_nodes + 2;
  for (int e = 0; e < 10; ++e) {
    delta.added_arcs.push_back({static_cast<NodeId>(rng.NextUint64(n)),
                                static_cast<NodeId>(rng.NextUint64(n)),
                                0.1 + rng.NextDouble()});
  }
  return delta;
}

TEST(QueryServiceTest, LiveStoreServesNewGenerationsMidStream) {
  auto store = std::make_shared<GraphStore>(LiveBaseGraph());
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(store, options);
  ASSERT_TRUE(service.Start().ok());

  NodeId query = 0;
  while (store->Current()->out_degree(query) == 0) ++query;

  StatusOr<ServeResponse> before = service.Call({{query}, DefaultParams()});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->status.ok());
  EXPECT_EQ(before->generation, 0u);
  ExpectBitIdentical(
      before->topk,
      core::TopKRoundTripRank(*store->Current(), {query}, DefaultParams())
          .value(),
      query);

  // Publish generation 1 while the pool is live; the same query must now be
  // answered on the new graph, bit-identically to a serial run on it.
  PinnedGraph old_pin = store->Pin();
  ASSERT_TRUE(store->Apply(GrowthDelta(0, old_pin.graph->num_nodes(), 7)).ok());
  StatusOr<ServeResponse> after = service.Call({{query}, DefaultParams()});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  EXPECT_EQ(after->generation, 1u);
  EXPECT_FALSE(after->cache_hit);  // the old generation's entry is dead
  ExpectBitIdentical(
      after->topk,
      core::TopKRoundTripRank(*store->Current(), {query}, DefaultParams())
          .value(),
      query);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.generation, 1u);
  service.Shutdown();
}

TEST(QueryServiceTest, GenerationSwapInvalidatesCachedResults) {
  auto store = std::make_shared<GraphStore>(LiveBaseGraph());
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(store, options);
  ASSERT_TRUE(service.Start().ok());

  NodeId query = 0;
  while (store->Current()->out_degree(query) == 0) ++query;
  ServeRequest request{{query}, DefaultParams()};

  ASSERT_TRUE(service.Call(request).ok());              // miss, fills cache
  StatusOr<ServeResponse> hit = service.Call(request);  // hit on generation 0
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);

  ASSERT_TRUE(
      store->Apply(GrowthDelta(0, store->Current()->num_nodes(), 11)).ok());
  StatusOr<ServeResponse> miss = service.Call(request);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->cache_hit);  // generation 1 key, computed fresh
  EXPECT_EQ(miss->generation, 1u);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.generation, 1u);
  // The first query to observe the swap reclaimed generation-0 entries.
  EXPECT_GE(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  service.Shutdown();
}

TEST(QueryServiceTest, DistLiveBackendRestripesOnSwap) {
  auto store = std::make_shared<GraphStore>(LiveBaseGraph());
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(store, /*num_gps=*/2, options);
  EXPECT_EQ(service.backend(), Backend::kDistributed);
  ASSERT_TRUE(service.Start().ok());

  NodeId query = 0;
  while (store->Current()->out_degree(query) == 0) ++query;

  StatusOr<ServeResponse> before = service.Call({{query}, DefaultParams()});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->status.ok());
  EXPECT_EQ(before->generation, 0u);

  ASSERT_TRUE(
      store->Apply(GrowthDelta(0, store->Current()->num_nodes(), 13)).ok());
  StatusOr<ServeResponse> after = service.Call({{query}, DefaultParams()});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  EXPECT_EQ(after->generation, 1u);
  // The distributed replay on the restriped cluster matches the local
  // engine on the same generation bit-for-bit.
  ExpectBitIdentical(
      after->topk,
      core::TopKRoundTripRank(*store->Current(), {query}, DefaultParams())
          .value(),
      query);
  service.Shutdown();
}

// Swap-under-load stress (the serve-side TSan target): a writer publishes
// generations while 4 workers drain a query stream; every response must be
// bit-identical to a serial run on the generation it reports.
TEST(QueryServiceTest, LiveSwapUnderConcurrentLoadStaysBitIdentical) {
  auto store = std::make_shared<GraphStore>(LiveBaseGraph());
  constexpr int kSwaps = 4;
  constexpr int kQueriesPerPhase = 12;

  // Pin every generation so post-hoc references can be computed on the
  // exact graphs the workers served.
  std::vector<PinnedGraph> generations;
  generations.push_back(store->Pin());

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = (kSwaps + 1) * kQueriesPerPhase;
  QueryService service(store, options);
  ASSERT_TRUE(service.Start().ok());

  std::vector<NodeId> pool =
      MixedQueryStream(*generations[0].graph, 8, kQueriesPerPhase, 31);
  std::vector<ServeResponse> responses(options.queue_capacity);
  size_t submitted = 0;
  for (int phase = 0; phase <= kSwaps; ++phase) {
    for (int i = 0; i < kQueriesPerPhase; ++i) {
      const size_t slot = submitted++;
      ASSERT_TRUE(service
                      .SubmitAsync({{pool[static_cast<size_t>(i) %
                                          pool.size()]},
                                    DefaultParams()},
                                   [&responses, slot](const ServeResponse& r) {
                                     responses[slot] = r;
                                   })
                      .ok());
    }
    if (phase < kSwaps) {
      // Publish the next generation while this phase's queries are being
      // drained by the pool.
      StatusOr<uint64_t> gen = store->Apply(
          GrowthDelta(static_cast<uint64_t>(phase),
                      store->Current()->num_nodes(),
                      100 + static_cast<uint64_t>(phase)));
      ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      generations.push_back(store->Pin());
    }
  }
  service.Shutdown();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, submitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.generation, static_cast<uint64_t>(kSwaps));

  for (size_t i = 0; i < submitted; ++i) {
    const ServeResponse& r = responses[i];
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_LT(r.generation, generations.size());
    const Graph& served = *generations[r.generation].graph;
    NodeId q = pool[i % pool.size()];
    ExpectBitIdentical(
        r.topk,
        core::TopKRoundTripRank(served, {q}, DefaultParams()).value(), q);
  }
}

TEST(QueryServiceTest, TracedPhasesSumToAtMostTotalLatency) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> stream = MixedQueryStream(graph, 30, 80, 21);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = stream.size();
  options.enable_cache = true;
  options.cache_capacity = 64;
  options.enable_tracing = true;
  options.trace_keep = 5;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.tracing());

  std::atomic<int> done{0};
  for (NodeId q : stream) {
    ASSERT_TRUE(service
                    .SubmitAsync({{q}, DefaultParams()},
                                 [&done](const ServeResponse&) { ++done; })
                    .ok());
  }
  service.Shutdown();
  ASSERT_EQ(done.load(), static_cast<int>(stream.size()));

  // Every query passed through admission, pin, and the cache probe; only
  // cache misses reach the engine phases.
  ServiceStats stats = service.stats();
  EXPECT_EQ(service.phase_latencies(obs::Phase::kQueueWait).Count(),
            stats.completed);
  EXPECT_EQ(service.phase_latencies(obs::Phase::kGenerationPin).Count(),
            stats.completed);
  EXPECT_EQ(service.phase_latencies(obs::Phase::kCacheLookup).Count(),
            stats.completed);
  EXPECT_EQ(service.phase_latencies(obs::Phase::kStage1Expand).Count(),
            stats.cache_misses);
  EXPECT_EQ(service.phase_latencies(obs::Phase::kFinalize).Count(),
            stats.cache_misses);

  // Phases are disjoint segments of each query's life, so their aggregate
  // time cannot exceed the aggregate end-to-end latency (allow a small
  // absolute slack for independent clock reads at the segment seams).
  double phase_sum = 0.0;
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    phase_sum +=
        service.phase_latencies(static_cast<obs::Phase>(p)).SumMillis();
  }
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, service.latencies().SumMillis() +
                           0.05 * static_cast<double>(stats.completed));

  std::vector<std::string> traces = service.SlowestTraces();
  ASSERT_FALSE(traces.empty());
  EXPECT_LE(traces.size(), options.trace_keep);
  for (const std::string& json : traces) {
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"query_id\":"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\":"), std::string::npos);
  }
}

TEST(QueryServiceTest, TracingOffRecordsNothing) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> stream = MixedQueryStream(graph, 10, 20, 22);

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = stream.size();
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_FALSE(service.tracing());

  for (NodeId q : stream) {
    ASSERT_TRUE(
        service.SubmitAsync({{q}, DefaultParams()}, nullptr).ok());
  }
  service.Shutdown();

  EXPECT_EQ(service.stats().completed, stream.size());
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    EXPECT_EQ(service.phase_latencies(static_cast<obs::Phase>(p)).Count(),
              0u);
  }
  EXPECT_TRUE(service.SlowestTraces().empty());
}

TEST(QueryServiceTest, SetTracingTogglesMidStream) {
  const Graph& graph = SharedNet().graph();
  std::vector<NodeId> stream = MixedQueryStream(graph, 10, 20, 23);

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = stream.size();
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());

  // First half untraced; then flip tracing on for the second half.
  std::atomic<int> done{0};
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(service
                    .SubmitAsync({{stream[i]}, DefaultParams()},
                                 [&done](const ServeResponse&) { ++done; })
                    .ok());
  }
  while (static_cast<size_t>(done.load()) < half) {
    std::this_thread::yield();
  }
  service.SetTracing(true);
  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(service
                    .SubmitAsync({{stream[i]}, DefaultParams()},
                                 [&done](const ServeResponse&) { ++done; })
                    .ok());
  }
  service.Shutdown();

  EXPECT_EQ(service.stats().completed, stream.size());
  uint64_t traced =
      service.phase_latencies(obs::Phase::kQueueWait).Count();
  EXPECT_GT(traced, 0u);
  EXPECT_LE(traced, stream.size() - half);
  EXPECT_FALSE(service.SlowestTraces().empty());
}

}  // namespace
}  // namespace rtr::serve
