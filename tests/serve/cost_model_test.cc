#include "serve/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "graph/builder.h"
#include "util/random.h"

namespace rtr::serve {
namespace {

// Hub node 0 with `leaves` out- and in-arcs; leaf degree is 1+1.
Graph StarGraph(size_t leaves) {
  GraphBuilder b;
  b.AddNodes(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) {
    b.AddDirectedEdge(0, v, 1.0);
    b.AddDirectedEdge(v, 0, 1.0);
  }
  return b.Build().value();
}

TEST(CostFeaturesTest, DegreeFeaturesComeFromColumnarOffsets) {
  Graph g = StarGraph(64);
  core::TopKParams params;
  CostFeatures hub = CostFeaturesOf(g, {0}, params);
  CostFeatures leaf = CostFeaturesOf(g, {1}, params);
  EXPECT_DOUBLE_EQ(hub.x[0], 1.0);
  EXPECT_DOUBLE_EQ(hub.x[1], std::log2(65.0));
  EXPECT_DOUBLE_EQ(hub.x[2], std::log2(65.0));
  EXPECT_DOUBLE_EQ(leaf.x[1], std::log2(2.0));
  // Multi-node queries sum their frontiers.
  CostFeatures both = CostFeaturesOf(g, {0, 1}, params);
  EXPECT_DOUBLE_EQ(both.x[1], std::log2(66.0));
}

TEST(CostFeaturesTest, OutOfRangeNodesContributeNothing) {
  Graph g = StarGraph(4);
  core::TopKParams params;
  CostFeatures junk = CostFeaturesOf(g, {9999}, params);
  EXPECT_DOUBLE_EQ(junk.x[1], 0.0);
  EXPECT_DOUBLE_EQ(junk.x[2], 0.0);
}

TEST(CostFeaturesTest, EpsilonZeroIsClampedNotInfinite) {
  Graph g = StarGraph(4);
  core::TopKParams params;
  params.epsilon = 0.0;
  CostFeatures f = CostFeaturesOf(g, {1}, params);
  EXPECT_TRUE(std::isfinite(f.x[3]));
  EXPECT_DOUBLE_EQ(f.x[3], std::log2(1.0 / QueryCostModel::kEpsilonFloor));
}

TEST(QueryCostModelTest, FixedPriorIsDeterministic) {
  // Two fresh models agree bit-for-bit before any observation — scheduling
  // decisions in tests are reproducible.
  QueryCostModel a;
  QueryCostModel b;
  Graph g = StarGraph(32);
  core::TopKParams params;
  CostFeatures f = CostFeaturesOf(g, {0}, params);
  EXPECT_EQ(a.PredictMillis(f), b.PredictMillis(f));
  EXPECT_GE(a.PredictMillis(f), QueryCostModel::kMinPredictionMillis);
  EXPECT_EQ(a.observations(), 0u);
}

TEST(QueryCostModelTest, PriorIsMonotoneInDegreeEpsilonAndK) {
  QueryCostModel model;
  Graph g = StarGraph(256);
  core::TopKParams params;
  const double hub = model.PredictMillis(CostFeaturesOf(g, {0}, params));
  const double leaf = model.PredictMillis(CostFeaturesOf(g, {1}, params));
  EXPECT_GT(hub, leaf);
  core::TopKParams tight = params;
  tight.epsilon = params.epsilon / 100.0;
  EXPECT_GT(model.PredictMillis(CostFeaturesOf(g, {0}, tight)), hub);
  core::TopKParams big_k = params;
  big_k.k = params.k * 16;
  EXPECT_GT(model.PredictMillis(CostFeaturesOf(g, {0}, big_k)), hub);
}

TEST(QueryCostModelTest, PredictionErrorShrinksOverReplayedWorkload) {
  // Ground truth is linear in the features, so RLS can nail it; the test
  // pins that decayed least squares actually converges, not how fast.
  QueryCostModel model;
  auto truth = [](const CostFeatures& f) {
    return 0.2 + 0.12 * f.x[1] + 0.05 * f.x[2] + 0.3 * f.x[3] +
           0.02 * f.x[4];
  };
  auto sample = [](Rng& rng) {
    CostFeatures f;
    f.x[0] = 1.0;
    f.x[1] = 12.0 * rng.NextDouble();
    f.x[2] = 12.0 * rng.NextDouble();
    f.x[3] = 10.0 * rng.NextDouble();
    f.x[4] = 6.0 * rng.NextDouble();
    return f;
  };
  auto eval_error = [&] {
    Rng eval_rng(7);
    double err = 0.0;
    for (int i = 0; i < 64; ++i) {
      CostFeatures f = sample(eval_rng);
      err += std::fabs(model.PredictMillis(f) - truth(f));
    }
    return err / 64.0;
  };
  const double before = eval_error();
  Rng rng(42);
  for (int i = 0; i < 400; ++i) {
    CostFeatures f = sample(rng);
    model.Observe(f, truth(f));
  }
  const double after = eval_error();
  EXPECT_EQ(model.observations(), 400u);
  EXPECT_LT(after, 0.2 * before);
  EXPECT_LT(after, 0.05);  // near-exact recovery of a noiseless target
}

TEST(QueryCostModelTest, TracksDriftThroughForgetting) {
  // The same workload at 3x the latency (a generation swap, say): the
  // decayed fit follows the new regime instead of averaging forever.
  QueryCostModel model;
  CostFeatures f;
  f.x = {1.0, 5.0, 5.0, 6.0, 3.0};
  for (int i = 0; i < 200; ++i) model.Observe(f, 2.0);
  EXPECT_NEAR(model.PredictMillis(f), 2.0, 0.05);
  for (int i = 0; i < 200; ++i) model.Observe(f, 6.0);
  EXPECT_NEAR(model.PredictMillis(f), 6.0, 0.1);
}

TEST(QueryCostModelTest, IgnoresGarbageObservations) {
  QueryCostModel model;
  CostFeatures f;
  f.x = {1.0, 2.0, 2.0, 6.0, 3.0};
  const double before = model.PredictMillis(f);
  model.Observe(f, -1.0);
  model.Observe(f, std::nan(""));
  EXPECT_EQ(model.observations(), 0u);
  EXPECT_EQ(model.PredictMillis(f), before);
}

}  // namespace
}  // namespace rtr::serve
