#include "serve/result_cache.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"

namespace rtr::serve {
namespace {

core::TopKResult MakeResult(NodeId top) {
  core::TopKResult result;
  result.entries.push_back({top, 0.5, 0.6});
  result.converged = true;
  return result;
}

CacheKey MakeKey(NodeId query_node) {
  core::TopKParams params;
  return CacheKey::Of({query_node}, params);
}

TEST(ResultCacheTest, InsertThenLookupRoundTrips) {
  ResultCache cache(/*capacity=*/8, /*num_shards=*/2);
  cache.Insert(MakeKey(1), MakeResult(77));
  std::shared_ptr<const core::TopKResult> out = cache.Lookup(MakeKey(1));
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->entries.size(), 1u);
  EXPECT_EQ(out->entries[0].node, 77u);
  EXPECT_EQ(out->entries[0].lower, 0.5);
  EXPECT_EQ(out->entries[0].upper, 0.6);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, AnyParameterChangeIsADifferentKey) {
  ResultCache cache(8, 1);
  core::TopKParams params;
  Query query = {5};
  cache.Insert(CacheKey::Of(query, params), MakeResult(1));

  core::TopKParams other = params;
  other.epsilon = 0.02;
  EXPECT_EQ(cache.Lookup(CacheKey::Of(query, other)), nullptr);
  other = params;
  other.k = 20;
  EXPECT_EQ(cache.Lookup(CacheKey::Of(query, other)), nullptr);
  other = params;
  other.scheme = core::TopKScheme::kGupta;
  EXPECT_EQ(cache.Lookup(CacheKey::Of(query, other)), nullptr);
  // Multi-node queries differ from single-node prefixes.
  EXPECT_EQ(cache.Lookup(CacheKey::Of({5, 6}, params)), nullptr);
  EXPECT_NE(cache.Lookup(CacheKey::Of(query, params)), nullptr);
}

TEST(ResultCacheTest, LruEvictionPrefersStaleEntries) {
  // Single shard so the LRU order is global and deterministic.
  ResultCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(1));
  cache.Insert(MakeKey(2), MakeResult(2));
  cache.Insert(MakeKey(3), MakeResult(3));

  ASSERT_NE(cache.Lookup(MakeKey(1)), nullptr);  // 1 becomes most recent

  cache.Insert(MakeKey(4), MakeResult(4));  // evicts 2, the LRU entry
  EXPECT_NE(cache.Lookup(MakeKey(1)), nullptr);
  EXPECT_EQ(cache.Lookup(MakeKey(2)), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(3)), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey(4)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(4, 1);
  cache.Insert(MakeKey(1), MakeResult(10));
  cache.Insert(MakeKey(1), MakeResult(20));
  EXPECT_EQ(cache.size(), 1u);
  std::shared_ptr<const core::TopKResult> out = cache.Lookup(MakeKey(1));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->entries[0].node, 20u);  // the refresh won
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCacheTest, HitsSurviveEvictionOfTheEntry) {
  // A handle returned by Lookup stays valid after the entry is evicted —
  // the point of the shared_ptr storage.
  ResultCache cache(/*capacity=*/1, /*num_shards=*/1);
  cache.Insert(MakeKey(1), MakeResult(11));
  std::shared_ptr<const core::TopKResult> held = cache.Lookup(MakeKey(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(MakeKey(2), MakeResult(22));  // evicts key 1
  EXPECT_EQ(cache.Lookup(MakeKey(1)), nullptr);
  EXPECT_EQ(held->entries[0].node, 11u);  // still readable
}

TEST(ResultCacheTest, CapacityBoundsHoldAcrossShards) {
  ResultCache cache(/*capacity=*/8, /*num_shards=*/4);
  for (NodeId v = 0; v < 100; ++v) {
    cache.Insert(MakeKey(v), MakeResult(v));
  }
  // Capacity splits as ceil(8/4) = 2 per shard; the resident total can
  // never exceed shards * per-shard = 8.
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.stats().insertions, 100u);
  EXPECT_GE(cache.stats().evictions, 92u);
}

TEST(ResultCacheTest, ConcurrentMixedUseKeepsCountersConsistent) {
  ResultCache cache(64, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        NodeId v = static_cast<NodeId>((t * 31 + i) % 97);
        if (i % 2 == 0) {
          cache.Insert(MakeKey(v), MakeResult(v));
        } else {
          std::shared_ptr<const core::TopKResult> out =
              cache.Lookup(MakeKey(v));
          if (out != nullptr) {
            // A hit must return the value inserted for that key.
            EXPECT_EQ(out->entries[0].node, v);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread / 2));
  EXPECT_LE(cache.size(), 64u);
}

TEST(ResultCacheTest, GenerationIsPartOfTheKey) {
  // The live-update story (DESIGN.md §8): results computed on generation g
  // must be unreachable from queries pinned to generation g+1.
  ResultCache cache(8, 1);
  core::TopKParams params;
  cache.Insert(CacheKey::Of({5}, params, /*generation=*/1), MakeResult(10));
  EXPECT_EQ(cache.Lookup(CacheKey::Of({5}, params, 2)), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey::Of({5}, params, 0)), nullptr);
  std::shared_ptr<const core::TopKResult> out =
      cache.Lookup(CacheKey::Of({5}, params, 1));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->entries[0].node, 10u);
}

TEST(ResultCacheTest, EvictGenerationsBelowReclaimsStaleEntries) {
  ResultCache cache(/*capacity=*/16, /*num_shards=*/2);
  core::TopKParams params;
  for (NodeId v = 0; v < 4; ++v) {
    cache.Insert(CacheKey::Of({v}, params, /*generation=*/1), MakeResult(v));
  }
  cache.Insert(CacheKey::Of({9}, params, /*generation=*/2), MakeResult(9));

  cache.EvictGenerationsBelow(2);
  EXPECT_EQ(cache.size(), 1u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(cache.Lookup(CacheKey::Of({v}, params, 1)), nullptr);
  }
  // The current generation's entry survives.
  EXPECT_NE(cache.Lookup(CacheKey::Of({9}, params, 2)), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 4u);

  // Idempotent: nothing below the floor remains.
  cache.EvictGenerationsBelow(2);
  EXPECT_EQ(cache.stats().invalidations, 4u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace rtr::serve
