#include "serve/scheduler.h"

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/twosbound.h"
#include "datasets/bibnet.h"
#include "graph/graph.h"
#include "serve/query_service.h"
#include "util/random.h"

namespace rtr::serve {
namespace {

// Shared small BibNet (same scale as query_service_test: generation is the
// slow part, queries are sub-millisecond).
const datasets::BibNet& SharedNet() {
  static const datasets::BibNet* net = [] {
    datasets::BibNetConfig config;
    config.num_papers = 800;
    config.num_authors = 200;
    return new datasets::BibNet(
        datasets::BibNet::Generate(config).value());
  }();
  return *net;
}

std::shared_ptr<const Graph> SharedGraphPtr() {
  return {std::shared_ptr<const Graph>{}, &SharedNet().graph()};
}

core::TopKParams DefaultParams() {
  core::TopKParams params;
  params.k = 10;
  params.epsilon = 0.01;
  return params;
}

std::vector<NodeId> QueryStream(const Graph& g, int unique, int total,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pool;
  while (static_cast<int>(pool.size()) < unique) {
    NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (g.out_degree(v) > 0) pool.push_back(v);
  }
  std::vector<NodeId> stream;
  for (int i = 0; i < total; ++i) {
    stream.push_back(pool[static_cast<size_t>(rng.NextUint64(pool.size()))]);
  }
  return stream;
}

void ExpectBitIdentical(const core::TopKResult& actual,
                        const core::TopKResult& expected, NodeId query) {
  ASSERT_EQ(actual.entries.size(), expected.entries.size())
      << "query " << query;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(actual.entries[i].node, expected.entries[i].node)
        << "query " << query << " rank " << i;
    EXPECT_EQ(actual.entries[i].lower, expected.entries[i].lower)
        << "query " << query << " rank " << i;
    EXPECT_EQ(actual.entries[i].upper, expected.entries[i].upper)
        << "query " << query << " rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Policy pieces
// ---------------------------------------------------------------------------

TEST(SchedulerPolicyTest, PriorityKeyIsShortestJobFirstWithAging) {
  // Same arrival: cheaper job first.
  EXPECT_LT(PriorityKey(1.0, 100.0, 1.0), PriorityKey(5.0, 100.0, 1.0));
  // Same cost: earlier arrival first (FIFO among equals).
  EXPECT_LT(PriorityKey(2.0, 50.0, 1.0), PriorityKey(2.0, 60.0, 1.0));
  // Anti-starvation: a 10ms-more-expensive job admitted 20ms earlier beats
  // the cheap newcomer (its head start exceeds the cost gap).
  EXPECT_LT(PriorityKey(11.0, 0.0, 1.0), PriorityKey(1.0, 20.0, 1.0));
  // age_boost 0 is pure SJF: the head start stops mattering.
  EXPECT_GT(PriorityKey(11.0, 0.0, 0.0), PriorityKey(1.0, 20.0, 0.0));
}

TEST(SchedulerPolicyTest, ClassifyCostSplitsAroundTheMean) {
  EXPECT_EQ(ClassifyCost(0.4, 1.0), CostClass::kCheap);
  EXPECT_EQ(ClassifyCost(1.0, 1.0), CostClass::kModerate);
  EXPECT_EQ(ClassifyCost(2.5, 1.0), CostClass::kHeavy);
  // No mean yet: everything is moderate.
  EXPECT_EQ(ClassifyCost(5.0, 0.0), CostClass::kModerate);
  EXPECT_STREQ(CostClassName(CostClass::kCheap), "cheap");
  EXPECT_STREQ(CostClassName(CostClass::kModerate), "moderate");
  EXPECT_STREQ(CostClassName(CostClass::kHeavy), "heavy");
}

TEST(SchedulerPolicyTest, PredictedCompletionSpreadsBacklogAcrossWorkers) {
  EXPECT_DOUBLE_EQ(PredictedCompletionMillis(40.0, 4, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(PredictedCompletionMillis(0.0, 4, 2.0), 2.0);
  // Degenerate worker counts clamp to one.
  EXPECT_DOUBLE_EQ(PredictedCompletionMillis(10.0, 0, 1.0), 11.0);
}

TEST(SchedulerPolicyTest, EffectiveEpsilonRampsQuantizedAboveWatermark) {
  SchedulerOptions options;
  options.eps_max = 0.09;
  options.queue_watermark = 0.5;
  const double base = 0.01;
  // At or below the watermark: untouched.
  EXPECT_DOUBLE_EQ(EffectiveEpsilon(base, options, 0, 8), base);
  EXPECT_DOUBLE_EQ(EffectiveEpsilon(base, options, 4, 8), base);
  // Above: monotone, quantized to kEpsilonSteps levels, capped at eps_max.
  const double e5 = EffectiveEpsilon(base, options, 5, 8);
  const double e6 = EffectiveEpsilon(base, options, 6, 8);
  const double e8 = EffectiveEpsilon(base, options, 8, 8);
  EXPECT_GT(e5, base);
  EXPECT_GE(e6, e5);
  EXPECT_DOUBLE_EQ(e8, options.eps_max);
  // Quantization: the whole ramp takes at most kEpsilonSteps + 1 values.
  std::set<double> values;
  for (size_t depth = 0; depth <= 8; ++depth) {
    values.insert(EffectiveEpsilon(base, options, depth, 8));
  }
  EXPECT_LE(values.size(), static_cast<size_t>(kEpsilonSteps) + 1);
  // Disabled band (eps_max below base): always base.
  options.eps_max = 0.001;
  EXPECT_DOUBLE_EQ(EffectiveEpsilon(base, options, 8, 8), base);
}

TEST(AdmissionQueueTest, PopsInKeyOrderWithFifoTieBreak) {
  AdmissionQueue<int> queue;
  queue.Push(3.0, 3.0, 30);
  queue.Push(1.0, 1.0, 10);
  queue.Push(2.0, 2.0, 20);
  queue.Push(1.0, 1.0, 11);  // same key as 10, admitted later
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_DOUBLE_EQ(queue.total_predicted_millis(), 7.0);
  EXPECT_EQ(queue.Pop(), 10);
  EXPECT_EQ(queue.Pop(), 11);
  EXPECT_DOUBLE_EQ(queue.total_predicted_millis(), 5.0);
  EXPECT_EQ(queue.Pop(), 20);
  EXPECT_EQ(queue.Pop(), 30);
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.total_predicted_millis(), 0.0);
}

TEST(AdmissionQueueTest, RandomizedAgainstSortedReference) {
  Rng rng(13);
  AdmissionQueue<size_t> queue;
  std::vector<std::pair<double, size_t>> reference;
  for (size_t i = 0; i < 200; ++i) {
    const double key = rng.NextDouble() * 10.0;
    queue.Push(key, 0.5, i);
    reference.emplace_back(key, i);
  }
  // Stable sort by key == key order with sequence tie-break.
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [key, index] : reference) {
    EXPECT_EQ(queue.Pop(), index) << "key " << key;
  }
}

// ---------------------------------------------------------------------------
// QueryService integration
// ---------------------------------------------------------------------------

// Scheduler on (batching, aging, the lot) but no deadline and no epsilon
// band: responses must stay bit-identical to the serial engine.
TEST(SchedulerServiceTest, ScheduledBatchedResponsesBitIdenticalToSerial) {
  const Graph& graph = SharedNet().graph();
  core::TopKParams params = DefaultParams();
  std::vector<NodeId> stream = QueryStream(graph, 30, 100, 99);

  ServiceOptions options;
  options.num_workers = 3;
  options.queue_capacity = stream.size();
  options.enable_cache = true;
  options.cache_capacity = 64;
  options.scheduler.enabled = true;
  options.scheduler.batch_size = 4;
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());

  std::vector<ServeResponse> responses(stream.size());
  std::vector<std::future<void>> futures;
  for (size_t i = 0; i < stream.size(); ++i) {
    auto promise = std::make_shared<std::promise<void>>();
    futures.push_back(promise->get_future());
    ASSERT_TRUE(service
                    .SubmitAsync({{stream[i]}, params},
                                 [&responses, i, promise](
                                     const ServeResponse& r) {
                                   responses[i] = r;
                                   promise->set_value();
                                 })
                    .ok());
  }
  for (auto& f : futures) f.wait();
  service.Shutdown();

  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.ToString();
    EXPECT_EQ(responses[i].effective_epsilon, params.epsilon);
    EXPECT_GT(responses[i].predicted_millis, 0.0);
    core::TopKResult expected =
        core::TopKRoundTripRank(graph, {stream[i]}, params).value();
    ExpectBitIdentical(responses[i].topk, expected, stream[i]);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, stream.size());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batched_queries, stream.size());
  EXPECT_EQ(stats.shed_predicted, 0u);
  EXPECT_EQ(stats.eps_widened, 0u);
  // The model learned from this stream's engine runs.
  EXPECT_GT(service.cost_model().observations(), 0u);
}

// With the scheduler off, the FIFO path answers exactly like the serial
// engine (the pre-scheduler contract, restated here so this suite pins it).
TEST(SchedulerServiceTest, SchedulerOffMatchesSerialEngine) {
  const Graph& graph = SharedNet().graph();
  core::TopKParams params = DefaultParams();
  std::vector<NodeId> stream = QueryStream(graph, 20, 60, 17);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = stream.size();
  ASSERT_FALSE(options.scheduler.enabled);  // default off
  QueryService service(SharedGraphPtr(), options);
  ASSERT_TRUE(service.Start().ok());
  for (NodeId q : stream) {
    StatusOr<ServeResponse> response = service.Call({{q}, params});
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->effective_epsilon, params.epsilon);
    EXPECT_EQ(response->predicted_millis, 0.0);
    core::TopKResult expected =
        core::TopKRoundTripRank(graph, {q}, params).value();
    ExpectBitIdentical(response->topk, expected, q);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.shed_predicted, 0u);
  EXPECT_EQ(stats.eps_widened, 0u);
  // Per-class queue waits are recorded on the FIFO path too.
  uint64_t class_total = 0;
  for (const auto& wait : stats.queue_wait) class_total += wait.count;
  EXPECT_EQ(class_total, stream.size());
}

// Deadline shedding is deterministic: any positive prediction blows a
// sub-microsecond deadline, and the FIFO path never sheds on deadlines.
TEST(SchedulerServiceTest, DeadlineShedsAtAdmissionWithDistinctCounter) {
  core::TopKParams params = DefaultParams();

  ServiceOptions scheduled;
  scheduled.scheduler.enabled = true;
  QueryService service(SharedGraphPtr(), scheduled);
  // Not started: admission decisions are exercised without racing workers.
  ServeRequest doomed;
  doomed.query = {1};
  doomed.params = params;
  doomed.deadline_millis = 1e-4;
  Status shed = service.SubmitAsync(doomed, nullptr);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.ToString().find("deadline"), std::string::npos);

  ServeRequest relaxed;
  relaxed.query = {1};
  relaxed.params = params;
  relaxed.deadline_millis = 1e6;
  EXPECT_TRUE(service.SubmitAsync(relaxed, nullptr).ok());
  // No deadline at all is always admitted.
  EXPECT_TRUE(service.SubmitAsync({{1}, params}, nullptr).ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_predicted, 1u);
  EXPECT_EQ(stats.shed_overflow, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  service.Shutdown();

  // Same doomed request through a FIFO service: deadlines are ignored.
  ServiceOptions fifo;
  QueryService fifo_service(SharedGraphPtr(), fifo);
  EXPECT_TRUE(fifo_service.SubmitAsync(doomed, nullptr).ok());
  EXPECT_EQ(fifo_service.stats().shed_predicted, 0u);
  fifo_service.Shutdown();
}

TEST(SchedulerServiceTest, QueueOverflowCountsAsShedOverflow) {
  ServiceOptions options;
  options.queue_capacity = 2;
  QueryService service(SharedGraphPtr(), options);
  core::TopKParams params = DefaultParams();
  EXPECT_TRUE(service.SubmitAsync({{1}, params}, nullptr).ok());
  EXPECT_TRUE(service.SubmitAsync({{2}, params}, nullptr).ok());
  Status overflow = service.SubmitAsync({{3}, params}, nullptr);
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_overflow, 1u);
  EXPECT_EQ(stats.shed_predicted, 0u);
  service.Shutdown();
}

// Epsilon widening under queue pressure: depths past the watermark stamp a
// widened effective epsilon into the response, and the cache keys on the
// effective value (distinct widened epsilons = distinct insertions).
TEST(SchedulerServiceTest, AdaptiveEpsilonStampsResponsesAndKeysCache) {
  const Graph& graph = SharedNet().graph();
  core::TopKParams params = DefaultParams();
  NodeId query_node = QueryStream(graph, 1, 1, 5)[0];

  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  options.enable_cache = true;
  options.scheduler.enabled = true;
  options.scheduler.batch_size = 8;
  options.scheduler.eps_max = 0.08;
  options.scheduler.queue_watermark = 0.5;
  QueryService service(SharedGraphPtr(), options);

  // Submit before Start: admission depths are exactly 0..7, so the
  // effective epsilons are fully deterministic.
  std::vector<ServeResponse> responses(8);
  std::vector<std::future<void>> futures;
  for (size_t i = 0; i < 8; ++i) {
    auto promise = std::make_shared<std::promise<void>>();
    futures.push_back(promise->get_future());
    ASSERT_TRUE(service
                    .SubmitAsync({{query_node}, params},
                                 [&responses, i, promise](
                                     const ServeResponse& r) {
                                   responses[i] = r;
                                   promise->set_value();
                                 })
                    .ok());
  }
  ASSERT_TRUE(service.Start().ok());
  for (auto& f : futures) f.wait();
  service.Shutdown();

  std::set<double> effective;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(responses[i].status.ok());
    EXPECT_GE(responses[i].effective_epsilon, params.epsilon);
    EXPECT_LE(responses[i].effective_epsilon, options.scheduler.eps_max);
    effective.insert(responses[i].effective_epsilon);
  }
  // Depths 0..4 stay at base; 5, 6, 7 hit three distinct quantized steps.
  EXPECT_EQ(effective.size(), 4u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.eps_widened, 3u);
  // One identical query at four effective epsilons: exactly four engine
  // runs entered the cache, the other four were hits on the base key.
  EXPECT_EQ(stats.cache_insertions, 4u);
  EXPECT_EQ(stats.cache_hits, 4u);
}

// A single worker drains everything queued before Start as one batch
// (capped by batch_size), amortizing the generation pin.
TEST(SchedulerServiceTest, SingleWorkerDrainsQueuedBacklogAsOneBatch) {
  const Graph& graph = SharedNet().graph();
  core::TopKParams params = DefaultParams();
  std::vector<NodeId> stream = QueryStream(graph, 6, 6, 23);

  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  options.scheduler.enabled = true;
  options.scheduler.batch_size = 8;
  QueryService service(SharedGraphPtr(), options);

  std::vector<std::future<void>> futures;
  for (NodeId q : stream) {
    auto promise = std::make_shared<std::promise<void>>();
    futures.push_back(promise->get_future());
    ASSERT_TRUE(service
                    .SubmitAsync({{q}, params},
                                 [promise](const ServeResponse&) {
                                   promise->set_value();
                                 })
                    .ok());
  }
  ASSERT_TRUE(service.Start().ok());
  for (auto& f : futures) f.wait();
  service.Shutdown();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, stream.size());
}

// Shutdown with queued scheduler work completes every callback exactly
// once (the kUnavailable drain covers the priority queue too).
TEST(SchedulerServiceTest, ShutdownDrainsPriorityQueue) {
  ServiceOptions options;
  options.scheduler.enabled = true;
  QueryService service(SharedGraphPtr(), options);
  core::TopKParams params = DefaultParams();
  std::atomic<int> done{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service
                    .SubmitAsync({{static_cast<NodeId>(i)}, params},
                                 [&done](const ServeResponse& r) {
                                   EXPECT_EQ(r.status.code(),
                                             StatusCode::kUnavailable);
                                   done.fetch_add(1);
                                 })
                    .ok());
  }
  service.Shutdown();  // never started
  EXPECT_EQ(done.load(), 5);
}

}  // namespace
}  // namespace rtr::serve
