#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/latency_histogram.h"

namespace rtr::obs {
namespace {

// Tests run against a local registry so the process-wide Default() (which
// library components register into) never leaks into assertions.

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", {{"shard", "0"}});
  Counter* b = registry.GetCounter("requests_total", {{"shard", "0"}});
  Counter* c = registry.GetCounter("requests_total", {{"shard", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumSeries(), 2u);

  Gauge* g1 = registry.GetGauge("depth");
  Gauge* g2 = registry.GetGauge("depth");
  EXPECT_EQ(g1, g2);
  LatencyHistogram* h1 = registry.GetHistogram("latency_ms");
  LatencyHistogram* h2 = registry.GetHistogram("latency_ms");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(registry.NumSeries(), 4u);
}

TEST(MetricsRegistryTest, RenderTextCountersGaugesAndTypes) {
  MetricsRegistry registry;
  registry.GetCounter("zebra_total")->Add(7);
  registry.GetGauge("apple")->Set(2.5);

  std::string text = registry.RenderText();
  // Series are sorted by name: apple before zebra_total.
  EXPECT_NE(text.find("# TYPE apple gauge\napple 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zebra_total counter\nzebra_total 7\n"),
            std::string::npos);
  EXPECT_LT(text.find("apple"), text.find("zebra_total"));
}

TEST(MetricsRegistryTest, RenderTextEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"path", "a\"b\\c"}})->Increment();
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("c_total{path=\"a\\\"b\\\\c\"} 1"), std::string::npos);
}

TEST(MetricsRegistryTest, DuplicateSeriesMergeAtRender) {
  MetricsRegistry registry;
  // Two components registering the same (name, labels) — e.g. two services
  // in one test process. The exposition must emit the series once, summed.
  Counter c1, c2;
  c1.Add(3);
  c2.Add(4);
  auto r1 = registry.RegisterCounter("dup_total", {}, &c1);
  auto r2 = registry.RegisterCounter("dup_total", {}, &c2);
  EXPECT_EQ(registry.NumSeries(), 2u);

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("dup_total 7\n"), std::string::npos);
  // Exactly one sample line for the merged series.
  size_t first = text.find("\ndup_total ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("\ndup_total ", first + 1), std::string::npos);
}

TEST(MetricsRegistryTest, DuplicateHistogramsMergeBucketwise) {
  MetricsRegistry registry;
  LatencyHistogram h1, h2, all;
  for (double ms : {0.5, 2.0, 8.0}) {
    h1.Record(ms);
    all.Record(ms);
  }
  for (double ms : {1.0, 4.0}) {
    h2.Record(ms);
    all.Record(ms);
  }
  auto r1 = registry.RegisterHistogram("lat_ms", {}, &h1);
  auto r2 = registry.RegisterHistogram("lat_ms", {}, &h2);

  MetricsRegistry reference;
  auto r3 = reference.RegisterHistogram("lat_ms", {}, &all);
  // Bit-equivalence of the merged exposition with a single histogram that
  // saw every sample: same buckets, same sum, same count.
  EXPECT_EQ(registry.RenderText(), reference.RenderText());
}

TEST(MetricsRegistryTest, RegistrationUnregistersOnDestruction) {
  MetricsRegistry registry;
  Counter c;
  {
    auto registration = registry.RegisterCounter("ephemeral_total", {}, &c);
    EXPECT_EQ(registry.NumSeries(), 1u);
  }
  EXPECT_EQ(registry.NumSeries(), 0u);
  EXPECT_EQ(registry.RenderText().find("ephemeral_total"), std::string::npos);
}

TEST(MetricsRegistryTest, RegistrationMoveTransfersOwnership) {
  MetricsRegistry registry;
  Counter c;
  auto a = registry.RegisterCounter("moved_total", {}, &c);
  MetricsRegistry::Registration b = std::move(a);
  a.Release();  // released moved-from handle: no effect
  EXPECT_EQ(registry.NumSeries(), 1u);
  b.Release();
  EXPECT_EQ(registry.NumSeries(), 0u);
}

TEST(MetricsRegistryTest, CallbackSeriesSampleAtRenderTime) {
  MetricsRegistry registry;
  std::atomic<uint64_t> produced{0};
  auto r1 = registry.RegisterCallbackCounter(
      "produced_total", {}, [&produced] { return produced.load(); });
  auto r2 = registry.RegisterCallbackGauge("fill", {},
                                           [&produced] {
                                             return 0.5 *
                                                    static_cast<double>(
                                                        produced.load());
                                           });
  EXPECT_NE(registry.RenderText().find("produced_total 0\n"),
            std::string::npos);
  produced.store(10);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("produced_total 10\n"), std::string::npos);
  EXPECT_NE(text.find("fill 5\n"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderJsonContainsAllSeries) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total", {{"backend", "local"}})->Add(2);
  registry.GetHistogram("lat_ms")->Record(1.0);
  std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"local\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramExpositionIsCumulativeWithInf) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("h_ms");
  h->Record(0.001);
  h->Record(1000000.0);  // lands in the overflow bucket
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("h_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_count 2\n"), std::string::npos);
  // Cumulative: every bucket count is <= the +Inf count; spot-check that
  // the first emitted bucket holds exactly the one small sample.
  size_t bucket = text.find("h_ms_bucket{le=\"");
  ASSERT_NE(bucket, std::string::npos);
  size_t value_at = text.find("} ", bucket);
  ASSERT_NE(value_at, std::string::npos);
  EXPECT_EQ(text.substr(value_at + 2, 1), "1");
}

// Concurrency: writers hammer counters/gauges/histograms while one thread
// renders and another churns registrations. Run under TSan in CI; the
// assertions here only check nothing is lost on the counter path.
TEST(MetricsRegistryTest, ConcurrentWritersRegistrarsAndRenderers) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kIncrementsPerWriter = 20000;
  Counter* shared = registry.GetCounter("shared_total");
  LatencyHistogram* hist = registry.GetHistogram("shared_ms");
  Gauge* gauge = registry.GetGauge("shared_gauge");

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIncrementsPerWriter; ++i) {
        shared->Increment();
        hist->Record(0.001 * ((w + i) % 100 + 1));
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  threads.emplace_back([&] {  // renderer
    while (!stop.load()) {
      std::string text = registry.RenderText();
      EXPECT_NE(text.find("shared_total"), std::string::npos);
      std::string json = registry.RenderJson();
      EXPECT_NE(json.find("shared_ms"), std::string::npos);
    }
  });
  threads.emplace_back([&] {  // registrar churn
    Counter mine;
    while (!stop.load()) {
      auto registration =
          registry.RegisterCounter("churn_total", {{"who", "t"}}, &mine);
      mine.Increment();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(shared->value(),
            static_cast<uint64_t>(kWriters) * kIncrementsPerWriter);
  EXPECT_EQ(hist->TakeSnapshot().count,
            static_cast<uint64_t>(kWriters) * kIncrementsPerWriter);
}

}  // namespace
}  // namespace rtr::obs
