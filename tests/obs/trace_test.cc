#include "obs/trace.h"

#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace rtr::obs {
namespace {

using std::chrono::milliseconds;

TEST(TraceRecorderTest, PhaseNamesAreStableLabelValues) {
  EXPECT_STREQ(PhaseName(Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(PhaseName(Phase::kGenerationPin), "generation_pin");
  EXPECT_STREQ(PhaseName(Phase::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(PhaseName(Phase::kStage1Expand), "stage1_expand");
  EXPECT_STREQ(PhaseName(Phase::kStage2Refine), "stage2_refine");
  EXPECT_STREQ(PhaseName(Phase::kFinalize), "finalize");
  EXPECT_STREQ(PhaseName(Phase::kSchedWait), "sched_wait");
}

TEST(TraceRecorderTest, SpansNestWithExplicitDepths) {
  TraceRecorder trace;
  trace.BeginQuery(42);
  int32_t outer = trace.BeginSpan(Phase::kStage1Expand);
  int32_t inner = trace.BeginSpan(Phase::kStage2Refine);
  trace.EndSpan(inner);
  int32_t inner2 = trace.BeginSpan(Phase::kFinalize);
  trace.EndSpan(inner2);
  trace.EndSpan(outer);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_EQ(trace.spans()[1].depth, 1);
  EXPECT_EQ(trace.spans()[2].depth, 1);
  EXPECT_EQ(trace.query_id(), 42);

  // Spans are recorded in begin order, and nested spans lie inside their
  // parent's window.
  const TraceSpan& parent = trace.spans()[0];
  for (size_t i = 1; i < trace.spans().size(); ++i) {
    const TraceSpan& child = trace.spans()[i];
    EXPECT_GE(child.start_nanos, parent.start_nanos);
    EXPECT_LE(child.start_nanos + child.duration_nanos,
              parent.start_nanos + parent.duration_nanos);
  }
}

TEST(TraceRecorderTest, OnlyTopLevelSpansAccrueToPhaseTotals) {
  TraceRecorder trace;
  trace.BeginQuery(1);
  int32_t outer = trace.BeginSpan(Phase::kStage1Expand);
  int32_t inner = trace.BeginSpan(Phase::kStage2Refine);
  std::this_thread::sleep_for(milliseconds(2));
  trace.EndSpan(inner);
  trace.EndSpan(outer);

  EXPECT_EQ(trace.PhaseSpanCount(Phase::kStage1Expand), 1u);
  EXPECT_EQ(trace.PhaseSpanCount(Phase::kStage2Refine), 0u);
  EXPECT_GT(trace.PhaseMillis(Phase::kStage1Expand), 0.0);
  // The nested sweep contributes nothing — double counting would make
  // phases sum past the query's wall time.
  EXPECT_EQ(trace.PhaseMillis(Phase::kStage2Refine), 0.0);
}

TEST(TraceRecorderTest, PhasesSumToAtMostTotal) {
  TraceRecorder trace;
  trace.BeginQuery(7);
  trace.AddSpan(Phase::kQueueWait, 3'000'000);  // 3 ms, backdated
  for (int round = 0; round < 4; ++round) {
    int32_t s1 = trace.BeginSpan(Phase::kStage1Expand);
    std::this_thread::sleep_for(milliseconds(1));
    trace.EndSpan(s1);
    int32_t s2 = trace.BeginSpan(Phase::kStage2Refine);
    trace.EndSpan(s2);
  }
  {
    ScopedSpan finalize(&trace, Phase::kFinalize);
  }
  double phase_sum = 0.0;
  for (size_t p = 0; p < kNumPhases; ++p) {
    phase_sum += trace.PhaseMillis(static_cast<Phase>(p));
  }
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, trace.TotalMillis() * (1.0 + 1e-9));
  // The backdated queue wait is inside the total too.
  EXPECT_GE(trace.TotalMillis(), 3.0);
}

TEST(TraceRecorderTest, BeginQueryResetsEverything) {
  TraceRecorder trace;
  trace.BeginQuery(1);
  trace.AddSpan(Phase::kFinalize, 1'000'000);
  ASSERT_EQ(trace.spans().size(), 1u);

  trace.BeginQuery(2);
  EXPECT_EQ(trace.query_id(), 2);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.dropped_spans(), 0u);
  for (size_t p = 0; p < kNumPhases; ++p) {
    EXPECT_EQ(trace.PhaseMillis(static_cast<Phase>(p)), 0.0);
    EXPECT_EQ(trace.PhaseSpanCount(static_cast<Phase>(p)), 0u);
  }
  EXPECT_EQ(trace.TotalMillis(), 0.0);
}

TEST(TraceRecorderTest, DropsAndCountsSpansBeyondCapacity) {
  TraceRecorder trace;
  trace.BeginQuery(1);
  for (size_t i = 0; i < TraceRecorder::kMaxSpans + 10; ++i) {
    trace.AddSpan(Phase::kStage2Refine, 1000);
  }
  EXPECT_EQ(trace.spans().size(), TraceRecorder::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 10u);
  // Dropped spans still accrue to the phase totals — the histogram view
  // stays truthful even when the span list saturates.
  EXPECT_EQ(trace.PhaseSpanCount(Phase::kStage2Refine),
            TraceRecorder::kMaxSpans + 10);
  // BeginSpan on a full recorder returns -1 and EndSpan(-1) is a no-op.
  EXPECT_EQ(trace.BeginSpan(Phase::kFinalize), -1);
  trace.EndSpan(-1);
}

TEST(TraceRecorderTest, ScopedSpanWithNullRecorderIsNoOp) {
  ScopedSpan span(nullptr, Phase::kStage1Expand);  // must not crash
}

TEST(TraceRecorderTest, ToJsonIsOneSelfContainedLine) {
  TraceRecorder trace;
  trace.BeginQuery(99);
  trace.AddSpan(Phase::kQueueWait, 500'000);
  int32_t s = trace.BeginSpan(Phase::kStage1Expand);
  trace.EndSpan(s);

  std::string json = trace.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"query_id\":99"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\":"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"stage1_expand\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

}  // namespace
}  // namespace rtr::obs
