#!/usr/bin/env bash
# End-to-end test of `rtr_cli convert` (text <-> binary snapshot,
# auto-detected by magic), including its error paths. Registered with ctest
# by the root CMakeLists; $1 is the path to the rtr_cli binary.
set -u

CLI="${1:?usage: rtr_cli_convert_test.sh <path-to-rtr_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)"
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# A small hand-written graph in the text format of graph/io.h:
# 4 nodes (one dangling), 2 types, 4 arcs.
cat > "$TMP/g.txt" <<'EOF'
rtr-graph 1
2
untyped
paper
4
0
1
1
0
4
0 1 2.5
1 2 0.25
2 0 1.0
2 3 3.0
EOF

"$CLI" convert "$TMP/g.txt" "$TMP/g.rtrsnap" > "$TMP/out1.txt"
check "text -> snapshot conversion" 0 $?
grep -q "4 nodes, 4 arcs (text -> snapshot)" "$TMP/out1.txt"
check "conversion reports counts and direction" 0 $?

head -c 8 "$TMP/g.rtrsnap" | grep -q "rtr-snap"
check "snapshot starts with rtr-snap magic" 0 $?

"$CLI" convert "$TMP/g.rtrsnap" "$TMP/g2.txt" > "$TMP/out2.txt"
check "snapshot -> text conversion" 0 $?
grep -q "(snapshot -> text)" "$TMP/out2.txt"
check "reverse direction reported" 0 $?

# The round-tripped text graph must describe the same graph: `info` output
# is a canonical rendering of nodes/arcs/types.
"$CLI" info --graph "$TMP/g.txt" > "$TMP/info1.txt" &&
  "$CLI" info --graph "$TMP/g2.txt" > "$TMP/info2.txt" &&
  diff "$TMP/info1.txt" "$TMP/info2.txt" > /dev/null
check "text -> snapshot -> text round-trip preserves the graph" 0 $?

# `info` must also read the snapshot directly (auto-detect in --graph).
"$CLI" info --graph "$TMP/g.rtrsnap" > "$TMP/info3.txt" &&
  diff "$TMP/info1.txt" "$TMP/info3.txt" > /dev/null
check "info auto-detects the snapshot format" 0 $?

# --- error paths ---------------------------------------------------------

"$CLI" convert > /dev/null 2>&1
check "missing operands exit 2" 2 $?

"$CLI" convert "$TMP/g.txt" > /dev/null 2>&1
check "missing output operand exits 2" 2 $?

"$CLI" convert "$TMP/does-not-exist" "$TMP/x" > /dev/null 2>&1
check "nonexistent input exits 1" 1 $?

printf 'rtr-graph 1\n2\nuntyped\n' > "$TMP/truncated.txt"
"$CLI" convert "$TMP/truncated.txt" "$TMP/x" > /dev/null 2>&1
check "truncated text input exits 1" 1 $?

head -c 40 "$TMP/g.rtrsnap" > "$TMP/truncated.rtrsnap"
"$CLI" convert "$TMP/truncated.rtrsnap" "$TMP/x" > /dev/null 2>&1
check "truncated snapshot input exits 1" 1 $?

cat "$TMP/g.rtrsnap" /dev/null > "$TMP/garbage.rtrsnap"
printf 'junk' >> "$TMP/garbage.rtrsnap"
"$CLI" convert "$TMP/garbage.rtrsnap" "$TMP/x" > /dev/null 2>&1
check "snapshot with trailing garbage exits 1" 1 $?

"$CLI" convert "$TMP/g.txt" "$TMP/no-such-dir/x" > /dev/null 2>&1
check "unwritable output exits 1" 1 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all convert CLI checks passed"
