#!/usr/bin/env bash
# End-to-end test of the serve observability surface (DESIGN.md §9):
# `rtr_cli serve --metrics-out` writes a Prometheus-style exposition whose
# series names are unique, whose counters are monotone across dumps, and
# whose final dump agrees with the summary printed to stdout. Registered
# with ctest by the root CMakeLists; $1 is the path to the rtr_cli binary.
set -u

CLI="${1:?usage: rtr_cli_metrics_test.sh <path-to-rtr_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)"
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# --- a replay with periodic dumps, tracing, and logging on ---------------

RTR_LOG_LEVEL=info "$CLI" serve --queries 120 --qps 600 --workers 2 \
  --metrics-out "$TMP/metrics.txt" --metrics-interval-ms 50 --trace 3 \
  > "$TMP/stdout.txt" 2> "$TMP/stderr.txt"
check "serve with --metrics-out and --trace" 0 $?

test -s "$TMP/metrics.txt"
check "metrics file is non-empty" 0 $?

# --- exposition shape ----------------------------------------------------

# The required coverage: serve, cache, store, pool, and per-phase series.
for series in rtr_serve_completed_total rtr_serve_latency_ms_count \
              rtr_serve_qps rtr_cache_hits_total rtr_store_generation \
              rtr_store_pins_total rtr_pool_jobs_total rtr_query_phase_ms; do
  grep -q "$series" "$TMP/metrics.txt"
  check "exposition covers $series" 0 $?
done

grep -q '# TYPE rtr_serve_completed_total counter' "$TMP/metrics.txt"
check "counters carry a # TYPE line" 0 $?
grep -q 'rtr_serve_latency_ms_bucket{.*le="+Inf"}' "$TMP/metrics.txt"
check "histograms end with a +Inf bucket" 0 $?
grep -q 'rtr_query_phase_ms_count{backend="local",phase="queue_wait"}' \
  "$TMP/metrics.txt"
check "phase histograms are labeled by phase" 0 $?

# --- per-dump invariants -------------------------------------------------

LAST=$(grep -c '^# dump ' "$TMP/metrics.txt")
test "$LAST" -ge 2
check "at least two dumps were written (got $LAST)" 0 $?

# Split dumps into per-dump files: dump_0.txt, dump_1.txt, ...
awk '/^# dump /{n=$3} n!=""{print > "'"$TMP"'/dump_" n ".txt"}' \
  "$TMP/metrics.txt"

# Within one dump every sample line's series (name + label set) is unique.
sample_lines() {  # sample_lines <file> — strip comments, keep series part
  grep -v '^#' "$1" | sed 's/ [^ ]*$//'
}
for f in "$TMP"/dump_*.txt; do
  dups=$(sample_lines "$f" | sort | uniq -d)
  if [ -n "$dups" ]; then
    echo "FAIL: duplicate series in $f:"
    echo "$dups"
    fails=$((fails + 1))
  fi
done
check "series are unique within every dump" 0 0

# Counters are monotone non-decreasing from each dump to the next.
monotone_ok=0
counter_names=$(grep '^# TYPE .* counter$' "$TMP/dump_0.txt" |
                awk '{print $3}')
d=0
while [ -f "$TMP/dump_$((d + 1)).txt" ]; do
  for name in $counter_names; do
    prev=$(grep "^${name}\(['{ ]\|\$\)" "$TMP/dump_$d.txt" |
           awk '{s += $NF} END {printf "%.0f", s}')
    next=$(grep "^${name}\(['{ ]\|\$\)" "$TMP/dump_$((d + 1)).txt" |
           awk '{s += $NF} END {printf "%.0f", s}')
    if [ -n "$prev" ] && [ -n "$next" ] && [ "$next" -lt "$prev" ]; then
      echo "FAIL: $name went backwards between dump $d and $((d + 1)):" \
           "$prev -> $next"
      monotone_ok=1
    fi
  done
  d=$((d + 1))
done
check "counters are monotone across dumps" 0 $monotone_ok

# --- stdout summary agrees with the final dump ---------------------------

# The summary printed to stdout is the same rendered exposition as the last
# dump, field for field.
sed -n '/^# dump '"$((LAST - 1))"'$/,$p' "$TMP/metrics.txt" |
  tail -n +2 > "$TMP/final_dump.txt"
sed -n '/^# TYPE/,$p' "$TMP/stdout.txt" |
  sed -n '1,/^$/p' | sed '/^$/d' > "$TMP/stdout_metrics.txt"
test -s "$TMP/final_dump.txt" && test -s "$TMP/stdout_metrics.txt" &&
  diff "$TMP/stdout_metrics.txt" "$TMP/final_dump.txt" > /dev/null
check "stdout summary and final dump agree field-for-field" 0 $?

# The replay completed every query it accepted.
completed=$(grep '^rtr_serve_completed_total' "$TMP/final_dump.txt" |
            awk '{s += $NF} END {printf "%.0f", s}')
test "$completed" -eq 120
check "final dump reports 120 completed queries (got $completed)" 0 $?

# --- tracing output ------------------------------------------------------

grep -q '^{"query_id":' "$TMP/stdout.txt"
check "--trace prints slowest-query JSON traces" 0 $?
traces=$(grep -c '^{"query_id":' "$TMP/stdout.txt")
test "$traces" -le 3
check "--trace 3 prints at most 3 traces (got $traces)" 0 $?
grep -q '"stage1_expand"' "$TMP/stdout.txt"
check "traces include engine phase spans" 0 $?

# --- structured logging --------------------------------------------------

# RTR_LOG_LEVEL=info enables the store's publish INFO line... but this
# replay publishes nothing, so only check the level gate: an invalid level
# must not crash, and `off` must silence warnings.
RTR_LOG_LEVEL=off "$CLI" serve --queries 5 --qps 500 --workers 1 \
  > /dev/null 2> "$TMP/quiet.txt"
check "serve under RTR_LOG_LEVEL=off" 0 $?

# --- error paths ---------------------------------------------------------

"$CLI" serve --queries 5 --qps 500 --trace -1 > /dev/null 2>&1
check "--trace -1 exits 2" 2 $?
"$CLI" serve --queries 5 --qps 500 --metrics-interval-ms 0 > /dev/null 2>&1
check "--metrics-interval-ms 0 exits 2" 2 $?
"$CLI" serve --queries 5 --qps 500 --metrics-out "$TMP/nodir/m.txt" \
  > /dev/null 2>&1
check "unwritable --metrics-out exits 1" 1 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all metrics CLI checks passed"
