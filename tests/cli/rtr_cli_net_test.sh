#!/usr/bin/env bash
# End-to-end test of the networked tier CLI (DESIGN.md §12):
# three `rtr_cli gp-serve` shards on ephemeral localhost ports, a
# `rtr_cli serve --gps` front that ranks through them over TCP, then a
# SIGTERM shutdown check — clean exit message, exit code 0, no orphan
# processes, and the listening port actually released. Registered with
# ctest by the root CMakeLists; $1 is the path to the rtr_cli binary.
set -u

CLI="${1:?usage: rtr_cli_net_test.sh <path-to-rtr_cli>}"
TMP="$(mktemp -d)"
GP_PIDS=""
cleanup() {
  for pid in $GP_PIDS; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fails=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)"
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# A small deterministic graph (text format of graph/io.h): a 12-node ring
# with chords, enough structure for topk queries to touch every shard.
{
  echo "rtr-graph 1"
  echo "1"
  echo "untyped"
  echo "12"
  for _ in $(seq 12); do echo "0"; done
  echo "24"
  for u in $(seq 0 11); do
    echo "$u $(( (u + 1) % 12 )) 1.5"
    echo "$u $(( (u + 5) % 12 )) 0.5"
  done
} > "$TMP/g.txt"

"$CLI" convert "$TMP/g.txt" "$TMP/g.rtrsnap" > /dev/null
check "convert text graph to snapshot" 0 $?

# --- bring up three shards on ephemeral ports ----------------------------

NUM_GPS=3
for shard in 0 1 2; do
  "$CLI" gp-serve --graph "$TMP/g.rtrsnap" --shard "$shard/$NUM_GPS" \
    --port 0 > "$TMP/gp$shard.out" 2> "$TMP/gp$shard.err" &
  GP_PIDS="$GP_PIDS $!"
done

# Each shard prints "... listening on port NNN" once bound; poll for it.
ports=""
for shard in 0 1 2; do
  port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
             "$TMP/gp$shard.out" 2>/dev/null | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "FAIL: shard $shard never reported its port"
    cat "$TMP/gp$shard.err"
    fails=$((fails + 1))
    port=1  # keep going so the summary below still prints
  else
    echo "ok: shard $shard listening on port $port"
  fi
  ports="$ports$port,"
done
GPS="127.0.0.1:${ports%,}"
GPS="${GPS//,/,127.0.0.1:}"

# --- serve through the remote shards -------------------------------------

"$CLI" serve --graph "$TMP/g.rtrsnap" --gps "$GPS" --queries 20 \
  > "$TMP/serve.out" 2> "$TMP/serve.err"
check "serve --gps over three remote shards" 0 $?

grep -q "\[gp\] connected to" "$TMP/serve.out"
check "serve reports connected shards" 0 $?

grep -q "net: sent" "$TMP/serve.out"
check "serve prints the wire-traffic summary" 0 $?

# The wire summary must show real traffic and a quiet network.
grep -q "0 retries, 0 reconnects, 0 timeouts, 0 sheds" "$TMP/serve.out"
check "wire summary shows no faults on localhost" 0 $?

# Remote backend must surface the rtr_net_* counters in the exposition.
grep -q "rtr_net_frames_sent_total" "$TMP/serve.out"
check "exposition covers rtr_net_frames_sent_total" 0 $?

# --- error paths ---------------------------------------------------------

"$CLI" serve --graph "$TMP/g.rtrsnap" --gps "127.0.0.1:1" --queries 5 \
  > /dev/null 2> "$TMP/badgp.err"
rc=$?
[ "$rc" -ne 0 ]
check "serve --gps with an unreachable shard fails" 0 $?

"$CLI" gp-serve --graph "$TMP/g.rtrsnap" --shard "5/3" --port 0 \
  > /dev/null 2> /dev/null
rc=$?
[ "$rc" -ne 0 ]
check "gp-serve rejects an out-of-range shard" 0 $?

# --- SIGTERM: clean shutdown, no orphans, ports released -----------------

first_port="${ports%%,*}"
for pid in $GP_PIDS; do kill -TERM "$pid" 2>/dev/null; done
rc=0
for pid in $GP_PIDS; do
  wait "$pid"
  st=$?
  [ "$st" -eq 0 ] || rc=$st
done
check "every gp-serve exits 0 on SIGTERM" 0 $rc

orphans=0
for pid in $GP_PIDS; do
  kill -0 "$pid" 2>/dev/null && orphans=$((orphans + 1))
done
check "no orphan gp-serve processes" 0 $orphans
GP_PIDS=""

grep -q "clean shutdown (signal 15" "$TMP/gp0.out"
check "shard 0 printed the clean-shutdown summary" 0 $?

# The listener socket must be gone: a TCP connect to the old port fails.
(exec 3<>"/dev/tcp/127.0.0.1/$first_port") 2>/dev/null
rc=$?
[ "$rc" -ne 0 ]
check "shard 0's port is released after shutdown" 0 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all checks passed"
exit 0
