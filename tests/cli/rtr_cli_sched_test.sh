#!/usr/bin/env bash
# End-to-end test of cost-model admission scheduling on the serve command
# (DESIGN.md §11): `rtr_cli serve --scheduler` with a recorded --replay
# stream, per-record deadlines, deterministic deadline shedding, the
# rtr_sched_ metrics series, and backward compatibility of node-only replay
# files. Registered with ctest by the root CMakeLists; $1 is the rtr_cli
# binary.
set -u

CLI="${1:?usage: rtr_cli_sched_test.sh <path-to-rtr_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)"
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# --- replay formats ------------------------------------------------------

# Old-style node-only replay: must parse unchanged, scheduler off.
cat > "$TMP/old.rtrq" <<'EOF'
# node-only records, the pre-scheduler replay format
3
17
42
3
EOF
"$CLI" serve --replay "$TMP/old.rtrq" --workers 1 \
  > "$TMP/old_out.txt" 2>&1
check "node-only replay serves without --scheduler" 0 $?
grep -q 'admission: accepted 4, rejected 0' "$TMP/old_out.txt"
check "all 4 node-only records were admitted" 0 $?

# Mixed replay: deadline column on some records, comments and blanks
# interleaved. A 0.0001ms deadline is unmeetable (the cost prior predicts
# well above it), so those two records shed deterministically at admission.
cat > "$TMP/mixed.rtrq" <<'EOF'
# mixed records: node [deadline_ms]
3 100000

17 0.0001
42
# trailing comment
9 0.0001
11 100000
EOF
"$CLI" serve --scheduler --replay "$TMP/mixed.rtrq" --workers 1 \
  --metrics-out "$TMP/metrics.txt" \
  > "$TMP/mixed_out.txt" 2>&1
check "deadline-column replay with --scheduler" 0 $?

grep -q 'admission: accepted 3, rejected 2 (queue overflow 0, '\
'predicted-deadline shed 2, stopping 0)' "$TMP/mixed_out.txt"
check "exactly the two tiny-deadline records were shed" 0 $?

grep -q 'scheduler: .* batches, 3 batched queries' "$TMP/mixed_out.txt"
check "admitted records were served through batch drains" 0 $?

grep -q 'queue wait \[moderate\]:' "$TMP/mixed_out.txt"
check "summary reports per-class queue wait" 0 $?

# --- scheduler metrics series --------------------------------------------

for series in rtr_sched_shed_overflow_total rtr_sched_shed_predicted_total \
              rtr_sched_eps_widened_total rtr_sched_batches_total \
              rtr_sched_batched_queries_total; do
  grep -q "$series" "$TMP/metrics.txt"
  check "exposition covers $series" 0 $?
done
shed=$(grep '^rtr_sched_shed_predicted_total' "$TMP/metrics.txt" |
       tail -1 | awk '{printf "%.0f", $NF}')
test "$shed" -eq 2
check "rtr_sched_shed_predicted_total agrees with the summary (got $shed)" \
  0 $?

# --- synthetic stream with scheduler knobs --------------------------------

# No replay file: the synthetic pool honors --deadline-ms, --batch and
# --eps-band. A generous deadline sheds nothing.
"$CLI" serve --scheduler --queries 40 --qps 2000 --workers 2 --batch 4 \
  --eps-band 0.05 --deadline-ms 60000 > "$TMP/synth_out.txt" 2>&1
check "synthetic stream with scheduler knobs" 0 $?
grep -q 'admission: accepted 40, rejected 0' "$TMP/synth_out.txt"
check "generous deadline admits the whole synthetic stream" 0 $?

# --- error paths ---------------------------------------------------------

"$CLI" serve --replay "$TMP/does_not_exist.rtrq" > /dev/null 2>&1
check "missing --replay file exits 2" 2 $?
printf 'not_a_node\n' > "$TMP/bad.rtrq"
"$CLI" serve --replay "$TMP/bad.rtrq" > /dev/null 2>&1
check "malformed replay record exits 2" 2 $?
printf '3 junk\n' > "$TMP/bad_deadline.rtrq"
"$CLI" serve --replay "$TMP/bad_deadline.rtrq" > /dev/null 2>&1
check "malformed deadline column exits 2" 2 $?
"$CLI" serve --scheduler --batch 0 > /dev/null 2>&1
check "--batch 0 exits 2" 2 $?
"$CLI" serve --deadline-ms -1 > /dev/null 2>&1
check "negative --deadline-ms exits 2" 2 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all scheduler CLI checks passed"
