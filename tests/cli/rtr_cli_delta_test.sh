#!/usr/bin/env bash
# End-to-end test of the live-update CLI workflow (DESIGN.md §8):
# convert -> diff -> info -> apply-delta -> serve --delta, including the
# generation handshake and corrupt-file error paths. Registered with ctest
# by the root CMakeLists; $1 is the path to the rtr_cli binary.
set -u

CLI="${1:?usage: rtr_cli_delta_test.sh <path-to-rtr_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)"
    fails=$((fails + 1))
  else
    echo "ok: $1"
  fi
}

# Three append-only versions of a small graph (text format of graph/io.h):
# v0 (4 nodes, 4 arcs) -> v1 (+1 node, +2 arcs) -> v2 (+1 arc).
cat > "$TMP/v0.txt" <<'EOF'
rtr-graph 1
2
untyped
paper
4
0
1
1
0
4
0 1 2.5
1 2 0.25
2 0 1.0
2 3 3.0
EOF
cat > "$TMP/v1.txt" <<'EOF'
rtr-graph 1
2
untyped
paper
5
0
1
1
0
1
6
0 1 2.5
1 2 0.25
2 0 1.0
2 3 3.0
3 4 1.5
4 0 2.0
EOF
cat > "$TMP/v2.txt" <<'EOF'
rtr-graph 1
2
untyped
paper
5
0
1
1
0
1
7
0 1 2.5
1 2 0.25
1 4 0.75
2 0 1.0
2 3 3.0
3 4 1.5
4 0 2.0
EOF

"$CLI" convert "$TMP/v0.txt" "$TMP/v0.rtrsnap" > /dev/null
check "base text -> snapshot (generation 0)" 0 $?

# --- diff ----------------------------------------------------------------

"$CLI" diff "$TMP/v0.rtrsnap" "$TMP/v1.txt" "$TMP/d1.rtrdelta" \
  > "$TMP/diff1.txt"
check "diff v0 -> v1" 0 $?
grep -q "base generation 0, +1 nodes, -0/+2 arcs" "$TMP/diff1.txt"
check "diff reports the delta shape" 0 $?

head -c 8 "$TMP/d1.rtrdelta" | grep -q "rtr-delt"
check "delta file starts with rtr-delt magic" 0 $?

# --- info on snapshot and delta headers ----------------------------------

"$CLI" info "$TMP/d1.rtrdelta" > "$TMP/info_d1.txt"
check "info reads the delta header" 0 $?
grep -q "format: delta" "$TMP/info_d1.txt" &&
  grep -q "base generation: 0" "$TMP/info_d1.txt" &&
  grep -q "added nodes: 1" "$TMP/info_d1.txt" &&
  grep -q "added arcs: 2" "$TMP/info_d1.txt"
check "delta header fields are printed" 0 $?

"$CLI" info "$TMP/v0.rtrsnap" > "$TMP/info_v0.txt"
check "info reads the snapshot header" 0 $?
grep -q "format: snapshot" "$TMP/info_v0.txt" &&
  grep -q "generation: 0" "$TMP/info_v0.txt" &&
  grep -q "nodes: 4" "$TMP/info_v0.txt"
check "snapshot header fields are printed" 0 $?

# --- apply-delta ---------------------------------------------------------

"$CLI" apply-delta "$TMP/v0.rtrsnap" "$TMP/d1.rtrdelta" "$TMP/g1.rtrsnap" \
  > "$TMP/apply1.txt"
check "apply-delta replays d1 onto the base" 0 $?
grep -q "generation 1, 5 nodes, 6 arcs" "$TMP/apply1.txt"
check "applied snapshot carries generation 1" 0 $?

# The applied snapshot must describe the same graph as building v1 from
# scratch: `info --graph` output is a canonical rendering.
"$CLI" info --graph "$TMP/g1.rtrsnap" > "$TMP/sum_applied.txt" &&
  "$CLI" info --graph "$TMP/v1.txt" > "$TMP/sum_direct.txt" &&
  diff "$TMP/sum_applied.txt" "$TMP/sum_direct.txt" > /dev/null
check "apply-delta output matches a from-scratch build" 0 $?

# A second delta chained off generation 1 inherits its base generation from
# the snapshot header.
"$CLI" diff "$TMP/g1.rtrsnap" "$TMP/v2.txt" "$TMP/d2.rtrdelta" \
  > "$TMP/diff2.txt"
check "diff off the generation-1 snapshot" 0 $?
grep -q "base generation 1" "$TMP/diff2.txt"
check "chained delta names base generation 1" 0 $?

"$CLI" apply-delta "$TMP/v0.rtrsnap" "$TMP/d1.rtrdelta" "$TMP/d2.rtrdelta" \
  "$TMP/g2.rtrsnap" > "$TMP/apply2.txt"
check "apply-delta replays a two-delta chain" 0 $?
grep -q "generation 2, 5 nodes, 7 arcs" "$TMP/apply2.txt"
check "chained snapshot carries generation 2" 0 $?

# --- serve --delta (live swap during a replay) ---------------------------

"$CLI" serve --graph "$TMP/g1.rtrsnap" --delta "$TMP/d2.rtrdelta" \
  --queries 20 --qps 400 --workers 2 --k 3 > "$TMP/serve.txt" 2>&1
check "serve applies a delta mid-replay" 0 $?
grep -q "\[swap\] .*d2.rtrdelta -> generation 2" "$TMP/serve.txt" &&
  grep -q "rtr_store_generations_published_total 1" "$TMP/serve.txt" &&
  grep -q 'rtr_serve_generation{[^}]*} 2' "$TMP/serve.txt"
check "serve reports the generation swap" 0 $?

# --- error paths ---------------------------------------------------------

"$CLI" diff "$TMP/v0.rtrsnap" "$TMP/v1.txt" > /dev/null 2>&1
check "diff with missing operand exits 2" 2 $?

"$CLI" apply-delta "$TMP/v0.rtrsnap" "$TMP/out.rtrsnap" > /dev/null 2>&1
check "apply-delta with no delta operand exits 2" 2 $?

"$CLI" diff "$TMP/does-not-exist" "$TMP/v1.txt" "$TMP/x" > /dev/null 2>&1
check "diff with nonexistent base exits 1" 1 $?

# Shrinking evolution (v1 -> v0 drops a node) violates append-only.
"$CLI" diff "$TMP/v1.txt" "$TMP/v0.txt" "$TMP/x" > /dev/null 2>&1
check "non-append-only diff exits 1" 1 $?

# d2 names base generation 1; the v0 snapshot is generation 0.
"$CLI" apply-delta "$TMP/v0.rtrsnap" "$TMP/d2.rtrdelta" "$TMP/x" \
  > /dev/null 2>&1
check "out-of-order delta replay exits 1" 1 $?

head -c 40 "$TMP/d1.rtrdelta" > "$TMP/truncated.rtrdelta"
"$CLI" info "$TMP/truncated.rtrdelta" > /dev/null 2>&1
check "info on truncated delta exits 1" 1 $?

cp "$TMP/d1.rtrdelta" "$TMP/corrupt.rtrdelta"
printf '\xff' | dd of="$TMP/corrupt.rtrdelta" bs=1 \
  seek=$(($(stat -c %s "$TMP/corrupt.rtrdelta") - 1)) conv=notrunc \
  > /dev/null 2>&1
"$CLI" apply-delta "$TMP/v0.rtrsnap" "$TMP/corrupt.rtrdelta" "$TMP/x" \
  > /dev/null 2>&1
check "apply-delta on corrupt delta exits 1" 1 $?

"$CLI" serve --graph "$TMP/v0.rtrsnap" --delta "$TMP/d2.rtrdelta" \
  --queries 5 --qps 400 --workers 2 > /dev/null 2>&1
check "serve with a stale delta exits 1" 1 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all delta CLI checks passed"
